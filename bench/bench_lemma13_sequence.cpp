// T5 -- Lemma 13: the length of the certified lower-bound chain grows as
// Omega(log Delta).  Prints, per Delta, the paper's rounded schedule length
// and the exact-recurrence length, next to log2(Delta); every chain is
// re-certified (Corollary 10 preconditions + Lemma 12 hardness per step).
#include <cmath>

#include "bench_util.hpp"
#include "core/sequence.hpp"

int main() {
  using namespace relb;
  bench::banner("Lemma 13: chain length vs log2(Delta)   [x0 = k = 1]");

  bench::Table t({"Delta", "log2(Delta)", "paper schedule t", "exact t",
                  "exact t / log2(Delta)", "certified"});
  bool allPass = true;
  for (int e = 4; e <= 30; e += 2) {
    const re::Count delta = re::Count{1} << e;
    const core::Chain paper = core::paperChain(delta, 1);
    const core::Chain exact = core::exactChain(delta, 1);
    const bool certified = core::certifyChain(paper).empty() &&
                           core::certifyChain(exact).empty();
    allPass &= certified;
    t.row(delta, e, paper.length(), exact.length(),
          static_cast<double>(exact.length()) / e, certified);
  }
  t.print();
  bench::verdict(allPass, "every chain certified");
  std::cout << "\npaper claim: t = Omega(log Delta) -- the ratio column must "
               "stabilize at a positive constant (~0.75 for the exact\n"
               "recurrence, ~0.33 for the paper's 2^{-3i} schedule).\n";

  bench::banner("Chain length vs k (Delta = 2^20)");
  bench::Table tk({"k", "exact t", "certified"});
  for (re::Count k : {0, 1, 2, 8, 32, 128, 512, 2048, 8192}) {
    const core::Chain chain = core::exactChain(re::Count{1} << 20, k);
    tk.row(k, chain.length(), core::certifyChain(chain).empty());
  }
  tk.print();
  std::cout << "\npaper claim: the bound survives k up to Delta^epsilon "
               "(chain shrinks slowly in k, collapses near Delta).\n";

  // One chain in full, for the record.
  bench::banner("The certified chain at Delta = 2^10, k = 1");
  const core::Chain chain = core::exactChain(1 << 10, 1);
  bench::Table tc({"i", "a_i", "x_i"});
  for (std::size_t i = 0; i < chain.steps.size(); ++i) {
    tc.row(i, chain.steps[i].a, chain.steps[i].x);
  }
  tc.print();
  return 0;
}
