// F5 -- Figure 5: the node diagram of R(Pi_Delta(a,x)) over the renamed
// labels X, M, O, U, A, B, P, Q.  Computed exactly by word enumeration for
// small Delta and with the scalable (flow-certified) method for large
// Delta; the bench verifies both agree and prints the diagram.
#include "bench_util.hpp"
#include "core/lemma6.hpp"
#include "re/diagram.hpp"

int main() {
  using namespace relb;
  bench::banner("Figure 5: node diagram of R(Pi_Delta(a,x))");

  // Reference relation computed exactly at a small parameter point.
  const auto small = core::claimedRFamily(8, 5, 1);
  const auto exact = re::computeStrength(small.node, 8);
  std::cout << "computed diagram (Delta=8, a=5, x=1):\n"
            << exact.renderDiagram(small.alphabet) << "\n";
  std::cout << "DOT:\n" << exact.toDot(small.alphabet, "fig5_rpi") << "\n";

  // Key relations the Lemma 8 proof relies on.
  const bool keyRelations =
      exact.strictlyStronger(core::kRQ, core::kRP) &&   // Q above P
      exact.strictlyStronger(core::kRB, core::kRU) &&   // B above U
      exact.strictlyStronger(core::kRB, core::kRA) &&   // B above A
      exact.strictlyStronger(core::kRU, core::kRM) &&   // U above M
      exact.strictlyStronger(core::kRM, core::kRX) &&   // M above X
      exact.strictlyStronger(core::kRP, core::kRA) &&   // P above A
      exact.strictlyStronger(core::kRA, core::kRO) &&   // A above O
      exact.strictlyStronger(core::kRO, core::kRX);     // O above X
  bench::verdict(keyRelations, "key strength relations of the proof hold");

  // Exact vs scalable agreement across parameters (large Delta uses the
  // scalable computation only; small Delta cross-checks both).
  bench::Table t({"Delta", "a", "x", "same diagram as reference", "method"});
  bool allPass = true;
  for (const auto& [delta, a, x] : std::vector<std::array<re::Count, 3>>{
           {5, 4, 1},
           {6, 5, 2},
           {8, 8, 0},
           {12, 7, 2},
           {1 << 10, 1 << 8, 5},
           {re::Count{1} << 24, re::Count{1} << 16, 77}}) {
    const auto rp = core::claimedRFamily(delta, a, x);
    re::StrengthRelation rel(8);
    std::string method;
    if (delta <= 12) {
      rel = re::computeStrength(rp.node, 8);
      method = "exact + scalable";
      const auto scal = re::computeStrengthScalable(rp.node, 8);
      if (!(rel == scal)) {
        allPass = false;
        method = "exact != scalable";
      }
    } else {
      rel = re::computeStrengthScalable(rp.node, 8);
      method = "scalable";
    }
    const bool same = rel == exact;
    allPass &= same;
    t.row(delta, a, x, same, method);
  }
  t.print();
  bench::verdict(allPass, "Figure 5 diagram is parameter-independent on the "
                          "tested range");
  return 0;
}
