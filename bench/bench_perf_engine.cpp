// P1-P3 -- engine microbenchmarks (google-benchmark), in three groups:
//
//   * Symbolic-Delta benchmarks: condensed-configuration / proof-script
//     paths whose cost is independent of Delta; these deliberately take
//     astronomically large Delta arguments (up to 2^40).
//   * Exact-engine benchmarks: subset sweeps and packed-word enumerations
//     whose guards (StepOptions::maxRbarDelta = 8, <= 16 labels, per-label
//     counts <= 15) bound the feasible Delta.  Arguments stay within those
//     guards so every registered benchmark actually runs -- huge-Delta
//     arguments would make applyRbar throw, not measure.
//   * Serial-vs-parallel benchmarks: the same exact-engine hot paths with
//     StepOptions::numThreads 1 (serial) vs 0 (one thread per core), across
//     Delta.  bench/run_bench.sh filters these into BENCH_speedup.json to
//     track the repo's perf trajectory.  Delta = 7, 8 are feasible but cost
//     tens of seconds to minutes per iteration; the registered range stops
//     at 6 to keep full bench runs interactive.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/lemma6.hpp"
#include "gen/random_problem.hpp"
#include "io/serialize.hpp"
#include "core/lemma8.hpp"
#include "core/sequence.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "re/bitkernels.hpp"
#include "re/edge_compat.hpp"
#include "re/engine.hpp"
#include "re/re_step.hpp"
#include "re/cycle_verifier.hpp"
#include "re/tree_verifier.hpp"
#include "re/zero_round.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/step_store.hpp"

namespace {

using namespace relb;

// ---------------------------------------------------------------------------
// Symbolic-Delta benchmarks (cost independent of Delta; huge Delta welcome).
// ---------------------------------------------------------------------------

void BM_ApplyR_Family(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const auto pi = core::familyProblem(delta, delta / 2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::applyR(pi));
  }
}
BENCHMARK(BM_ApplyR_Family)->Arg(8)->Arg(1 << 10)->Arg(1 << 20)->Arg(1 << 30);

void BM_VerifyLemma6(benchmark::State& state) {
  const re::Count delta = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::verifyLemma6(delta, delta / 2, 1));
  }
}
BENCHMARK(BM_VerifyLemma6)->Arg(8)->Arg(1 << 10)->Arg(1 << 20)->Arg(1 << 30);

void BM_VerifyLemma8Symbolic(benchmark::State& state) {
  const re::Count delta = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::verifyLemma8Symbolic(delta, delta / 2, 1));
  }
}
BENCHMARK(BM_VerifyLemma8Symbolic)
    ->Arg(8)
    ->Arg(1 << 10)
    ->Arg(1 << 20)
    ->Arg(1 << 30);

void BM_FlowMembership(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const auto pi = core::familyProblem(delta, delta / 2, 7);
  re::Word w(5, 0);
  w[core::kM] = delta - 7;
  w[core::kX] = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pi.node.containsWord(w));
  }
}
BENCHMARK(BM_FlowMembership)->Arg(8)->Arg(1 << 20)->Arg(re::Count{1} << 40);

void BM_ExactChain(benchmark::State& state) {
  const re::Count delta = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exactChain(delta, 1));
  }
}
BENCHMARK(BM_ExactChain)->Arg(1 << 10)->Arg(1 << 20);

void BM_ZeroRoundCheck(benchmark::State& state) {
  const auto pi = core::familyProblem(state.range(0), state.range(0) / 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::zeroRoundSolvableSymmetricPorts(pi));
  }
}
BENCHMARK(BM_ZeroRoundCheck)->Arg(8)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// Exact-engine benchmarks (enumeration guards bound the feasible Delta).
// ---------------------------------------------------------------------------

void BM_VerifyLemma8Exact(benchmark::State& state) {
  const re::Count delta = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::verifyLemma8Exact(delta, delta, 0));
  }
}
BENCHMARK(BM_VerifyLemma8Exact)->Arg(3)->Arg(4)->Arg(5);

void BM_CycleSolvable(benchmark::State& state) {
  const auto pi = re::misProblem(2);
  const int radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::cycleSolvable(pi, radius));
  }
}
BENCHMARK(BM_CycleSolvable)->Arg(0)->Arg(1)->Arg(2);

void BM_TreeSolvable3(benchmark::State& state) {
  const auto pi = re::misProblem(3);
  const int radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::treeSolvable3(pi, radius));
  }
}
BENCHMARK(BM_TreeSolvable3)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Serial-vs-parallel benchmarks.  Second argument is StepOptions::numThreads
// (1 = serial reference, 0 = one thread per hardware core); the serial and
// parallel rows are asserted bit-identical by
// tests/re/re_step_parallel_test.cpp, so any delta here is pure perf.
// ---------------------------------------------------------------------------

void BM_SpeedupStepMis(benchmark::State& state) {
  const auto mis = re::misProblem(state.range(0));
  re::StepOptions options;
  options.numThreads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::speedupStep(mis, options));
  }
}
BENCHMARK(BM_SpeedupStepMis)
    ->ArgsProduct({{2, 3, 4}, {1, 0}});

// Attaches per-iteration registry-counter deltas to a benchmark's JSON row,
// so BENCH_speedup.json breaks each timing down into the work it measures
// (configurations enumerated, antichain tests, labels produced).
class CounterScope {
 public:
  explicit CounterScope(benchmark::State& state)
      : state_(state), before_(obs::Registry::global().snapshot()) {}
  ~CounterScope() {
    const auto after = obs::Registry::global().snapshot();
    const auto perIter = [&](const char* name) {
      return benchmark::Counter(
          static_cast<double>(after.counterValue(name) -
                              before_.counterValue(name)),
          benchmark::Counter::kAvgIterations);
    };
    state_.counters["rbar_candidates"] = perIter("re.rbar.candidates");
    state_.counters["rbar_maximal"] = perIter("re.rbar.maximal");
    state_.counters["antichain_tests"] = perIter("re.antichain.tests");
    state_.counters["subsets_swept"] = perIter("re.r.subsets_swept");
    state_.counters["labels_produced"] = perIter("re.labels.produced");
    state_.counters["pool_batches"] = perIter("pool.batches");
  }

 private:
  benchmark::State& state_;
  obs::Registry::Snapshot before_;
};

void BM_SpeedupStepFamily(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const auto pi = core::familyProblem(delta, delta / 2, 1);
  re::StepOptions options;
  options.numThreads = static_cast<int>(state.range(1));
  const CounterScope counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::speedupStep(pi, options));
  }
}
BENCHMARK(BM_SpeedupStepFamily)
    ->ArgsProduct({{4, 5, 6}, {1, 0}})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_MaximalEdgePairs(benchmark::State& state) {
  // A reproducible dense edge constraint over `labels` labels: the subset
  // sweep is 2^labels and the maximality filter sees many incomparable
  // pairs, which is exactly where the antichain prune and the sweep fan-out
  // matter.
  const int labels = static_cast<int>(state.range(0));
  const int numThreads = static_cast<int>(state.range(1));
  const CounterScope counters(state);
  std::mt19937 rng(12345);
  std::bernoulli_distribution coin(0.35);
  re::Constraint edge(2, {});
  for (int a = 0; a < labels; ++a) {
    for (int b = a; b < labels; ++b) {
      if (coin(rng)) {
        edge.add(re::Configuration(
            {{re::LabelSet{static_cast<re::Label>(a)}, 1},
             {re::LabelSet{static_cast<re::Label>(b)}, 1}}));
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::maximalEdgePairs(edge, labels, numThreads));
  }
}
BENCHMARK(BM_MaximalEdgePairs)
    ->ArgsProduct({{10, 14, 18}, {1, 0}})
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Bit-parallel kernel rows (re/bitkernels.hpp and friends), so the regression
// gate sees the kernels directly, not only the end-to-end chains above.  All
// serial: the kernels themselves are single-lane primitives.
// ---------------------------------------------------------------------------

void BM_DominationFilter(benchmark::State& state) {
  // The completability test of the Rbar sweep: a partial packed word probed
  // against a batch of allowed words with the SWAR byte-lane comparison.
  const int numWords = static_cast<int>(state.range(0));
  std::mt19937 rng(4242);
  std::uniform_int_distribution<int> label(0, 11);
  std::vector<re::kernels::ExpandedWord> words;
  std::vector<re::kernels::ExpandedWord> probes;
  for (int i = 0; i < numWords; ++i) {
    re::kernels::PackedWord w = 0;
    for (int s = 0; s < 8; ++s) {
      w += re::kernels::PackedWord{1} << (4 * label(rng));
    }
    words.push_back(re::kernels::expandWord(w));
    re::kernels::PackedWord p = 0;
    for (int s = 0; s < 4; ++s) {
      p += re::kernels::PackedWord{1} << (4 * label(rng));
    }
    probes.push_back(re::kernels::expandWord(p));
  }
  std::size_t hits = 0;
  for (auto _ : state) {
    for (const re::kernels::ExpandedWord p : probes) {
      hits += re::kernels::dominatedBySome(p, words.data(), words.size());
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(probes.size()));
}
BENCHMARK(BM_DominationFilter)->Arg(64)->Arg(512);

void BM_RightClosure(benchmark::State& state) {
  // allRightClosedSets over a pseudo-random dense strength relation: the
  // 2^k subset sweep with the per-label closure table.
  const int labels = static_cast<int>(state.range(0));
  std::mt19937 rng(777);
  std::bernoulli_distribution coin(0.3);
  re::StrengthRelation rel(labels);
  for (int strong = 0; strong < labels; ++strong) {
    for (int weak = 0; weak < labels; ++weak) {
      if (strong != weak && coin(rng)) {
        rel.set(static_cast<re::Label>(strong), static_cast<re::Label>(weak),
                true);
      }
    }
  }
  const re::LabelSet universe = re::LabelSet::full(labels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.allRightClosedSets(universe));
  }
}
BENCHMARK(BM_RightClosure)->Arg(12)->Arg(16);

void BM_SubsetSweep(benchmark::State& state) {
  // The 2^n Galois sweep + antichain filter of maximalEdgePairsFromCompat on
  // a synthetic compatibility matrix, isolated from constraint construction
  // and the per-pair flow of the legacy edgeCompatibility.
  const int labels = static_cast<int>(state.range(0));
  std::mt19937 rng(999);
  std::bernoulli_distribution coin(0.35);
  std::vector<re::LabelSet> compat(static_cast<std::size_t>(labels));
  for (int a = 0; a < labels; ++a) {
    for (int b = a; b < labels; ++b) {
      if (coin(rng)) {
        compat[static_cast<std::size_t>(a)].insert(static_cast<re::Label>(b));
        compat[static_cast<std::size_t>(b)].insert(static_cast<re::Label>(a));
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        re::detail::maximalEdgePairsFromCompat(compat, labels, 1));
  }
}
BENCHMARK(BM_SubsetSweep)->Arg(12)->Arg(16);

void BM_CertifyChain(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const int numThreads = static_cast<int>(state.range(1));
  const auto chain = core::exactChain(delta, 1);
  const CounterScope counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::certifyChain(chain, numThreads));
  }
}
BENCHMARK(BM_CertifyChain)
    ->ArgsProduct({{1 << 10, 1 << 20}, {1, 0}})
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Warm-context benchmarks: the same hot paths served from an EngineContext
// whose caches were warmed once before the timing loop.  The measured cost
// is hashing + lookup; the delta against the cold rows above is what the
// cross-layer memoization buys consumers like autobound / certifyChain.
// ---------------------------------------------------------------------------

void BM_SpeedupStepMisCached(benchmark::State& state) {
  const auto mis = re::misProblem(state.range(0));
  re::EngineContext ctx;
  benchmark::DoNotOptimize(ctx.speedupStep(mis));  // warm the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.speedupStep(mis));
  }
}
BENCHMARK(BM_SpeedupStepMisCached)->Arg(2)->Arg(3)->Arg(4);

void BM_SpeedupStepFamilyCached(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const auto pi = core::familyProblem(delta, delta / 2, 1);
  re::EngineContext ctx;
  benchmark::DoNotOptimize(ctx.speedupStep(pi));  // warm the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.speedupStep(pi));
  }
}
BENCHMARK(BM_SpeedupStepFamilyCached)->Arg(4)->Arg(5)->Arg(6);

void BM_CertifyChainCached(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const int numThreads = static_cast<int>(state.range(1));
  const auto chain = core::exactChain(delta, 1);
  re::EngineContext ctx;
  benchmark::DoNotOptimize(core::certifyChain(chain, ctx, numThreads));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::certifyChain(chain, ctx, numThreads));
  }
}
BENCHMARK(BM_CertifyChainCached)
    ->ArgsProduct({{1 << 10, 1 << 20}, {1, 0}})
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Session-layer benchmarks (the EngineCore / EngineSession split).
// BM_SessionCreate is the per-request price of the split: constructing a
// session over an already-warm shared core must stay trivially cheap, since
// the driver pays it on every run() and services pay it per request.
// BM_ConcurrentSessions is the contention row: N threads, each with its own
// session over ONE shared core, all served from the warm memo -- what the
// core's single lock costs when every lookup is a hit.
// ---------------------------------------------------------------------------

void BM_SessionCreate(benchmark::State& state) {
  auto core = std::make_shared<re::EngineCore>();
  {
    re::EngineSession warm(core);
    benchmark::DoNotOptimize(warm.speedupStep(re::misProblem(3)));
  }
  for (auto _ : state) {
    re::EngineSession session(core);
    benchmark::DoNotOptimize(&session);
  }
}
BENCHMARK(BM_SessionCreate);

void BM_ConcurrentSessions(benchmark::State& state) {
  // Magic static: warmed exactly once, shared by every benchmark thread.
  static const std::shared_ptr<re::EngineCore> core = [] {
    auto c = std::make_shared<re::EngineCore>();
    re::EngineSession warm(c);
    benchmark::DoNotOptimize(warm.speedupStep(re::misProblem(3)));
    return c;
  }();
  const auto mis = re::misProblem(3);
  for (auto _ : state) {
    re::EngineSession session(core);
    benchmark::DoNotOptimize(session.speedupStep(mis));
  }
}
BENCHMARK(BM_ConcurrentSessions)->Threads(2)->Threads(8)->UseRealTime();

// ---------------------------------------------------------------------------
// Disk-store benchmarks: certifyChain backed by the content-addressed step
// store (src/store).  Cold = empty store, every step computed and written
// through; warm = a fresh context over a fully populated store, every step
// loaded and checksum-verified from disk with zero recomputation.  The gap
// between the warm row and BM_CertifyChainCached is the price of disk
// persistence over the in-memory memo.
// ---------------------------------------------------------------------------

std::filesystem::path benchStoreDir() {
  return std::filesystem::temp_directory_path() / "relb-bench-store";
}

void BM_CertifyChainColdStore(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const auto chain = core::exactChain(delta, 1);
  const auto dir = benchStoreDir();
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    re::EngineContext ctx;
    ctx.attachStore(std::make_shared<store::DiskStepStore>(dir));
    benchmark::DoNotOptimize(core::certifyChain(chain, ctx, 1));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CertifyChainColdStore)
    ->Arg(1 << 10)
    ->Arg(1 << 20)
    ->UseRealTime();

void BM_CertifyChainWarmStore(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const auto chain = core::exactChain(delta, 1);
  const auto dir = benchStoreDir();
  std::filesystem::remove_all(dir);
  {
    re::EngineContext warmup;
    warmup.attachStore(std::make_shared<store::DiskStepStore>(dir));
    benchmark::DoNotOptimize(core::certifyChain(chain, warmup, 1));
  }
  for (auto _ : state) {
    // Fresh context and store handle each iteration: everything is served
    // from disk, nothing from the in-memory memo.
    re::EngineContext ctx;
    ctx.attachStore(std::make_shared<store::DiskStepStore>(dir));
    benchmark::DoNotOptimize(core::certifyChain(chain, ctx, 1));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CertifyChainWarmStore)
    ->Arg(1 << 10)
    ->Arg(1 << 20)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Service benchmarks (src/serve): the daemon measured through its own unix
// socket.  One shared Server over a warm core for the whole benchmark
// process; every timed request is a cache hit, so the rows price the serve
// layer itself -- framing, scheduling, session setup, socket hops -- not the
// engine.  BM_ServeRoundTrip is the single-request end-to-end latency floor;
// BM_ServeThroughput keeps `clients` connections in flight at once
// (send-all, then receive-all, per iteration), which is the concurrency the
// per-connection threads and scheduler lanes are supposed to deliver.  Real
// time throughout: the work happens on server threads, not the caller's.
// ---------------------------------------------------------------------------

const std::string& benchSocketPath() {
  static const std::string path =
      (std::filesystem::temp_directory_path() /
       ("relb-bench-serve-" + std::to_string(::getpid()) + ".sock"))
          .string();
  return path;
}

serve::Request benchServeRequest() {
  serve::Request request;
  request.kind = serve::Request::Kind::kProblem;
  request.id = 1;
  request.nodeSpec = "M^3; P O^2";
  request.edgeSpec = "M [P O]; O O";
  request.maxSteps = 3;
  request.wantStats = false;
  return request;
}

serve::Server& benchServer() {
  static const auto server = [] {
    serve::ServeConfig config;
    config.unixSocketPath = benchSocketPath();
    auto owned = std::make_unique<serve::Server>(config);
    owned->start();
    // Warm the shared core once, outside any timing loop.
    serve::Client warm = serve::Client::connectUnix(benchSocketPath());
    if (!warm.roundTrip(benchServeRequest()).ok()) {
      std::abort();  // a broken server would silently poison every row
    }
    return owned;
  }();
  return *server;
}

void BM_ServeRoundTrip(benchmark::State& state) {
  benchServer();
  serve::Client client = serve::Client::connectUnix(benchSocketPath());
  const serve::Request request = benchServeRequest();
  for (auto _ : state) {
    const serve::Response response = client.roundTrip(request);
    if (!response.ok()) {
      state.SkipWithError(response.status.c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeRoundTrip)->UseRealTime();

void BM_ServeThroughput(benchmark::State& state) {
  benchServer();
  const int clients = static_cast<int>(state.range(0));
  std::vector<serve::Client> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    pool.push_back(serve::Client::connectUnix(benchSocketPath()));
  }
  const serve::Request request = benchServeRequest();
  for (auto _ : state) {
    for (serve::Client& client : pool) {
      client.send(request);
    }
    for (serve::Client& client : pool) {
      const serve::Response response = client.receive();
      if (!response.ok()) {
        state.SkipWithError(response.status.c_str());
        return;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_ServeThroughput)
    ->ArgNames({"clients"})
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Observability overhead.  BM_ScopedSpanNoSink is the fast path every
// instrumented hot path pays unconditionally -- it must stay in the
// low-nanosecond range (tests/obs/overhead_test.cpp asserts the resulting
// < 2% bound against certifyChain).  The sink rows bound what --trace adds.
// ---------------------------------------------------------------------------

void BM_ScopedSpanNoSink(benchmark::State& state) {
  obs::Tracer tracer;  // no sinks: construction is one relaxed load
  for (auto _ : state) {
    const obs::ScopedSpan span("bench.span", tracer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ScopedSpanNoSink);

void BM_ScopedSpanNullSink(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.addSink(std::make_shared<obs::NullSink>());
  for (auto _ : state) {
    const obs::ScopedSpan span("bench.span", tracer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ScopedSpanNullSink);

void BM_ScopedSpanRingSink(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.addSink(std::make_shared<obs::RingBufferSink>(1024));
  for (auto _ : state) {
    const obs::ScopedSpan span("bench.span", tracer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ScopedSpanRingSink);

void BM_RegistryCounterAdd(benchmark::State& state) {
  obs::Counter& counter = obs::Registry::global().counter("bench.counter");
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_RegistryCounterAdd);

// ---------------------------------------------------------------------------
// Random-problem generator (src/gen): the throughput floor under the
// property suites.  One row per pass configuration -- the post-passes
// (right closure, relaxation) dominate generation cost, and a regression
// here silently stretches every tier-2 CI run.
// ---------------------------------------------------------------------------

void BM_GenerateRandomProblem(benchmark::State& state) {
  gen::RandomProblemOptions options;
  options.rightClosurePass = state.range(0) != 0;
  options.relaxationPass = state.range(1) != 0;
  std::mt19937 rng(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::randomProblem(rng, options));
  }
}
BENCHMARK(BM_GenerateRandomProblem)
    ->ArgNames({"closure", "relax"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

// The generate -> serialize path the fuzz-corpus generator
// (tools/fuzz_parse --generate) and the round-trip suites pay per case.
void BM_GenerateAndRenderText(benchmark::State& state) {
  const gen::RandomProblemOptions options;
  std::mt19937 rng(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        io::renderProblemText(gen::randomProblem(rng, options)));
  }
}
BENCHMARK(BM_GenerateAndRenderText);

}  // namespace

BENCHMARK_MAIN();
