// P1-P3 -- engine microbenchmarks (google-benchmark): the cost of the
// R operator, the proof-script checks, flow membership, and the exact
// speedup, across Delta.
#include <benchmark/benchmark.h>

#include "core/lemma6.hpp"
#include "core/lemma8.hpp"
#include "core/sequence.hpp"
#include "re/re_step.hpp"
#include "re/cycle_verifier.hpp"
#include "re/tree_verifier.hpp"
#include "re/zero_round.hpp"

namespace {

using namespace relb;

void BM_ApplyR_Family(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const auto pi = core::familyProblem(delta, delta / 2, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::applyR(pi));
  }
}
BENCHMARK(BM_ApplyR_Family)->Arg(8)->Arg(1 << 10)->Arg(1 << 20)->Arg(1 << 30);

void BM_VerifyLemma6(benchmark::State& state) {
  const re::Count delta = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::verifyLemma6(delta, delta / 2, 1));
  }
}
BENCHMARK(BM_VerifyLemma6)->Arg(8)->Arg(1 << 10)->Arg(1 << 20)->Arg(1 << 30);

void BM_VerifyLemma8Symbolic(benchmark::State& state) {
  const re::Count delta = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::verifyLemma8Symbolic(delta, delta / 2, 1));
  }
}
BENCHMARK(BM_VerifyLemma8Symbolic)
    ->Arg(8)
    ->Arg(1 << 10)
    ->Arg(1 << 20)
    ->Arg(1 << 30);

void BM_VerifyLemma8Exact(benchmark::State& state) {
  const re::Count delta = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::verifyLemma8Exact(delta, delta, 0));
  }
}
BENCHMARK(BM_VerifyLemma8Exact)->Arg(3)->Arg(4)->Arg(5);

void BM_FlowMembership(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const auto pi = core::familyProblem(delta, delta / 2, 7);
  re::Word w(5, 0);
  w[core::kM] = delta - 7;
  w[core::kX] = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pi.node.containsWord(w));
  }
}
BENCHMARK(BM_FlowMembership)->Arg(8)->Arg(1 << 20)->Arg(re::Count{1} << 40);

void BM_ExactChain(benchmark::State& state) {
  const re::Count delta = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exactChain(delta, 1));
  }
}
BENCHMARK(BM_ExactChain)->Arg(1 << 10)->Arg(1 << 20);

void BM_CertifyChain(benchmark::State& state) {
  const re::Count delta = state.range(0);
  const auto chain = core::exactChain(delta, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::certifyChain(chain));
  }
}
BENCHMARK(BM_CertifyChain)->Arg(1 << 10)->Arg(1 << 20);

void BM_SpeedupStepMis(benchmark::State& state) {
  const auto mis = re::misProblem(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::speedupStep(mis));
  }
}
BENCHMARK(BM_SpeedupStepMis)->Arg(2)->Arg(3)->Arg(4);

void BM_ZeroRoundCheck(benchmark::State& state) {
  const auto pi = core::familyProblem(state.range(0), state.range(0) / 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::zeroRoundSolvableSymmetricPorts(pi));
  }
}
BENCHMARK(BM_ZeroRoundCheck)->Arg(8)->Arg(1 << 20);

void BM_CycleSolvable(benchmark::State& state) {
  const auto pi = re::misProblem(2);
  const int radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::cycleSolvable(pi, radius));
  }
}
BENCHMARK(BM_CycleSolvable)->Arg(0)->Arg(1)->Arg(2);

void BM_TreeSolvable3(benchmark::State& state) {
  const auto pi = re::misProblem(3);
  const int radius = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(re::treeSolvable3(pi, radius));
  }
}
BENCHMARK(BM_TreeSolvable3)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
