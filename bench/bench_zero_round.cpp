// T4 -- Lemmas 12 and 15: zero-round solvability and the randomized failure
// probability bound.
//
// Part A prints the exact 0-round solvability boundary of the family
// (solvable iff a = 0 or x = Delta).
//
// Part B searches for the *best* randomized 0-round strategy on the
// symmetric-port instance family: a strategy is a distribution over pure
// outputs (a node-configuration word assigned to ports); two adjacent nodes
// draw independently and fail if some shared port carries an incompatible
// label pair.  Replicator dynamics minimizes the failure probability; the
// minimum found must stay above the analytic bound 1/(q Delta)^2 of
// Lemma 15.
#include <random>

#include "bench_util.hpp"
#include "core/family.hpp"
#include "local/graph.hpp"
#include "re/zero_round.hpp"

namespace {

using namespace relb;

// All pure strategies: assignments of a node-constraint word to the Delta
// ports (ports are interchangeable only up to the adversarial coloring; on
// the symmetric-port family the port index matters, so enumerate all
// distinct port->label functions whose multiset is an allowed word).
std::vector<std::vector<re::Label>> pureStrategies(const re::Problem& p) {
  std::vector<std::vector<re::Label>> out;
  const int delta = static_cast<int>(p.delta());
  std::vector<re::Label> assignment(static_cast<std::size_t>(delta));
  std::function<void(int, re::Word&)> rec = [&](int port, re::Word& used) {
    if (port == delta) {
      if (p.node.containsWord(used)) out.push_back(assignment);
      return;
    }
    for (re::Label l = 0; l < p.alphabet.size(); ++l) {
      assignment[static_cast<std::size_t>(port)] = l;
      ++used[l];
      // Prune: partial word must extend to some configuration (cheap
      // overapproximation: skip exact check, full check at the leaf).
      rec(port + 1, used);
      --used[l];
    }
  };
  re::Word used(static_cast<std::size_t>(p.alphabet.size()), 0);
  rec(0, used);
  return out;
}

// Failure indicator for two independent draws on one edge of the
// symmetric-port family: some port carries an incompatible pair.
bool pairFails(const re::Problem& p, const std::vector<re::Label>& s1,
               const std::vector<re::Label>& s2) {
  for (std::size_t port = 0; port < s1.size(); ++port) {
    re::Word w(static_cast<std::size_t>(p.alphabet.size()), 0);
    ++w[s1[port]];
    ++w[s2[port]];
    if (!p.edge.containsWord(w)) return true;
  }
  return false;
}

}  // namespace

int main() {
  using namespace relb;
  bench::banner("Lemma 12: zero-round solvability boundary of the family");
  {
    const re::Count delta = 5;
    bench::Table t({"a \\ x", "0", "1", "2", "3", "4", "5"});
    bool boundaryOk = true;
    for (re::Count a = 0; a <= delta; ++a) {
      std::vector<std::string> row{std::to_string(a)};
      for (re::Count x = 0; x <= delta; ++x) {
        const bool solvable = re::zeroRoundSolvableSymmetricPorts(
            core::familyProblem(delta, a, x));
        boundaryOk &= solvable == (a == 0 || x == delta);
        row.push_back(solvable ? "solvable" : "hard");
      }
      t.row(row[0], row[1], row[2], row[3], row[4], row[5], row[6]);
    }
    t.print();
    bench::verdict(boundaryOk,
                   "solvable exactly when a = 0 or x = Delta (Lemma 12)");
  }

  bench::banner("Lemma 15: best randomized 0-round strategy vs the bound");
  bench::Table t({"Delta", "a", "x", "#pure strategies", "analytic bound",
                  "best found failure", "bound holds"});
  bool allPass = true;
  for (const auto& [delta, a, x] : std::vector<std::array<re::Count, 3>>{
           {2, 1, 0}, {2, 2, 1}, {3, 2, 0}, {3, 3, 1}, {4, 3, 1}}) {
    const auto p = core::familyProblem(delta, a, x);
    const auto strategies = pureStrategies(p);
    const double bound = re::randomizedFailureLowerBound(p);

    // Pairwise failure matrix.
    const std::size_t m = strategies.size();
    std::vector<std::vector<double>> fail(m, std::vector<double>(m, 0.0));
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        fail[i][j] = pairFails(p, strategies[i], strategies[j]) ? 1.0 : 0.0;
      }
    }
    // Replicator dynamics from several random starts.
    std::mt19937 rng(7);
    double best = 1.0;
    for (int start = 0; start < 8; ++start) {
      std::vector<double> prob(m);
      std::uniform_real_distribution<double> uni(0.1, 1.0);
      double sum = 0;
      for (auto& v : prob) sum += (v = uni(rng));
      for (auto& v : prob) v /= sum;
      for (int iter = 0; iter < 2000; ++iter) {
        // fitness_i = 1 - (F p)_i, renormalize.
        std::vector<double> fp(m, 0.0);
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = 0; j < m; ++j) fp[i] += fail[i][j] * prob[j];
        }
        double z = 0;
        for (std::size_t i = 0; i < m; ++i) {
          prob[i] *= (1.001 - fp[i]);
          z += prob[i];
        }
        for (auto& v : prob) v /= z;
      }
      double value = 0;
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          value += prob[i] * prob[j] * fail[i][j];
        }
      }
      best = std::min(best, value);
    }
    const bool holds = best >= bound - 1e-12;
    allPass &= holds;
    t.row(delta, a, x, m, bound, best, holds);
  }
  t.print();
  bench::verdict(allPass,
                 "optimized strategies never beat the 1/(q Delta)^2 bound");
  return 0;
}
