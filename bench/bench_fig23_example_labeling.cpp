// F2/F3 -- Figures 2 and 3: a concrete valid output labeling of a problem
// of the family with a = x = 2 on a Delta = 4 tree, exhibiting all three
// node types (type-1 M-nodes, type-2 P-nodes, type-3 A-nodes), generated
// and verified by the generic LCL checker.
#include <algorithm>

#include "bench_util.hpp"
#include "core/conversions.hpp"
#include "core/family.hpp"
#include "local/halfedge.hpp"

namespace {

using namespace relb;

// Counts nodes by the configuration type they output.
struct TypeCounts {
  int type1 = 0;  // M (dominating set)
  int type2 = 0;  // P (pointing)
  int type3 = 0;  // A (owning)
  int other = 0;
};

TypeCounts countTypes(const local::Graph& g,
                      const local::HalfEdgeLabeling& labeling) {
  TypeCounts counts;
  for (local::NodeId v = 0; v < g.numNodes(); ++v) {
    bool hasM = false, hasP = false, hasA = false;
    for (local::Port p = 0; p < g.degree(v); ++p) {
      const auto l = labeling.at(v, p);
      hasM |= l == core::kM;
      hasP |= l == core::kP;
      hasA |= l == core::kA;
    }
    if (hasM) {
      ++counts.type1;
    } else if (hasA) {
      ++counts.type3;
    } else if (hasP) {
      ++counts.type2;
    } else {
      ++counts.other;
    }
  }
  return counts;
}

// The Figure 2/3 style labeling: even BFS depth = type-3 nodes owning two
// edges (A^2 X^2), odd depth = type-2 nodes (P O^3) pointing through
// non-owned edges.  Every even node labels its parent edge X so odd nodes
// can point at a child.
local::HalfEdgeLabeling ownershipLabeling(const local::Graph& g) {
  std::vector<int> depth(static_cast<std::size_t>(g.numNodes()), -1);
  std::vector<local::NodeId> order{0};
  depth[0] = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const auto& he : g.neighbors(order[i])) {
      if (depth[static_cast<std::size_t>(he.neighbor)] < 0) {
        depth[static_cast<std::size_t>(he.neighbor)] =
            depth[static_cast<std::size_t>(order[i])] + 1;
        order.push_back(he.neighbor);
      }
    }
  }
  local::HalfEdgeLabeling out(g);
  for (local::NodeId v = 0; v < g.numNodes(); ++v) {
    const int d = depth[static_cast<std::size_t>(v)];
    if (d % 2 == 0) {
      // Type 3: own two child edges (A), X elsewhere (parent edge first).
      int owned = 0;
      for (local::Port p = 0; p < g.degree(v); ++p) {
        const auto he = g.halfEdge(v, p);
        const bool isParent =
            depth[static_cast<std::size_t>(he.neighbor)] == d - 1;
        if (!isParent && owned < 2) {
          out.set(v, p, core::kA);
          ++owned;
        } else {
          out.set(v, p, core::kX);
        }
      }
    } else {
      // Type 2: point at one child through its X-labeled side; leaves point
      // nowhere and output all O (boundary nodes, node constraint skipped).
      bool pointed = false;
      for (local::Port p = 0; p < g.degree(v); ++p) {
        const auto he = g.halfEdge(v, p);
        const bool isChild =
            depth[static_cast<std::size_t>(he.neighbor)] == d + 1;
        if (isChild && !pointed) {
          out.set(v, p, core::kP);
          pointed = true;
        } else {
          out.set(v, p, core::kO);
        }
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace relb;
  bench::banner("Figures 2/3: valid labelings of Pi_4(2,2) on a tree");

  const int delta = 4;
  const auto g = local::completeRegularTree(delta, 4);
  const auto pi = core::familyProblem(delta, 2, 2);
  std::cout << "tree: n = " << g.numNodes() << ", problem Pi_" << delta
            << "(a=2, x=2)\n\n";

  // Labeling 1 (Figure 2 flavor): type-3 owners + type-2 pointers.
  const auto own = ownershipLabeling(g);
  const auto ownCheck = local::checkLabeling(g, pi, own);
  const auto ownTypes = countTypes(g, own);
  bench::Table t({"labeling", "type-1 (M)", "type-2 (P)", "type-3 (A)",
                  "other", "valid"});
  t.row("ownership (Fig. 2)", ownTypes.type1, ownTypes.type2, ownTypes.type3,
        ownTypes.other, ownCheck.ok());

  // Labeling 2 (Figure 3 flavor): dominating-set based, type-1 + type-2.
  std::vector<bool> inSet(static_cast<std::size_t>(g.numNodes()), false);
  for (local::NodeId v = 0; v < g.numNodes(); ++v) {
    bool blocked = false;
    for (const auto& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) blocked = true;
    }
    if (!blocked) inSet[static_cast<std::size_t>(v)] = true;
  }
  local::EdgeOrientation orientation(static_cast<std::size_t>(g.numEdges()),
                                     0);
  const auto dsBase = core::lemma5Labeling(g, inSet, orientation, delta, 0);
  const auto ds = core::lemma11Relax(g, dsBase, delta, delta, 0, 2, 2);
  const auto dsCheck = local::checkLabeling(g, pi, ds);
  const auto dsTypes = countTypes(g, ds);
  t.row("dominating set (Fig. 3)", dsTypes.type1, dsTypes.type2, dsTypes.type3,
        dsTypes.other, dsCheck.ok());
  t.print();
  std::cout << "\n";

  bench::verdict(ownCheck.ok(), "ownership labeling verified by LCL checker");
  bench::verdict(dsCheck.ok(), "dominating-set labeling verified");
  bench::verdict(ownTypes.type3 > 0 && dsTypes.type1 > 0 &&
                     ownTypes.type2 > 0,
                 "all three node types of Figure 2 exhibited");
  return 0;
}
