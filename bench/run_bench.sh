#!/usr/bin/env sh
# Runs the serial-vs-parallel engine benchmarks and writes BENCH_speedup.json
# (google-benchmark JSON) to the repository root, plus an observability
# bundle: BENCH_report.json (the CLI's versioned run report for a reference
# chain certification) and BENCH_trace.json (the matching Chrome trace).
#
# Usage:  bench/run_bench.sh [build-dir] [extra benchmark flags...]
#
#   build-dir   CMake build directory (default: build).  Used only if its
#               cached CMAKE_BUILD_TYPE is Release; anything else (including
#               the repo-default RelWithDebInfo and a missing cache) falls
#               back to a dedicated Release tree in build-bench/, so a
#               pre-existing Debug build can never produce Debug numbers.
#
# Environment:
#   BENCH_OUT   Output path for the benchmark JSON (default:
#               BENCH_speedup.json in the repo root).  CI points this at a
#               scratch file so the committed baseline is never overwritten.
#
# The captured benchmarks are the ones whose second argument is
# StepOptions::numThreads (1 = serial, 0 = one thread per hardware core):
# BM_SpeedupStepFamily, BM_SpeedupStepMis, BM_MaximalEdgePairs and
# BM_CertifyChain -- each row carries per-iteration registry-counter
# breakdowns (antichain tests, labels produced, ...) -- plus the serial
# bit-kernel rows BM_DominationFilter / BM_RightClosure / BM_SubsetSweep and
# the tracer overhead rows BM_ScopedSpan* / BM_RegistryCounterAdd and the
# session-layer rows BM_SessionCreate / BM_ConcurrentSessions and the
# service rows BM_ServeRoundTrip / BM_ServeThroughput (the relb-served
# socket front end measured end-to-end over a warm core) and the LOCAL
# simulator rows BM_CsrBuild / BM_LubyMisRound (CSR construction and one
# full-frontier Luby round at 10^6 / 10^7 nodes; the second BM_LubyMisRound
# argument is the thread width).  On a
# single-core machine numThreads=0 resolves to one lane, so the
# serial/parallel rows coincide up to noise; the serial rows still track the
# kernel and antichain-prune baselines against older revisions.
#
# The JSON context is stamped with the library's actual cached build type
# (library_build_type) and the producing git revision (relb_git_revision);
# tools/check_bench.py refuses baselines/candidates whose stamp is not
# "release".
#
# Note: the bundled google-benchmark expects --benchmark_min_time as a
# plain double (seconds), without a unit suffix.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

cached_build_type() {
  sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$1/CMakeCache.txt" 2>/dev/null || true
}

BUILD_TYPE="$(cached_build_type "$BUILD_DIR")"
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "== $BUILD_DIR cached build type is '${BUILD_TYPE:-<none>}', not Release; using build-bench/ =="
  BUILD_DIR="build-bench"
fi

# Configure + build unconditionally (a no-op when up to date), so the
# benchmark binary always matches the working tree.
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_perf_engine round_eliminator_cli

BENCH_BIN="$BUILD_DIR/bench/bench_perf_engine"
OUT="${BENCH_OUT:-BENCH_speedup.json}"
"$BENCH_BIN" \
  --benchmark_filter='BM_SpeedupStepFamily|BM_SpeedupStepMis|BM_MaximalEdgePairs|BM_CertifyChain|BM_DominationFilter|BM_RightClosure|BM_SubsetSweep|BM_ScopedSpan|BM_RegistryCounterAdd|BM_SessionCreate|BM_ConcurrentSessions|BM_ServeRoundTrip|BM_ServeThroughput|BM_CsrBuild|BM_LubyMisRound' \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"

# Stamp the context with the library's real build type and the revision, so
# a benchmark JSON is self-describing about what produced it.
python3 - "$OUT" "$(cached_build_type "$BUILD_DIR")" <<'PYEOF'
import json
import subprocess
import sys

path, build_type = sys.argv[1], sys.argv[2]
with open(path) as f:
    data = json.load(f)
context = data.setdefault("context", {})
context["library_build_type"] = build_type.lower()
try:
    revision = subprocess.run(
        ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
        check=False).stdout.strip()
except OSError:
    revision = ""
context["relb_git_revision"] = revision
with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
PYEOF

echo
echo "== wrote $OUT =="

# Attach the observability bundle: one traced, reported chain certification
# through the CLI, so every benchmark drop ships with a phase/counter
# breakdown and a Perfetto-loadable trace of the run that produced it.
CLI_BIN="$BUILD_DIR/examples/round_eliminator_cli"
"$CLI_BIN" --chain 1024 \
  --report BENCH_report.json \
  --trace BENCH_trace.json --trace-format chrome > /dev/null

echo "== wrote BENCH_report.json, BENCH_trace.json =="
