#!/usr/bin/env sh
# Runs the serial-vs-parallel engine benchmarks and writes BENCH_speedup.json
# (google-benchmark JSON) to the repository root, plus an observability
# bundle: BENCH_report.json (the CLI's versioned run report for a reference
# chain certification) and BENCH_trace.json (the matching Chrome trace).
#
# Usage:  bench/run_bench.sh [build-dir] [extra benchmark flags...]
#
#   build-dir   CMake build directory (default: build).  Configured and
#               built on demand if the benchmark binary is missing.
#
# The captured benchmarks are the ones whose second argument is
# StepOptions::numThreads (1 = serial, 0 = one thread per hardware core):
# BM_SpeedupStepFamily, BM_SpeedupStepMis, BM_MaximalEdgePairs and
# BM_CertifyChain -- each row carries per-iteration registry-counter
# breakdowns (antichain tests, labels produced, ...) -- plus the tracer
# overhead rows BM_ScopedSpan* / BM_RegistryCounterAdd.  On a single-core
# machine numThreads=0 resolves to one lane, so the serial/parallel rows
# coincide up to noise; the serial rows still track the antichain-prune
# baseline against older revisions.
#
# Note: the bundled google-benchmark expects --benchmark_min_time as a
# plain double (seconds), without a unit suffix.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

BENCH_BIN="$BUILD_DIR/bench/bench_perf_engine"
if [ ! -x "$BENCH_BIN" ]; then
  echo "== $BENCH_BIN missing; configuring and building =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j --target bench_perf_engine
fi

OUT="BENCH_speedup.json"
"$BENCH_BIN" \
  --benchmark_filter='BM_SpeedupStepFamily|BM_SpeedupStepMis|BM_MaximalEdgePairs|BM_CertifyChain|BM_ScopedSpan|BM_RegistryCounterAdd' \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"

echo
echo "== wrote $OUT =="

# Attach the observability bundle: one traced, reported chain certification
# through the CLI, so every benchmark drop ships with a phase/counter
# breakdown and a Perfetto-loadable trace of the run that produced it.
CLI_BIN="$BUILD_DIR/examples/round_eliminator_cli"
if [ ! -x "$CLI_BIN" ]; then
  echo "== $CLI_BIN missing; building =="
  cmake --build "$BUILD_DIR" -j --target round_eliminator_cli
fi
"$CLI_BIN" --chain 1024 \
  --report BENCH_report.json \
  --trace BENCH_trace.json --trace-format chrome > /dev/null

echo "== wrote BENCH_report.json, BENCH_trace.json =="
