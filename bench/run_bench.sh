#!/usr/bin/env sh
# Runs the serial-vs-parallel engine benchmarks and writes BENCH_speedup.json
# (google-benchmark JSON) to the repository root.
#
# Usage:  bench/run_bench.sh [build-dir] [extra benchmark flags...]
#
#   build-dir   CMake build directory (default: build).  Configured and
#               built on demand if the benchmark binary is missing.
#
# The captured benchmarks are the ones whose second argument is
# StepOptions::numThreads (1 = serial, 0 = one thread per hardware core):
# BM_SpeedupStepFamily, BM_SpeedupStepMis, BM_MaximalEdgePairs and
# BM_CertifyChain.  On a single-core machine numThreads=0 resolves to one
# lane, so the two rows coincide up to noise; the serial rows still track
# the antichain-prune baseline against older revisions.
#
# Note: the bundled google-benchmark expects --benchmark_min_time as a
# plain double (seconds), without a unit suffix.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

BENCH_BIN="$BUILD_DIR/bench/bench_perf_engine"
if [ ! -x "$BENCH_BIN" ]; then
  echo "== $BENCH_BIN missing; configuring and building =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j --target bench_perf_engine
fi

OUT="BENCH_speedup.json"
"$BENCH_BIN" \
  --benchmark_filter='BM_SpeedupStepFamily|BM_SpeedupStepMis|BM_MaximalEdgePairs|BM_CertifyChain' \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"

echo
echo "== wrote $OUT =="
