// T2 -- Lemma 8: Rbar(R(Pi_Delta(a,x))) solves Pi+_Delta(a,x) in 0 rounds.
// Exact (full Rbar computation) for small Delta; proof-script (symbolic,
// Delta-independent cost) for large Delta; the two cross-validate.
#include "bench_util.hpp"
#include "core/lemma8.hpp"

int main() {
  using namespace relb;
  bench::banner("Lemma 8: speedup of the family, exact vs proof-script");

  std::cout << "Pi_rel relaxation targets (Delta=8, a=5, x=1), renamed:\n"
            << core::relProblemRenamed(8, 5, 1).render() << "\n";

  // Exhaustive exact grid (full Rbar(R(.)) computation).
  {
    bench::Stopwatch sw;
    int checks = 0;
    bool pass = true;
    for (re::Count delta = 2; delta <= 5; ++delta) {
      for (re::Count a = 2; a <= delta; ++a) {
        for (re::Count x = 0; x + 2 <= a; ++x) {
          const auto exact = core::verifyLemma8Exact(delta, a, x);
          const auto symbolic = core::verifyLemma8Symbolic(delta, a, x);
          pass &= exact.ok && symbolic.ok;
          ++checks;
        }
      }
    }
    std::cout << "exact grid Delta in [2,5]: " << checks
              << " points, exact and symbolic both verified = "
              << (pass ? "yes" : "no") << " (" << sw.ms() << " ms)\n\n";
    bench::verdict(pass, "exact Rbar(R(.)) relaxes to Pi_rel ~ Pi+ on the "
                         "whole small grid");
  }

  // Symbolic proof-script at scale.
  bench::Table t({"Delta", "a", "x", "verified", "time (ms)"});
  bool allPass = true;
  for (const auto& [delta, a, x] : std::vector<std::array<re::Count, 3>>{
           {64, 32, 3},
           {1 << 10, 1 << 7, 11},
           {1 << 16, 1 << 12, 63},
           {1 << 20, 1 << 18, 37},
           {re::Count{1} << 30, re::Count{1} << 25, 999},
           {re::Count{1} << 40, re::Count{1} << 20, 12345}}) {
    bench::Stopwatch sw;
    const auto result = core::verifyLemma8Symbolic(delta, a, x);
    allPass &= result.ok;
    t.row(delta, a, x, result.ok, sw.ms());
  }
  t.print();
  bench::verdict(allPass, "Lemma 8 proof script verified at every scale");
  return 0;
}
