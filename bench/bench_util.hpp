// Shared helpers for the reproduction benches: aligned table printing and a
// tiny stopwatch.  Every bench prints the paper's artifact next to the
// recomputed one and a PASS/FAIL verdict where the artifact is checkable.
#pragma once

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace relb::bench {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> r;
    (r.push_back(toCell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t i = 0; i < header_.size(); ++i) {
      width[i] = header_[i].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], r[i].size());
      }
    }
    const auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        os << "  " << std::left << std::setw(static_cast<int>(width[i]))
           << cells[i];
      }
      os << "\n";
    };
    line(header_);
    std::string sep;
    for (std::size_t i = 0; i < header_.size(); ++i) {
      sep += "  " + std::string(width[i], '-');
    }
    os << sep << "\n";
    for (const auto& r : rows_) line(r);
  }

 private:
  static std::string toCell(const std::string& s) { return s; }
  static std::string toCell(const char* s) { return s; }
  static std::string toCell(bool b) { return b ? "yes" : "no"; }
  template <typename T>
  static std::string toCell(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream oss;
      oss << std::fixed << std::setprecision(3) << v;
      return oss.str();
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline void banner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n\n";
}

inline void verdict(bool pass, const std::string& what) {
  std::cout << (pass ? "[PASS] " : "[FAIL] ") << what << "\n";
}

}  // namespace relb::bench
