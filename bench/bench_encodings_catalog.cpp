// Catalog: the engine applied to the classic problems of the paper's
// related-work discussion.  For each encoding: 0-round analysis, one
// speedup, and the automatic iteration's verdict -- reproducing the
// qualitative landscape of Section 1.2 (fixed points, doubly exponential
// growth, trivial problems) on known problems.
#include "bench_util.hpp"
#include "re/autobound.hpp"
#include "re/encodings.hpp"
#include "re/zero_round.hpp"

namespace {

using namespace relb;

std::string reasonName(re::StopReason reason) {
  switch (reason) {
    case re::StopReason::kFixedPoint:
      return "fixed point (=> Omega(log n))";
    case re::StopReason::kZeroRoundSolvable:
      return "0-round solvable";
    case re::StopReason::kLabelBudget:
      return "label blow-up";
    case re::StopReason::kStepLimit:
      return "step limit";
    case re::StopReason::kEngineLimit:
      return "engine guard";
  }
  return "?";
}

}  // namespace

int main() {
  bench::banner("Encoding catalog under automatic speedup iteration");

  struct Entry {
    std::string name;
    re::Problem problem;
    std::string expectation;  // from the literature
  };
  std::vector<Entry> entries;
  entries.push_back({"MIS (Delta=3)", re::misProblem(3),
                     "label blow-up [this paper / BBHORS'19]"});
  entries.push_back({"sinkless orientation (Delta=3)",
                     re::sinklessOrientationProblem(3),
                     "fixed point [BFHKLRSU'16]"});
  entries.push_back({"maximal matching (Delta=3)",
                     re::maximalMatchingProblem(3),
                     "label blow-up [BBHORS'19]"});
  entries.push_back({"2-matching (Delta=3)", re::bMatchingProblem(3, 2),
                     "label blow-up [BO'20]"});
  entries.push_back({"3-coloring (cycle)", re::cColoringProblem(2, 3),
                     "Theta(log* n): stays nontrivial, bounded labels"});
  entries.push_back({"2-coloring (cycle)", re::cColoringProblem(2, 2),
                     "global problem: never becomes 0-round solvable"});
  entries.push_back({"weak 2-coloring (Delta=3)",
                     re::weakColoringProblem(3, 2),
                     "Omega(log* n) [BHOS'19]: nontrivial"});
  entries.push_back({"4-edge-coloring (Delta=3)",
                     re::edgeColoringProblem(3, 4),
                     "nontrivial; > Delta colors keeps it below 2D-2"});

  bench::Table t({"problem", "labels", "0-rnd adv ports", "iteration verdict",
                  "literature expectation"});
  for (const auto& entry : entries) {
    re::IterateOptions options;
    options.maxSteps = 4;
    options.maxLabels = 14;
    const auto trace = re::iterateSpeedup(entry.problem, options);
    t.row(entry.name, entry.problem.alphabet.size(),
          re::zeroRoundSolvableAdversarialPorts(entry.problem),
          reasonName(trace.reason), entry.expectation);
  }
  t.print();

  std::cout << "\nThe family Pi_Delta(a,x) would land in the 'label blow-up' "
               "row under raw iteration;\nthe paper's Lemma 9 "
               "(edge-coloring simplification) is what turns it into a "
               "constant-label chain\n(see bench_label_growth and "
               "bench_lemma13_sequence).\n";

  bench::banner("Automatic lower bounds (speedup + hardness-preserving "
                "merging)");
  bench::Table ta({"problem", "certified rounds (PN, high girth)",
                   "labels per step", "stopped because"});
  for (const auto& entry : entries) {
    re::AutoLowerBoundOptions options;
    options.maxSteps = 4;
    options.maxLabels = 8;
    re::AutoLowerBound lb;
    try {
      lb = re::autoLowerBound(entry.problem, options);
    } catch (const re::Error&) {
      ta.row(entry.name, "-", "-", "engine guard");
      continue;
    }
    std::string labels;
    for (const int l : lb.labelsPerStep) {
      if (!labels.empty()) labels += " -> ";
      labels += std::to_string(l);
    }
    ta.row(entry.name, lb.rounds, labels, reasonName(lb.reason));
  }
  ta.print();
  std::cout << "\nthe MIS row is the paper's Section 1.2 observation, "
               "mechanized: the plain similarity approach\n(merge labels "
               "after each speedup) certifies 2 rounds and then no "
               "hardness-preserving merge exists;\nbreaking past it needs "
               "the Delta-edge-coloring trick of Lemma 9.\n";
  return 0;
}
