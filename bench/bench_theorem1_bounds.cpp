// T6 -- Theorem 1 / Corollary 2: the LOCAL-model lower-bound landscape.
// Prints min{log Delta, log_Delta n} (deterministic) and
// min{log Delta, log_Delta log n} (randomized) over a (log2 n, Delta) grid,
// locating the crossover Delta ~ 2^sqrt(log n), and evaluates the realized
// (certified) chain lengths in place of the asymptotic log Delta.
#include <cmath>

#include "bench_util.hpp"
#include "core/bounds.hpp"
#include "core/sequence.hpp"

int main() {
  using namespace relb;
  bench::banner("Theorem 1: deterministic bound min{log D, log_D n}");

  const std::vector<int> deltaExps{2, 4, 8, 12, 16, 20};
  {
    bench::Table t({"log2(n) \\ Delta", "2^2", "2^4", "2^8", "2^12", "2^16",
                    "2^20"});
    for (double log2n : {16.0, 64.0, 144.0, 256.0, 400.0}) {
      std::vector<std::string> row{std::to_string(static_cast<int>(log2n))};
      for (int e : deltaExps) {
        row.push_back(std::to_string(
            core::theorem1Deterministic(log2n, std::exp2(e))));
      }
      t.row(row[0], row[1], row[2], row[3], row[4], row[5], row[6]);
    }
    t.print();
  }

  bench::banner("Corollary 2: the crossover Delta* = 2^sqrt(log n)");
  {
    bench::Table t({"log2(n)", "log2(Delta*)", "det bound at Delta*",
                    "= sqrt(log2 n)", "rand: log2(Delta*)",
                    "rand bound at Delta*"});
    bool allPass = true;
    for (double log2n : {16.0, 64.0, 256.0, 1024.0, 65536.0}) {
      const double detLog = core::bestLog2DeltaDeterministic(log2n);
      const double detBound =
          core::theorem1Deterministic(log2n, std::exp2(detLog));
      const double randLog = core::bestLog2DeltaRandomized(log2n);
      const double randBound =
          core::theorem1Randomized(log2n, std::exp2(randLog));
      allPass &= std::abs(detBound - std::sqrt(log2n)) < 1e-6;
      t.row(log2n, detLog, detBound, std::sqrt(log2n), randLog, randBound);
    }
    t.print();
    bench::verdict(allPass,
                   "deterministic bound at the crossover equals sqrt(log n)");
  }

  bench::banner("Realized (certified) chains in place of log Delta");
  {
    bench::Table t({"Delta", "certified t", "det bound, log2 n = 256",
                    "rand bound, log2 n = 2^16"});
    for (int e : deltaExps) {
      const re::Count delta = re::Count{1} << e;
      const double t0 =
          static_cast<double>(core::pnLowerBoundRounds(delta, 1));
      t.row(delta, static_cast<long long>(t0),
            core::liftDeterministic(t0, 256.0, static_cast<double>(delta)),
            core::liftRandomized(t0, 65536.0, static_cast<double>(delta)));
    }
    t.print();
  }
  std::cout << "\npaper shape: bounds rise with Delta until the n-dependent "
               "branch takes over, peaking at sqrt(log n) /\n"
               "sqrt(log log n) -- visible in both the asymptotic and the "
               "realized columns.\n";
  return 0;
}
