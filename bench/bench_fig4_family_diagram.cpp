// F4 -- Figure 4: the edge diagram of Pi_Delta(a, x):
// the strength chain P -> A -> O -> X with M -> X on the side.
#include "bench_util.hpp"
#include "core/lemma6.hpp"
#include "re/diagram.hpp"

int main() {
  using namespace relb;
  bench::banner("Figure 4: edge diagram of Pi_Delta(a,x)");

  const auto pi = core::familyProblem(8, 5, 1);
  const auto rel = re::computeStrength(pi.edge, pi.alphabet.size());
  std::cout << "computed diagram (Delta=8, a=5, x=1):\n"
            << rel.renderDiagram(pi.alphabet) << "\n";
  std::cout << "DOT:\n" << rel.toDot(pi.alphabet, "fig4_family") << "\n";

  bench::Table t({"Delta", "a", "x", "matches Figure 4"});
  bool allPass = true;
  for (const auto& [delta, a, x] : std::vector<std::array<re::Count, 3>>{
           {3, 2, 0},
           {4, 3, 1},
           {8, 5, 1},
           {16, 9, 3},
           {1 << 12, 1 << 10, 17},
           {re::Count{1} << 30, re::Count{1} << 15, 1000}}) {
    const bool ok = core::verifyFigure4(delta, a, x);
    allPass &= ok;
    t.row(delta, a, x, ok);
  }
  t.print();
  bench::verdict(allPass,
                 "diagram is P -> A -> O -> X, M -> X at all parameters");
  return 0;
}
