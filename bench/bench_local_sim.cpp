// Massive-scale LOCAL simulator benchmarks (docs/simulator.md), linked into
// bench_perf_engine so run_bench.sh ships them in BENCH_speedup.json:
//
//   BM_CsrBuild        CsrGraph::fromParents on a pre-generated random-tree
//                      parent array -- the degree-count + prefix-sum + fill
//                      passes, one arena allocation, no generator cost.
//   BM_LubyMisRound    One full-frontier Luby round (both phases + survivor
//                      merge) at nodes x threads; the serial rows are gated
//                      by tools/check_bench.py, the threads=0 rows track the
//                      parallel trajectory.
//
// Instances are cached per node count: generation (the splitmix64 sweep) is
// paid once per process, not per iteration.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "local/families.hpp"
#include "local/kernels.hpp"

namespace {

using relb::local::CsrGraph;
using relb::local::Frontier;
using relb::local::MisFlag;
using relb::local::TreeInstance;
using relb::local::Vertex;

const TreeInstance& cachedTree(std::uint64_t nodes) {
  static std::map<std::uint64_t, TreeInstance> cache;
  auto it = cache.find(nodes);
  if (it == cache.end()) {
    it = cache
             .emplace(nodes, relb::local::makeTree(
                                 relb::local::Family::kRandomTree, nodes,
                                 /*maxDegree=*/0, /*seed=*/1))
             .first;
  }
  return it->second;
}

void BM_CsrBuild(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  const std::vector<Vertex>& parents = cachedTree(nodes).parents;
  for (auto _ : state) {
    CsrGraph g = CsrGraph::fromParents(parents);
    benchmark::DoNotOptimize(g.numHalfEdges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_CsrBuild)->Arg(1000000)->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

void BM_LubyMisRound(benchmark::State& state) {
  const auto nodes = static_cast<std::uint64_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const TreeInstance& inst = cachedTree(nodes);
  const Vertex n = inst.graph.numNodes();
  std::vector<MisFlag> misState(n);
  std::vector<std::uint8_t> inMark(n);
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(misState.begin(), misState.end(), MisFlag::kUndecided);
    std::fill(inMark.begin(), inMark.end(), std::uint8_t{0});
    Frontier frontier = relb::local::fullFrontier(n);
    state.ResumeTiming();
    Frontier next = relb::local::lubyMisRound(inst.graph, frontier, misState,
                                              inMark, /*seed=*/1, /*round=*/0,
                                              threads);
    benchmark::DoNotOptimize(next.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_LubyMisRound)
    ->Args({1000000, 1})
    ->Args({1000000, 0})
    ->Args({10000000, 1})
    ->Args({10000000, 0})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
