// F1 -- Figure 1: the edge diagram of the MIS problem.
// Paper: "O is stronger than P, and there is no relation between labels M
// and P, and between M and O."
#include "bench_util.hpp"
#include "re/diagram.hpp"
#include "re/problem.hpp"

int main() {
  using namespace relb;
  bench::banner("Figure 1: edge diagram of the MIS encoding");

  for (re::Count delta : {3, 4, 16, 1 << 20}) {
    const auto mis = re::misProblem(delta);
    const auto rel = re::computeStrength(mis.edge, mis.alphabet.size());
    std::cout << "Delta = " << delta << ":\n"
              << rel.renderDiagram(mis.alphabet);
    const auto m = mis.alphabet.at("M");
    const auto p = mis.alphabet.at("P");
    const auto o = mis.alphabet.at("O");
    const bool pass = rel.strictlyStronger(o, p) &&
                      !rel.atLeastAsStrong(m, p) &&
                      !rel.atLeastAsStrong(p, m) &&
                      !rel.atLeastAsStrong(m, o) &&
                      !rel.atLeastAsStrong(o, m) &&
                      rel.diagramEdges().size() == 1;
    bench::verdict(pass, "matches Figure 1 (single edge P -> O)");
    std::cout << "\n";
  }

  std::cout << "DOT output (Delta = 3):\n"
            << re::computeStrength(re::misProblem(3).edge, 3)
                   .toDot(re::misProblem(3).alphabet, "fig1_mis");
  return 0;
}
