// T9 -- empirical verification of the speedup theorem (Brandt [PODC'19],
// Theorem 3 in the paper) on Delta = 2: for random and catalog problems,
// T-round solvability on cycles (decided by exhaustive CSP over
// port-numbering algorithms) must coincide with (T-1)-round solvability of
// Rbar(R(Pi)).  This validates the foundation the paper's entire lower
// bound rests on, independently of the engine's own definitions.
#include <random>

#include "bench_util.hpp"
#include "re/cycle_verifier.hpp"
#include "re/encodings.hpp"
#include "re/re_step.hpp"
#include "re/tree_verifier.hpp"

namespace {

using namespace relb;

re::Problem randomCycleProblem(std::mt19937& rng, int nLabels) {
  re::Problem p;
  for (int i = 0; i < nLabels; ++i) {
    p.alphabet.add(std::string(1, static_cast<char>('a' + i)));
  }
  std::uniform_int_distribution<int> setDist(1, (1 << nLabels) - 1);
  std::bernoulli_distribution coin(0.45);
  re::Constraint node(2, {});
  const int cnt = std::uniform_int_distribution<int>(1, 3)(rng);
  for (int i = 0; i < cnt; ++i) {
    node.add(re::Configuration(
        {{re::LabelSet(static_cast<std::uint32_t>(setDist(rng))), 1},
         {re::LabelSet(static_cast<std::uint32_t>(setDist(rng))), 1}}));
  }
  p.node = std::move(node);
  re::Constraint edge(2, {});
  bool any = false;
  for (int a = 0; a < nLabels; ++a) {
    for (int b = a; b < nLabels; ++b) {
      if (coin(rng)) {
        edge.add(re::Configuration(
            {{re::LabelSet{static_cast<re::Label>(a)}, 1},
             {re::LabelSet{static_cast<re::Label>(b)}, 1}}));
        any = true;
      }
    }
  }
  if (!any) edge.add(re::Configuration({{re::LabelSet{0}, 2}}));
  p.edge = std::move(edge);
  p.validate();
  return p;
}

}  // namespace

int main() {
  bench::banner("Theorem 3 on cycles: engine speedup vs brute-force T-round "
                "solvability");

  bench::Table t({"problem", "T=0", "T=1", "T=2", "T1(Pi)==T0(speedup)",
                  "T2(Pi)==T1(speedup)"});
  bool allPass = true;
  const std::vector<std::pair<std::string, re::Problem>> catalog = {
      {"2-coloring", re::cColoringProblem(2, 2)},
      {"3-coloring", re::cColoringProblem(2, 3)},
      {"MIS", re::misProblem(2)},
      {"maximal matching", re::maximalMatchingProblem(2)},
      {"sinkless orientation", re::sinklessOrientationProblem(2)},
      {"edge-side output", re::Problem::parse("[ZO] [ZO]\n", "Z O\n")},
  };
  for (const auto& [name, p] : catalog) {
    const auto sped = re::speedupStep(p);
    const bool eq1 = re::cycleSolvable(p, 1) == re::cycleSolvable(sped, 0);
    const bool eq2 = re::cycleSolvable(p, 2) == re::cycleSolvable(sped, 1);
    allPass &= eq1 && eq2;
    t.row(name, re::cycleSolvable(p, 0), re::cycleSolvable(p, 1),
          re::cycleSolvable(p, 2), eq1, eq2);
  }
  t.print();
  bench::verdict(allPass, "Theorem 3 holds on the catalog");

  bench::Stopwatch sw;
  int checked = 0;
  int solvableAtOne = 0;
  int mismatches = 0;
  for (unsigned seed = 1; seed <= 150; ++seed) {
    std::mt19937 rng(seed);
    const auto p = randomCycleProblem(rng, seed % 2 ? 2 : 3);
    re::Problem sped;
    try {
      sped = re::speedupStep(p);
    } catch (const re::Error&) {
      continue;
    }
    const bool t1 = re::cycleSolvable(p, 1);
    if (t1) ++solvableAtOne;
    if (t1 != re::cycleSolvable(sped, 0)) ++mismatches;
    if (re::cycleSolvable(p, 2) != re::cycleSolvable(sped, 1)) ++mismatches;
    ++checked;
  }
  std::cout << "\nrandom sweep: " << checked << " problems ("
            << solvableAtOne << " solvable at T=1), " << mismatches
            << " mismatches in " << sw.ms() << " ms\n";
  bench::verdict(mismatches == 0,
                 "speedup operator exactly preserves solvability on random "
                 "problems");

  bench::banner("Theorem 3 on 3-regular trees (the paper's own regime)");
  const auto tri = [](const re::Problem& p, int radius) -> std::string {
    try {
      return re::treeSolvable3(p, radius, 60'000) ? "yes" : "no";
    } catch (const re::Error&) {
      return "undecided";
    }
  };
  bench::Table tt({"problem", "T=0", "T=1", "speedup T=0",
                   "Theorem 3 status"});
  const std::vector<std::pair<std::string, re::Problem>> treeCatalog = {
      {"MIS (Delta=3)", re::misProblem(3)},
      {"3-coloring", re::cColoringProblem(3, 3)},
      {"maximal matching", re::maximalMatchingProblem(3)},
      {"sinkless orientation", re::sinklessOrientationProblem(3)},
      {"edge-side output", re::Problem::parse("[ZO]^3\n", "Z O\n")},
  };
  bool treePass = true;
  for (const auto& [name, p] : treeCatalog) {
    const auto sped = re::speedupStep(p);
    const std::string t0 = tri(p, 0);
    const std::string t1 = tri(p, 1);
    const std::string s0 = tri(sped, 0);
    std::string status;
    if (t1 == "undecided" || s0 == "undecided") {
      status = "undecided (search budget)";
    } else if (t1 == s0) {
      status = "verified";
    } else {
      status = "VIOLATED";
      treePass = false;
    }
    tt.row(name, t0, t1, s0, status);
  }
  tt.print();
  bench::verdict(treePass,
                 "no violations at Delta = 3 (sinkless orientation's T=1 "
                 "refutation is exists-forall-hard and reported undecided)");
  return 0;
}
