// T3 -- Lemma 9: the Delta-edge-coloring 0-round conversion
// Pi+_Delta(a,x) -> Pi_Delta(floor((a-2x-1)/2), x+1), executed on real
// trees and verified by the generic LCL checker.  The synthetic input
// alternates C-nodes and A-nodes by depth, exercising exactly the AA-hazard
// that motivates the edge-coloring trick.
#include "bench_util.hpp"
#include "core/conversions.hpp"
#include "local/halfedge.hpp"

int main() {
  using namespace relb;
  bench::banner("Lemma 9: edge-coloring conversion on concrete trees");

  bench::Table t({"Delta", "a", "x", "n", "a' (target)", "input valid",
                  "output valid", "time (ms)"});
  bool allPass = true;
  for (const auto& [delta, a, x] : std::vector<std::array<re::Count, 3>>{
           {4, 3, 1},
           {4, 4, 1},
           {5, 5, 2},
           {6, 5, 1},
           {6, 6, 2},
           {8, 7, 3},
           {8, 8, 1},
           {10, 9, 2},
           {12, 11, 4},
           {3, 3, 1}}) {
    bench::Stopwatch sw;
    const int depth = delta <= 5 ? 5 : 4;
    const auto g =
        local::completeRegularTree(static_cast<int>(delta), depth);
    const auto plus = core::syntheticPlusLabelingAlternating(g, delta, a, x);
    const bool inputOk =
        local::checkLabeling(g, core::familyPlusProblem(delta, a, x), plus)
            .ok();
    const auto converted = core::lemma9Convert(g, plus, delta, a, x);
    const re::Count aNew = (a - 2 * x - 1) / 2;
    const bool outputOk =
        local::checkLabeling(g, core::familyProblem(delta, aNew, x + 1),
                             converted)
            .ok();
    allPass &= inputOk && outputOk;
    t.row(delta, a, x, g.numNodes(), aNew, inputOk, outputOk, sw.ms());
  }
  t.print();
  bench::verdict(allPass,
                 "all conversions valid (paper: Lemma 9 holds for "
                 "2x+1 <= a <= Delta)");
  return 0;
}
