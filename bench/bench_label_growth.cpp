// T7 -- Section 1.2 motivation: raw automatic round elimination blows up
// the label count roughly doubly exponentially per step, while the paper's
// family keeps 5 labels forever.  This bench iterates Rbar(R(.)) on MIS and
// prints the alphabet sizes next to the family chain.
#include "bench_util.hpp"
#include "core/sequence.hpp"
#include "re/re_step.hpp"

int main() {
  using namespace relb;
  bench::banner("Label growth: raw speedup on MIS vs the 5-label family");

  const re::Count delta = 3;
  std::cout << "raw Rbar(R(.)) iteration on MIS, Delta = " << delta << ":\n";
  bench::Table t({"step", "labels", "node configs", "edge configs",
                  "time (ms)"});
  re::Problem p = re::misProblem(delta);
  t.row(0, p.alphabet.size(), p.node.size(), p.edge.size(), 0.0);
  bool exploded = false;
  for (int step = 1; step <= 6 && !exploded; ++step) {
    bench::Stopwatch sw;
    try {
      p = re::speedupStep(p);
      t.row(step, p.alphabet.size(), p.node.size(), p.edge.size(), sw.ms());
      if (p.alphabet.size() > 18) exploded = true;
    } catch (const re::Error& e) {
      std::cout << "  step " << step
                << ": engine guard tripped (" << e.what() << ")\n";
      exploded = true;
    }
  }
  t.print();
  if (exploded) {
    std::cout << "\n(growth continues doubly exponentially; the engine stops "
                 "where exhaustive subset enumeration becomes infeasible -- "
                 "exactly the paper's point.)\n";
  }

  std::cout << "\nthe family chain at the same role (Delta = 2^16, k = 1): "
               "every problem has 5 labels, 3 node configurations, 5 edge "
               "configurations:\n";
  const core::Chain chain = core::exactChain(1 << 16, 1);
  bench::Table tf({"step", "labels", "a_i", "x_i"});
  for (std::size_t i = 0; i < chain.steps.size(); ++i) {
    tf.row(i, 5, chain.steps[i].a, chain.steps[i].x);
  }
  tf.print();
  bench::verdict(true,
                 "family stays at 5 labels for the whole Omega(log Delta) "
                 "chain (the [FOCS'20] authors believed this impossible)");
  return 0;
}
