// C2 -- the family workload bound table: for every built-in family
// definition (docs/families.md), instantiate at the parameter defaults,
// re-derive the lower bound automatically (autoLowerBound: speedup +
// hardness-preserving merging), and hold the derivation to the
// definition's published bound.  The emitted speedup-trace certificate
// must verify engine-free.  This is the same contract the CLI's --family
// mode and the CI families job enforce, printed as one table with
// per-family derivation times.
#include "bench_util.hpp"
#include "family/builtin.hpp"
#include "family/derive.hpp"
#include "io/verify.hpp"
#include "re/engine.hpp"

int main() {
  using namespace relb;
  bench::banner("Family workloads: derived vs published lower bounds");

  auto core = std::make_shared<re::EngineCore>();
  bench::Table t({"family", "labels", "derived", "published", "meets",
                  "cert steps", "verifies", "ms"});
  bool allPass = true;
  for (const auto& def : family::builtinFamilies()) {
    bench::Stopwatch sw;
    re::EngineSession session(core);
    const auto d = family::deriveFamilyBound(def, {}, session);
    const double ms = sw.ms();
    const auto report = io::verifyCertificate(d.certificate);
    const bool ok = d.meetsPublishedBound() && report.ok;
    allPass &= ok;
    t.row(def.name, d.problem.alphabet.size(),
          static_cast<long long>(d.bound.rounds),
          d.published ? std::to_string(*d.published) : "-",
          d.meetsPublishedBound(), d.certificate.steps.size(), report.ok, ms);
  }
  t.print();
  bench::verdict(allPass,
                 "every built-in re-derives its published bound and the "
                 "certificate verifies engine-free");
  return allPass ? 0 : 1;
}
