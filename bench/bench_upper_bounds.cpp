// T8 -- Section 1.1 upper bounds vs the new lower bound.
//
// Measures, on random trees:
//   * Luby MIS phases vs n (O(log n) randomized);
//   * the coloring-route MIS and k-outdegree dominating set round counts vs
//     Delta and vs k (the sweep stage carries the Delta/k shape);
//   * the certified PN-model lower bound t(Delta, k) alongside, showing the
//     Omega(log Delta) vs O(poly Delta) gap the paper leaves open.
#include <algorithm>
#include <cmath>
#include <random>

#include "algos/domset.hpp"
#include "algos/luby.hpp"
#include "bench_util.hpp"
#include "core/sequence.hpp"
#include "local/verify.hpp"

int main() {
  using namespace relb;

  bench::banner("Luby MIS phases vs n (random trees, max degree 8)");
  {
    bench::Table t({"n", "phases (avg of 5)", "log2(n)", "valid"});
    for (int n : {100, 400, 1600, 6400, 25600}) {
      double phases = 0;
      bool valid = true;
      for (unsigned seed = 0; seed < 5; ++seed) {
        std::mt19937 rng(seed * 977 + 13);
        const auto g = local::randomTree(n, 8, rng);
        const auto result = algos::lubyMis(g, rng);
        phases += result.phases;
        valid &= local::isMaximalIndependentSet(g, result.inSet);
      }
      t.row(n, phases / 5.0, std::log2(static_cast<double>(n)), valid);
    }
    t.print();
    std::cout << "shape: O(log n) phases with a large decay base -- each "
                 "phase retires ~85-90% of the\nresidual graph on "
                 "bounded-degree trees, so the logarithm grows by ~1 per "
                 "~7x nodes (paths below):\n\n";
    bench::Table tp({"n (path)", "phases (avg of 5)", "log2(n)", "valid"});
    for (int n : {64, 256, 1024, 4096, 16384, 65536}) {
      double phases = 0;
      bool valid = true;
      for (unsigned seed = 0; seed < 5; ++seed) {
        std::mt19937 rng(seed * 31 + 5);
        const auto g = local::pathGraph(n);
        const auto result = algos::lubyMis(g, rng);
        phases += result.phases;
        valid &= local::isMaximalIndependentSet(g, result.inSet);
      }
      tp.row(n, phases / 5.0, std::log2(static_cast<double>(n)), valid);
    }
    tp.print();
  }

  bench::banner("Deterministic MIS rounds vs Delta (n ~ 4000)");
  {
    bench::Table t({"Delta", "coloring rounds", "sweep rounds", "total",
                    "certified LB t(Delta,0)", "valid"});
    for (int delta : {4, 6, 8, 12, 16, 24}) {
      std::mt19937 rng(42);
      const auto g = local::randomTree(4000, delta, rng);
      const auto result = algos::misFromColoring(g);
      t.row(delta, result.roundsColoring, result.roundsSweep,
            result.totalRounds(),
            core::pnLowerBoundRounds(g.maxDegree(), 0),
            local::isMaximalIndependentSet(g, result.inSet));
    }
    t.print();
    std::cout << "shape: upper bound grows polynomially in Delta (the "
                 "simplified O(Delta^2 + log* n) route; the paper cites\n"
                 "O(Delta + log* n) [BEK'14]), lower bound grows as "
                 "log(Delta) -- the gap the paper's open problem asks "
                 "about.\n";
  }

  bench::banner("k-outdegree dominating set rounds vs k (Delta = 16, n ~ 4000)");
  {
    std::mt19937 rng(7);
    const auto g = local::randomTree(4000, 16, rng);
    bench::Table t({"k", "arbdefective rounds", "sweep rounds (#bins)",
                    "|S|", "certified LB t(Delta,k)", "valid"});
    for (int k : {0, 1, 2, 4, 8, 15}) {
      const auto result = algos::kOutdegreeDominatingSet(g, k);
      const bool valid = local::isKOutdegreeDominatingSet(
          g, result.inSet, result.orientation, k);
      t.row(k, result.roundsDefective, result.roundsSweep,
            std::count(result.inSet.begin(), result.inSet.end(), true),
            core::pnLowerBoundRounds(16, k), valid);
    }
    t.print();
    std::cout << "shape: the sweep stage shrinks as ceil((Delta+1)/(k+1)) "
                 "(the Delta/k dependence of the paper's cited\n"
                 "O(Delta/k + log* n) upper bound), while the lower bound "
                 "degrades only mildly in k <= Delta^epsilon.\n";
  }

  bench::banner("k-degree dominating set sweep rounds vs k (Delta = 24)");
  {
    std::mt19937 rng(9);
    const auto g = local::randomTree(4000, 24, rng);
    bench::Table t({"k", "defective classes = sweep rounds",
                    "(Delta/k)^2 reference", "valid"});
    for (int k : {1, 2, 3, 6, 12}) {
      const auto result = algos::kDegreeDominatingSet(g, k);
      const bool valid = local::isKDegreeDominatingSet(g, result.inSet, k);
      const double reference =
          std::pow(static_cast<double>(g.maxDegree()) / k, 2.0);
      t.row(k, result.roundsSweep, reference, valid);
    }
    t.print();
    std::cout << "shape: O((Delta/k)^2) classes (Kuhn'09 defective "
                 "coloring), matching the paper's Section 1.1 discussion.\n";
  }
  return 0;
}
