// T1 -- Lemma 6: computed-vs-claimed constraint systems of R(Pi_Delta(a,x)).
// The check is exact for every Delta (the edge side of R is degree-2 and the
// node side is the replacement method on condensed configurations).
#include "bench_util.hpp"
#include "core/lemma6.hpp"

int main() {
  using namespace relb;
  bench::banner("Lemma 6: R(Pi_Delta(a,x)) equals the claimed 8-label system");

  // Print the claimed problem once.
  const auto claimed = core::claimedRFamily(8, 5, 1);
  std::cout << "claimed form (Delta=8, a=5, x=1):\n" << claimed.render()
            << "\n";

  bench::Table t({"Delta", "a", "x", "verified", "time (ms)"});
  bool allPass = true;

  // Exhaustive small grid.
  int gridChecks = 0;
  bool gridPass = true;
  {
    bench::Stopwatch sw;
    for (re::Count delta = 2; delta <= 8; ++delta) {
      for (re::Count a = 2; a <= delta; ++a) {
        for (re::Count x = 0; x + 2 <= a; ++x) {
          gridPass &= core::verifyLemma6(delta, a, x).ok;
          ++gridChecks;
        }
      }
    }
    std::cout << "exhaustive grid Delta in [2,8]: " << gridChecks
              << " parameter points, all verified = "
              << (gridPass ? "yes" : "no") << " (" << sw.ms() << " ms)\n\n";
  }
  allPass &= gridPass;

  // Large-Delta spot checks (cost is Delta-independent).
  for (const auto& [delta, a, x] : std::vector<std::array<re::Count, 3>>{
           {1 << 10, 1 << 8, 3},
           {1 << 16, 1 << 12, 100},
           {1 << 20, 1 << 18, 37},
           {re::Count{1} << 30, re::Count{1} << 29, 12345},
           {re::Count{1} << 40, re::Count{1} << 20, 2},
           {re::Count{1} << 50, re::Count{1} << 49, 0}}) {
    bench::Stopwatch sw;
    const auto result = core::verifyLemma6(delta, a, x);
    allPass &= result.ok;
    t.row(delta, a, x, result.ok, sw.ms());
  }
  t.print();
  bench::verdict(allPass, "Lemma 6 machine-checked at every tested point");
  return 0;
}
