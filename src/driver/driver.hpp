// The run driver: everything `round_eliminator_cli` does, as a library.
//
// A RunRequest describes one complete invocation -- the mode (analyze +
// iterate a parsed problem, build + certify a family chain, or re-verify a
// stored certificate), the engine knobs, the store/resume wiring, and the
// observability outputs (trace file, run report).  run() executes it against
// an EngineSession and returns a RunResult carrying the rendered output, the
// diagnostics, and the process exit status; the CLI is a thin wrapper that
// parses argv with parseArgs(), calls run(), and prints the two streams.
//
// Embedders get the same contract the CLI has always had:
//   * exit codes 0 = success, 1 = step/certification/verification failure,
//     2 = usage or parse error;
//   * certificate bytes, report contents, and printed output identical to
//     the pre-library CLI for the same request;
//   * pass a shared EngineCore to reuse caches across requests (each run()
//     takes its own EngineSession over it); nullptr runs against a private
//     core, which is the one-shot CLI behavior.
//
// Concurrency: run() itself may be called from several threads over one
// shared core.  Requests that write files (trace, report, certificates,
// store) should target distinct paths; the trace/report sinks attach to the
// process-global tracer, so interleaved *traced* runs see each other's spans
// -- callers wanting attribution run one traced request at a time (the CLI
// always does).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "re/engine.hpp"

namespace relb::obs {
class SessionScope;
}  // namespace relb::obs

namespace relb::driver {

/// Process exit status of a run; the enum values ARE the exit codes.
enum class RunStatus {
  kOk = 0,
  kFailure = 1,  // step / certification / verification failure
  kUsage = 2,    // usage or parse error
};

struct RunRequest {
  enum class Mode {
    kProblem,            // analyze + iterate a problem given in text form
    kChain,              // build + certify the exact Lemma 13 family chain
    kFamily,             // instantiate + derive a family-definition bound
    kVerifyCertificate,  // load + re-verify a stored certificate
  };
  Mode mode = Mode::kProblem;

  /// kProblem: configuration lists, ';'-separated (the CLI's positional
  /// arguments).  An empty node or edge spec is a usage error, mirroring
  /// the CLI's missing-positional behavior.
  std::string nodeSpec;
  std::string edgeSpec;
  /// Speedup iteration budget (kProblem only).
  int maxSteps = 6;
  /// Engine fan-out width: 0 = one thread per core, 1 = serial.  Results
  /// are bit-identical for every value.
  int numThreads = 0;

  /// kChain: the family parameters of exactChain(delta, x0).
  long chainDelta = -1;
  long chainX0 = 1;

  /// kFamily: a built-in family name (--family) or a definition file in the
  /// family DSL (--family-def; wins when both are set), plus parameter
  /// overrides from repeated --param NAME=VALUE flags (unset parameters take
  /// the definition's defaults).  The run instantiates the family, re-runs
  /// the automatic lower-bound search, and exits 1 when the derived bound
  /// falls short of the definition's published bound.
  std::string familyName;
  std::string familyDefPath;
  std::vector<std::pair<std::string, long>> familyParams;

  /// kVerifyCertificate: the certificate file to re-verify.
  std::string verifyCertPath;

  /// Print per-pass tables and the engine cache counters.
  bool showStats = false;
  /// Attach the on-disk step store at this directory ('' = no store).
  std::string storeDir;
  /// Refuse to start unless `storeDir` already holds a store.
  bool resume = false;
  /// Write a certificate here ('' = none): the certified family chain in
  /// kChain mode, a speedup trace in kProblem mode.
  std::string saveCertPath;

  /// Observability outputs ('' = off).
  std::string tracePath;
  std::string traceFormat = "chrome";  // "chrome" or "text"
  std::string reportPath;

  /// Also capture the certificate bytes this run would write (the exact
  /// bytes saveCertPath would contain) into RunResult::certificateBytes.
  /// Works with or without saveCertPath; the service uses this to ship
  /// certificates in responses without touching the filesystem.
  bool captureCert = false;

  /// Observability scope the run's EngineSession attributes its counters
  /// and spans to (nullptr = the process-global registry/tracer).  Must
  /// outlive run(); the service passes one scope per request.
  obs::SessionScope* scope = nullptr;

  /// Cooperative SIGINT/SIGTERM drain: when set, run() checks the process
  /// ShutdownSignal (installing one for the duration of the run if none is
  /// active) at phase boundaries and between speedup steps; on the first
  /// signal it stops early with status kFailure, noting the interruption in
  /// the diagnostics -- but still flushes --trace/--report output and the
  /// partial printed output.  The CLI sets this; embedders that own their
  /// signal policy (the service daemon) leave it off.
  bool drainOnSignal = false;

  /// Copied verbatim into the run report (the CLI passes its argv join);
  /// `programName` prefixes usage text in diagnostics.
  std::string commandLine;
  std::string programName = "round_eliminator_cli";
};

struct RunResult {
  RunStatus status = RunStatus::kOk;
  /// The run's rendered output (the CLI prints this to stdout).
  std::string output;
  /// Errors and usage text (the CLI prints this to stderr).
  std::string diagnostics;
  /// With RunRequest::captureCert: the serialized certificate, byte-equal
  /// to the file a saveCertPath run writes.  Empty when no certificate was
  /// produced.
  std::string certificateBytes;
  /// The run's per-session cache traffic (hits/misses per cache plus
  /// attached-store loads and writes).  A warm re-run of an identical
  /// request over a shared core shows zero misses and zero store writes.
  re::CacheStats sessionStats;

  [[nodiscard]] int exitCode() const { return static_cast<int>(status); }
};

/// What parseArgs made of an argv.  Exactly one of these holds: `error` is
/// non-empty (print it + usage, exit 2), `helpRequested` is true (print
/// usage, exit 2), or `request` is runnable.
struct ParseOutcome {
  RunRequest request;
  std::string error;
  bool helpRequested = false;
};

/// The CLI usage text (also pinned by the golden CLI test).
[[nodiscard]] std::string usageText(std::string_view prog);

/// Parses an argv into a RunRequest with the CLI's exact flag grammar:
/// unknown flags are positional arguments, positionals are
/// ["<node>" "<edge>"] [maxSteps] [threads] (the specs implied in --chain
/// mode).  Only flag-syntax problems (missing value, bad --trace-format)
/// surface here; semantic problems (missing positionals, unparsable specs,
/// --resume without --store) are diagnosed by run() so that trace/report
/// files are still written, as the CLI always did.
[[nodiscard]] ParseOutcome parseArgs(int argc, const char* const* argv);

/// Executes a request.  With `core`, the run's EngineSession shares that
/// core's caches (cache hits are bit-identical to cold computes); with
/// nullptr it runs against a fresh private core.  Never throws for request
/// problems -- failures come back as status + diagnostics.
[[nodiscard]] RunResult run(const RunRequest& request,
                            std::shared_ptr<re::EngineCore> core = nullptr);

}  // namespace relb::driver
