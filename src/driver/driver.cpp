#include "driver/driver.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "core/sequence.hpp"
#include "family/builtin.hpp"
#include "family/derive.hpp"
#include "family/text.hpp"
#include "io/certificate.hpp"
#include "io/verify.hpp"
#include "obs/chrome_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "re/autobound.hpp"
#include "re/diagram.hpp"
#include "re/engine.hpp"
#include "re/problem.hpp"
#include "re/zero_round.hpp"
#include "store/step_store.hpp"
#include "util/shutdown.hpp"
#include "util/thread_pool.hpp"

namespace relb::driver {

namespace {

std::string splitLines(std::string spec) {
  for (char& ch : spec) {
    if (ch == ';') ch = '\n';
  }
  return spec;
}

// Owns the observability wiring for one run: the sinks selected by
// --trace/--report, the root phase spans' aggregation, and the finalization
// (flush trace, assemble + save the run report) every exit path goes
// through.  Sinks attach to the process-global tracer -- the engine session
// of a scope-less run emits there, and so do the free-function kernels, so
// the trace and report cover the whole run exactly as before the split.
struct ObsWiring {
  const RunRequest& request;
  int threads = 1;

  std::shared_ptr<obs::TextSink> text;
  std::shared_ptr<obs::ChromeTraceSink> chrome;
  std::shared_ptr<obs::SpanAggregator> aggregator;
  std::chrono::steady_clock::time_point start;

  // Filled in by the run paths; copied into the report verbatim.
  long chainDelta = -1;
  long chainX0 = 1;
  std::vector<obs::RunReport::ChainStep> chainSteps;
  std::vector<std::string> opsWalked;

  explicit ObsWiring(const RunRequest& req) : request(req) {}

  void attach() {
    start = std::chrono::steady_clock::now();
    auto& tracer = obs::Tracer::global();
    if (!request.tracePath.empty()) {
      if (request.traceFormat == "chrome") {
        chrome = std::make_shared<obs::ChromeTraceSink>(request.tracePath);
        tracer.addSink(chrome);
      } else {
        text = std::make_shared<obs::TextSink>();
        tracer.addSink(text);
      }
    }
    if (!request.reportPath.empty()) {
      aggregator = std::make_shared<obs::SpanAggregator>();
      tracer.addSink(aggregator);
    }
  }

  // Finalizes observability and passes the exit code through, so call sites
  // read `return finish(code)`.
  int finish(int code, std::ostream& out, std::ostream& err) {
    auto& tracer = obs::Tracer::global();
    const std::int64_t totalMicros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    try {
      tracer.flush();  // the chrome sink writes its file here
      if (text != nullptr) {
        std::ofstream file(request.tracePath, std::ios::binary);
        file << text->render();
        if (!file) {
          throw re::Error("cannot write trace to '" + request.tracePath +
                          "'");
        }
      }
      if (!request.tracePath.empty()) {
        out << "trace (" << request.traceFormat << ") written to "
            << request.tracePath << "\n";
      }
      if (aggregator != nullptr) {
        obs::RunReport report =
            obs::buildRunReport(*aggregator, obs::Registry::global());
        // Phases are the driver's own root spans; they run back-to-back on
        // the calling thread, so their wall times tile the run.  Depth-0
        // spans on pool workers (e.g. chain.certify.step) do not, and stay
        // in the all-spans table only.
        std::erase_if(report.phases, [](const obs::RunReport::Row& row) {
          return row.name.rfind("phase.", 0) != 0;
        });
        report.command = request.commandLine;
        report.totalWallMicros = totalMicros;
        report.threads = threads;
        report.chainDelta = chainDelta;
        report.chainX0 = chainX0;
        report.chainSteps = chainSteps;
        report.opsWalked = opsWalked;
        obs::saveRunReport(request.reportPath, report);
        out << "run report written to " << request.reportPath << "\n";
      }
    } catch (const re::Error& e) {
      err << "observability error: " << e.what() << "\n";
      if (code == 0) code = 1;
    }
    tracer.clearSinks();
    return code;
  }
};

RunStatus toStatus(int code) {
  switch (code) {
    case 0:
      return RunStatus::kOk;
    case 2:
      return RunStatus::kUsage;
    default:
      return RunStatus::kFailure;
  }
}

}  // namespace

std::string usageText(std::string_view prog) {
  std::string p(prog);
  return "usage: " + p +
         " [flags] \"<node configs>\" \"<edge configs>\" [maxSteps] "
         "[threads]\n"
         "       " +
         p +
         " [flags] --chain DELTA [--x0 K]\n"
         "       " +
         p +
         " [flags] --family NAME | --family-def FILE [maxSteps] [threads]\n"
         "       " +
         p +
         " --verify-cert FILE\n"
         "configurations separated by ';', e.g. \"M^3; P O^2\"\n"
         "threads: 0 = hardware concurrency (default), 1 = serial\n"
         "flags: --stats --store DIR --resume --save-cert FILE\n"
         "       --verify-cert FILE --chain DELTA --x0 K\n"
         "       --family NAME --family-def FILE --param NAME=VALUE\n"
         "       --trace FILE --trace-format {chrome,text} --report FILE\n";
}

ParseOutcome parseArgs(int argc, const char* const* argv) {
  ParseOutcome outcome;
  RunRequest& req = outcome.request;
  if (argc > 0) req.programName = argv[0];
  {
    std::string command;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) command += ' ';
      command += argv[i];
    }
    req.commandLine = std::move(command);
  }

  std::vector<std::string> positional;
  const auto flagValue = [&](int& i, const std::string& flag,
                             std::string& dest) {
    if (i + 1 >= argc) {
      outcome.error = flag + " requires a value";
      return false;
    }
    dest = argv[++i];
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--stats") {
      req.showStats = true;
    } else if (arg == "--resume") {
      req.resume = true;
    } else if (arg == "--store") {
      if (!flagValue(i, arg, req.storeDir)) return outcome;
    } else if (arg == "--save-cert") {
      if (!flagValue(i, arg, req.saveCertPath)) return outcome;
    } else if (arg == "--verify-cert") {
      if (!flagValue(i, arg, req.verifyCertPath)) return outcome;
    } else if (arg == "--chain") {
      if (!flagValue(i, arg, value)) return outcome;
      req.chainDelta = std::atol(value.c_str());
    } else if (arg == "--x0") {
      if (!flagValue(i, arg, value)) return outcome;
      req.chainX0 = std::atol(value.c_str());
    } else if (arg == "--family") {
      if (!flagValue(i, arg, req.familyName)) return outcome;
    } else if (arg == "--family-def") {
      if (!flagValue(i, arg, req.familyDefPath)) return outcome;
    } else if (arg == "--param") {
      if (!flagValue(i, arg, value)) return outcome;
      const std::size_t eq = value.find('=');
      if (eq == 0 || eq == std::string::npos || eq + 1 == value.size()) {
        outcome.error = "--param expects NAME=VALUE, got '" + value + "'";
        return outcome;
      }
      req.familyParams.emplace_back(value.substr(0, eq),
                                    std::atol(value.c_str() + eq + 1));
    } else if (arg == "--trace") {
      if (!flagValue(i, arg, req.tracePath)) return outcome;
    } else if (arg == "--trace-format") {
      if (!flagValue(i, arg, req.traceFormat)) return outcome;
      if (req.traceFormat != "chrome" && req.traceFormat != "text") {
        outcome.error = "--trace-format must be 'chrome' or 'text'";
        return outcome;
      }
    } else if (arg == "--report") {
      if (!flagValue(i, arg, req.reportPath)) return outcome;
    } else if (arg == "--help" || arg == "-h") {
      outcome.helpRequested = true;
      return outcome;
    } else {
      positional.push_back(arg);
    }
  }

  if (!req.verifyCertPath.empty()) {
    req.mode = RunRequest::Mode::kVerifyCertificate;
  } else if (req.chainDelta >= 0) {
    req.mode = RunRequest::Mode::kChain;
  } else if (!req.familyName.empty() || !req.familyDefPath.empty()) {
    req.mode = RunRequest::Mode::kFamily;
  } else {
    req.mode = RunRequest::Mode::kProblem;
  }

  // In --chain and --family modes the problem text is implied, so
  // [maxSteps] [threads] shift to the front of the positional list.
  const std::size_t stepsIdx = (req.mode == RunRequest::Mode::kChain ||
                                req.mode == RunRequest::Mode::kFamily)
                                   ? 0
                                   : 2;
  if (positional.size() > 0 && stepsIdx >= 1) req.nodeSpec = positional[0];
  if (positional.size() > 1 && stepsIdx >= 2) req.edgeSpec = positional[1];
  if (positional.size() > stepsIdx) {
    req.maxSteps = std::atoi(positional[stepsIdx].c_str());
  }
  if (positional.size() > stepsIdx + 1) {
    req.numThreads = std::atoi(positional[stepsIdx + 1].c_str());
  }
  return outcome;
}

RunResult run(const RunRequest& request, std::shared_ptr<re::EngineCore> core) {
  RunResult result;
  std::ostringstream out;
  std::ostringstream err;

  // Cooperative drain: reuse an externally installed ShutdownSignal (the
  // daemon's, a test's) or install one for the duration of this run.  The
  // checkpoints below stop the run between phases/steps, so the finish()
  // path still flushes trace/report output on ^C.
  std::optional<util::ShutdownSignal> ownGuard;
  if (request.drainOnSignal && util::ShutdownSignal::active() == nullptr) {
    ownGuard.emplace();
  }
  const auto interrupted = [&] {
    return request.drainOnSignal && util::ShutdownSignal::drainRequested();
  };

  re::EngineSession* sessionStatsFrom = nullptr;
  ObsWiring session(request);
  session.attach();
  const auto finish = [&](int code) {
    if (sessionStatsFrom != nullptr) {
      result.sessionStats = sessionStatsFrom->stats();
    }
    result.status = toStatus(session.finish(code, out, err));
    result.output = out.str();
    result.diagnostics = err.str();
    return result;
  };
  const auto finishInterrupted = [&] {
    err << "interrupted: shutdown requested; partial output flushed\n";
    return finish(1);
  };

  // Certificate verification stands alone: load, re-verify, report.
  //
  // Every phase span below closes before finish() runs (finish snapshots
  // the aggregator, so an open span would be invisible to the report).
  if (request.mode == RunRequest::Mode::kVerifyCertificate) {
    int code = 0;
    try {
      const obs::ScopedSpan phase("phase.verify");
      const io::Certificate cert =
          io::loadCertificate(request.verifyCertPath);
      const io::VerifyReport report = io::verifyCertificate(cert);
      out << report.describe() << "\n";
      code = report.ok ? 0 : 1;
    } catch (const re::Error& e) {
      err << "verify error: " << e.what() << "\n";
      code = 1;
    }
    return finish(code);
  }

  if (request.resume && request.storeDir.empty()) {
    err << "--resume requires --store DIR\n";
    err << usageText(request.programName);
    return finish(2);
  }
  std::shared_ptr<store::DiskStepStore> stepStore;
  if (!request.storeDir.empty()) {
    if (request.resume &&
        !std::filesystem::exists(std::filesystem::path(request.storeDir) /
                                 "FORMAT")) {
      err << "--resume: no step store at '" << request.storeDir << "'\n";
      return finish(2);
    }
    try {
      stepStore = std::make_shared<store::DiskStepStore>(request.storeDir);
    } catch (const re::Error& e) {
      err << "store error: " << e.what() << "\n";
      return finish(1);
    }
  }

  const int maxSteps = request.maxSteps;
  const int numThreads = request.numThreads;
  session.threads = util::resolveThreadCount(numThreads);

  re::PassOptions passOptions;
  passOptions.numThreads = numThreads;
  if (core == nullptr) core = std::make_shared<re::EngineCore>();
  re::EngineSession ctx(core, passOptions, request.scope);
  if (stepStore != nullptr) ctx.attachStore(stepStore);
  sessionStatsFrom = &ctx;

  // Chain mode: build, certify, and optionally persist the family chain.
  if (request.mode == RunRequest::Mode::kChain) {
    int code = 0;
    try {
      core::Chain chain;
      {
        const obs::ScopedSpan phase("phase.chain.build");
        chain = core::exactChain(request.chainDelta, request.chainX0);
      }
      out << "exact chain for Pi_" << request.chainDelta << "(a, x), x0 = "
          << request.chainX0 << ":\n";
      for (std::size_t i = 0; i < chain.steps.size(); ++i) {
        out << "  step " << i << ": a = " << chain.steps[i].a
            << ", x = " << chain.steps[i].x << "\n";
      }
      session.chainDelta = request.chainDelta;
      session.chainX0 = request.chainX0;
      for (const core::ChainStep& step : chain.steps) {
        session.chainSteps.push_back({step.a, step.x});
      }
      if (interrupted()) return finishInterrupted();
      io::Certificate cert;
      {
        const obs::ScopedSpan phase("phase.chain.certify");
        cert = core::buildChainCertificate(chain, &ctx, numThreads);
      }
      out << "chain certified: >= " << cert.claimedRounds()
          << " rounds (deterministic PN model)\n";
      if (!request.saveCertPath.empty()) {
        const obs::ScopedSpan phase("phase.cert.save");
        io::saveCertificate(request.saveCertPath, cert);
        out << "certificate written to " << request.saveCertPath << "\n";
      }
      if (request.captureCert) {
        result.certificateBytes = io::certificateToJson(cert).dumpPretty();
      }
      if (request.showStats) {
        out << "\nengine cache statistics:\n" << ctx.stats().describe();
        if (stepStore != nullptr) out << stepStore->stats().describe();
      }
    } catch (const re::Error& e) {
      err << "chain error: " << e.what() << "\n";
      code = 1;
    }
    return finish(code);
  }

  // Family mode: load or look up the definition, instantiate it, re-derive
  // its lower bound, and gate on the published bound.
  if (request.mode == RunRequest::Mode::kFamily) {
    int code = 0;
    try {
      family::FamilyDef def;
      {
        const obs::ScopedSpan phase("phase.family.load");
        if (!request.familyDefPath.empty()) {
          def = family::loadFamilyFile(request.familyDefPath);
        } else if (auto builtin = family::findBuiltin(request.familyName)) {
          def = std::move(*builtin);
        } else {
          std::string known;
          for (const family::FamilyDef& b : family::builtinFamilies()) {
            known += known.empty() ? b.name : ", " + b.name;
          }
          throw re::Error("unknown built-in family '" + request.familyName +
                          "' (known: " + known + ")");
        }
      }
      family::Env overrides;
      for (const auto& [name, value] : request.familyParams) {
        overrides[name] = value;
      }
      family::DeriveOptions options;
      options.maxSteps = maxSteps;
      std::optional<family::FamilyDerivation> derived;
      {
        const obs::ScopedSpan phase("phase.family.derive");
        derived.emplace(family::deriveFamilyBound(def, overrides, ctx,
                                                  options));
      }
      const family::FamilyDerivation& d = *derived;
      out << "family " << def.name;
      if (!def.title.empty()) out << ": " << def.title;
      out << "\n";
      if (!def.model.empty()) out << "model: " << def.model << "\n";
      if (!def.cite.empty()) out << "source: " << def.cite << "\n";
      out << "parameters:";
      for (const auto& [name, value] : d.params) {
        out << " " << name << "=" << value;
      }
      out << "\n\ninstantiated problem (Delta = " << d.problem.delta()
          << ", " << d.problem.alphabet.size() << " labels):\n"
          << d.problem.render() << "\n";
      out << "automatic lower bound: >= " << d.bound.rounds
          << " rounds (deterministic PN, high girth)\n";
      if (d.published.has_value()) {
        out << "published bound at these parameters: >= " << *d.published
            << " rounds\n";
        if (!d.meetsPublishedBound()) {
          err << "family error: derived bound " << d.bound.rounds
              << " falls short of the published bound " << *d.published
              << "\n";
          code = 1;
        }
      }
      if (!request.saveCertPath.empty()) {
        const obs::ScopedSpan phase("phase.cert.save");
        io::saveCertificate(request.saveCertPath, d.certificate);
        out << "speedup-trace certificate (" << d.certificate.steps.size()
            << " steps) written to " << request.saveCertPath << "\n";
      }
      if (request.captureCert) {
        result.certificateBytes =
            io::certificateToJson(d.certificate).dumpPretty();
      }
      if (request.showStats) {
        out << "\nengine cache statistics:\n" << ctx.stats().describe();
        if (stepStore != nullptr) out << stepStore->stats().describe();
      }
    } catch (const re::Error& e) {
      err << "family error: " << e.what() << "\n";
      code = 1;
    }
    return finish(code);
  }

  if (request.nodeSpec.empty() || request.edgeSpec.empty()) {
    err << usageText(request.programName);
    return finish(2);
  }
  re::Problem p;
  try {
    p = re::Problem::parse(splitLines(request.nodeSpec),
                           splitLines(request.edgeSpec));
  } catch (const re::Error& e) {
    err << "parse error: " << e.what() << "\n";
    return finish(2);
  }

  out << "problem (Delta = " << p.delta() << ", " << p.alphabet.size()
      << " labels):\n"
      << p.render() << "\n";

  try {
    if (interrupted()) return finishInterrupted();
    {
      const obs::ScopedSpan phase("phase.analyze");
      const auto edgeRel = re::computeStrength(p.edge, p.alphabet.size());
      out << "edge diagram:\n" << edgeRel.renderDiagram(p.alphabet);
      try {
        const auto nodeRel =
            re::computeStrengthScalable(p.node, p.alphabet.size());
        out << "node diagram:\n" << nodeRel.renderDiagram(p.alphabet);
      } catch (const re::Error&) {
        out << "node diagram: (undecided at this size)\n";
      }

      out << "\n0-round solvable: symmetric ports "
          << (re::zeroRoundSolvableSymmetricPorts(p) ? "yes" : "no")
          << ", adversarial ports "
          << (re::zeroRoundSolvableAdversarialPorts(p) ? "yes" : "no")
          << ", with edge-port inputs "
          << (re::zeroRoundSolvableWithEdgeInputs(p) ? "yes" : "no")
          << "\n\n";
    }

    if (request.showStats) {
      // Drive the speedup through the pass pipeline, one stats table per
      // step.
      const obs::ScopedSpan phase("phase.pipeline");
      re::Problem current = p;
      for (int step = 1; step <= maxSteps; ++step) {
        if (interrupted()) return finishInterrupted();
        try {
          auto stepResult = ctx.pipeline().run(current, ctx);
          out << "speedup step " << step << ":\n"
              << stepResult.renderStatsTable() << "\n";
          if (stepResult.stopped) break;
          current = std::move(stepResult.problem);
        } catch (const re::Error& e) {
          out << "speedup step " << step << ": engine guard (" << e.what()
              << ")\n\n";
          break;
        }
        if (current.alphabet.size() > 16) break;
      }
    }

    if (interrupted()) return finishInterrupted();
    {
      const obs::ScopedSpan phase("phase.iterate");
      re::IterateOptions options;
      options.maxSteps = maxSteps;
      options.maxLabels = 16;
      options.stepOptions.numThreads = numThreads;
      options.context = &ctx;
      const auto trace = re::iterateSpeedup(p, options);
      out << trace.describe() << "\n\n";
      if (trace.last.alphabet.size() <= 16) {
        out << "last problem reached:\n" << trace.last.render();
      }
      session.opsWalked.push_back("input");
      for (std::size_t i = 1; i < trace.steps.size(); ++i) {
        session.opsWalked.push_back("speedup");
      }
    }

    if (!request.saveCertPath.empty() || request.captureCert) {
      const obs::ScopedSpan phase("phase.cert.save");
      const io::Certificate cert =
          family::buildTraceCertificate(p, ctx, maxSteps, 16);
      if (!request.saveCertPath.empty()) {
        io::saveCertificate(request.saveCertPath, cert);
        out << "\nspeedup-trace certificate (" << cert.steps.size()
            << " steps) written to " << request.saveCertPath << "\n";
      }
      if (request.captureCert) {
        result.certificateBytes = io::certificateToJson(cert).dumpPretty();
      }
    }

    if (interrupted()) return finishInterrupted();
    // Automatic lower bound: speedup + hardness-preserving label merging.
    try {
      const obs::ScopedSpan phase("phase.autobound");
      re::AutoLowerBoundOptions lbOptions;
      lbOptions.maxSteps = maxSteps;
      lbOptions.maxLabels = 10;
      lbOptions.stepOptions.numThreads = numThreads;
      lbOptions.context = &ctx;
      const auto lb = re::autoLowerBound(p, lbOptions);
      out << "\nautomatic lower bound: >= " << lb.rounds
          << " rounds (deterministic PN, high girth)\n";
    } catch (const re::Error& e) {
      out << "\nautomatic lower bound: engine guard (" << e.what() << ")\n";
    }
  } catch (const re::Error& e) {
    err << "step error: " << e.what() << "\n";
    return finish(1);
  }

  if (request.showStats) {
    out << "\nengine cache statistics:\n" << ctx.stats().describe();
    if (stepStore != nullptr) out << stepStore->stats().describe();
  }
  return finish(0);
}

}  // namespace relb::driver
