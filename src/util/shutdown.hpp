// Cooperative SIGINT/SIGTERM drain support, shared by the CLI driver and
// the relb-served daemon.
//
// A ShutdownSignal installs handlers for SIGINT and SIGTERM that do exactly
// two async-signal-safe things: set a flag and write one byte to a self-pipe.
// Long-running code polls `requested()` at natural checkpoints (between
// speedup steps, between requests) and drains instead of dying, so partial
// --report/--trace output still gets flushed and in-flight service requests
// still get answered; blocking loops add `pollFd()` to their poll set so a
// signal wakes them immediately.
//
// Exactly one instance may be active per process (the second constructor
// throws re::Error); the destructor restores the previous handlers.  Code
// that merely wants to *observe* an externally installed guard -- the driver
// checking for interruption inside run() -- uses the static `active()`
// accessor and treats "no guard installed" as "never requested".
#pragma once

namespace relb::util {

class ShutdownSignal {
 public:
  /// Installs the SIGINT/SIGTERM handlers.  Throws re::Error if another
  /// instance is already active in this process.
  ShutdownSignal();
  /// Restores the handlers that were active before construction.
  ~ShutdownSignal();

  ShutdownSignal(const ShutdownSignal&) = delete;
  ShutdownSignal& operator=(const ShutdownSignal&) = delete;

  /// True once a signal arrived (or trigger() ran).  Monotonic.
  [[nodiscard]] bool requested() const;

  /// Read end of the self-pipe: becomes readable on the first request and
  /// stays readable, so it can sit in any poll set.  Never read from it --
  /// poll for readability only.
  [[nodiscard]] int pollFd() const;

  /// Requests shutdown programmatically (tests, embedders).  Idempotent and
  /// safe to call from any thread.
  void trigger();

  /// The active instance, or nullptr when none is installed.
  [[nodiscard]] static ShutdownSignal* active();

  /// Convenience for checkpoints: true iff a guard is installed AND a
  /// shutdown was requested.  No guard means "run to completion".
  [[nodiscard]] static bool drainRequested();

 private:
  int pipeFds_[2] = {-1, -1};
};

}  // namespace relb::util
