// Monotonic arena allocation for the engine's per-step scratch structures.
//
// The R̄ sweep allocates and frees the same transient buffers (DFS level
// sets, slot stacks, completability memos) once per enumeration branch; on
// the malloc heap that traffic dominates small-step wall time.  An Arena
// turns every allocation into a bump of a chunk cursor and every free into
// nothing: memory is reclaimed wholesale by reset() between steps (or by
// rewinding to a Mark for LIFO-scoped buffers such as DFS levels).
//
// Rules:
//   * Only trivially-destructible payloads: the arena never runs
//     destructors.  allocate<T>() enforces this statically.
//   * Not thread-safe.  Parallel consumers keep one arena per lane
//     (re_step.cpp uses a thread_local pair of arenas; see stepArenas()).
//   * rewind(mark) only reclaims allocations made after mark() in LIFO
//     order.  Structures with non-LIFO lifetime (growing tables, result
//     accumulators) belong in a separate arena that is only ever reset().
//   * Chunks persist across reset(): a warmed arena services a whole chain
//     of steps without touching malloc again.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace relb::util {

class Arena {
 public:
  explicit Arena(std::size_t firstChunkBytes = 1 << 16)
      : firstChunkBytes_(firstChunkBytes < 64 ? 64 : firstChunkBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Position of the bump cursor; pass to rewind() to reclaim everything
  /// allocated after this point (LIFO discipline only).
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Mark mark() const { return {current_, used_}; }

  void rewind(Mark m) {
    assert(m.chunk < chunks_.size() || (m.chunk == 0 && chunks_.empty()));
    current_ = m.chunk;
    used_ = m.used;
  }

  /// Reclaims every allocation but keeps the chunks for reuse.
  void reset() {
    current_ = 0;
    used_ = 0;
  }

  /// Uninitialized storage for `n` objects of T.  T must be trivially
  /// destructible (the arena never destroys) and trivially copyable keeps
  /// rewinds safe for every consumer in this repo.
  template <typename T>
  [[nodiscard]] T* allocate(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocateBytes(n * sizeof(T), alignof(T)));
  }

  [[nodiscard]] void* allocateBytes(std::size_t bytes, std::size_t align) {
    assert(align > 0 && (align & (align - 1)) == 0);
    if (chunks_.empty()) addChunk(bytes);
    for (;;) {
      Chunk& c = chunks_[current_];
      const std::size_t base =
          reinterpret_cast<std::uintptr_t>(c.data.get()) + used_;
      const std::size_t padding = (align - (base & (align - 1))) & (align - 1);
      if (used_ + padding + bytes <= c.size) {
        void* out = c.data.get() + used_ + padding;
        used_ += padding + bytes;
        return out;
      }
      if (current_ + 1 < chunks_.size() &&
          chunks_[current_ + 1].size >= bytes + align) {
        ++current_;
        used_ = 0;
        continue;
      }
      addChunk(bytes + align);
      // addChunk positioned current_ at the fresh chunk.
    }
  }

  /// Total bytes owned (all chunks, used or not); a capacity high-water mark
  /// for tests and stats.
  [[nodiscard]] std::size_t capacityBytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void addChunk(std::size_t atLeast) {
    std::size_t size = chunks_.empty() ? firstChunkBytes_
                                       : chunks_.back().size * 2;
    if (size < atLeast) size = atLeast;
    chunks_.push_back({std::make_unique<std::byte[]>(size), size});
    current_ = chunks_.size() - 1;
    used_ = 0;
  }

  std::size_t firstChunkBytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::size_t used_ = 0;
};

/// A growable array of trivially-copyable T backed by an Arena.  Growth
/// copies into a fresh arena block and abandons the old one (reclaimed at
/// the owning arena's reset), so use it in arenas with non-LIFO lifetime,
/// not between mark/rewind pairs.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit ArenaVector(Arena& arena, std::size_t initialCapacity = 0)
      : arena_(&arena) {
    if (initialCapacity > 0) reserve(initialCapacity);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

  void clear() { size_ = 0; }

  void reserve(std::size_t capacity) {
    if (capacity <= capacity_) return;
    T* fresh = arena_->allocate<T>(capacity);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = capacity;
  }

  void push_back(T value) {
    if (size_ == capacity_) reserve(capacity_ == 0 ? 16 : capacity_ * 2);
    data_[size_++] = value;
  }

  /// Appends `n` values from `src` (may be nullptr when n == 0).
  void append(const T* src, std::size_t n) {
    if (n == 0) return;
    if (size_ + n > capacity_) {
      std::size_t target = capacity_ == 0 ? 16 : capacity_ * 2;
      while (target < size_ + n) target *= 2;
      reserve(target);
    }
    std::memcpy(data_ + size_, src, n * sizeof(T));
    size_ += n;
  }

 private:
  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace relb::util
