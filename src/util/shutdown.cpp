#include "util/shutdown.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>

#include "re/types.hpp"

namespace relb::util {

namespace {

// The handler reaches the active instance through these globals; both are
// written only while installing/removing an instance, which is serialized by
// the one-instance rule.
std::atomic<bool> gRequested{false};
std::atomic<int> gPipeWriteFd{-1};
std::atomic<ShutdownSignal*> gActive{nullptr};

struct sigaction gPreviousInt;
struct sigaction gPreviousTerm;

extern "C" void relbShutdownHandler(int /*signo*/) {
  // Async-signal-safe: one atomic store, one write.  The pipe is
  // non-blocking, so a flood of signals cannot wedge the handler once the
  // buffer is full (one readable byte is all pollers need).
  gRequested.store(true, std::memory_order_release);
  const int fd = gPipeWriteFd.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

ShutdownSignal::ShutdownSignal() {
  ShutdownSignal* expected = nullptr;
  if (!gActive.compare_exchange_strong(expected, this)) {
    throw re::Error("shutdown: a ShutdownSignal is already installed");
  }
  if (::pipe(pipeFds_) != 0) {
    gActive.store(nullptr);
    throw re::Error("shutdown: cannot create self-pipe");
  }
  for (const int fd : pipeFds_) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  gRequested.store(false);
  gPipeWriteFd.store(pipeFds_[1]);

  struct sigaction action = {};
  action.sa_handler = relbShutdownHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART: blocked reads wake up
  ::sigaction(SIGINT, &action, &gPreviousInt);
  ::sigaction(SIGTERM, &action, &gPreviousTerm);
}

ShutdownSignal::~ShutdownSignal() {
  ::sigaction(SIGINT, &gPreviousInt, nullptr);
  ::sigaction(SIGTERM, &gPreviousTerm, nullptr);
  gPipeWriteFd.store(-1);
  gActive.store(nullptr);
  ::close(pipeFds_[0]);
  ::close(pipeFds_[1]);
}

bool ShutdownSignal::requested() const {
  return gRequested.load(std::memory_order_acquire);
}

int ShutdownSignal::pollFd() const { return pipeFds_[0]; }

void ShutdownSignal::trigger() { relbShutdownHandler(0); }

ShutdownSignal* ShutdownSignal::active() {
  return gActive.load(std::memory_order_acquire);
}

bool ShutdownSignal::drainRequested() {
  const ShutdownSignal* signal = active();
  return signal != nullptr && signal->requested();
}

}  // namespace relb::util
