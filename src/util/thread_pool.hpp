// A small reusable thread pool with deterministic fan-out helpers.
//
// The engine's parallel sections all follow the same discipline: work items
// are indexed, every item's result is written into an index-addressed slot,
// and merges happen in index order on the calling thread.  Under that
// discipline the output is bit-identical for every thread count, so
// `numThreads` is purely a performance knob (this is asserted by the
// determinism tests in tests/re/re_step_parallel_test.cpp).
//
// Width semantics everywhere in the repo:
//   numThreads == 0  ->  one thread per hardware core,
//   numThreads == 1  ->  fully serial (the pool is never touched),
//   numThreads >= 2  ->  exactly that many lanes, even beyond the core count
//                        (useful for determinism tests on small machines).
//
// Nested parallel sections run inline on the worker that encounters them:
// a pool worker never blocks on work that only other pool workers could
// execute, so composing parallel_for calls cannot deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace relb::util {

/// The engine-wide default for every user-facing thread-count knob
/// (StepOptions::numThreads, maximalEdgePairs, certifyChain, ...): one
/// thread per hardware core.  All defaults route through this constant so
/// low-level helpers and the pass pipeline agree; pass kSerial to opt out.
inline constexpr int kDefaultNumThreads = 0;

/// Fully serial execution (the pool is never touched).
inline constexpr int kSerialNumThreads = 1;

/// Resolves a user-facing thread-count option: 0 means "hardware
/// concurrency"; anything else is clamped to at least 1.
[[nodiscard]] int resolveThreadCount(int requested);

/// True while the calling thread is executing a ThreadPool task.
[[nodiscard]] bool insideWorker();

/// A fixed-purpose pool: one fan-out batch at a time, dynamically scheduled,
/// with the calling thread participating as an extra lane.  Exceptions
/// thrown by items are captured and the first one is rethrown on the caller
/// after the batch drains.
class ThreadPool {
 public:
  /// Spawns `resolveThreadCount(numThreads) - 1` workers; the thread calling
  /// forEachIndex always participates, so total concurrency is the resolved
  /// count.  The pool.* counters/gauges are interned in `registry` (the
  /// global one by default; inject a session registry to attribute pool
  /// traffic to one client).  The registry must outlive the pool.
  explicit ThreadPool(int numThreads = 0,
                      obs::Registry& registry = obs::Registry::global());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers + the calling thread.
  [[nodiscard]] int concurrency();

  /// Grows the pool so that concurrency() >= threads.  Never shrinks.
  void ensureConcurrency(int threads);

  /// Runs `fn(i)` for every i in [0, n), distributing items dynamically over
  /// the workers and the calling thread; blocks until all items finished.
  /// Items are claimed in increasing order but may complete in any order --
  /// callers must write results into index-addressed slots.
  void forEachIndex(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, created on first use and grown on demand by the
  /// helpers below.
  static ThreadPool& global();

 private:
  void workerLoop();
  void runItems(const std::function<void(std::size_t)>* fn, std::size_t n);
  void spawnWorkersLocked(int count);

  // pool.* instrumentation, interned once from the injected registry.
  obs::Counter& batchesCounter_;
  obs::Counter& itemsCounter_;
  obs::Gauge& concurrencyGauge_;
  obs::Gauge& activeGauge_;
  obs::Gauge& maxBatchGauge_;

  std::vector<std::thread> workers_;

  std::mutex batchMutex_;  // serializes concurrent forEachIndex callers

  std::mutex mutex_;
  std::condition_variable hasWork_;
  std::condition_variable batchDone_;
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool stop_ = false;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t jobSize_ = 0;
  std::atomic<std::size_t> nextIndex_{0};
  std::exception_ptr firstError_;
};

/// Runs `fn(i)` for i in [0, n) on up to `numThreads` lanes (dynamic
/// scheduling, deterministic as long as fn(i) only writes slot i).
/// numThreads <= 1, n <= 1, or a nested call runs inline.
template <typename Fn>
void parallel_for(int numThreads, std::size_t n, Fn&& fn) {
  const std::size_t width =
      std::min(static_cast<std::size_t>(resolveThreadCount(numThreads)), n);
  if (width <= 1 || insideWorker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  pool.ensureConcurrency(static_cast<int>(width));
  std::atomic<std::size_t> next{0};
  const std::function<void(std::size_t)> lane = [&](std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        next.store(n, std::memory_order_relaxed);  // stop claiming items
        throw;
      }
    }
  };
  pool.forEachIndex(width, lane);
}

/// Splits [0, n) into up to `numThreads` contiguous chunks, maps every chunk
/// to a partial result with `mapChunk(begin, end) -> T`, and folds the
/// partial results **in chunk order** with `combine(acc, part) -> T`.  The
/// chunk boundaries depend only on n and the resolved width, and the fold is
/// left-to-right on the calling thread, so the result is deterministic for a
/// fixed width; when the combine operation is associative and commutative
/// (set unions, concatenation followed by sorting) it is identical across
/// widths as well.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(int numThreads, std::size_t n, T init, MapFn&& mapChunk,
                  CombineFn&& combine) {
  const std::size_t width =
      std::min(static_cast<std::size_t>(resolveThreadCount(numThreads)), n);
  if (width <= 1 || insideWorker()) {
    if (n > 0) init = combine(std::move(init), mapChunk(std::size_t{0}, n));
    return init;
  }
  std::vector<T> parts(width);
  parallel_for(static_cast<int>(width), width, [&](std::size_t c) {
    const std::size_t begin = n * c / width;
    const std::size_t end = n * (c + 1) / width;
    parts[c] = mapChunk(begin, end);
  });
  for (T& part : parts) init = combine(std::move(init), std::move(part));
  return init;
}

}  // namespace relb::util
