#include "util/thread_pool.hpp"

#include "obs/metrics.hpp"

namespace relb::util {

namespace {
thread_local bool tlsInsideWorker = false;
}  // namespace

int resolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool insideWorker() { return tlsInsideWorker; }

ThreadPool::ThreadPool(int numThreads, obs::Registry& registry)
    : batchesCounter_(registry.counter("pool.batches")),
      itemsCounter_(registry.counter("pool.items")),
      concurrencyGauge_(registry.gauge("pool.concurrency")),
      activeGauge_(registry.gauge("pool.active")),
      maxBatchGauge_(registry.gauge("pool.max_batch")) {
  std::lock_guard<std::mutex> lock(mutex_);
  spawnWorkersLocked(resolveThreadCount(numThreads) - 1);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  hasWork_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::concurrency() {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size()) + 1;
}

void ThreadPool::ensureConcurrency(int threads) {
  // Taking batchMutex_ keeps worker spawning out of any in-flight batch.
  std::lock_guard<std::mutex> batch(batchMutex_);
  std::lock_guard<std::mutex> lock(mutex_);
  const int want = threads - 1 - static_cast<int>(workers_.size());
  if (want > 0) spawnWorkersLocked(want);
}

void ThreadPool::spawnWorkersLocked(int count) {
  workers_.reserve(workers_.size() + static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  concurrencyGauge_.setMax(static_cast<std::int64_t>(workers_.size()) + 1);
}

void ThreadPool::runItems(const std::function<void(std::size_t)>* fn,
                          std::size_t n) {
  // `fn` may be a stale pointer on a worker that wakes after its batch
  // already drained; it is dereferenced only once an item is claimed, which
  // cannot happen then (nextIndex_ stays >= n until the next batch resets
  // every field together under the mutex).
  for (;;) {
    const std::size_t i = nextIndex_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      (*fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!firstError_) firstError_ = std::current_exception();
      nextIndex_.store(n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::workerLoop() {
  tlsInsideWorker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    hasWork_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* job = job_;
    const std::size_t n = jobSize_;
    ++running_;
    activeGauge_.setMax(running_ + 1);  // +1: the participating caller
    lock.unlock();
    runItems(job, n);
    lock.lock();
    if (--running_ == 0) batchDone_.notify_all();
  }
}

void ThreadPool::forEachIndex(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  bool noWorkers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    noWorkers = workers_.empty();
  }
  if (noWorkers || n == 1 || insideWorker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> batch(batchMutex_);
  batchesCounter_.add();
  itemsCounter_.add(n);
  maxBatchGauge_.setMax(static_cast<std::int64_t>(n));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    jobSize_ = n;
    nextIndex_.store(0, std::memory_order_relaxed);
    firstError_ = nullptr;
    ++generation_;
  }
  hasWork_.notify_all();
  // The caller participates as an extra lane.  It is marked as a worker for
  // the duration so that nested parallel sections issued from its items run
  // inline instead of re-entering the (already held) batch mutex.
  tlsInsideWorker = true;
  runItems(&fn, n);
  tlsInsideWorker = false;
  std::unique_lock<std::mutex> lock(mutex_);
  batchDone_.wait(lock, [&] { return running_ == 0; });
  job_ = nullptr;
  if (firstError_) {
    std::exception_ptr error = firstError_;
    firstError_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace relb::util
