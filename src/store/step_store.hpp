// Content-addressed on-disk step store (the durable half of the PR-2
// engine memo).
//
// Layout under the store root:
//
//   FORMAT                          "relb-store <version>" -- refuses roots
//                                   written by an incompatible version
//   objects/<hh>/<hash16>.<tag>.json one entry per cached result, where
//                                   <hash16> is the structural hash of the
//                                   input problem, <hh> its first two hex
//                                   digits, and <tag> one of r / rbar /
//                                   zr0 / zr1 / zr2 (the zero-round modes)
//   quarantine/                     corrupt entries are MOVED here on read
//                                   (never deleted, never trusted again);
//                                   the caller transparently recomputes
//
// Every entry wraps its payload with a checksum over the canonical compact
// JSON encoding; loads validate the checksum, then decode, then confirm the
// stored input problem equals the queried one (a structural-hash collision
// degrades to a miss).  Writes go through a same-directory temp file and an
// atomic rename, so a crash mid-write never leaves a half-entry under
// objects/ -- at worst an orphaned temp file that is ignored.
//
// Thread-safety: all methods may be called concurrently (the engine calls
// them outside its own lock).  Filesystem operations rely on rename
// atomicity; the stats counters have their own mutex.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "re/engine.hpp"

namespace relb::store {

struct StoreStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t writes = 0;
  std::size_t quarantined = 0;

  [[nodiscard]] std::string describe() const;
};

class DiskStepStore final : public re::StepStorage {
 public:
  /// Opens `root`, initializing the layout on first use.  Throws re::Error
  /// if `root` carries a FORMAT stamp of an incompatible version.  The
  /// store.quarantine counter is interned in `registry` (global by default;
  /// inject a session registry for per-client attribution).  The registry
  /// must outlive the store.
  explicit DiskStepStore(std::filesystem::path root,
                         obs::Registry& registry = obs::Registry::global());

  [[nodiscard]] std::optional<re::StepResult> loadStep(
      int kind, const re::Problem& input, std::uint64_t hash,
      const re::StepOptions& options) override;
  void storeStep(int kind, const re::Problem& input, std::uint64_t hash,
                 const re::StepOptions& options,
                 const re::StepResult& result) override;

  [[nodiscard]] std::optional<bool> loadZeroRound(
      re::ZeroRoundMode mode, const re::Problem& input,
      std::uint64_t hash) override;
  void storeZeroRound(re::ZeroRoundMode mode, const re::Problem& input,
                      std::uint64_t hash, bool solvable) override;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }
  [[nodiscard]] StoreStats stats() const;

  /// Number of entries under objects/ (walks the tree; for tests and the
  /// CLI's --stats output, not a hot path).
  [[nodiscard]] std::size_t objectCount() const;

 private:
  [[nodiscard]] std::filesystem::path entryPath(std::uint64_t hash,
                                                const char* tag) const;
  void quarantine(const std::filesystem::path& path);
  void count(std::size_t StoreStats::* counter);

  std::filesystem::path root_;
  obs::Counter& quarantinedCounter_;
  mutable std::mutex mutex_;
  StoreStats stats_;
};

}  // namespace relb::store
