#include "store/step_store.hpp"

#include <fstream>
#include <sstream>

#include "io/certificate.hpp"  // atomicWriteFile
#include "io/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace relb::store {

using io::Json;
using re::Error;
using re::Problem;
using re::StepOptions;
using re::StepResult;
using re::ZeroRoundMode;

namespace {

constexpr std::string_view kFormatStamp = "relb-store 1";

const char* zeroRoundTag(ZeroRoundMode mode) {
  switch (mode) {
    case ZeroRoundMode::kSymmetricPorts: return "zr0";
    case ZeroRoundMode::kAdversarialPorts: return "zr1";
    case ZeroRoundMode::kWithEdgeInputs: return "zr2";
  }
  throw Error("step_store: unknown zero-round mode");
}

std::string hashHex(std::uint64_t hash) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

std::string wrapEntry(Json payload) {
  Json out = Json::object();
  out.set("format", "relb-store-entry");
  out.set("version", io::kFormatVersion);
  const std::string checksum = io::fnv1a64Hex(payload.dump());
  out.set("payload", std::move(payload));
  out.set("checksum", checksum);
  return out.dump() + "\n";
}

/// Parses and checksum-validates an entry file; throws re::Error on any
/// corruption (malformed JSON, bad format/version, checksum mismatch).
Json unwrapEntry(const std::string& text) {
  const Json doc = Json::parse(text);
  if (doc.at("format").asString() != "relb-store-entry") {
    throw Error("step_store: not a store entry");
  }
  if (doc.at("version").asInt() != io::kFormatVersion) {
    throw Error("step_store: unsupported entry version");
  }
  const Json& payload = doc.at("payload");
  if (io::fnv1a64Hex(payload.dump()) != doc.at("checksum").asString()) {
    throw Error("step_store: entry checksum mismatch");
  }
  return payload;
}

std::optional<std::string> readFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string StoreStats::describe() const {
  return "store: " + std::to_string(hits) + " hits / " +
         std::to_string(misses) + " misses / " + std::to_string(writes) +
         " writes / " + std::to_string(quarantined) + " quarantined\n";
}

DiskStepStore::DiskStepStore(std::filesystem::path root,
                             obs::Registry& registry)
    : root_(std::move(root)),
      quarantinedCounter_(registry.counter("store.quarantine")) {
  std::filesystem::create_directories(root_ / "objects");
  std::filesystem::create_directories(root_ / "quarantine");
  const std::filesystem::path stamp = root_ / "FORMAT";
  if (const auto existing = readFile(stamp)) {
    // Trailing newline tolerated; anything else is another version.
    std::string trimmed = *existing;
    while (!trimmed.empty() && (trimmed.back() == '\n' || trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    if (trimmed != kFormatStamp) {
      throw Error("step_store: '" + root_.string() +
                  "' has incompatible format stamp '" + trimmed +
                  "' (expected '" + std::string(kFormatStamp) + "')");
    }
  } else {
    io::atomicWriteFile(stamp, std::string(kFormatStamp) + "\n");
  }
}

std::filesystem::path DiskStepStore::entryPath(std::uint64_t hash,
                                               const char* tag) const {
  const std::string hex = hashHex(hash);
  return root_ / "objects" / hex.substr(0, 2) / (hex + "." + tag + ".json");
}

void DiskStepStore::quarantine(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::rename(path, root_ / "quarantine" / path.filename(), ec);
  if (ec) std::filesystem::remove(path, ec);
  count(&StoreStats::quarantined);
  quarantinedCounter_.add();
}

void DiskStepStore::count(std::size_t StoreStats::* counter) {
  std::lock_guard lock(mutex_);
  ++(stats_.*counter);
}

StoreStats DiskStepStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t DiskStepStore::objectCount() const {
  std::size_t n = 0;
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(
           root_ / "objects", ec);
       !ec && it != std::filesystem::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file() && it->path().extension() == ".json") ++n;
  }
  return n;
}

std::optional<StepResult> DiskStepStore::loadStep(int kind,
                                                  const Problem& input,
                                                  std::uint64_t hash,
                                                  const StepOptions& options) {
  const obs::ScopedSpan span("store.load");
  const std::filesystem::path path =
      entryPath(hash, kind == 0 ? "r" : "rbar");
  const auto text = readFile(path);
  if (!text) {
    count(&StoreStats::misses);
    return std::nullopt;
  }
  try {
    const Json payload = unwrapEntry(*text);
    if (payload.at("op").asInt() != kind) {
      throw Error("step_store: entry operator mismatch");
    }
    if (io::problemFromJson(payload.at("input")) != input) {
      // Structural-hash collision: a different problem owns this slot.
      count(&StoreStats::misses);
      return std::nullopt;
    }
    if (kind == 1 &&
        (payload.at("max_rbar_delta").asInt() != options.maxRbarDelta ||
         payload.at("enumeration_limit").asInt() !=
             static_cast<std::int64_t>(options.enumerationLimit))) {
      // Computed under other guards; not corrupt, just not reusable.
      count(&StoreStats::misses);
      return std::nullopt;
    }
    const Json& result = payload.at("result");
    StepResult out;
    out.problem = io::problemFromJson(result.at("problem"));
    for (const Json& s : result.at("meaning").asArray()) {
      out.meaning.push_back(io::labelSetFromJson(s, input.alphabet.size()));
    }
    if (static_cast<int>(out.meaning.size()) != out.problem.alphabet.size()) {
      throw Error("step_store: meaning size does not match result alphabet");
    }
    count(&StoreStats::hits);
    return out;
  } catch (const Error&) {
    quarantine(path);
    count(&StoreStats::misses);
    return std::nullopt;
  }
}

void DiskStepStore::storeStep(int kind, const Problem& input,
                              std::uint64_t hash, const StepOptions& options,
                              const StepResult& result) {
  const obs::ScopedSpan span("store.write");
  Json payload = Json::object();
  payload.set("op", kind);
  payload.set("input", io::problemToJson(input));
  if (kind == 1) {
    payload.set("max_rbar_delta", options.maxRbarDelta);
    payload.set("enumeration_limit",
                static_cast<std::int64_t>(options.enumerationLimit));
  }
  Json res = Json::object();
  res.set("problem", io::problemToJson(result.problem));
  Json meaning = Json::array();
  for (const re::LabelSet s : result.meaning) {
    meaning.push(io::labelSetToJson(s));
  }
  res.set("meaning", std::move(meaning));
  payload.set("result", std::move(res));

  const std::filesystem::path path =
      entryPath(hash, kind == 0 ? "r" : "rbar");
  std::filesystem::create_directories(path.parent_path());
  io::atomicWriteFile(path, wrapEntry(std::move(payload)));
  count(&StoreStats::writes);
}

std::optional<bool> DiskStepStore::loadZeroRound(ZeroRoundMode mode,
                                                 const Problem& input,
                                                 std::uint64_t hash) {
  const obs::ScopedSpan span("store.load");
  const std::filesystem::path path = entryPath(hash, zeroRoundTag(mode));
  const auto text = readFile(path);
  if (!text) {
    count(&StoreStats::misses);
    return std::nullopt;
  }
  try {
    const Json payload = unwrapEntry(*text);
    if (io::problemFromJson(payload.at("input")) != input) {
      count(&StoreStats::misses);
      return std::nullopt;
    }
    const bool solvable = payload.at("solvable").asBool();
    count(&StoreStats::hits);
    return solvable;
  } catch (const Error&) {
    quarantine(path);
    count(&StoreStats::misses);
    return std::nullopt;
  }
}

void DiskStepStore::storeZeroRound(ZeroRoundMode mode, const Problem& input,
                                   std::uint64_t hash, bool solvable) {
  const obs::ScopedSpan span("store.write");
  Json payload = Json::object();
  payload.set("mode", static_cast<std::int64_t>(mode));
  payload.set("input", io::problemToJson(input));
  payload.set("solvable", solvable);

  const std::filesystem::path path = entryPath(hash, zeroRoundTag(mode));
  std::filesystem::create_directories(path.parent_path());
  io::atomicWriteFile(path, wrapEntry(std::move(payload)));
  count(&StoreStats::writes);
}

}  // namespace relb::store
