// Alphabet: bidirectional mapping between label names and label indices.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "re/label_set.hpp"
#include "re/types.hpp"

namespace relb::re {

/// An ordered collection of distinct label names.  The index of a name is its
/// Label.  Value type; copying is cheap enough for the alphabet sizes the
/// engine supports (<= kMaxLabels).
class Alphabet {
 public:
  Alphabet() = default;
  explicit Alphabet(std::vector<std::string> names);

  /// Adds a name and returns its label.  Throws Error on duplicates or
  /// overflow past kMaxLabels.
  Label add(std::string name);

  /// Returns the label for `name`, adding it if absent.
  Label getOrAdd(std::string_view name);

  [[nodiscard]] std::optional<Label> find(std::string_view name) const;

  /// Returns the label for `name`; throws Error if absent.
  [[nodiscard]] Label at(std::string_view name) const;

  [[nodiscard]] const std::string& name(Label l) const;
  [[nodiscard]] int size() const { return static_cast<int>(names_.size()); }
  [[nodiscard]] LabelSet all() const { return LabelSet::full(size()); }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  /// Renders a label set, e.g. "[MPO]" (single labels render without
  /// brackets: "M").  Multi-character label names are joined with spaces.
  [[nodiscard]] std::string render(LabelSet s) const;

  friend bool operator==(const Alphabet& a, const Alphabet& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Label> index_;
};

}  // namespace relb::re
