// Canonical forms and structural hashing of problems.
//
// Two problems that differ only by a label permutation describe the same
// LCL; the engine's caches and the fixed-point detector need a
// representative that is *identical* (not merely isomorphic) for all members
// of such an orbit.  canonicalize() produces that representative: labels are
// reordered by an iterated structural refinement (a Weisfeiler-Leman-style
// coloring over the condensed configurations); ties are broken by trying
// every permutation inside a tie class and keeping the lexicographically
// smallest encoding.  The canonical problem carries synthetic label names
// ("L0", "L1", ...), so the form is independent of the input's names.
//
// Two hashes with different contracts:
//   * structuralHash(p)        — syntactic: sensitive to label order,
//     configuration order, and label names.  Used as the exact memoization
//     key (a cache hit must return a bit-identical result).
//   * canonicalize(p).hash     — isomorphism-invariant: equal for any two
//     problems that are label permutations of each other.  Used for
//     interning and cheap fixed-point detection.
#pragma once

#include <cstdint>
#include <vector>

#include "re/problem.hpp"

namespace relb::re {

struct CanonicalForm {
  /// The canonical representative (synthetic names "L0", "L1", ...).
  Problem problem;
  /// Input label -> canonical label.
  std::vector<Label> map;
  /// Permutation-invariant structure hash of the canonical problem.
  std::uint64_t hash = 0;
};

/// Order- and name-sensitive 64-bit hash of a problem exactly as
/// represented.  Collisions are possible (callers must confirm equality
/// before trusting a match); equal problems always hash equal.
[[nodiscard]] std::uint64_t structuralHash(const Problem& p);

/// Same contract, for a single constraint (degree + configurations, in
/// stored order).
[[nodiscard]] std::uint64_t structuralHash(const Constraint& c);

/// Computes the canonical form.  `permutationBudget` bounds the number of
/// tie-breaking permutations tried (the product of the factorials of the
/// refinement classes); throws Error if the problem is too symmetric for
/// that budget or has more than 16 labels.
///
/// Guarantees (tested in tests/re/canonical_test.cpp):
///   * idempotence: canonicalize(canonicalize(p).problem).problem ==
///     canonicalize(p).problem;
///   * invariance: for every label permutation q of p,
///     canonicalize(q).problem == canonicalize(p).problem (and the hashes
///     agree), regardless of q's label names.
[[nodiscard]] CanonicalForm canonicalize(const Problem& p,
                                         std::size_t permutationBudget = 40'320);

}  // namespace relb::re
