// Basic value types shared by the round-elimination engine.
//
// The engine manipulates locally checkable problems in the formalism of
// Brandt [PODC'19]: an alphabet of labels, a node constraint (a set of
// configurations of length Delta) and an edge constraint (a set of
// configurations of length 2).  Labels are small integers indexing into an
// Alphabet; sets of labels are bitsets.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace relb::re {

/// Index of a label within an Alphabet.
using Label = std::uint8_t;

/// Exponents / degrees.  Signed 64-bit so that condensed configurations can
/// describe problems on trees of degree up to 2^62 without overflow.
using Count = std::int64_t;

/// Maximum number of labels a single alphabet may hold.  LabelSet is a 32-bit
/// bitset; every public entry point validates against this limit.
inline constexpr int kMaxLabels = 32;

/// Exception type thrown on API misuse (malformed configurations, alphabet
/// overflow, parse errors, ...).  Internal invariant violations use assert.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace relb::re
