// Low-level edge-constraint analyses: the degree-2 compatibility matrix and
// the maximal compatible pairs (the edge side of the R operator, but also a
// plain combinatorial fact about an edge constraint).
//
// These live below the speedup engine: zero-round analysis (zero_round.cpp)
// and the independent certificate verifier link them without pulling in
// re_step.cpp / engine.cpp.
#pragma once

#include <utility>
#include <vector>

#include "re/constraint.hpp"
#include "util/thread_pool.hpp"

namespace relb::re {

/// The degree-2 compatibility matrix of an edge constraint:
/// compat[a] = set of labels b such that the word {a, b} is allowed.
[[nodiscard]] std::vector<LabelSet> edgeCompatibility(const Constraint& edge,
                                                      int alphabetSize);

/// The maximal edge configurations of R(Pi) as unordered pairs of label sets
/// (before renaming): the Galois-closed pairs (A, B) with A x B
/// edge-compatible, filtered for swapped-orientation domination.  Exact for
/// any Delta.  `numThreads` follows the engine-wide convention of
/// util::kDefaultNumThreads (0 = one thread per core); results are
/// bit-identical for every width.
[[nodiscard]] std::vector<std::pair<LabelSet, LabelSet>> maximalEdgePairs(
    const Constraint& edge, int alphabetSize,
    int numThreads = util::kDefaultNumThreads);

namespace detail {

/// Body of maximalEdgePairs on a precomputed compatibility matrix; shared
/// with applyR, whose engine context may have the matrix cached.
[[nodiscard]] std::vector<std::pair<LabelSet, LabelSet>>
maximalEdgePairsFromCompat(const std::vector<LabelSet>& compat,
                           int alphabetSize, int numThreads);

}  // namespace detail

}  // namespace relb::re
