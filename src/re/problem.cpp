#include "re/problem.hpp"

#include <cctype>
#include <sstream>

namespace relb::re {

namespace {

// Every diagnostic carries where (context = "<section> line N" from
// Problem::parse, empty for direct parseConfiguration calls), the 1-based
// column, and the offending token, e.g.
//   parse: node constraint line 2, column 5: bad exponent 'x' in 'O^x'
[[noreturn]] void parseFail(std::string_view context, std::size_t column,
                            const std::string& what) {
  std::string msg = "parse: ";
  if (!context.empty()) msg += std::string(context) + ", ";
  msg += "column " + std::to_string(column) + ": " + what;
  throw Error(msg);
}

struct Token {
  std::string text;
  std::size_t column;  // 1-based position within the line
};

// Splits a line into whitespace-separated raw tokens, keeping bracketed
// disjunctions (which may contain spaces) together.
std::vector<Token> tokenize(std::string_view line, std::string_view context) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    std::size_t j = i;
    if (line[i] == '[') {
      while (j < line.size() && line[j] != ']') ++j;
      if (j == line.size()) parseFail(context, i + 1, "unterminated '['");
      ++j;  // include ']'
      // Optional exponent suffix.
      while (j < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
    } else {
      while (j < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
    }
    tokens.push_back({std::string(line.substr(i, j - i)), i + 1});
    i = j;
  }
  return tokens;
}

Count parseExponent(std::string_view text, std::string_view context,
                    const Token& token) {
  if (text.empty()) {
    parseFail(context, token.column, "empty exponent in '" + token.text + "'");
  }
  Count value = 0;
  for (char ch : text) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      parseFail(context, token.column,
                "bad exponent '" + std::string(text) + "' in '" + token.text +
                    "'");
    }
    value = value * 10 + (ch - '0');
    if (value > (Count{1} << 62)) {
      parseFail(context, token.column,
                "exponent too large in '" + token.text + "'");
    }
  }
  return value;
}

Configuration parseConfigurationImpl(std::string_view line, Alphabet& alphabet,
                                     std::string_view context) {
  std::vector<Group> groups;
  for (const Token& token : tokenize(line, context)) {
    std::string_view body = token.text;
    Count count = 1;
    if (auto caret = body.rfind('^'); caret != std::string_view::npos) {
      count = parseExponent(body.substr(caret + 1), context, token);
      body = body.substr(0, caret);
    }
    LabelSet set;
    if (!body.empty() && body.front() == '[') {
      if (body.size() < 2 || body.back() != ']') {
        parseFail(context, token.column,
                  "malformed disjunction '" + token.text + "'");
      }
      const std::string_view inner = body.substr(1, body.size() - 2);
      if (inner.find(' ') != std::string_view::npos) {
        std::istringstream iss{std::string(inner)};
        std::string name;
        while (iss >> name) set.insert(alphabet.getOrAdd(name));
      } else {
        // Compact form: every character is a single-character label name.
        for (char ch : inner) {
          set.insert(alphabet.getOrAdd(std::string_view(&ch, 1)));
        }
      }
    } else {
      if (body.empty()) {
        parseFail(context, token.column, "empty token '" + token.text + "'");
      }
      set.insert(alphabet.getOrAdd(body));
    }
    if (set.empty()) {
      parseFail(context, token.column,
                "empty disjunction in '" + token.text + "'");
    }
    groups.push_back({set, count});
  }
  if (groups.empty()) {
    parseFail(context, 1, "empty configuration line");
  }
  return Configuration(std::move(groups));
}

}  // namespace

Configuration parseConfiguration(std::string_view line, Alphabet& alphabet) {
  return parseConfigurationImpl(line, alphabet, {});
}

void Problem::validate() const {
  if (edge.degree() != 2) throw Error("Problem: edge constraint degree != 2");
  if (node.degree() < 1) throw Error("Problem: node constraint degree < 1");
  const LabelSet known = alphabet.all();
  if (!node.support().subsetOf(known) || !edge.support().subsetOf(known)) {
    throw Error("Problem: constraint mentions label outside the alphabet");
  }
}

Problem Problem::parse(std::string_view nodeConstraint,
                       std::string_view edgeConstraint) {
  Problem p;
  auto parseLines = [&](std::string_view text, const char* section) {
    std::vector<Configuration> configs;
    std::istringstream iss{std::string(text)};
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(iss, line)) {
      ++lineNo;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      if (line.starts_with('#')) continue;
      const std::string context =
          std::string(section) + " line " + std::to_string(lineNo);
      configs.push_back(parseConfigurationImpl(line, p.alphabet, context));
      if (configs.size() > 1 &&
          configs.back().degree() != configs.front().degree()) {
        throw Error("parse: " + context + ": configuration degree " +
                    std::to_string(configs.back().degree()) +
                    " differs from the section's first configuration (" +
                    std::to_string(configs.front().degree()) + ")");
      }
    }
    return configs;
  };
  auto nodeConfigs = parseLines(nodeConstraint, "node constraint");
  auto edgeConfigs = parseLines(edgeConstraint, "edge constraint");
  if (nodeConfigs.empty()) throw Error("parse: no node configurations");
  if (edgeConfigs.empty()) throw Error("parse: no edge configurations");
  const Count delta = nodeConfigs.front().degree();
  p.node = Constraint(delta, std::move(nodeConfigs));
  p.edge = Constraint(2, std::move(edgeConfigs));
  p.validate();
  return p;
}

std::string Problem::render() const {
  return node.render(alphabet) + "\n\n" + edge.render(alphabet) + "\n";
}

Problem misProblem(Count delta) {
  if (delta < 2) throw Error("misProblem: delta must be >= 2");
  Problem p;
  const Label m = p.alphabet.add("M");
  const Label pp = p.alphabet.add("P");
  const Label o = p.alphabet.add("O");
  p.node = Constraint(
      delta, {Configuration({{LabelSet{m}, delta}}),
              Configuration({{LabelSet{pp}, 1}, {LabelSet{o}, delta - 1}})});
  p.edge = Constraint(2, {Configuration({{LabelSet{m}, 1}, {LabelSet{pp, o}, 1}}),
                          Configuration({{LabelSet{o}, 2}})});
  p.validate();
  return p;
}

Problem sinklessOrientationProblem(Count delta) {
  if (delta < 2) throw Error("sinklessOrientationProblem: delta must be >= 2");
  Problem p;
  const Label i = p.alphabet.add("I");
  const Label o = p.alphabet.add("O");
  p.node = Constraint(
      delta, {Configuration({{LabelSet{o}, 1}, {LabelSet{i, o}, delta - 1}})});
  p.edge = Constraint(2, {Configuration({{LabelSet{i}, 1}, {LabelSet{o}, 1}})});
  p.validate();
  return p;
}

}  // namespace relb::re
