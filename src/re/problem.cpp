#include "re/problem.hpp"

#include <cctype>
#include <sstream>

namespace relb::re {

namespace {

// Splits a line into whitespace-separated raw tokens, keeping bracketed
// disjunctions (which may contain spaces) together.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    std::size_t j = i;
    if (line[i] == '[') {
      while (j < line.size() && line[j] != ']') ++j;
      if (j == line.size()) throw Error("parse: unterminated '['");
      ++j;  // include ']'
      // Optional exponent suffix.
      while (j < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
    } else {
      while (j < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
    }
    tokens.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

Count parseExponent(std::string_view text) {
  if (text.empty()) throw Error("parse: empty exponent");
  Count value = 0;
  for (char ch : text) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      throw Error("parse: bad exponent '" + std::string(text) + "'");
    }
    value = value * 10 + (ch - '0');
    if (value > (Count{1} << 62)) throw Error("parse: exponent too large");
  }
  return value;
}

}  // namespace

Configuration parseConfiguration(std::string_view line, Alphabet& alphabet) {
  std::vector<Group> groups;
  for (const std::string& token : tokenize(line)) {
    std::string_view body = token;
    Count count = 1;
    if (auto caret = body.rfind('^'); caret != std::string_view::npos) {
      count = parseExponent(body.substr(caret + 1));
      body = body.substr(0, caret);
    }
    LabelSet set;
    if (!body.empty() && body.front() == '[') {
      if (body.size() < 2 || body.back() != ']') {
        throw Error("parse: malformed disjunction '" + token + "'");
      }
      const std::string_view inner = body.substr(1, body.size() - 2);
      if (inner.find(' ') != std::string_view::npos) {
        std::istringstream iss{std::string(inner)};
        std::string name;
        while (iss >> name) set.insert(alphabet.getOrAdd(name));
      } else {
        // Compact form: every character is a single-character label name.
        for (char ch : inner) {
          set.insert(alphabet.getOrAdd(std::string_view(&ch, 1)));
        }
      }
    } else {
      if (body.empty()) throw Error("parse: empty token");
      set.insert(alphabet.getOrAdd(body));
    }
    if (set.empty()) throw Error("parse: empty disjunction in '" + token + "'");
    groups.push_back({set, count});
  }
  if (groups.empty()) throw Error("parse: empty configuration line");
  return Configuration(std::move(groups));
}

void Problem::validate() const {
  if (edge.degree() != 2) throw Error("Problem: edge constraint degree != 2");
  if (node.degree() < 1) throw Error("Problem: node constraint degree < 1");
  const LabelSet known = alphabet.all();
  if (!node.support().subsetOf(known) || !edge.support().subsetOf(known)) {
    throw Error("Problem: constraint mentions label outside the alphabet");
  }
}

Problem Problem::parse(std::string_view nodeConstraint,
                       std::string_view edgeConstraint) {
  Problem p;
  auto parseLines = [&](std::string_view text) {
    std::vector<Configuration> configs;
    std::istringstream iss{std::string(text)};
    std::string line;
    while (std::getline(iss, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      if (line.starts_with('#')) continue;
      configs.push_back(parseConfiguration(line, p.alphabet));
    }
    return configs;
  };
  auto nodeConfigs = parseLines(nodeConstraint);
  auto edgeConfigs = parseLines(edgeConstraint);
  if (nodeConfigs.empty()) throw Error("parse: no node configurations");
  if (edgeConfigs.empty()) throw Error("parse: no edge configurations");
  const Count delta = nodeConfigs.front().degree();
  p.node = Constraint(delta, std::move(nodeConfigs));
  p.edge = Constraint(2, std::move(edgeConfigs));
  p.validate();
  return p;
}

std::string Problem::render() const {
  return node.render(alphabet) + "\n\n" + edge.render(alphabet) + "\n";
}

Problem misProblem(Count delta) {
  if (delta < 2) throw Error("misProblem: delta must be >= 2");
  Problem p;
  const Label m = p.alphabet.add("M");
  const Label pp = p.alphabet.add("P");
  const Label o = p.alphabet.add("O");
  p.node = Constraint(
      delta, {Configuration({{LabelSet{m}, delta}}),
              Configuration({{LabelSet{pp}, 1}, {LabelSet{o}, delta - 1}})});
  p.edge = Constraint(2, {Configuration({{LabelSet{m}, 1}, {LabelSet{pp, o}, 1}}),
                          Configuration({{LabelSet{o}, 2}})});
  p.validate();
  return p;
}

Problem sinklessOrientationProblem(Count delta) {
  if (delta < 2) throw Error("sinklessOrientationProblem: delta must be >= 2");
  Problem p;
  const Label i = p.alphabet.add("I");
  const Label o = p.alphabet.add("O");
  p.node = Constraint(
      delta, {Configuration({{LabelSet{o}, 1}, {LabelSet{i, o}, delta - 1}})});
  p.edge = Constraint(2, {Configuration({{LabelSet{i}, 1}, {LabelSet{o}, 1}})});
  p.validate();
  return p;
}

}  // namespace relb::re
