#include "re/rename.hpp"

#include <algorithm>
#include <numeric>

namespace relb::re {

Problem renameProblem(const Problem& p, const std::vector<Label>& map,
                      Alphabet newAlphabet) {
  if (map.size() != static_cast<std::size_t>(p.alphabet.size())) {
    throw Error("renameProblem: map size mismatch");
  }
  std::vector<bool> used(static_cast<std::size_t>(newAlphabet.size()), false);
  for (Label to : map) {
    if (to >= newAlphabet.size()) throw Error("renameProblem: out of range");
    if (used[to]) throw Error("renameProblem: map not injective");
    used[to] = true;
  }
  const auto mapSet = [&](LabelSet s) {
    LabelSet out;
    forEachLabel(s, [&](Label l) { out.insert(map[l]); });
    return out;
  };
  Problem out;
  out.alphabet = std::move(newAlphabet);
  Constraint node(p.node.degree(), {});
  for (const auto& c : p.node.configurations()) node.add(c.mapSets(mapSet));
  Constraint edge(2, {});
  for (const auto& c : p.edge.configurations()) edge.add(c.mapSets(mapSet));
  out.node = std::move(node);
  out.edge = std::move(edge);
  out.validate();
  return out;
}

std::optional<std::vector<Label>> findIsomorphism(const Problem& a,
                                                  const Problem& b) {
  if (a.alphabet.size() != b.alphabet.size()) return std::nullopt;
  if (a.node.degree() != b.node.degree()) return std::nullopt;
  const int n = a.alphabet.size();
  if (n > 10) throw Error("findIsomorphism: alphabet too large");

  std::vector<Label> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    const Problem renamed = renameProblem(a, perm, b.alphabet);
    if (sameLanguage(renamed.edge, b.edge, n) &&
        sameLanguage(renamed.node, b.node, n)) {
      return perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return std::nullopt;
}

bool equivalentUpToRenaming(const Problem& a, const Problem& b) {
  return findIsomorphism(a, b).has_value();
}

}  // namespace relb::re
