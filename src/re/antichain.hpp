// SignatureBuckets: the union-signature antichain prune shared by the
// maximality filters of maximalEdgePairs (edge_compat.cpp) and applyRbar
// (re_step.cpp).
//
// In both filters, "q dominates p" forces union(p) subsetOf union(q), so a
// candidate only needs to be compared against buckets whose signature is a
// superset of its own.  With U distinct signatures and candidates spread
// across them, the scan cost drops from O(P^2) domination tests to O(P * U)
// signature tests plus tests against plausibly-dominating buckets.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace relb::re::detail {

class SignatureBuckets {
 public:
  explicit SignatureBuckets(const std::vector<std::uint32_t>& signatures) {
    std::unordered_map<std::uint32_t, std::size_t> index;
    for (std::size_t i = 0; i < signatures.size(); ++i) {
      const auto [it, fresh] =
          index.emplace(signatures[i], signatures_.size());
      if (fresh) {
        signatures_.push_back(signatures[i]);
        members_.emplace_back();
      }
      members_[it->second].push_back(i);
    }
  }

  /// Applies `visit(j)` to every candidate j whose signature is a superset
  /// of `sig`, until one returns true; returns whether any did.
  template <typename Visit>
  bool anyInSupersetBucket(std::uint32_t sig, Visit&& visit) const {
    for (std::size_t b = 0; b < signatures_.size(); ++b) {
      if ((sig & ~signatures_[b]) != 0) continue;
      for (const std::size_t j : members_[b]) {
        if (visit(j)) return true;
      }
    }
    return false;
  }

 private:
  std::vector<std::uint32_t> signatures_;
  std::vector<std::vector<std::size_t>> members_;
};

}  // namespace relb::re::detail
