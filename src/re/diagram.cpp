#include "re/diagram.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <set>

#include "re/packed_words.hpp"

namespace relb::re {

StrengthRelation::StrengthRelation(int numLabels)
    : numLabels_(numLabels),
      geq_(static_cast<std::size_t>(numLabels) *
               static_cast<std::size_t>(numLabels),
           false) {
  if (numLabels < 1 || numLabels > kMaxLabels) {
    throw Error("StrengthRelation: bad label count");
  }
  for (int l = 0; l < numLabels; ++l) {
    set(static_cast<Label>(l), static_cast<Label>(l), true);
  }
}

void StrengthRelation::set(Label strong, Label weak, bool value) {
  assert(strong < numLabels_ && weak < numLabels_);
  geq_[static_cast<std::size_t>(strong) *
           static_cast<std::size_t>(numLabels_) +
       weak] = value;
}

bool StrengthRelation::atLeastAsStrong(Label strong, Label weak) const {
  assert(strong < numLabels_ && weak < numLabels_);
  return geq_[static_cast<std::size_t>(strong) *
                  static_cast<std::size_t>(numLabels_) +
              weak];
}

bool StrengthRelation::strictlyStronger(Label strong, Label weak) const {
  return atLeastAsStrong(strong, weak) && !atLeastAsStrong(weak, strong);
}

LabelSet StrengthRelation::upwardClosureOf(Label l) const {
  LabelSet out;
  for (int s = 0; s < numLabels_; ++s) {
    if (atLeastAsStrong(static_cast<Label>(s), l)) {
      out.insert(static_cast<Label>(s));
    }
  }
  return out;
}

LabelSet StrengthRelation::rightClosure(LabelSet s) const {
  LabelSet out;
  forEachLabel(s, [&](Label l) { out = out | upwardClosureOf(l); });
  return out;
}

bool StrengthRelation::isRightClosed(LabelSet s) const {
  return rightClosure(s) == s;
}

std::vector<LabelSet> StrengthRelation::allRightClosedSets(
    LabelSet universe) const {
  if (universe.size() > 20) {
    throw Error("allRightClosedSets: universe too large");
  }
  const auto labels = universe.toVector();
  // Per-member upward closures, computed once; each candidate's closure is
  // then an OR over its members instead of a fresh relation scan.
  std::array<std::uint32_t, 20> up{};
  std::array<std::uint32_t, 20> bit{};
  for (std::size_t i = 0; i < labels.size(); ++i) {
    up[i] = upwardClosureOf(labels[i]).bits();
    bit[i] = std::uint32_t{1} << labels[i];
  }
  std::vector<LabelSet> out;
  const std::uint32_t count = std::uint32_t{1} << labels.size();
  const std::uint32_t inside = universe.bits();
  for (std::uint32_t mask = 1; mask < count; ++mask) {
    std::uint32_t s = 0;
    std::uint32_t closure = 0;
    for (std::uint32_t m = mask; m != 0; m &= m - 1) {
      const int i = __builtin_ctz(m);
      s |= bit[static_cast<std::size_t>(i)];
      closure |= up[static_cast<std::size_t>(i)];
    }
    // Right-closed *within the universe*: the closure may not leave it.
    if ((closure & inside) == s && (closure & ~inside) == 0) {
      out.push_back(LabelSet(s));
    }
  }
  return out;
}

void StrengthRelation::checkPreorder() const {
  for (int a = 0; a < numLabels_; ++a) {
    if (!atLeastAsStrong(static_cast<Label>(a), static_cast<Label>(a))) {
      throw Error("StrengthRelation: not reflexive");
    }
    for (int b = 0; b < numLabels_; ++b) {
      for (int c = 0; c < numLabels_; ++c) {
        if (atLeastAsStrong(static_cast<Label>(a), static_cast<Label>(b)) &&
            atLeastAsStrong(static_cast<Label>(b), static_cast<Label>(c)) &&
            !atLeastAsStrong(static_cast<Label>(a), static_cast<Label>(c))) {
          throw Error("StrengthRelation: not transitive");
        }
      }
    }
  }
}

std::vector<std::pair<Label, Label>> StrengthRelation::diagramEdges() const {
  std::vector<std::pair<Label, Label>> edges;
  for (int weak = 0; weak < numLabels_; ++weak) {
    for (int strong = 0; strong < numLabels_; ++strong) {
      if (!strictlyStronger(static_cast<Label>(strong),
                            static_cast<Label>(weak))) {
        continue;
      }
      // Transitive reduction: keep the edge only if no label sits strictly
      // between.
      bool between = false;
      for (int mid = 0; mid < numLabels_ && !between; ++mid) {
        if (strictlyStronger(static_cast<Label>(mid),
                             static_cast<Label>(weak)) &&
            strictlyStronger(static_cast<Label>(strong),
                             static_cast<Label>(mid))) {
          between = true;
        }
      }
      if (!between) {
        edges.emplace_back(static_cast<Label>(weak),
                           static_cast<Label>(strong));
      }
    }
  }
  return edges;
}

std::string StrengthRelation::renderDiagram(const Alphabet& alphabet) const {
  std::string out;
  for (const auto& [weak, strong] : diagramEdges()) {
    out += alphabet.name(weak) + " -> " + alphabet.name(strong) + "\n";
  }
  if (out.empty()) out = "(no relations)\n";
  return out;
}

std::string StrengthRelation::toDot(const Alphabet& alphabet,
                                    const std::string& graphName) const {
  std::string out = "digraph " + graphName + " {\n";
  for (int l = 0; l < numLabels_; ++l) {
    out += "  \"" + alphabet.name(static_cast<Label>(l)) + "\";\n";
  }
  for (const auto& [weak, strong] : diagramEdges()) {
    out += "  \"" + alphabet.name(weak) + "\" -> \"" + alphabet.name(strong) +
           "\";\n";
  }
  out += "}\n";
  return out;
}

StrengthRelation computeStrength(const Constraint& constraint,
                                 int alphabetSize, std::size_t limit) {
  // Packed fast path: with <= 16 labels and degree <= 15 every word is one
  // uint64, the replaced word is two nibble updates, and the membership test
  // is a binary search in a sorted flat array -- no per-word vectors, no
  // std::set<Word>.  (replaced[strong] <= 15 always: the word's nibbles sum
  // to the degree and weak contributes at least 1.)
  if (alphabetSize <= 16 && constraint.degree() <= 15) {
    const auto words =
        kernels::collectPackedWords(constraint, alphabetSize, limit);
    StrengthRelation rel(alphabetSize);
    for (int strong = 0; strong < alphabetSize; ++strong) {
      for (int weak = 0; weak < alphabetSize; ++weak) {
        if (strong == weak) continue;
        bool holds = true;
        for (const kernels::PackedWord w : words) {
          if (((w >> (4 * weak)) & 0xF) == 0) continue;
          const kernels::PackedWord replaced =
              w - (kernels::PackedWord{1} << (4 * weak)) +
              (kernels::PackedWord{1} << (4 * strong));
          if (!std::binary_search(words.begin(), words.end(), replaced)) {
            holds = false;
            break;
          }
        }
        rel.set(static_cast<Label>(strong), static_cast<Label>(weak), holds);
      }
    }
    return rel;
  }
  const auto words = constraint.enumerateWords(alphabetSize, limit);
  const std::set<Word> wordSet(words.begin(), words.end());
  StrengthRelation rel(alphabetSize);
  for (int strong = 0; strong < alphabetSize; ++strong) {
    for (int weak = 0; weak < alphabetSize; ++weak) {
      if (strong == weak) continue;
      bool holds = true;
      for (const Word& w : words) {
        if (w[static_cast<std::size_t>(weak)] == 0) continue;
        Word replaced = w;
        --replaced[static_cast<std::size_t>(weak)];
        ++replaced[static_cast<std::size_t>(strong)];
        if (!wordSet.contains(replaced)) {
          holds = false;
          break;
        }
      }
      rel.set(static_cast<Label>(strong), static_cast<Label>(weak), holds);
    }
  }
  return rel;
}

namespace {

// Searches for a word of L(candidate) that is not in L(constraint), trying
// extremal words only: one label per group, or a (1, count-1) split of one
// group.  Returns true if a definite counterexample is found.
bool findCounterexampleWord(const Configuration& candidate,
                            const Constraint& constraint, int alphabetSize) {
  const auto& groups = candidate.groups();
  // Choice of a single label per group, recursively.
  Word acc(static_cast<std::size_t>(alphabetSize), 0);
  bool found = false;
  std::function<void(std::size_t)> rec = [&](std::size_t idx) {
    if (found) return;
    if (idx == groups.size()) {
      if (!constraint.containsWord(acc)) found = true;
      return;
    }
    const auto labels = groups[idx].set.toVector();
    for (Label l : labels) {
      acc[l] += groups[idx].count;
      rec(idx + 1);
      acc[l] -= groups[idx].count;
      if (found) return;
    }
    // (1, count-1) splits within the group.
    if (groups[idx].count >= 2) {
      for (Label l1 : labels) {
        for (Label l2 : labels) {
          if (l1 == l2) continue;
          acc[l1] += 1;
          acc[l2] += groups[idx].count - 1;
          rec(idx + 1);
          acc[l1] -= 1;
          acc[l2] -= groups[idx].count - 1;
          if (found) return;
        }
      }
    }
  };
  rec(0);
  return found;
}

}  // namespace

std::optional<bool> atLeastAsStrongScalable(const Constraint& constraint,
                                            int alphabetSize, Label strong,
                                            Label weak,
                                            std::size_t enumerationLimit) {
  if (strong == weak) return true;
  bool unknown = false;
  for (const auto& config : constraint.configurations()) {
    for (std::size_t g = 0; g < config.groups().size(); ++g) {
      if (!config.groups()[g].set.contains(weak)) continue;
      std::vector<Group> groups = config.groups();
      groups[g].count -= 1;
      groups.push_back({LabelSet::single(strong), 1});
      const Configuration replaced{std::move(groups)};
      try {
        if (!constraint.containsAllWordsOf(replaced, alphabetSize,
                                           enumerationLimit)) {
          return false;
        }
      } catch (const Error&) {
        // Language too large to enumerate: try to falsify with extremal
        // words, otherwise report undecided.
        if (findCounterexampleWord(replaced, constraint, alphabetSize)) {
          return false;
        }
        unknown = true;
      }
    }
  }
  if (unknown) return std::nullopt;
  return true;
}

StrengthRelation computeStrengthScalable(const Constraint& constraint,
                                         int alphabetSize,
                                         std::size_t enumerationLimit) {
  StrengthRelation rel(alphabetSize);
  for (int strong = 0; strong < alphabetSize; ++strong) {
    for (int weak = 0; weak < alphabetSize; ++weak) {
      if (strong == weak) continue;
      const auto result = atLeastAsStrongScalable(
          constraint, alphabetSize, static_cast<Label>(strong),
          static_cast<Label>(weak), enumerationLimit);
      if (!result.has_value()) {
        throw Error("computeStrengthScalable: undecided strength pair");
      }
      rel.set(static_cast<Label>(strong), static_cast<Label>(weak), *result);
    }
  }
  return rel;
}

}  // namespace relb::re
