// Strength relations between labels (Section 2.3 of the paper) and the
// node/edge diagrams built from them.
//
// Label A is *at least as strong as* label B w.r.t. a constraint C if for
// every word in L(C) containing B, replacing one occurrence of B by A yields
// a word that is again in L(C).  The diagram is the transitive reduction of
// the strict part of this preorder, with edges pointing from weaker to
// stronger labels; "successors" of a label are the strictly stronger labels,
// which drives the right-closed-set machinery (Observation 4).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "re/constraint.hpp"

namespace relb::re {

/// The full "at least as strong" preorder on the labels 0..n-1.
class StrengthRelation {
 public:
  explicit StrengthRelation(int numLabels);

  [[nodiscard]] int numLabels() const { return numLabels_; }

  void set(Label strong, Label weak, bool value);
  /// True iff `strong` is at least as strong as `weak`.
  [[nodiscard]] bool atLeastAsStrong(Label strong, Label weak) const;
  /// True iff strictly stronger (>= holds one way only).
  [[nodiscard]] bool strictlyStronger(Label strong, Label weak) const;

  /// All labels that are at least as strong as `l` (including `l`).
  [[nodiscard]] LabelSet upwardClosureOf(Label l) const;

  /// Smallest superset of `s` closed under "add everything at least as
  /// strong".
  [[nodiscard]] LabelSet rightClosure(LabelSet s) const;
  [[nodiscard]] bool isRightClosed(LabelSet s) const;

  /// All non-empty right-closed subsets of `universe`.  Enumerates the
  /// powerset; requires |universe| <= 20.
  [[nodiscard]] std::vector<LabelSet> allRightClosedSets(
      LabelSet universe) const;

  /// Sanity: the relation must be reflexive and transitive.  Throws Error if
  /// not (indicates a bug in the producing computation).
  void checkPreorder() const;

  /// Diagram edges (weak -> strong) after transitive reduction of the strict
  /// part.  Pairs (weak, strong).
  [[nodiscard]] std::vector<std::pair<Label, Label>> diagramEdges() const;

  [[nodiscard]] std::string renderDiagram(const Alphabet& alphabet) const;
  [[nodiscard]] std::string toDot(const Alphabet& alphabet,
                                  const std::string& graphName) const;

  friend bool operator==(const StrengthRelation&,
                         const StrengthRelation&) = default;

 private:
  int numLabels_;
  std::vector<bool> geq_;  // geq_[strong * n + weak]
};

/// Computes the exact strength relation by enumerating the constraint's
/// words.  Throws Error if the language exceeds `limit` words (use the
/// scalable variant below in that case).  Edge constraints (degree 2) are
/// always enumerable.
[[nodiscard]] StrengthRelation computeStrength(const Constraint& constraint,
                                               int alphabetSize,
                                               std::size_t limit = 2'000'000);

/// Scalable three-valued test of "A at least as strong as B" that works for
/// condensed constraints with astronomically large exponents.
///
/// Method: every word of L(C) containing B arises from assigning B to some
/// group g of some configuration C; the set of all replaced words is then
/// exactly the language of C'_g := C with g's exponent decremented and a
/// fresh singleton group {A} added.  Hence A >= B iff L(C'_g) subset of L(N)
/// for all such (C, g).  Inclusion is certified positively by groupwise
/// embedding or bounded enumeration, and negatively by bounded enumeration or
/// an extremal-word counterexample search; if neither side can be certified,
/// returns nullopt.
[[nodiscard]] std::optional<bool> atLeastAsStrongScalable(
    const Constraint& constraint, int alphabetSize, Label strong, Label weak,
    std::size_t enumerationLimit = 200'000);

/// Computes the full relation with the scalable test; throws Error if any
/// pair is undecidable within the enumeration limit.
[[nodiscard]] StrengthRelation computeStrengthScalable(
    const Constraint& constraint, int alphabetSize,
    std::size_t enumerationLimit = 200'000);

}  // namespace relb::re
