// The pass-based engine, split at the sharing seam into EngineCore and
// EngineSession.
//
// EngineCore is the thread-safe SHARED half: it owns every cache the speedup
// machinery can reuse across requests --
//   * a step memo (applyR / applyRbar / speedupStep results keyed by the
//     exact structural hash of the input problem -- cache hits return
//     bit-identical results, asserted by tests/re/engine_test.cpp);
//   * caches for edge-compatibility matrices, strength diagrams, and
//     right-closed-set families (the sub-results every consumer used to
//     recompute from scratch);
//   * zero-round solvability caches for the three port models;
//   * a canonical-problem intern table (see canonical.hpp): fixed-point
//     detection reduces to "canonical form already interned";
//   * the durable StepStorage hook (see store/step_store.hpp).
// Any number of sessions, on any threads, may share one core; results are
// bit-identical to cold computes regardless of who warmed the cache.
//
// EngineSession is the cheap PER-REQUEST half: its own StepOptions, its own
// result arena backing the serial Rbar sweep, its own pass manager, and an
// observability scope (a session-local metric registry and tracer handle,
// see obs/scope.hpp) so concurrent requests produce attributable counter and
// span streams.  Creating a session performs a fixed, small amount of work
// (interning a handful of counter names, two empty arenas) -- it is meant to
// be done once per request, and session reuse re-uses the arenas.
//
// Lifetime and sharing rules (docs/architecture.md has the diagram):
//   * core outlives every session over it (sessions hold a shared_ptr, so
//     this is automatic);
//   * an attached obs::SessionScope must outlive the session;
//   * one session serves ONE logical client.  The engine's own fan-out may
//     run a session's work on many pool threads, and certifyChain-style
//     helpers may probe a session from worker lanes, but two independent
//     clients must each take their own session (sharing the core).
//   * the legacy EngineContext alias constructs a standalone session owning
//     a private core; for backward compatibility it keeps the serial-sweep
//     arena thread-local, so it remains safe to hammer one EngineContext
//     from many threads as the pre-split tests do.
//
// The speedup step itself is decomposed into composable passes with a
// uniform run(PassInput) -> PassOutput interface; PassManager chains them
// and records per-pass statistics (wall time, configurations in/out, labels
// in/out, cache provenance).  The default pipeline ApplyR -> ApplyRbar is
// bit-identical to the legacy free functions applyR/applyRbar/speedupStep
// in re_step.hpp, which remain as thin uncached wrappers.
//
// Thread-safety: core lookups and insertions are mutex-protected; a
// computation happens outside the lock, so two sessions missing the same key
// concurrently may both compute it (the first insert wins and the results
// are identical anyway).  Statistics counters -- the core-wide aggregate and
// each session's own view -- are updated under the same mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "re/canonical.hpp"
#include "re/diagram.hpp"
#include "re/re_step.hpp"

namespace relb::obs {
class Registry;
class SessionScope;
class Tracer;
}  // namespace relb::obs

namespace relb::re {

/// The pipeline's option block.  StepOptions carries exactly the knobs the
/// passes need (enumeration guards + fan-out width), so it *is* the pass
/// option type; the alias is the refactor seam promised in docs.
using PassOptions = StepOptions;

/// Counters for every cache.  `hits + misses` is the number of lookups;
/// `misses` is the number of times the underlying computation ran.  Both the
/// core-wide aggregate (EngineCore::stats) and each session's attributed
/// share (EngineSession::stats) use this shape; per session, a hit served
/// from another session's earlier work still counts as a hit here.
struct CacheStats {
  std::size_t stepHits = 0, stepMisses = 0;
  std::size_t edgeCompatHits = 0, edgeCompatMisses = 0;
  std::size_t strengthHits = 0, strengthMisses = 0;
  std::size_t rightClosedHits = 0, rightClosedMisses = 0;
  std::size_t zeroRoundHits = 0, zeroRoundMisses = 0;
  std::size_t canonicalHits = 0, canonicalMisses = 0;
  /// Distinct canonical forms interned so far (per session: interned by
  /// THIS session first).
  std::size_t internedProblems = 0;
  /// Attached-store traffic (zero when no store is attached).  A store hit
  /// fills the in-memory memo *without* counting a miss: "0 misses" in a
  /// warm-store run means zero recomputations.
  std::size_t storeHits = 0, storeMisses = 0, storeWrites = 0;

  [[nodiscard]] std::string describe() const;
};

/// Which zero-round analysis a cached verdict belongs to.
enum class ZeroRoundMode {
  kSymmetricPorts,
  kAdversarialPorts,
  kWithEdgeInputs,
};

/// Durable backing for the step memo and the zero-round cache.  An attached
/// storage is consulted on every in-memory miss and written through on every
/// computation, making results survive across processes (see
/// store/step_store.hpp for the on-disk implementation).
///
/// Contract:
///   * `hash` is structuralHash(input); implementations key on it but MUST
///     confirm equality against the stored input before reporting a hit (a
///     collision must degrade to a miss, never to a wrong answer).
///   * loadStep must only report a hit when the result is valid for
///     `options` (for Rbar: equal maxRbarDelta and enumerationLimit;
///     numThreads and arena never affect results and must be ignored).
///   * All methods may be called concurrently from engine worker threads.
///   * A load returning std::nullopt means "recompute"; corrupt entries
///     must not throw out of loads.
class StepStorage {
 public:
  virtual ~StepStorage() = default;

  /// `kind` is 0 for R, 1 for Rbar (matching the in-memory memo).
  [[nodiscard]] virtual std::optional<StepResult> loadStep(
      int kind, const Problem& input, std::uint64_t hash,
      const StepOptions& options) = 0;
  virtual void storeStep(int kind, const Problem& input, std::uint64_t hash,
                         const StepOptions& options,
                         const StepResult& result) = 0;

  [[nodiscard]] virtual std::optional<bool> loadZeroRound(
      ZeroRoundMode mode, const Problem& input, std::uint64_t hash) = 0;
  virtual void storeZeroRound(ZeroRoundMode mode, const Problem& input,
                              std::uint64_t hash, bool solvable) = 0;
};

/// The shared, thread-safe cache core.  Holds no per-request state: options,
/// arenas, and observability attribution all live in EngineSession.
class EngineCore {
 public:
  EngineCore();
  ~EngineCore();

  EngineCore(const EngineCore&) = delete;
  EngineCore& operator=(const EngineCore&) = delete;

  /// Attaches (or, with nullptr, detaches) a durable step store shared by
  /// every session over this core.  Attaching is transparent to every
  /// consumer: results are bit-identical with and without a store; only the
  /// stats change.  Safe to call at any time, but results cached in memory
  /// before attachment are not written back.
  void attachStore(std::shared_ptr<StepStorage> store);

  /// The currently attached store (nullptr when none).
  [[nodiscard]] std::shared_ptr<StepStorage> store() const;

  /// Aggregate cache traffic across every session that ever used this core.
  [[nodiscard]] CacheStats stats() const;
  void resetStats();

 private:
  friend class EngineSession;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The per-request session.  All speedup entry points live here; every
/// lookup and computation is recorded both in the shared core's aggregate
/// stats and in this session's own attributed stats/counters.
class EngineSession {
 public:
  /// Standalone session owning a private EngineCore -- the legacy
  /// EngineContext behavior.  Counters go to obs::Registry::global(), spans
  /// to obs::Tracer::global(), and the serial-sweep arena stays thread-local
  /// (safe to share this object across threads).
  explicit EngineSession(PassOptions options = {});

  /// Session over a shared core, optionally carrying an observability scope
  /// (nullptr: global registry/tracer).  Unless `options.arena` is already
  /// set, the serial Rbar sweep is backed by this session's own result arena
  /// -- allocation-stable across requests, but it makes the step entry
  /// points single-client (see the sharing rules above).
  explicit EngineSession(std::shared_ptr<EngineCore> core,
                         PassOptions options = {},
                         obs::SessionScope* scope = nullptr);
  ~EngineSession();

  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  [[nodiscard]] const PassOptions& options() const { return options_; }

  [[nodiscard]] EngineCore& core() { return *core_; }
  [[nodiscard]] const std::shared_ptr<EngineCore>& coreHandle() const {
    return core_;
  }

  /// The metric registry this session's counters land in (the scope's local
  /// registry, or the global one for scope-less sessions).
  [[nodiscard]] obs::Registry& registry() const { return *registry_; }
  /// The tracer this session's spans are emitted through.
  [[nodiscard]] obs::Tracer& tracer() const { return *tracer_; }

  /// Delegates to the shared core (kept on the session for source
  /// compatibility with the pre-split EngineContext).
  void attachStore(std::shared_ptr<StepStorage> store);

  // -- Memoized speedup operators (bit-identical to the free functions) ----

  [[nodiscard]] StepResult applyR(const Problem& p);
  [[nodiscard]] StepResult applyRbar(const Problem& p);
  [[nodiscard]] Problem speedupStep(const Problem& p);

  // -- Cached sub-results --------------------------------------------------

  /// Degree-2 compatibility matrix of an edge constraint (see re_step.hpp).
  [[nodiscard]] std::vector<LabelSet> edgeCompatibility(const Constraint& edge,
                                                        int alphabetSize);

  /// Strength relation of a constraint (see diagram.hpp); keyed by the
  /// constraint's structure and the enumeration limit.
  [[nodiscard]] StrengthRelation strength(const Constraint& constraint,
                                          int alphabetSize,
                                          std::size_t enumerationLimit);

  /// Non-empty right-closed subsets of `universe` under the strength
  /// relation of `constraint`.
  [[nodiscard]] std::vector<LabelSet> rightClosedSets(
      const Constraint& constraint, int alphabetSize, LabelSet universe,
      std::size_t enumerationLimit);

  // -- Cached zero-round analyses ------------------------------------------

  [[nodiscard]] bool zeroRoundSolvable(const Problem& p, ZeroRoundMode mode);

  // -- Canonical interning -------------------------------------------------

  struct InternResult {
    std::uint64_t hash = 0;
    /// True iff an identical canonical form was interned before this call
    /// (by any session sharing the core).
    bool alreadyInterned = false;
    CanonicalForm canonical;
  };

  /// Canonicalizes `p` (memoized by exact structure) and interns the
  /// canonical form.  Two problems equal up to label renaming intern to the
  /// same entry.  Throws Error when canonicalization refuses (see
  /// canonical.hpp); callers needing a fallback should catch it.
  [[nodiscard]] InternResult intern(const Problem& p);

  // -- Pass pipeline -------------------------------------------------------

  /// This session's pass manager (defaults to the speedup pipeline
  /// ApplyR -> ApplyRbar); replace or extend it per request.
  [[nodiscard]] class PassManager& pipeline() { return *pipeline_; }

  // -- Statistics ----------------------------------------------------------

  /// This session's attributed cache traffic.
  [[nodiscard]] CacheStats stats() const;
  /// Resets this session's view only (the core aggregate is untouched).
  void resetStats();

 private:
  struct ObsHooks;       // interned counter references (engine.cpp)
  struct SessionArenas;  // serial-sweep result arena (engine.cpp)

  std::shared_ptr<EngineCore> core_;
  PassOptions options_;
  obs::Registry* registry_;
  obs::Tracer* tracer_;
  std::unique_ptr<ObsHooks> obs_;
  std::unique_ptr<SessionArenas> arenas_;
  std::unique_ptr<class PassManager> pipeline_;
  /// Session-attributed stats; guarded by the core's mutex (every update
  /// site already holds it).
  CacheStats stats_;
};

// ---------------------------------------------------------------------------
// Pass pipeline
// ---------------------------------------------------------------------------

struct PassInput {
  const Problem& problem;
  EngineSession& context;
  const PassOptions& options;
};

struct PassOutput {
  Problem problem;
  /// Set by the R / Rbar passes: meaning[newLabel] = set of input labels.
  std::optional<std::vector<LabelSet>> meaning;
  /// A pass may stop the pipeline (e.g. ZeroRoundCheck on a solvable
  /// problem); the manager records the stop and skips the remaining passes.
  bool stop = false;
  /// Free-form annotation copied into the pass's stats row.
  std::string note;
};

/// Per-pass observability record, filled by PassManager.
struct PassStats {
  std::string name;
  std::int64_t wallMicros = 0;
  int labelsIn = 0;
  int labelsOut = 0;
  std::size_t nodeConfigsIn = 0;
  std::size_t nodeConfigsOut = 0;
  std::size_t edgeConfigsIn = 0;
  std::size_t edgeConfigsOut = 0;
  /// True iff the pass was served from the step memo.
  bool fromCache = false;
  std::string note;
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual PassOutput run(const PassInput& in) = 0;
};

struct PipelineResult {
  Problem problem;
  std::vector<PassStats> passes;
  /// True iff some pass requested a stop; `stoppedAt` is its index.
  bool stopped = false;
  std::size_t stoppedAt = 0;

  /// Renders the per-pass table printed by `round_eliminator_cli --stats`.
  [[nodiscard]] std::string renderStatsTable() const;
};

class PassManager {
 public:
  PassManager() = default;
  PassManager(PassManager&&) = default;
  PassManager& operator=(PassManager&&) = default;

  PassManager& add(std::unique_ptr<Pass> pass);
  [[nodiscard]] std::size_t size() const { return passes_.size(); }

  /// Runs the pipeline on `p`, using (and warming) the session's caches.
  [[nodiscard]] PipelineResult run(const Problem& p,
                                   EngineSession& session) const;

  /// The default speedup pipeline ApplyR -> ApplyRbar: bit-identical to
  /// re_step.hpp's speedupStep.
  [[nodiscard]] static PassManager speedupPipeline();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Built-in pass factories.
[[nodiscard]] std::unique_ptr<Pass> makeApplyRPass();
[[nodiscard]] std::unique_ptr<Pass> makeApplyRbarPass();
/// Renames the problem to its canonical form (synthetic label names).
[[nodiscard]] std::unique_ptr<Pass> makeRenamePass();
/// Drops configurations dominated by another configuration of the same
/// constraint (language unchanged).
[[nodiscard]] std::unique_ptr<Pass> makeRelaxPass();
/// Annotates zero-round solvability (cached); stops the pipeline when the
/// problem is solvable in the given model.
[[nodiscard]] std::unique_ptr<Pass> makeZeroRoundCheckPass(
    ZeroRoundMode mode = ZeroRoundMode::kAdversarialPorts);

}  // namespace relb::re
