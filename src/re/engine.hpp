// The pass-based engine core: EngineContext + PassManager.
//
// EngineContext owns every cache the speedup machinery can share:
//   * a step memo (applyR / applyRbar / speedupStep results keyed by the
//     exact structural hash of the input problem -- cache hits return
//     bit-identical results, asserted by tests/re/engine_test.cpp);
//   * per-context caches for edge-compatibility matrices, strength
//     diagrams, and right-closed-set families (the sub-results every
//     consumer used to recompute from scratch);
//   * zero-round solvability caches for the three port models;
//   * a canonical-problem intern table (see canonical.hpp): fixed-point
//     detection reduces to "canonical form already interned".
//
// The speedup step itself is decomposed into composable passes with a
// uniform run(PassInput) -> PassOutput interface; PassManager chains them
// and records per-pass statistics (wall time, configurations in/out, labels
// in/out, cache provenance).  The default pipeline ApplyR -> ApplyRbar is
// bit-identical to the legacy free functions applyR/applyRbar/speedupStep
// in re_step.hpp, which remain as thin uncached wrappers.
//
// Thread-safety: an EngineContext may be shared by the deterministic
// fan-out helpers in util/thread_pool.hpp.  Lookups and insertions are
// mutex-protected; a computation happens outside the lock, so two threads
// missing the same key concurrently may both compute it (the first insert
// wins and the results are identical anyway).  Statistics counters are
// updated under the same mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "re/canonical.hpp"
#include "re/diagram.hpp"
#include "re/re_step.hpp"

namespace relb::re {

/// The pipeline's option block.  StepOptions carries exactly the knobs the
/// passes need (enumeration guards + fan-out width), so it *is* the pass
/// option type; the alias is the refactor seam promised in docs.
using PassOptions = StepOptions;

/// Counters for every per-context cache.  `hits + misses` is the number of
/// lookups; `misses` is the number of times the underlying computation ran.
struct CacheStats {
  std::size_t stepHits = 0, stepMisses = 0;
  std::size_t edgeCompatHits = 0, edgeCompatMisses = 0;
  std::size_t strengthHits = 0, strengthMisses = 0;
  std::size_t rightClosedHits = 0, rightClosedMisses = 0;
  std::size_t zeroRoundHits = 0, zeroRoundMisses = 0;
  std::size_t canonicalHits = 0, canonicalMisses = 0;
  /// Distinct canonical forms interned so far.
  std::size_t internedProblems = 0;
  /// Attached-store traffic (zero when no store is attached).  A store hit
  /// fills the in-memory memo *without* counting a miss: "0 misses" in a
  /// warm-store run means zero recomputations.
  std::size_t storeHits = 0, storeMisses = 0, storeWrites = 0;

  [[nodiscard]] std::string describe() const;
};

/// Which zero-round analysis a cached verdict belongs to.
enum class ZeroRoundMode {
  kSymmetricPorts,
  kAdversarialPorts,
  kWithEdgeInputs,
};

/// Durable backing for the step memo and the zero-round cache.  An attached
/// storage is consulted on every in-memory miss and written through on every
/// computation, making results survive across processes (see
/// store/step_store.hpp for the on-disk implementation).
///
/// Contract:
///   * `hash` is structuralHash(input); implementations key on it but MUST
///     confirm equality against the stored input before reporting a hit (a
///     collision must degrade to a miss, never to a wrong answer).
///   * loadStep must only report a hit when the result is valid for
///     `options` (for Rbar: equal maxRbarDelta and enumerationLimit;
///     numThreads never affects results and must be ignored).
///   * All methods may be called concurrently from engine worker threads.
///   * A load returning std::nullopt means "recompute"; corrupt entries
///     must not throw out of loads.
class StepStorage {
 public:
  virtual ~StepStorage() = default;

  /// `kind` is 0 for R, 1 for Rbar (matching the in-memory memo).
  [[nodiscard]] virtual std::optional<StepResult> loadStep(
      int kind, const Problem& input, std::uint64_t hash,
      const StepOptions& options) = 0;
  virtual void storeStep(int kind, const Problem& input, std::uint64_t hash,
                         const StepOptions& options,
                         const StepResult& result) = 0;

  [[nodiscard]] virtual std::optional<bool> loadZeroRound(
      ZeroRoundMode mode, const Problem& input, std::uint64_t hash) = 0;
  virtual void storeZeroRound(ZeroRoundMode mode, const Problem& input,
                              std::uint64_t hash, bool solvable) = 0;
};

class EngineContext {
 public:
  explicit EngineContext(PassOptions options = {});
  ~EngineContext();

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  [[nodiscard]] const PassOptions& options() const { return options_; }

  /// Attaches (or, with nullptr, detaches) a durable step store.  Attaching
  /// is transparent to every consumer: results are bit-identical with and
  /// without a store; only the stats change.  Safe to call at any time, but
  /// results cached in memory before attachment are not written back.
  void attachStore(std::shared_ptr<StepStorage> store);

  // -- Memoized speedup operators (bit-identical to the free functions) ----

  [[nodiscard]] StepResult applyR(const Problem& p);
  [[nodiscard]] StepResult applyRbar(const Problem& p);
  [[nodiscard]] Problem speedupStep(const Problem& p);

  // -- Cached sub-results --------------------------------------------------

  /// Degree-2 compatibility matrix of an edge constraint (see re_step.hpp).
  [[nodiscard]] std::vector<LabelSet> edgeCompatibility(const Constraint& edge,
                                                        int alphabetSize);

  /// Strength relation of a constraint (see diagram.hpp); keyed by the
  /// constraint's structure and the enumeration limit.
  [[nodiscard]] StrengthRelation strength(const Constraint& constraint,
                                          int alphabetSize,
                                          std::size_t enumerationLimit);

  /// Non-empty right-closed subsets of `universe` under the strength
  /// relation of `constraint`.
  [[nodiscard]] std::vector<LabelSet> rightClosedSets(
      const Constraint& constraint, int alphabetSize, LabelSet universe,
      std::size_t enumerationLimit);

  // -- Cached zero-round analyses ------------------------------------------

  [[nodiscard]] bool zeroRoundSolvable(const Problem& p, ZeroRoundMode mode);

  // -- Canonical interning -------------------------------------------------

  struct InternResult {
    std::uint64_t hash = 0;
    /// True iff an identical canonical form was interned before this call.
    bool alreadyInterned = false;
    CanonicalForm canonical;
  };

  /// Canonicalizes `p` (memoized by exact structure) and interns the
  /// canonical form.  Two problems equal up to label renaming intern to the
  /// same entry.  Throws Error when canonicalization refuses (see
  /// canonical.hpp); callers needing a fallback should catch it.
  [[nodiscard]] InternResult intern(const Problem& p);

  // -- Statistics ----------------------------------------------------------

  [[nodiscard]] CacheStats stats() const;
  void resetStats();

 private:
  struct Impl;
  PassOptions options_;
  std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// Pass pipeline
// ---------------------------------------------------------------------------

struct PassInput {
  const Problem& problem;
  EngineContext& context;
  const PassOptions& options;
};

struct PassOutput {
  Problem problem;
  /// Set by the R / Rbar passes: meaning[newLabel] = set of input labels.
  std::optional<std::vector<LabelSet>> meaning;
  /// A pass may stop the pipeline (e.g. ZeroRoundCheck on a solvable
  /// problem); the manager records the stop and skips the remaining passes.
  bool stop = false;
  /// Free-form annotation copied into the pass's stats row.
  std::string note;
};

/// Per-pass observability record, filled by PassManager.
struct PassStats {
  std::string name;
  std::int64_t wallMicros = 0;
  int labelsIn = 0;
  int labelsOut = 0;
  std::size_t nodeConfigsIn = 0;
  std::size_t nodeConfigsOut = 0;
  std::size_t edgeConfigsIn = 0;
  std::size_t edgeConfigsOut = 0;
  /// True iff the pass was served from the context's step memo.
  bool fromCache = false;
  std::string note;
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual PassOutput run(const PassInput& in) = 0;
};

struct PipelineResult {
  Problem problem;
  std::vector<PassStats> passes;
  /// True iff some pass requested a stop; `stoppedAt` is its index.
  bool stopped = false;
  std::size_t stoppedAt = 0;

  /// Renders the per-pass table printed by `round_eliminator_cli --stats`.
  [[nodiscard]] std::string renderStatsTable() const;
};

class PassManager {
 public:
  PassManager() = default;
  PassManager(PassManager&&) = default;
  PassManager& operator=(PassManager&&) = default;

  PassManager& add(std::unique_ptr<Pass> pass);
  [[nodiscard]] std::size_t size() const { return passes_.size(); }

  /// Runs the pipeline on `p`, using (and warming) the context's caches.
  [[nodiscard]] PipelineResult run(const Problem& p, EngineContext& ctx) const;

  /// The default speedup pipeline ApplyR -> ApplyRbar: bit-identical to
  /// re_step.hpp's speedupStep.
  [[nodiscard]] static PassManager speedupPipeline();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Built-in pass factories.
[[nodiscard]] std::unique_ptr<Pass> makeApplyRPass();
[[nodiscard]] std::unique_ptr<Pass> makeApplyRbarPass();
/// Renames the problem to its canonical form (synthetic label names).
[[nodiscard]] std::unique_ptr<Pass> makeRenamePass();
/// Drops configurations dominated by another configuration of the same
/// constraint (language unchanged).
[[nodiscard]] std::unique_ptr<Pass> makeRelaxPass();
/// Annotates zero-round solvability (cached); stops the pipeline when the
/// problem is solvable in the given model.
[[nodiscard]] std::unique_ptr<Pass> makeZeroRoundCheckPass(
    ZeroRoundMode mode = ZeroRoundMode::kAdversarialPorts);

}  // namespace relb::re
