// LabelSet: a small, value-semantic set of labels backed by a 32-bit bitset.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "re/types.hpp"

namespace relb::re {

/// A set of labels (indices < kMaxLabels).  Cheap to copy and hash.
class LabelSet {
 public:
  constexpr LabelSet() = default;
  constexpr explicit LabelSet(std::uint32_t bits) : bits_(bits) {}
  constexpr LabelSet(std::initializer_list<Label> labels) {
    for (Label l : labels) insert(l);
  }

  /// The set {0, 1, ..., n-1}.
  static constexpr LabelSet full(int n) {
    assert(n >= 0 && n <= kMaxLabels);
    return LabelSet(n == 32 ? ~std::uint32_t{0}
                            : ((std::uint32_t{1} << n) - 1));
  }
  static constexpr LabelSet single(Label l) { return LabelSet{l}; }

  constexpr void insert(Label l) {
    assert(l < kMaxLabels);
    bits_ |= (std::uint32_t{1} << l);
  }
  constexpr void erase(Label l) {
    assert(l < kMaxLabels);
    bits_ &= ~(std::uint32_t{1} << l);
  }
  [[nodiscard]] constexpr bool contains(Label l) const {
    assert(l < kMaxLabels);
    return (bits_ >> l) & 1u;
  }

  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr int size() const { return __builtin_popcount(bits_); }
  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }

  [[nodiscard]] constexpr bool subsetOf(LabelSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  [[nodiscard]] constexpr bool properSubsetOf(LabelSet other) const {
    return subsetOf(other) && bits_ != other.bits_;
  }
  [[nodiscard]] constexpr bool intersects(LabelSet other) const {
    return (bits_ & other.bits_) != 0;
  }

  friend constexpr LabelSet operator|(LabelSet a, LabelSet b) {
    return LabelSet(a.bits_ | b.bits_);
  }
  friend constexpr LabelSet operator&(LabelSet a, LabelSet b) {
    return LabelSet(a.bits_ & b.bits_);
  }
  friend constexpr LabelSet operator-(LabelSet a, LabelSet b) {
    return LabelSet(a.bits_ & ~b.bits_);
  }
  friend constexpr bool operator==(LabelSet a, LabelSet b) = default;
  friend constexpr bool operator<(LabelSet a, LabelSet b) {
    return a.bits_ < b.bits_;
  }

  /// Smallest label in the set; set must be non-empty.
  [[nodiscard]] constexpr Label min() const {
    assert(!empty());
    return static_cast<Label>(__builtin_ctz(bits_));
  }

  /// Labels in increasing order.
  [[nodiscard]] std::vector<Label> toVector() const {
    std::vector<Label> out;
    out.reserve(static_cast<std::size_t>(size()));
    for (std::uint32_t b = bits_; b != 0; b &= b - 1) {
      out.push_back(static_cast<Label>(__builtin_ctz(b)));
    }
    return out;
  }

 private:
  std::uint32_t bits_ = 0;
};

/// Iteration helper: applies `fn(Label)` to every member of `s`.
template <typename Fn>
void forEachLabel(LabelSet s, Fn&& fn) {
  for (std::uint32_t b = s.bits(); b != 0; b &= b - 1) {
    fn(static_cast<Label>(__builtin_ctz(b)));
  }
}

}  // namespace relb::re

template <>
struct std::hash<relb::re::LabelSet> {
  std::size_t operator()(relb::re::LabelSet s) const noexcept {
    return std::hash<std::uint32_t>{}(s.bits());
  }
};
