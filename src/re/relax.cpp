#include "re/relax.hpp"

#include <array>

namespace relb::re {

bool isZeroRoundRelabeling(const Problem& from, const Problem& to,
                           const std::vector<Label>& map, std::size_t limit) {
  if (map.size() != static_cast<std::size_t>(from.alphabet.size())) {
    throw Error("isZeroRoundRelabeling: map size mismatch");
  }
  for (Label l : map) {
    if (l >= to.alphabet.size()) {
      throw Error("isZeroRoundRelabeling: map target out of range");
    }
  }
  if (from.node.degree() != to.node.degree()) return false;
  // Per-source-label target bit, precomputed once; mapping a set is then an
  // OR over its members.
  std::array<std::uint32_t, kMaxLabels> targetBit{};
  for (std::size_t l = 0; l < map.size(); ++l) {
    targetBit[l] = std::uint32_t{1} << map[l];
  }
  const auto mapSet = [&](LabelSet s) {
    std::uint32_t out = 0;
    forEachLabel(s, [&](Label l) { out |= targetBit[l]; });
    return LabelSet(out);
  };
  for (const auto& c : from.node.configurations()) {
    if (!to.node.containsAllWordsOf(c.mapSets(mapSet), to.alphabet.size(),
                                    limit)) {
      return false;
    }
  }
  for (const auto& c : from.edge.configurations()) {
    if (!to.edge.containsAllWordsOf(c.mapSets(mapSet), to.alphabet.size(),
                                    limit)) {
      return false;
    }
  }
  return true;
}

}  // namespace relb::re
