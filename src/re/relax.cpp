#include "re/relax.hpp"

namespace relb::re {

bool isZeroRoundRelabeling(const Problem& from, const Problem& to,
                           const std::vector<Label>& map, std::size_t limit) {
  if (map.size() != static_cast<std::size_t>(from.alphabet.size())) {
    throw Error("isZeroRoundRelabeling: map size mismatch");
  }
  for (Label l : map) {
    if (l >= to.alphabet.size()) {
      throw Error("isZeroRoundRelabeling: map target out of range");
    }
  }
  if (from.node.degree() != to.node.degree()) return false;
  const auto mapSet = [&](LabelSet s) {
    LabelSet out;
    forEachLabel(s, [&](Label l) { out.insert(map[l]); });
    return out;
  };
  for (const auto& c : from.node.configurations()) {
    if (!to.node.containsAllWordsOf(c.mapSets(mapSet), to.alphabet.size(),
                                    limit)) {
      return false;
    }
  }
  for (const auto& c : from.edge.configurations()) {
    if (!to.edge.containsAllWordsOf(c.mapSets(mapSet), to.alphabet.size(),
                                    limit)) {
      return false;
    }
  }
  return true;
}

}  // namespace relb::re
