#include "re/configuration.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <functional>
#include <map>
#include <numeric>
#include <set>

#include "re/flow.hpp"

namespace relb::re {

Count wordDegree(const Word& w) {
  return std::accumulate(w.begin(), w.end(), Count{0});
}

Word wordFromLabels(const std::vector<Label>& labels, int alphabetSize) {
  Word w(static_cast<std::size_t>(alphabetSize), 0);
  for (Label l : labels) {
    if (l >= alphabetSize) throw Error("wordFromLabels: label out of range");
    ++w[l];
  }
  return w;
}

Configuration::Configuration(std::vector<Group> groups) {
  groups_.reserve(groups.size());
  for (const Group& g : groups) {
    if (g.count < 0) throw Error("Configuration: negative exponent");
    if (g.count == 0) continue;
    if (g.set.empty()) throw Error("Configuration: empty label set in group");
    groups_.push_back(g);
  }
  // Normalize in place (sort by set, merge equal sets) -- equivalent to the
  // obvious std::map<LabelSet, Count> but without node allocations; these
  // constructions are hot in the step and zero-round paths.
  std::sort(groups_.begin(), groups_.end(),
            [](const Group& a, const Group& b) { return a.set < b.set; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < groups_.size();) {
    Group merged = groups_[i];
    for (++i; i < groups_.size() && groups_[i].set == merged.set; ++i) {
      merged.count += groups_[i].count;
    }
    degree_ += merged.count;
    groups_[out++] = merged;
  }
  groups_.resize(out);
}

Configuration Configuration::fromWord(const Word& w) {
  std::vector<Group> groups;
  for (std::size_t l = 0; l < w.size(); ++l) {
    if (w[l] > 0) {
      groups.push_back({LabelSet::single(static_cast<Label>(l)), w[l]});
    }
  }
  return Configuration(std::move(groups));
}

LabelSet Configuration::support() const {
  LabelSet s;
  for (const Group& g : groups_) s = s | g.set;
  return s;
}

bool Configuration::matchesWord(const Word& w) const {
  if (wordDegree(w) != degree_) return false;
  if (degree_ == 0) return true;
  // Nodes: 0 = source, 1..L = labels, L+1..L+G = groups, L+G+1 = sink.
  const int numLabels = static_cast<int>(w.size());
  const int numGroups = static_cast<int>(groups_.size());
  const int source = 0;
  const int sink = numLabels + numGroups + 1;
  MaxFlow flow(sink + 1);
  for (int l = 0; l < numLabels; ++l) {
    if (w[static_cast<std::size_t>(l)] > 0) {
      flow.addEdge(source, 1 + l, w[static_cast<std::size_t>(l)]);
    }
  }
  for (int g = 0; g < numGroups; ++g) {
    const Group& group = groups_[static_cast<std::size_t>(g)];
    flow.addEdge(1 + numLabels + g, sink, group.count);
    forEachLabel(group.set, [&](Label l) {
      if (l < numLabels && w[l] > 0) {
        flow.addEdge(1 + l, 1 + numLabels + g, group.count);
      }
    });
  }
  return flow.solve(source, sink) == degree_;
}

bool Configuration::intersects(const Configuration& other) const {
  if (degree_ != other.degree_) return false;
  if (degree_ == 0) return true;
  if (!support().intersects(other.support())) return false;
  // Tripartite flow: source -> my groups -> labels -> other's groups -> sink.
  const LabelSet common = support() & other.support();
  const auto labels = common.toVector();
  const int numLabels = static_cast<int>(labels.size());
  const int gMine = static_cast<int>(groups_.size());
  const int gOther = static_cast<int>(other.groups_.size());
  const int source = 0;
  const int sink = gMine + numLabels + gOther + 1;
  MaxFlow flow(sink + 1);
  std::array<int, kMaxLabels> labelNode{};
  labelNode.fill(-1);
  for (int i = 0; i < numLabels; ++i) {
    labelNode[labels[static_cast<std::size_t>(i)]] = 1 + gMine + i;
  }
  for (int g = 0; g < gMine; ++g) {
    const Group& group = groups_[static_cast<std::size_t>(g)];
    flow.addEdge(source, 1 + g, group.count);
    forEachLabel(group.set & common, [&](Label l) {
      flow.addEdge(1 + g, labelNode[l], group.count);
    });
  }
  for (int h = 0; h < gOther; ++h) {
    const Group& group = other.groups_[static_cast<std::size_t>(h)];
    flow.addEdge(1 + gMine + numLabels + h, sink, group.count);
    forEachLabel(group.set & common, [&](Label l) {
      flow.addEdge(labelNode[l], 1 + gMine + numLabels + h, group.count);
    });
  }
  return flow.solve(source, sink) == degree_;
}

bool Configuration::relaxesTo(const Configuration& other) const {
  if (degree_ != other.degree_) return false;
  if (degree_ == 0) return true;
  // Bipartite flow between my groups and other's groups; a slot of my group g
  // may map to a slot of other's group h iff g.set is a subset of h.set.
  const int gMine = static_cast<int>(groups_.size());
  const int gOther = static_cast<int>(other.groups_.size());
  const int source = 0;
  const int sink = gMine + gOther + 1;
  MaxFlow flow(sink + 1);
  for (int g = 0; g < gMine; ++g) {
    flow.addEdge(source, 1 + g, groups_[static_cast<std::size_t>(g)].count);
    for (int h = 0; h < gOther; ++h) {
      if (groups_[static_cast<std::size_t>(g)].set.subsetOf(
              other.groups_[static_cast<std::size_t>(h)].set)) {
        flow.addEdge(1 + g, 1 + gMine + h,
                     groups_[static_cast<std::size_t>(g)].count);
      }
    }
  }
  for (int h = 0; h < gOther; ++h) {
    flow.addEdge(1 + gMine + h, sink,
                 other.groups_[static_cast<std::size_t>(h)].count);
  }
  return flow.solve(source, sink) == degree_;
}

bool Configuration::containsAllWordsOf(const Configuration& other) const {
  if (degree_ != other.degree_) return false;
  if (!other.support().subsetOf(support())) return false;
  // Sufficient groupwise criterion: embed other's groups into mine with set
  // inclusion (this is exactly other.relaxesTo(*this)).
  if (other.relaxesTo(*this)) return true;
  // Exact fallback: enumerate other's words.  The alphabet size is taken as
  // the largest label mentioned plus one.
  const int alphabetSize = [&] {
    LabelSet all = support() | other.support();
    return all.empty() ? 1 : all.toVector().back() + 1;
  }();
  bool all = true;
  other.forEachWord(alphabetSize, [&](const Word& w) {
    if (all && !matchesWord(w)) all = false;
  });
  return all;
}

void Configuration::forEachWord(int alphabetSize,
                                const std::function<void(const Word&)>& fn,
                                std::size_t limit) const {
  // Delegates to the template overload; kept out of line so ABI-stable
  // callers holding an erased callback keep a non-inline entry point.
  forEachWord(
      alphabetSize, [&fn](const Word& w) { fn(w); }, limit);
}

std::size_t Configuration::countWords(int alphabetSize,
                                      std::size_t limit) const {
  std::size_t count = 0;
  try {
    forEachWord(
        alphabetSize, [&](const Word&) { ++count; }, limit);
  } catch (const Error&) {
    return limit + 1;
  }
  return count;
}

std::size_t Configuration::countWordsUpperBound(std::size_t cap) const {
  // Multiset coefficient C(s + c - 1, c) per group, saturating at cap.
  const auto saturated = cap + 1;
  std::size_t total = 1;
  for (const Group& g : groups_) {
    const std::size_t s = static_cast<std::size_t>(g.set.size());
    std::size_t per = 1;
    // C(s + c - 1, c) = prod_{i=1..s-1} (c + i) / i.
    for (std::size_t i = 1; i < s; ++i) {
      const double estimate = static_cast<double>(per) *
                              (static_cast<double>(g.count) + i) /
                              static_cast<double>(i);
      if (estimate > static_cast<double>(saturated)) {
        per = saturated;
        break;
      }
      per = per * (static_cast<std::size_t>(g.count) + i) / i;
    }
    const double combined = static_cast<double>(total) * static_cast<double>(per);
    if (combined > static_cast<double>(saturated)) return saturated;
    total *= per;
  }
  return total;
}

std::string Configuration::render(const Alphabet& alphabet) const {
  if (groups_.empty()) return "(empty)";
  std::string out;
  bool first = true;
  for (const Group& g : groups_) {
    if (!first) out += ' ';
    first = false;
    out += alphabet.render(g.set);
    if (g.count != 1) {
      out += '^';
      out += std::to_string(g.count);
    }
  }
  return out;
}

}  // namespace relb::re
