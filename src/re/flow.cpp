#include "re/flow.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace relb::re {

MaxFlow::MaxFlow(int numNodes)
    : adj_(static_cast<std::size_t>(numNodes)),
      level_(static_cast<std::size_t>(numNodes)),
      iter_(static_cast<std::size_t>(numNodes)) {
  assert(numNodes >= 2);
}

void MaxFlow::addEdge(int from, int to, Count capacity) {
  assert(capacity >= 0);
  assert(from >= 0 && from < static_cast<int>(adj_.size()));
  assert(to >= 0 && to < static_cast<int>(adj_.size()));
  const auto fromSize = static_cast<int>(adj_[static_cast<std::size_t>(from)].size());
  const auto toSize = static_cast<int>(adj_[static_cast<std::size_t>(to)].size());
  adj_[static_cast<std::size_t>(from)].push_back({to, capacity, toSize});
  adj_[static_cast<std::size_t>(to)].push_back({from, 0, fromSize});
}

bool MaxFlow::bfs(int source, int sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::deque<int> queue;
  level_[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (const Edge& e : adj_[static_cast<std::size_t>(v)]) {
      if (e.cap > 0 && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

Count MaxFlow::dfs(int v, int sink, Count limit) {
  if (v == sink) return limit;
  auto& it = iter_[static_cast<std::size_t>(v)];
  auto& edges = adj_[static_cast<std::size_t>(v)];
  for (; it < static_cast<int>(edges.size()); ++it) {
    Edge& e = edges[static_cast<std::size_t>(it)];
    if (e.cap <= 0 || level_[static_cast<std::size_t>(v)] >=
                          level_[static_cast<std::size_t>(e.to)]) {
      continue;
    }
    const Count pushed = dfs(e.to, sink, std::min(limit, e.cap));
    if (pushed > 0) {
      e.cap -= pushed;
      adj_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
          .cap += pushed;
      return pushed;
    }
  }
  return 0;
}

Count MaxFlow::solve(int source, int sink) {
  assert(source != sink);
  Count flow = 0;
  while (bfs(source, sink)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const Count pushed =
          dfs(source, sink, std::numeric_limits<Count>::max());
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

}  // namespace relb::re
