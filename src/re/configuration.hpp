// Condensed configurations: the engine's representation of (collections of)
// node / edge configurations.
//
// A configuration in the round-elimination formalism is a multiset of labels
// of length equal to the degree (Delta for node configurations, 2 for edge
// configurations).  A *condensed* configuration is a list of (label-set,
// exponent) groups, e.g. the paper's  M^{Delta-x} X^x  or  [PQ][OUABPQ]^{Delta-1},
// and denotes the set of all words obtained by picking, for every slot of
// every group, one label from the group's set.  Exponents are 64-bit, so node
// constraints of trees with astronomically large degree stay polynomial-size.
#pragma once

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "re/alphabet.hpp"
#include "re/label_set.hpp"
#include "re/types.hpp"

namespace relb::re {

/// A word is a multiset of labels, stored as a per-label count vector whose
/// size is the alphabet size.  The sum of the counts is the word's degree.
using Word = std::vector<Count>;

[[nodiscard]] Count wordDegree(const Word& w);

/// Builds a count vector from an explicit list of labels.
[[nodiscard]] Word wordFromLabels(const std::vector<Label>& labels,
                                  int alphabetSize);

/// One group of a condensed configuration: `count` slots, each of which may
/// hold any label from `set`.
struct Group {
  LabelSet set;
  Count count = 0;

  friend bool operator==(const Group&, const Group&) = default;
  friend bool operator<(const Group& a, const Group& b) {
    if (a.set != b.set) return a.set < b.set;
    return a.count < b.count;
  }
};

/// A condensed configuration.  Always kept normalized: groups with equal sets
/// merged, zero-count groups dropped, groups sorted by set.  Two condensed
/// configurations compare equal iff their normal forms coincide (note this is
/// syntactic equality, not language equality).
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<Group> groups);

  /// Convenience: configuration that is a plain word (each label a singleton
  /// group).
  static Configuration fromWord(const Word& w);

  [[nodiscard]] const std::vector<Group>& groups() const { return groups_; }
  [[nodiscard]] Count degree() const { return degree_; }
  [[nodiscard]] bool empty() const { return groups_.empty(); }

  /// Union of all group sets: the labels that may appear in some word.
  [[nodiscard]] LabelSet support() const;

  /// True iff the word `w` (count vector) is one of the words denoted by this
  /// configuration.  Decided by bipartite max-flow; exact for any exponents.
  [[nodiscard]] bool matchesWord(const Word& w) const;

  /// True iff this configuration and `other` denote at least one common word.
  /// Decided by a tripartite flow; exact for any exponents.  Degrees must
  /// match (otherwise trivially false).
  [[nodiscard]] bool intersects(const Configuration& other) const;

  /// True iff *every* word denoted by `other` is denoted by this
  /// configuration.  (Single-configuration language inclusion; used by tests
  /// and simplification heuristics.)  Decided exactly via a greedy
  /// group-matching criterion validated against enumeration in the tests.
  [[nodiscard]] bool containsAllWordsOf(const Configuration& other) const;

  /// Definition 7 (condensed form): true iff `other` is a relaxation of this
  /// configuration, i.e. there is a slot-preserving assignment of this
  /// configuration's groups to `other`'s groups such that every slot's set
  /// grows (set inclusion).  Decided by max-flow.
  [[nodiscard]] bool relaxesTo(const Configuration& other) const;

  /// Applies `fn : LabelSet -> LabelSet` to every group's set and
  /// renormalizes.  Used by the replacement method of R / Rbar and by
  /// renaming.
  template <typename Fn>
  [[nodiscard]] Configuration mapSets(Fn&& fn) const {
    std::vector<Group> out;
    out.reserve(groups_.size());
    for (const Group& g : groups_) out.push_back({fn(g.set), g.count});
    return Configuration(std::move(out));
  }

  /// Enumerates every word denoted by this configuration, invoking
  /// `fn(const Word&)` once per distinct word.  Throws Error if the number of
  /// words would exceed `limit`.
  ///
  /// The template overload binds the callback statically -- no per-word
  /// type erasure on the enumeration hot paths (strength computation, R-bar
  /// word checks).  The std::function overload remains out-of-line for
  /// ABI-stable callers holding an erased callback.
  template <typename Fn>
  void forEachWord(int alphabetSize, Fn&& fn,
                   std::size_t limit = 5'000'000) const;
  void forEachWord(int alphabetSize, const std::function<void(const Word&)>& fn,
                   std::size_t limit) const;

  /// Number of distinct words denoted (capped at `limit`).
  [[nodiscard]] std::size_t countWords(int alphabetSize,
                                       std::size_t limit) const;

  /// Cheap upper bound on the number of distinct words (product of per-group
  /// multiset counts), saturated at `cap`.  Pure arithmetic; used to skip
  /// hopeless enumerations.
  [[nodiscard]] std::size_t countWordsUpperBound(std::size_t cap) const;

  [[nodiscard]] std::string render(const Alphabet& alphabet) const;

  friend bool operator==(const Configuration&, const Configuration&) = default;
  friend bool operator<(const Configuration& a, const Configuration& b) {
    return a.groups_ < b.groups_;
  }

 private:
  std::vector<Group> groups_;
  Count degree_ = 0;
};

namespace detail {

/// Enumerates multisets of size `count` from `labels`, accumulating the
/// per-label counts into `acc` and invoking `fn()` per completed multiset.
template <typename Fn>
void forEachMultiset(const std::vector<Label>& labels, Count count, Word& acc,
                     std::size_t idx, Fn&& fn) {
  if (idx + 1 == labels.size()) {
    acc[labels[idx]] += count;
    fn();
    acc[labels[idx]] -= count;
    return;
  }
  for (Count take = 0; take <= count; ++take) {
    acc[labels[idx]] += take;
    forEachMultiset(labels, count - take, acc, idx + 1, fn);
    acc[labels[idx]] -= take;
  }
}

}  // namespace detail

template <typename Fn>
void Configuration::forEachWord(int alphabetSize, Fn&& fn,
                                std::size_t limit) const {
  if (!support().subsetOf(LabelSet::full(alphabetSize))) {
    throw Error("forEachWord: configuration mentions labels outside alphabet");
  }
  std::set<Word> seen;
  Word acc(static_cast<std::size_t>(alphabetSize), 0);
  const auto rec = [&](const auto& self, std::size_t groupIdx) -> void {
    if (groupIdx == groups_.size()) {
      if (seen.insert(acc).second) {
        if (seen.size() > limit) {
          throw Error("forEachWord: word count exceeds limit");
        }
        fn(acc);
      }
      return;
    }
    const Group& g = groups_[groupIdx];
    const auto labels = g.set.toVector();
    if (g.count > 1'000'000) {
      throw Error("forEachWord: exponent too large to enumerate");
    }
    detail::forEachMultiset(labels, g.count, acc, 0,
                            [&] { self(self, groupIdx + 1); });
  };
  rec(rec, 0);
}

}  // namespace relb::re
