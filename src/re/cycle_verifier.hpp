// Exact T-round solvability on cycles (Delta = 2) in the port-numbering
// model with edge ports -- an independent, brute-force ground truth for the
// speedup theorem (Theorem 3) that the whole lower-bound machinery rests on.
//
// Model.  Nodes of a long cycle carry two ports (0, 1); every edge carries
// an orientation (which endpoint is its side 0).  These are exactly the
// inputs of the paper's PN model (Section 2.1).  A deterministic T-round
// algorithm is a function from the radius-T view of a node to the pair of
// labels it outputs on its two ports.  On a cycle, a radius-T view consists
// of: the port orientation of each of the 2T surrounding nodes and the edge
// orientation of each of the 2T+2 edges within reach, all expressed in the
// node's own canonical frame (the direction of its port 0).  Every bit
// combination occurs on long cycles, so a problem is T-round solvable on the
// class of all (girth > 2T+2) cycles iff there is an assignment of outputs
// to views such that every locally realizable window satisfies the node and
// edge constraints -- a finite CSP, decided exactly by backtracking.
//
// Purpose.  `cycleSolvable(p, T)` and the engine's speedup operator can be
// played against each other:  Theorem 3 says
//     cycleSolvable(Pi, T)  ==  cycleSolvable(speedupStep(Pi), T-1),
// which the tests verify for catalog problems and for random problems --
// machine-checking (an instance of) the theorem this paper builds on.
#pragma once

#include "re/problem.hpp"

namespace relb::re {

/// Exact T-round solvability of a Delta = 2 problem on long cycles in the
/// PN model with edge ports.  T in [0, 3] (the view space doubles four times
/// per round).  Throws Error if p.delta() != 2.
[[nodiscard]] bool cycleSolvable(const Problem& p, int radius);

/// Number of distinct radius-T views (exposed for tests): 2^(4T+2).
[[nodiscard]] int cycleViewCount(int radius);

}  // namespace relb::re
