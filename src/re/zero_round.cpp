#include "re/zero_round.hpp"

#include <algorithm>

#include "re/edge_compat.hpp"

namespace relb::re {

LabelSet selfCompatibleLabels(const Problem& p) {
  // The word {l, l} is allowed iff some configuration admits it: l in S for
  // a one-group [S^2] shape, l in S and T for a two-group [S T] shape.  A
  // shape scan over the configurations replaces the per-label containsWord
  // flow; a non-degree-2 edge constraint admits no degree-2 word at all.
  if (p.edge.degree() != 2) return {};
  LabelSet out;
  for (const auto& c : p.edge.configurations()) {
    const auto& groups = c.groups();
    out = out | (groups.size() == 1 ? groups[0].set
                                    : groups[0].set & groups[1].set);
  }
  return out & p.alphabet.all();
}

bool selfCompatible(const Problem& p, Label l) {
  return selfCompatibleLabels(p).contains(l);
}

std::optional<Word> zeroRoundSymmetricWitness(const Problem& p) {
  const LabelSet good = selfCompatibleLabels(p);
  for (const auto& config : p.node.configurations()) {
    Word witness(static_cast<std::size_t>(p.alphabet.size()), 0);
    bool feasible = true;
    for (const Group& g : config.groups()) {
      const LabelSet allowed = g.set & good;
      if (allowed.empty()) {
        feasible = false;
        break;
      }
      witness[allowed.min()] += g.count;
    }
    if (feasible) return witness;
  }
  return std::nullopt;
}

bool zeroRoundSolvableSymmetricPorts(const Problem& p) {
  return zeroRoundSymmetricWitness(p).has_value();
}

std::optional<Word> zeroRoundAdversarialWitness(const Problem& p) {
  const auto compat = edgeCompatibility(p.edge, p.alphabet.size());
  // A support set S works iff S x S (including diagonal) is edge-compatible.
  const auto cliqueOk = [&](LabelSet s) {
    bool ok = true;
    forEachLabel(s, [&](Label l) {
      if (!s.subsetOf(compat[l])) ok = false;
    });
    return ok;
  };
  for (const auto& config : p.node.configurations()) {
    // Greedy is not enough here (the choice within one group affects the
    // clique condition globally), so search over per-group label choices;
    // groups are few, and only the support matters, so dedupe by support
    // (keeping one representative word per support).
    const auto& groups = config.groups();
    std::vector<std::pair<LabelSet, Word>> choices{
        {LabelSet{}, Word(static_cast<std::size_t>(p.alphabet.size()), 0)}};
    for (const Group& g : groups) {
      std::vector<std::pair<LabelSet, Word>> next;
      for (const auto& [s, w] : choices) {
        forEachLabel(g.set, [&](Label l) {
          LabelSet extended = s;
          extended.insert(l);
          Word word = w;
          word[l] += g.count;
          next.emplace_back(extended, std::move(word));
        });
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end(),
                             [](const auto& a, const auto& b) {
                               return a.first == b.first;
                             }),
                 next.end());
      choices = std::move(next);
    }
    for (const auto& [s, w] : choices) {
      if (cliqueOk(s)) return w;
    }
  }
  return std::nullopt;
}

bool zeroRoundSolvableAdversarialPorts(const Problem& p) {
  return zeroRoundAdversarialWitness(p).has_value();
}

bool zeroRoundSolvableWithEdgeInputs(const Problem& p) {
  const auto pairs = maximalEdgePairs(p.edge, p.alphabet.size());
  const auto works = [&](LabelSet a, LabelSet b) {
    for (Count m = 0; m <= p.delta(); ++m) {
      const Configuration pattern(
          {{a, m}, {b, p.delta() - m}});
      if (!p.node.intersectsConfiguration(pattern)) return false;
    }
    return true;
  };
  for (const auto& [a, b] : pairs) {
    if (works(a, b) || (a != b && works(b, a))) return true;
  }
  return false;
}

double randomizedFailureLowerBound(const Problem& p) {
  if (zeroRoundSolvableSymmetricPorts(p)) return 0.0;
  const double q = static_cast<double>(p.node.size());
  const double delta = static_cast<double>(p.delta());
  const double perPort = 1.0 / (q * delta);
  return perPort * perPort;
}

}  // namespace relb::re
