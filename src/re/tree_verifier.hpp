// Exact T-round solvability on 3-regular high-girth trees in the
// port-numbering model with edge ports, for T in {0, 1} -- the Delta = 3
// companion of cycle_verifier.hpp, reaching into the degree regime where
// the paper's problems actually live (MIS at Delta = 3, the family
// Pi_3(a,x), ...).
//
// A radius-1 view of a node consists of, per port p in {0,1,2}: the side of
// its own edge at p, the neighbor's back-port, and the sides of the
// neighbor's two other edges (listed by the neighbor's port order).  Every
// combination of these values occurs on high-girth 3-regular trees, so
// T-round solvability is again a finite CSP: outputs per view such that
// every realizable adjacent pair of views satisfies the constraints.
//
// Together with cycleSolvable this lets the tests check the speedup theorem
//     treeSolvable3(Pi, 1) == treeSolvable3(Rbar(R(Pi)), 0)
// on the paper's own encodings and on random Delta = 3 problems.
#pragma once

#include "re/problem.hpp"

namespace relb::re {

/// Exact T-round solvability of a Delta = 3 problem on high-girth 3-regular
/// trees, T in {0, 1}.  Throws Error if p.delta() != 3, or if the refutation
/// search exceeds `searchBudget` nodes (the underlying question is
/// exists-forall, so adversarially symmetric instances -- e.g. sinkless
/// orientation at T = 1 -- can force exponential search; the budget makes
/// "undecided" an explicit outcome instead of a hang).
[[nodiscard]] bool treeSolvable3(const Problem& p, int radius,
                                 long searchBudget = 200'000);

}  // namespace relb::re
