#include "re/encodings.hpp"

#include <functional>
#include <string>
#include <vector>

namespace relb::re {

Problem maximalMatchingProblem(Count delta) { return bMatchingProblem(delta, 1); }

Problem bMatchingProblem(Count delta, Count b) {
  if (delta < 2 || b < 1 || b > delta) {
    throw Error("bMatchingProblem: need delta >= 2 and 1 <= b <= delta");
  }
  Problem p;
  const Label m = p.alphabet.add("M");
  const Label pp = p.alphabet.add("P");
  const Label o = p.alphabet.add("O");

  Constraint node(delta, {});
  for (Count i = 0; i < b; ++i) {
    node.add(Configuration({{LabelSet{m}, i}, {LabelSet{pp}, delta - i}}));
  }
  node.add(Configuration({{LabelSet{m}, b}, {LabelSet{o}, delta - b}}));
  p.node = std::move(node);

  Constraint edge(2, {});
  edge.add(Configuration({{LabelSet{m}, 2}}));
  edge.add(Configuration({{LabelSet{pp}, 1}, {LabelSet{o}, 1}}));
  edge.add(Configuration({{LabelSet{o}, 2}}));
  p.edge = std::move(edge);

  p.validate();
  return p;
}

Problem cColoringProblem(Count delta, int c) {
  if (delta < 1 || c < 2 || c > kMaxLabels) {
    throw Error("cColoringProblem: need delta >= 1 and 2 <= c <= 32");
  }
  Problem p;
  for (int i = 0; i < c; ++i) p.alphabet.add("c" + std::to_string(i));

  Constraint node(delta, {});
  for (int i = 0; i < c; ++i) {
    node.add(Configuration({{LabelSet{static_cast<Label>(i)}, delta}}));
  }
  p.node = std::move(node);

  Constraint edge(2, {});
  for (int i = 0; i < c; ++i) {
    LabelSet others;
    for (int j = 0; j < c; ++j) {
      if (j != i) others.insert(static_cast<Label>(j));
    }
    edge.add(Configuration(
        {{LabelSet{static_cast<Label>(i)}, 1}, {others, 1}}));
  }
  p.edge = std::move(edge);

  p.validate();
  return p;
}

Problem weakColoringProblem(Count delta, int c) {
  if (delta < 2 || c < 2 || 2 * c > kMaxLabels) {
    throw Error("weakColoringProblem: need delta >= 2 and 2 <= c <= 16");
  }
  Problem p;
  // Labels: P_i (pointer of a color-i node), C_i (plain half-edge of a
  // color-i node).
  std::vector<Label> pointer(static_cast<std::size_t>(c));
  std::vector<Label> plain(static_cast<std::size_t>(c));
  for (int i = 0; i < c; ++i) {
    pointer[static_cast<std::size_t>(i)] =
        p.alphabet.add("P" + std::to_string(i));
    plain[static_cast<std::size_t>(i)] =
        p.alphabet.add("C" + std::to_string(i));
  }

  Constraint node(delta, {});
  for (int i = 0; i < c; ++i) {
    node.add(Configuration(
        {{LabelSet{pointer[static_cast<std::size_t>(i)]}, 1},
         {LabelSet{plain[static_cast<std::size_t>(i)]}, delta - 1}}));
  }
  p.node = std::move(node);

  // Edge compatibility: any pair of labels belonging to different colors is
  // fine; same-color pairs are fine unless a pointer is involved (a pointer
  // must reach a node of a different color).
  Constraint edge(2, {});
  for (int i = 0; i < c; ++i) {
    // Pointer of color i faces anything of a different color.
    LabelSet otherColors;
    for (int j = 0; j < c; ++j) {
      if (j == i) continue;
      otherColors.insert(pointer[static_cast<std::size_t>(j)]);
      otherColors.insert(plain[static_cast<std::size_t>(j)]);
    }
    edge.add(Configuration(
        {{LabelSet{pointer[static_cast<std::size_t>(i)]}, 1},
         {otherColors, 1}}));
    // Plain label of color i faces anything except nothing -- including the
    // same color's plain label (two same-colored neighbors are allowed in
    // weak coloring) but a same-color pointer is already excluded above.
    LabelSet partners = otherColors;
    partners.insert(plain[static_cast<std::size_t>(i)]);
    edge.add(Configuration(
        {{LabelSet{plain[static_cast<std::size_t>(i)]}, 1}, {partners, 1}}));
  }
  p.edge = std::move(edge);

  p.validate();
  return p;
}

Problem edgeColoringProblem(int delta, int c) {
  if (delta < 1 || c < delta || c > 12) {
    throw Error("edgeColoringProblem: need delta <= c <= 12");
  }
  Problem p;
  for (int i = 0; i < c; ++i) p.alphabet.add("e" + std::to_string(i));

  // Node constraint: one configuration per Delta-subset of colors (all
  // incident edge colors distinct).
  Constraint node(delta, {});
  std::vector<Label> chosen;
  std::function<void(int)> rec = [&](int next) {
    if (static_cast<int>(chosen.size()) == delta) {
      std::vector<Group> groups;
      for (Label l : chosen) groups.push_back({LabelSet{l}, 1});
      node.add(Configuration(std::move(groups)));
      return;
    }
    for (int i = next; i < c; ++i) {
      chosen.push_back(static_cast<Label>(i));
      rec(i + 1);
      chosen.pop_back();
    }
  };
  rec(0);
  p.node = std::move(node);

  // Edge constraint: both endpoints agree on the edge's color.
  Constraint edge(2, {});
  for (int i = 0; i < c; ++i) {
    edge.add(Configuration({{LabelSet{static_cast<Label>(i)}, 2}}));
  }
  p.edge = std::move(edge);

  p.validate();
  return p;
}

}  // namespace relb::re
