// A small max-flow solver (Dinic's algorithm) used for membership and
// matching questions on condensed configurations.
//
// All feasibility questions the engine asks ("does this word match this
// condensed configuration?", "do these two condensed configurations share a
// word?", "can configuration C be relaxed to configuration D?") are bipartite
// or tripartite transportation problems whose node counts are tiny (labels +
// groups + 2) but whose capacities can be astronomically large (exponents up
// to 2^62).  Dinic with 64-bit capacities decides them exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "re/types.hpp"

namespace relb::re {

/// Max-flow on a small directed graph with 64-bit capacities.
class MaxFlow {
 public:
  explicit MaxFlow(int numNodes);

  /// Adds a directed edge with the given capacity (>= 0).
  void addEdge(int from, int to, Count capacity);

  /// Computes the maximum flow from `source` to `sink`.  May be called once.
  [[nodiscard]] Count solve(int source, int sink);

 private:
  struct Edge {
    int to;
    Count cap;
    int rev;  // index of the reverse edge in adj_[to]
  };

  bool bfs(int source, int sink);
  Count dfs(int v, int sink, Count limit);

  std::vector<std::vector<Edge>> adj_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace relb::re
