#include "re/cycle_verifier.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace relb::re {

namespace {

// A pure output: the labels a node writes on port 0 (canonical + direction)
// and port 1 (canonical -).
struct OutputPair {
  Label plus;
  Label minus;
  friend bool operator==(const OutputPair&, const OutputPair&) = default;
};

// One binary constraint: component `comp1` of view `view1`'s output must be
// edge-compatible with component `comp2` of view `view2`'s output.
struct EdgePairing {
  int view1;
  int comp1;  // 0 = plus component, 1 = minus component
  int view2;
  int comp2;
  friend auto operator<=>(const EdgePairing&, const EdgePairing&) = default;
};

class WindowModel {
 public:
  WindowModel(int radius) : t_(radius) {}

  [[nodiscard]] int viewBits() const { return 4 * t_ + 2; }
  [[nodiscard]] int viewCount() const { return 1 << viewBits(); }

  // Extracts the canonical view id of the node at global position `p` of a
  // window.  `c[i]` = 1 iff node i's port 0 faces +1; `o[k]` = 1 iff node
  // k-1 (the lower endpoint of edge k, which joins nodes k-1 and k) is the
  // edge's side 0.
  [[nodiscard]] int viewOf(const std::vector<int>& c, const std::vector<int>& o,
                           int p) const {
    const int d = c[static_cast<std::size_t>(p)] == 1 ? +1 : -1;
    int id = 0;
    int bit = 0;
    const auto push = [&](int value) {
      id |= value << bit;
      ++bit;
    };
    // Surrounding nodes' port orientations, canonical positions
    // -t..-1, 1..t.
    for (int m = -t_; m <= t_; ++m) {
      if (m == 0) continue;
      const int g = p + d * m;
      const int faces = c[static_cast<std::size_t>(g)];
      push(faces == (d == +1 ? 1 : 0) ? 1 : 0);
    }
    // Edge orientations, canonical edge positions -(t+1)..t; canonical edge
    // j joins canonical nodes j and j+1.
    for (int j = -(t_ + 1); j <= t_; ++j) {
      const int k = d == +1 ? p + j + 1 : p - j;
      const int stored = o[static_cast<std::size_t>(k)];
      push(d == +1 ? stored : 1 - stored);
    }
    return id;
  }

  // Enumerates all windows around one edge and collects the distinct
  // pairings the edge constraint must satisfy.
  [[nodiscard]] std::vector<EdgePairing> collectPairings() const {
    const int numNodes = 2 * t_ + 2;   // global positions 0 .. 2t+1
    const int numEdges = 2 * t_ + 3;   // edge k joins nodes k-1 and k
    const int left = t_;               // the two centers
    const int right = t_ + 1;
    std::set<EdgePairing> pairings;
    std::vector<int> c(static_cast<std::size_t>(numNodes));
    std::vector<int> o(static_cast<std::size_t>(numEdges));
    const long long total =
        1LL << (numNodes + numEdges);
    for (long long mask = 0; mask < total; ++mask) {
      long long bits = mask;
      for (int i = 0; i < numNodes; ++i) {
        c[static_cast<std::size_t>(i)] = static_cast<int>(bits & 1);
        bits >>= 1;
      }
      for (int k = 0; k < numEdges; ++k) {
        o[static_cast<std::size_t>(k)] = static_cast<int>(bits & 1);
        bits >>= 1;
      }
      const int viewL = viewOf(c, o, left);
      const int viewR = viewOf(c, o, right);
      // The shared edge joins nodes `left` and `right`.  The label the left
      // center sends toward +1 is its plus component iff its port 0 faces
      // +1; the right center's label toward -1 is its plus component iff its
      // port 0 faces -1.
      const int compL = c[static_cast<std::size_t>(left)] == 1 ? 0 : 1;
      const int compR = c[static_cast<std::size_t>(right)] == 0 ? 0 : 1;
      EdgePairing pairing{viewL, compL, viewR, compR};
      // Canonical order for deduplication (the constraint is symmetric).
      EdgePairing swapped{viewR, compR, viewL, compL};
      pairings.insert(std::min(pairing, swapped));
    }
    return {pairings.begin(), pairings.end()};
  }

 private:
  int t_;
};

// Backtracking CSP solver with AC-3 style propagation.
class CspSolver {
 public:
  CspSolver(int numViews, std::vector<OutputPair> initialDomain,
            const std::vector<EdgePairing>& pairings,
            const std::vector<LabelSet>& compat)
      : domains_(static_cast<std::size_t>(numViews), std::move(initialDomain)),
        compat_(compat) {
    constraintsOf_.resize(static_cast<std::size_t>(numViews));
    for (const auto& pairing : pairings) {
      constraintsOf_[static_cast<std::size_t>(pairing.view1)].push_back(
          pairing);
      if (pairing.view1 != pairing.view2) {
        constraintsOf_[static_cast<std::size_t>(pairing.view2)].push_back(
            {pairing.view2, pairing.comp2, pairing.view1, pairing.comp1});
      } else {
        // Same view on both sides: the value must be self-consistent.
        constraintsOf_[static_cast<std::size_t>(pairing.view1)].push_back(
            {pairing.view2, pairing.comp2, pairing.view1, pairing.comp1});
      }
    }
  }

  [[nodiscard]] bool solve() {
    if (!propagateAll()) return false;
    return search(0);
  }

 private:
  [[nodiscard]] static Label component(const OutputPair& value, int comp) {
    return comp == 0 ? value.plus : value.minus;
  }

  [[nodiscard]] bool compatible(Label a, Label b) const {
    return compat_[a].contains(b);
  }

  // Removes unsupported values until a fixpoint; false if a domain empties.
  [[nodiscard]] bool propagateAll() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t v = 0; v < domains_.size(); ++v) {
        for (const auto& con : constraintsOf_[v]) {
          auto& dom = domains_[v];
          const auto& other =
              domains_[static_cast<std::size_t>(con.view2)];
          const auto unsupported = [&](const OutputPair& value) {
            // Self-constraint: the same value serves both sides.
            if (con.view2 == con.view1) {
              return !compatible(component(value, con.comp1),
                                 component(value, con.comp2));
            }
            return std::none_of(other.begin(), other.end(),
                                [&](const OutputPair& b) {
                                  return compatible(
                                      component(value, con.comp1),
                                      component(b, con.comp2));
                                });
          };
          const auto before = dom.size();
          dom.erase(std::remove_if(dom.begin(), dom.end(), unsupported),
                    dom.end());
          if (dom.empty()) return false;
          if (dom.size() != before) changed = true;
        }
      }
    }
    return true;
  }

  [[nodiscard]] bool search(std::size_t v) {
    if (v == domains_.size()) return true;
    if (domains_[v].size() == 1) return search(v + 1);
    const auto saved = domains_;
    for (const OutputPair& value : saved[v]) {
      domains_ = saved;
      domains_[v] = {value};
      if (propagateAll() && search(v + 1)) return true;
    }
    domains_ = saved;
    return false;
  }

  std::vector<std::vector<OutputPair>> domains_;
  std::vector<std::vector<EdgePairing>> constraintsOf_;
  std::vector<LabelSet> compat_;
};

}  // namespace

int cycleViewCount(int radius) {
  if (radius < 0 || radius > 3) throw Error("cycleViewCount: radius in [0,3]");
  return 1 << (4 * radius + 2);
}

bool cycleSolvable(const Problem& p, int radius) {
  p.validate();
  if (p.delta() != 2) throw Error("cycleSolvable: requires Delta = 2");
  if (radius < 0 || radius > 3) {
    throw Error("cycleSolvable: radius in [0,3]");
  }
  const int n = p.alphabet.size();

  // Initial domain: label pairs forming an allowed node configuration.
  std::vector<OutputPair> domain;
  for (Label a = 0; a < n; ++a) {
    for (Label b = 0; b < n; ++b) {
      Word w(static_cast<std::size_t>(n), 0);
      ++w[a];
      ++w[b];
      if (p.node.containsWord(w)) domain.push_back({a, b});
    }
  }
  if (domain.empty()) return false;

  // Edge compatibility matrix.
  std::vector<LabelSet> compat(static_cast<std::size_t>(n));
  for (Label a = 0; a < n; ++a) {
    for (Label b = 0; b < n; ++b) {
      Word w(static_cast<std::size_t>(n), 0);
      ++w[a];
      ++w[b];
      if (p.edge.containsWord(w)) compat[a].insert(b);
    }
  }

  const WindowModel model(radius);
  CspSolver solver(model.viewCount(), std::move(domain),
                   model.collectPairings(), compat);
  return solver.solve();
}

}  // namespace relb::re
