// Renaming and isomorphism of problems.
//
// Two problems are *equal up to renaming* if some bijection between their
// alphabets maps one's node and edge languages onto the other's.  The engine
// decides this exactly for small alphabets by trying all bijections and
// comparing languages semantically (sameLanguage), so differently condensed
// but equal constraint systems are recognized as isomorphic.
#pragma once

#include <optional>
#include <vector>

#include "re/problem.hpp"

namespace relb::re {

/// Applies a label permutation/injection `map` (old label -> new label) to a
/// problem, producing a problem over `newAlphabet`.  Throws Error if `map`
/// is not injective or out of range.
[[nodiscard]] Problem renameProblem(const Problem& p,
                                    const std::vector<Label>& map,
                                    Alphabet newAlphabet);

/// Searches for a bijection from `a`'s labels to `b`'s labels under which the
/// problems have identical node and edge languages.  Returns the mapping if
/// found.  Requires equal alphabet sizes and |alphabet| <= 10.
[[nodiscard]] std::optional<std::vector<Label>> findIsomorphism(
    const Problem& a, const Problem& b);

/// Convenience wrapper around findIsomorphism.
[[nodiscard]] bool equivalentUpToRenaming(const Problem& a, const Problem& b);

}  // namespace relb::re
