#include "re/constraint.hpp"

#include <algorithm>
#include <set>

namespace relb::re {

Constraint::Constraint(Count degree, std::vector<Configuration> configurations)
    : degree_(degree) {
  if (degree < 0) throw Error("Constraint: negative degree");
  for (auto& c : configurations) add(std::move(c));
}

void Constraint::add(Configuration c) {
  if (c.degree() != degree_) {
    throw Error("Constraint: configuration degree mismatch (" +
                std::to_string(c.degree()) + " vs " + std::to_string(degree_) +
                ")");
  }
  if (std::find(configurations_.begin(), configurations_.end(), c) ==
      configurations_.end()) {
    configurations_.push_back(std::move(c));
  }
}

LabelSet Constraint::support() const {
  LabelSet s;
  for (const auto& c : configurations_) s = s | c.support();
  return s;
}

bool Constraint::containsWord(const Word& w) const {
  return std::any_of(configurations_.begin(), configurations_.end(),
                     [&](const Configuration& c) { return c.matchesWord(w); });
}

bool Constraint::intersectsConfiguration(const Configuration& c) const {
  return std::any_of(
      configurations_.begin(), configurations_.end(),
      [&](const Configuration& mine) { return mine.intersects(c); });
}

bool Constraint::containsAllWordsOf(const Configuration& c, int alphabetSize,
                                    std::size_t limit) const {
  // Cheap sufficient check: some single configuration swallows all of L(c).
  for (const auto& mine : configurations_) {
    if (c.relaxesTo(mine)) return true;
  }
  // Skip hopeless enumerations outright (the arithmetic bound overestimates,
  // so this may throw in cases enumeration could still decide; callers treat
  // the Error as "undecided at this budget").
  if (c.countWordsUpperBound(limit) > limit) {
    throw Error("containsAllWordsOf: language too large to enumerate");
  }
  bool all = true;
  c.forEachWord(
      alphabetSize,
      [&](const Word& w) {
        if (all && !containsWord(w)) all = false;
      },
      limit);
  return all;
}

std::vector<Word> Constraint::enumerateWords(int alphabetSize,
                                             std::size_t limit) const {
  std::set<Word> words;
  for (const auto& c : configurations_) {
    c.forEachWord(
        alphabetSize,
        [&](const Word& w) {
          words.insert(w);
          if (words.size() > limit) {
            throw Error("enumerateWords: word count exceeds limit");
          }
        },
        limit);
  }
  return {words.begin(), words.end()};
}

void Constraint::removeDominatedConfigurations() {
  std::vector<Configuration> kept;
  for (std::size_t i = 0; i < configurations_.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < configurations_.size() && !dominated; ++j) {
      if (i == j) continue;
      // Break ties (mutual containment) by keeping the earlier one.
      const bool tie = configurations_[j].containsAllWordsOf(
          configurations_[i]);
      if (tie && (j < i || !configurations_[i].containsAllWordsOf(
                               configurations_[j]))) {
        dominated = true;
      }
    }
    if (!dominated) kept.push_back(configurations_[i]);
  }
  configurations_ = std::move(kept);
}

std::string Constraint::render(const Alphabet& alphabet,
                               const std::string& sep) const {
  std::string out;
  for (std::size_t i = 0; i < configurations_.size(); ++i) {
    if (i > 0) out += sep;
    out += configurations_[i].render(alphabet);
  }
  return out;
}

bool sameLanguage(const Constraint& a, const Constraint& b, int alphabetSize) {
  if (a.degree() != b.degree()) return false;
  for (const auto& c : a.configurations()) {
    if (!b.containsAllWordsOf(c, alphabetSize)) return false;
  }
  for (const auto& c : b.configurations()) {
    if (!a.containsAllWordsOf(c, alphabetSize)) return false;
  }
  return true;
}

}  // namespace relb::re
