#include "re/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "re/zero_round.hpp"

namespace relb::re {

namespace {

// Registry counters mirrored by every EngineContext (the per-context
// CacheStats stay the source of truth for `--stats`; the registry is what
// the run report and the counter-based tests read).  Interned once, ticked
// with relaxed atomic adds.
struct EngineCounters {
  obs::Counter& memoHit;
  obs::Counter& memoMiss;
  obs::Counter& zeroRoundHit;
  obs::Counter& zeroRoundMiss;
  obs::Counter& canonicalHit;
  obs::Counter& canonicalMiss;
  obs::Counter& storeHit;
  obs::Counter& storeMiss;
  obs::Counter& storeWrite;
};

EngineCounters& engineCounters() {
  obs::Registry& r = obs::Registry::global();
  static EngineCounters counters{
      r.counter("engine.memo.hit"),       r.counter("engine.memo.miss"),
      r.counter("engine.zero_round.hit"), r.counter("engine.zero_round.miss"),
      r.counter("engine.canonical.hit"),  r.counter("engine.canonical.miss"),
      r.counter("store.hit"),             r.counter("store.miss"),
      r.counter("store.write")};
  return counters;
}

std::uint64_t mixKey(std::uint64_t h, std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (v ^ (v >> 31));
}

}  // namespace

std::string CacheStats::describe() const {
  const auto line = [](const char* name, std::size_t hits,
                       std::size_t misses) {
    return std::string(name) + ": " + std::to_string(hits) + " hits / " +
           std::to_string(misses) + " misses\n";
  };
  std::string out;
  out += line("speedup steps", stepHits, stepMisses);
  out += line("edge compatibility", edgeCompatHits, edgeCompatMisses);
  out += line("strength diagrams", strengthHits, strengthMisses);
  out += line("right-closed families", rightClosedHits, rightClosedMisses);
  out += line("zero-round analyses", zeroRoundHits, zeroRoundMisses);
  out += line("canonical forms", canonicalHits, canonicalMisses);
  out += "interned problems: " + std::to_string(internedProblems) + "\n";
  out += "step store: " + std::to_string(storeHits) + " hits / " +
         std::to_string(storeMisses) + " misses / " +
         std::to_string(storeWrites) + " writes\n";
  return out;
}

// ---------------------------------------------------------------------------
// EngineContext
// ---------------------------------------------------------------------------

struct EngineContext::Impl {
  // Every cache follows the same discipline: buckets keyed by a 64-bit
  // structural hash, entries carrying the full key for exact comparison (a
  // hash collision degrades to a miss-like scan, never to a wrong answer).
  struct StepEntry {
    int kind;  // 0 = R, 1 = Rbar
    Problem input;
    Count maxRbarDelta;
    std::size_t enumerationLimit;
    StepResult result;
  };
  struct EdgeCompatEntry {
    Constraint edge;
    int alphabetSize;
    std::vector<LabelSet> compat;
  };
  struct StrengthEntry {
    Constraint constraint;
    int alphabetSize;
    std::size_t limit;
    StrengthRelation relation{0};
  };
  struct RightClosedEntry {
    Constraint constraint;
    int alphabetSize;
    LabelSet universe;
    std::size_t limit;
    std::vector<LabelSet> sets;
  };
  struct ZeroRoundEntry {
    Problem input;
    ZeroRoundMode mode;
    bool solvable;
  };
  struct CanonicalEntry {
    Problem input;
    CanonicalForm form;
  };

  mutable std::mutex mutex;
  std::unordered_map<std::uint64_t, std::vector<StepEntry>> steps;
  std::unordered_map<std::uint64_t, std::vector<EdgeCompatEntry>> edgeCompat;
  std::unordered_map<std::uint64_t, std::vector<StrengthEntry>> strengths;
  std::unordered_map<std::uint64_t, std::vector<RightClosedEntry>> rightClosed;
  std::unordered_map<std::uint64_t, std::vector<ZeroRoundEntry>> zeroRound;
  std::unordered_map<std::uint64_t, std::vector<CanonicalEntry>> canonicals;
  std::unordered_map<std::uint64_t, std::vector<Problem>> interned;
  CacheStats stats;
  /// Durable write-through backing; consulted on memo misses.  Load/store
  /// calls run OUTSIDE the mutex (the storage is thread-safe by contract).
  std::shared_ptr<StepStorage> storage;
};

EngineContext::EngineContext(PassOptions options)
    : options_(options), impl_(std::make_unique<Impl>()) {}

EngineContext::~EngineContext() = default;

void EngineContext::attachStore(std::shared_ptr<StepStorage> store) {
  std::lock_guard lock(impl_->mutex);
  impl_->storage = std::move(store);
}

StepResult EngineContext::applyR(const Problem& p) {
  const obs::ScopedSpan span("engine.applyR");
  const std::uint64_t hash = structuralHash(p);
  const std::uint64_t key = mixKey(0, hash);
  std::shared_ptr<StepStorage> storage;
  {
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->steps.find(key);
    if (it != impl_->steps.end()) {
      for (const auto& e : it->second) {
        if (e.kind == 0 && e.input == p) {
          ++impl_->stats.stepHits;
          engineCounters().memoHit.add();
          return e.result;
        }
      }
    }
    storage = impl_->storage;
  }
  if (storage != nullptr) {
    if (auto loaded = storage->loadStep(0, p, hash, options_)) {
      std::lock_guard lock(impl_->mutex);
      ++impl_->stats.storeHits;
      engineCounters().storeHit.add();
      impl_->steps[key].push_back({0, p, options_.maxRbarDelta,
                                   options_.enumerationLimit, *loaded});
      return *std::move(loaded);
    }
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.storeMisses;
    engineCounters().storeMiss.add();
  }
  StepResult result = detail::applyRImpl(p, options_, this);
  {
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.stepMisses;
    engineCounters().memoMiss.add();
    impl_->steps[key].push_back(
        {0, p, options_.maxRbarDelta, options_.enumerationLimit, result});
  }
  if (storage != nullptr) {
    storage->storeStep(0, p, hash, options_, result);
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.storeWrites;
    engineCounters().storeWrite.add();
  }
  return result;
}

StepResult EngineContext::applyRbar(const Problem& p) {
  const obs::ScopedSpan span("engine.applyRbar");
  const std::uint64_t hash = structuralHash(p);
  const std::uint64_t key = mixKey(1, hash);
  std::shared_ptr<StepStorage> storage;
  {
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->steps.find(key);
    if (it != impl_->steps.end()) {
      for (const auto& e : it->second) {
        if (e.kind == 1 && e.input == p &&
            e.maxRbarDelta == options_.maxRbarDelta &&
            e.enumerationLimit == options_.enumerationLimit) {
          ++impl_->stats.stepHits;
          engineCounters().memoHit.add();
          return e.result;
        }
      }
    }
    storage = impl_->storage;
  }
  if (storage != nullptr) {
    if (auto loaded = storage->loadStep(1, p, hash, options_)) {
      std::lock_guard lock(impl_->mutex);
      ++impl_->stats.storeHits;
      engineCounters().storeHit.add();
      impl_->steps[key].push_back({1, p, options_.maxRbarDelta,
                                   options_.enumerationLimit, *loaded});
      return *std::move(loaded);
    }
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.storeMisses;
    engineCounters().storeMiss.add();
  }
  StepResult result = detail::applyRbarImpl(p, options_, this);
  {
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.stepMisses;
    engineCounters().memoMiss.add();
    impl_->steps[key].push_back(
        {1, p, options_.maxRbarDelta, options_.enumerationLimit, result});
  }
  if (storage != nullptr) {
    storage->storeStep(1, p, hash, options_, result);
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.storeWrites;
    engineCounters().storeWrite.add();
  }
  return result;
}

Problem EngineContext::speedupStep(const Problem& p) {
  return applyRbar(applyR(p).problem).problem;
}

std::vector<LabelSet> EngineContext::edgeCompatibility(const Constraint& edge,
                                                       int alphabetSize) {
  const std::uint64_t key =
      mixKey(structuralHash(edge), static_cast<std::uint64_t>(alphabetSize));
  {
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->edgeCompat.find(key);
    if (it != impl_->edgeCompat.end()) {
      for (const auto& e : it->second) {
        if (e.alphabetSize == alphabetSize && e.edge == edge) {
          ++impl_->stats.edgeCompatHits;
          return e.compat;
        }
      }
    }
  }
  std::vector<LabelSet> compat = re::edgeCompatibility(edge, alphabetSize);
  std::lock_guard lock(impl_->mutex);
  ++impl_->stats.edgeCompatMisses;
  impl_->edgeCompat[key].push_back({edge, alphabetSize, compat});
  return compat;
}

StrengthRelation EngineContext::strength(const Constraint& constraint,
                                         int alphabetSize,
                                         std::size_t enumerationLimit) {
  const std::uint64_t key = mixKey(
      mixKey(structuralHash(constraint),
             static_cast<std::uint64_t>(alphabetSize)),
      enumerationLimit);
  {
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->strengths.find(key);
    if (it != impl_->strengths.end()) {
      for (const auto& e : it->second) {
        if (e.alphabetSize == alphabetSize && e.limit == enumerationLimit &&
            e.constraint == constraint) {
          ++impl_->stats.strengthHits;
          return e.relation;
        }
      }
    }
  }
  StrengthRelation relation =
      computeStrength(constraint, alphabetSize, enumerationLimit);
  std::lock_guard lock(impl_->mutex);
  ++impl_->stats.strengthMisses;
  impl_->strengths[key].push_back(
      {constraint, alphabetSize, enumerationLimit, relation});
  return relation;
}

std::vector<LabelSet> EngineContext::rightClosedSets(
    const Constraint& constraint, int alphabetSize, LabelSet universe,
    std::size_t enumerationLimit) {
  const std::uint64_t key = mixKey(
      mixKey(mixKey(structuralHash(constraint),
                    static_cast<std::uint64_t>(alphabetSize)),
             universe.bits()),
      enumerationLimit);
  {
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->rightClosed.find(key);
    if (it != impl_->rightClosed.end()) {
      for (const auto& e : it->second) {
        if (e.alphabetSize == alphabetSize && e.universe == universe &&
            e.limit == enumerationLimit && e.constraint == constraint) {
          ++impl_->stats.rightClosedHits;
          return e.sets;
        }
      }
    }
  }
  std::vector<LabelSet> sets =
      strength(constraint, alphabetSize, enumerationLimit)
          .allRightClosedSets(universe);
  std::lock_guard lock(impl_->mutex);
  ++impl_->stats.rightClosedMisses;
  impl_->rightClosed[key].push_back(
      {constraint, alphabetSize, universe, enumerationLimit, sets});
  return sets;
}

bool EngineContext::zeroRoundSolvable(const Problem& p, ZeroRoundMode mode) {
  const obs::ScopedSpan span("engine.zeroRound");
  const std::uint64_t hash = structuralHash(p);
  const std::uint64_t key =
      mixKey(static_cast<std::uint64_t>(mode) + 7, hash);
  std::shared_ptr<StepStorage> storage;
  {
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->zeroRound.find(key);
    if (it != impl_->zeroRound.end()) {
      for (const auto& e : it->second) {
        if (e.mode == mode && e.input == p) {
          ++impl_->stats.zeroRoundHits;
          engineCounters().zeroRoundHit.add();
          return e.solvable;
        }
      }
    }
    storage = impl_->storage;
  }
  if (storage != nullptr) {
    if (const auto loaded = storage->loadZeroRound(mode, p, hash)) {
      std::lock_guard lock(impl_->mutex);
      ++impl_->stats.storeHits;
      engineCounters().storeHit.add();
      impl_->zeroRound[key].push_back({p, mode, *loaded});
      return *loaded;
    }
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.storeMisses;
    engineCounters().storeMiss.add();
  }
  bool solvable = false;
  switch (mode) {
    case ZeroRoundMode::kSymmetricPorts:
      solvable = zeroRoundSolvableSymmetricPorts(p);
      break;
    case ZeroRoundMode::kAdversarialPorts:
      solvable = zeroRoundSolvableAdversarialPorts(p);
      break;
    case ZeroRoundMode::kWithEdgeInputs:
      solvable = zeroRoundSolvableWithEdgeInputs(p);
      break;
  }
  {
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.zeroRoundMisses;
    engineCounters().zeroRoundMiss.add();
    impl_->zeroRound[key].push_back({p, mode, solvable});
  }
  if (storage != nullptr) {
    storage->storeZeroRound(mode, p, hash, solvable);
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.storeWrites;
    engineCounters().storeWrite.add();
  }
  return solvable;
}

EngineContext::InternResult EngineContext::intern(const Problem& p) {
  const obs::ScopedSpan span("engine.intern");
  const std::uint64_t exactKey = structuralHash(p);
  std::optional<CanonicalForm> form;
  {
    std::lock_guard lock(impl_->mutex);
    const auto it = impl_->canonicals.find(exactKey);
    if (it != impl_->canonicals.end()) {
      for (const auto& e : it->second) {
        if (e.input == p) {
          ++impl_->stats.canonicalHits;
          engineCounters().canonicalHit.add();
          form = e.form;
          break;
        }
      }
    }
  }
  if (!form) {
    form = canonicalize(p);
    std::lock_guard lock(impl_->mutex);
    ++impl_->stats.canonicalMisses;
    engineCounters().canonicalMiss.add();
    impl_->canonicals[exactKey].push_back({p, *form});
  }

  InternResult result;
  result.hash = form->hash;
  result.canonical = std::move(*form);
  std::lock_guard lock(impl_->mutex);
  auto& orbit = impl_->interned[result.hash];
  result.alreadyInterned =
      std::any_of(orbit.begin(), orbit.end(), [&](const Problem& q) {
        return q == result.canonical.problem;
      });
  if (!result.alreadyInterned) {
    orbit.push_back(result.canonical.problem);
    ++impl_->stats.internedProblems;
  }
  return result;
}

CacheStats EngineContext::stats() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->stats;
}

void EngineContext::resetStats() {
  std::lock_guard lock(impl_->mutex);
  impl_->stats = CacheStats{};
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

namespace {

class ApplyRPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "ApplyR"; }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    StepResult r = in.context.applyR(in.problem);
    PassOutput out;
    out.problem = std::move(r.problem);
    out.meaning = std::move(r.meaning);
    return out;
  }
};

class ApplyRbarPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "ApplyRbar"; }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    StepResult r = in.context.applyRbar(in.problem);
    PassOutput out;
    out.problem = std::move(r.problem);
    out.meaning = std::move(r.meaning);
    return out;
  }
};

class RenamePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "Rename"; }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    auto interned = in.context.intern(in.problem);
    PassOutput out;
    out.problem = std::move(interned.canonical.problem);
    out.note = interned.alreadyInterned ? "canonical form already interned"
                                        : "fresh canonical form";
    return out;
  }
};

class RelaxPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "Relax"; }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    PassOutput out;
    out.problem = in.problem;
    const std::size_t nodeBefore = out.problem.node.size();
    const std::size_t edgeBefore = out.problem.edge.size();
    out.problem.node.removeDominatedConfigurations();
    out.problem.edge.removeDominatedConfigurations();
    out.note = "dropped " +
               std::to_string((nodeBefore - out.problem.node.size()) +
                              (edgeBefore - out.problem.edge.size())) +
               " dominated configuration(s)";
    return out;
  }
};

class ZeroRoundCheckPass final : public Pass {
 public:
  explicit ZeroRoundCheckPass(ZeroRoundMode mode) : mode_(mode) {}
  [[nodiscard]] std::string_view name() const override {
    return "ZeroRoundCheck";
  }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    PassOutput out;
    out.problem = in.problem;
    const bool solvable = in.context.zeroRoundSolvable(in.problem, mode_);
    out.stop = solvable;
    out.note = solvable ? "0-round solvable; pipeline stopped"
                        : "not 0-round solvable";
    return out;
  }

 private:
  ZeroRoundMode mode_;
};

}  // namespace

std::unique_ptr<Pass> makeApplyRPass() {
  return std::make_unique<ApplyRPass>();
}
std::unique_ptr<Pass> makeApplyRbarPass() {
  return std::make_unique<ApplyRbarPass>();
}
std::unique_ptr<Pass> makeRenamePass() {
  return std::make_unique<RenamePass>();
}
std::unique_ptr<Pass> makeRelaxPass() {
  return std::make_unique<RelaxPass>();
}
std::unique_ptr<Pass> makeZeroRoundCheckPass(ZeroRoundMode mode) {
  return std::make_unique<ZeroRoundCheckPass>(mode);
}

// ---------------------------------------------------------------------------
// PassManager
// ---------------------------------------------------------------------------

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

PassManager PassManager::speedupPipeline() {
  PassManager pm;
  pm.add(makeApplyRPass());
  pm.add(makeApplyRbarPass());
  return pm;
}

PipelineResult PassManager::run(const Problem& p, EngineContext& ctx) const {
  PipelineResult out;
  Problem current = p;
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    Pass& pass = *passes_[i];
    PassStats st;
    st.name = std::string(pass.name());
    st.labelsIn = current.alphabet.size();
    st.nodeConfigsIn = current.node.size();
    st.edgeConfigsIn = current.edge.size();
    const CacheStats before = ctx.stats();
    const std::string spanName = "pass." + st.name;
    const auto t0 = std::chrono::steady_clock::now();
    PassOutput po;
    {
      const obs::ScopedSpan span(spanName);
      po = pass.run({current, ctx, ctx.options()});
    }
    const auto t1 = std::chrono::steady_clock::now();
    const CacheStats after = ctx.stats();
    st.wallMicros =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
    st.fromCache = after.stepHits > before.stepHits &&
                   after.stepMisses == before.stepMisses;
    current = std::move(po.problem);
    {
      static obs::Gauge& labelsGauge =
          obs::Registry::global().gauge("re.labels.last");
      labelsGauge.set(static_cast<std::int64_t>(current.alphabet.size()));
      obs::Tracer& tracer = obs::Tracer::global();
      if (tracer.enabled()) {
        tracer.counter("re.labels.last",
                       static_cast<std::int64_t>(current.alphabet.size()));
      }
    }
    st.labelsOut = current.alphabet.size();
    st.nodeConfigsOut = current.node.size();
    st.edgeConfigsOut = current.edge.size();
    st.note = std::move(po.note);
    out.passes.push_back(std::move(st));
    if (po.stop) {
      out.stopped = true;
      out.stoppedAt = i;
      break;
    }
  }
  out.problem = std::move(current);
  return out;
}

std::string PipelineResult::renderStatsTable() const {
  // Column layout:  pass | wall us | labels in->out | node cfgs | edge cfgs
  //                 | cache | note
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"pass", "wall(us)", "labels", "node cfgs", "edge cfgs",
                  "cache", "note"});
  for (const PassStats& s : passes) {
    rows.push_back({s.name, std::to_string(s.wallMicros),
                    std::to_string(s.labelsIn) + "->" +
                        std::to_string(s.labelsOut),
                    std::to_string(s.nodeConfigsIn) + "->" +
                        std::to_string(s.nodeConfigsOut),
                    std::to_string(s.edgeConfigsIn) + "->" +
                        std::to_string(s.edgeConfigsOut),
                    s.fromCache ? "hit" : "miss", s.note});
  }
  std::vector<std::size_t> width(rows.front().size(), 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  }
  if (stopped) {
    out += "(pipeline stopped at pass " + std::to_string(stoppedAt) + ": " +
           passes[stoppedAt].name + ")\n";
  }
  return out;
}

}  // namespace relb::re
