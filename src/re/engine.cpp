#include "re/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "re/zero_round.hpp"
#include "util/arena.hpp"

namespace relb::re {

namespace {

std::uint64_t mixKey(std::uint64_t h, std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (v ^ (v >> 31));
}

}  // namespace

std::string CacheStats::describe() const {
  const auto line = [](const char* name, std::size_t hits,
                       std::size_t misses) {
    return std::string(name) + ": " + std::to_string(hits) + " hits / " +
           std::to_string(misses) + " misses\n";
  };
  std::string out;
  out += line("speedup steps", stepHits, stepMisses);
  out += line("edge compatibility", edgeCompatHits, edgeCompatMisses);
  out += line("strength diagrams", strengthHits, strengthMisses);
  out += line("right-closed families", rightClosedHits, rightClosedMisses);
  out += line("zero-round analyses", zeroRoundHits, zeroRoundMisses);
  out += line("canonical forms", canonicalHits, canonicalMisses);
  out += "interned problems: " + std::to_string(internedProblems) + "\n";
  out += "step store: " + std::to_string(storeHits) + " hits / " +
         std::to_string(storeMisses) + " misses / " +
         std::to_string(storeWrites) + " writes\n";
  return out;
}

// ---------------------------------------------------------------------------
// EngineCore
// ---------------------------------------------------------------------------

struct EngineCore::Impl {
  // Every cache follows the same discipline: buckets keyed by a 64-bit
  // structural hash, entries carrying the full key for exact comparison (a
  // hash collision degrades to a miss-like scan, never to a wrong answer).
  struct StepEntry {
    int kind;  // 0 = R, 1 = Rbar
    Problem input;
    Count maxRbarDelta;
    std::size_t enumerationLimit;
    StepResult result;
  };
  struct EdgeCompatEntry {
    Constraint edge;
    int alphabetSize;
    std::vector<LabelSet> compat;
  };
  struct StrengthEntry {
    Constraint constraint;
    int alphabetSize;
    std::size_t limit;
    StrengthRelation relation{0};
  };
  struct RightClosedEntry {
    Constraint constraint;
    int alphabetSize;
    LabelSet universe;
    std::size_t limit;
    std::vector<LabelSet> sets;
  };
  struct ZeroRoundEntry {
    Problem input;
    ZeroRoundMode mode;
    bool solvable;
  };
  struct CanonicalEntry {
    Problem input;
    CanonicalForm form;
  };

  mutable std::mutex mutex;
  std::unordered_map<std::uint64_t, std::vector<StepEntry>> steps;
  std::unordered_map<std::uint64_t, std::vector<EdgeCompatEntry>> edgeCompat;
  std::unordered_map<std::uint64_t, std::vector<StrengthEntry>> strengths;
  std::unordered_map<std::uint64_t, std::vector<RightClosedEntry>> rightClosed;
  std::unordered_map<std::uint64_t, std::vector<ZeroRoundEntry>> zeroRound;
  std::unordered_map<std::uint64_t, std::vector<CanonicalEntry>> canonicals;
  std::unordered_map<std::uint64_t, std::vector<Problem>> interned;
  /// Aggregate across every session over this core.
  CacheStats stats;
  /// Durable write-through backing; consulted on memo misses.  Load/store
  /// calls run OUTSIDE the mutex (the storage is thread-safe by contract).
  std::shared_ptr<StepStorage> storage;
};

EngineCore::EngineCore() : impl_(std::make_unique<Impl>()) {}

EngineCore::~EngineCore() = default;

void EngineCore::attachStore(std::shared_ptr<StepStorage> store) {
  std::lock_guard lock(impl_->mutex);
  impl_->storage = std::move(store);
}

std::shared_ptr<StepStorage> EngineCore::store() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->storage;
}

CacheStats EngineCore::stats() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->stats;
}

void EngineCore::resetStats() {
  std::lock_guard lock(impl_->mutex);
  impl_->stats = CacheStats{};
}

// ---------------------------------------------------------------------------
// EngineSession
// ---------------------------------------------------------------------------

/// Counter references mirrored into the session's registry (the per-session
/// CacheStats stay the source of truth for `--stats`; the registry is what
/// run reports and counter-based tests read).  Interned once per session,
/// ticked with relaxed atomic adds.  For scope-less sessions the registry is
/// the global one, so names collide deliberately: globals aggregate.
struct EngineSession::ObsHooks {
  obs::Counter& memoHit;
  obs::Counter& memoMiss;
  obs::Counter& zeroRoundHit;
  obs::Counter& zeroRoundMiss;
  obs::Counter& canonicalHit;
  obs::Counter& canonicalMiss;
  obs::Counter& storeHit;
  obs::Counter& storeMiss;
  obs::Counter& storeWrite;

  explicit ObsHooks(obs::Registry& r)
      : memoHit(r.counter("engine.memo.hit")),
        memoMiss(r.counter("engine.memo.miss")),
        zeroRoundHit(r.counter("engine.zero_round.hit")),
        zeroRoundMiss(r.counter("engine.zero_round.miss")),
        canonicalHit(r.counter("engine.canonical.hit")),
        canonicalMiss(r.counter("engine.canonical.miss")),
        storeHit(r.counter("store.hit")),
        storeMiss(r.counter("store.miss")),
        storeWrite(r.counter("store.write")) {}
};

/// The session-owned arena backing the serial Rbar sweep when the caller
/// left StepOptions::arena unset (shared-core sessions only).  Parallel
/// lanes and scratch buffers always use re_step.cpp's thread-local arenas.
struct EngineSession::SessionArenas {
  util::Arena results;
};

EngineSession::EngineSession(PassOptions options)
    : core_(std::make_shared<EngineCore>()),
      options_(options),
      registry_(&obs::Registry::global()),
      tracer_(&obs::Tracer::global()),
      obs_(std::make_unique<ObsHooks>(*registry_)),
      pipeline_(
          std::make_unique<PassManager>(PassManager::speedupPipeline())) {}

EngineSession::EngineSession(std::shared_ptr<EngineCore> core,
                             PassOptions options, obs::SessionScope* scope)
    : core_(core != nullptr ? std::move(core)
                            : std::make_shared<EngineCore>()),
      options_(options),
      registry_(scope != nullptr ? &scope->registry()
                                 : &obs::Registry::global()),
      tracer_(scope != nullptr ? &scope->tracer() : &obs::Tracer::global()),
      obs_(std::make_unique<ObsHooks>(*registry_)),
      arenas_(std::make_unique<SessionArenas>()),
      pipeline_(
          std::make_unique<PassManager>(PassManager::speedupPipeline())) {
  if (options_.arena == nullptr) options_.arena = &arenas_->results;
}

EngineSession::~EngineSession() = default;

void EngineSession::attachStore(std::shared_ptr<StepStorage> store) {
  core_->attachStore(std::move(store));
}

StepResult EngineSession::applyR(const Problem& p) {
  const obs::ScopedSpan span("engine.applyR", *tracer_);
  EngineCore::Impl& impl = *core_->impl_;
  const std::uint64_t hash = structuralHash(p);
  const std::uint64_t key = mixKey(0, hash);
  std::shared_ptr<StepStorage> storage;
  {
    std::lock_guard lock(impl.mutex);
    const auto it = impl.steps.find(key);
    if (it != impl.steps.end()) {
      for (const auto& e : it->second) {
        if (e.kind == 0 && e.input == p) {
          ++impl.stats.stepHits;
          ++stats_.stepHits;
          obs_->memoHit.add();
          return e.result;
        }
      }
    }
    storage = impl.storage;
  }
  if (storage != nullptr) {
    if (auto loaded = storage->loadStep(0, p, hash, options_)) {
      std::lock_guard lock(impl.mutex);
      ++impl.stats.storeHits;
      ++stats_.storeHits;
      obs_->storeHit.add();
      impl.steps[key].push_back({0, p, options_.maxRbarDelta,
                                 options_.enumerationLimit, *loaded});
      return *std::move(loaded);
    }
    std::lock_guard lock(impl.mutex);
    ++impl.stats.storeMisses;
    ++stats_.storeMisses;
    obs_->storeMiss.add();
  }
  StepResult result = detail::applyRImpl(p, options_, this);
  {
    std::lock_guard lock(impl.mutex);
    ++impl.stats.stepMisses;
    ++stats_.stepMisses;
    obs_->memoMiss.add();
    impl.steps[key].push_back(
        {0, p, options_.maxRbarDelta, options_.enumerationLimit, result});
  }
  if (storage != nullptr) {
    storage->storeStep(0, p, hash, options_, result);
    std::lock_guard lock(impl.mutex);
    ++impl.stats.storeWrites;
    ++stats_.storeWrites;
    obs_->storeWrite.add();
  }
  return result;
}

StepResult EngineSession::applyRbar(const Problem& p) {
  const obs::ScopedSpan span("engine.applyRbar", *tracer_);
  EngineCore::Impl& impl = *core_->impl_;
  const std::uint64_t hash = structuralHash(p);
  const std::uint64_t key = mixKey(1, hash);
  std::shared_ptr<StepStorage> storage;
  {
    std::lock_guard lock(impl.mutex);
    const auto it = impl.steps.find(key);
    if (it != impl.steps.end()) {
      for (const auto& e : it->second) {
        if (e.kind == 1 && e.input == p &&
            e.maxRbarDelta == options_.maxRbarDelta &&
            e.enumerationLimit == options_.enumerationLimit) {
          ++impl.stats.stepHits;
          ++stats_.stepHits;
          obs_->memoHit.add();
          return e.result;
        }
      }
    }
    storage = impl.storage;
  }
  if (storage != nullptr) {
    if (auto loaded = storage->loadStep(1, p, hash, options_)) {
      std::lock_guard lock(impl.mutex);
      ++impl.stats.storeHits;
      ++stats_.storeHits;
      obs_->storeHit.add();
      impl.steps[key].push_back({1, p, options_.maxRbarDelta,
                                 options_.enumerationLimit, *loaded});
      return *std::move(loaded);
    }
    std::lock_guard lock(impl.mutex);
    ++impl.stats.storeMisses;
    ++stats_.storeMisses;
    obs_->storeMiss.add();
  }
  StepResult result = detail::applyRbarImpl(p, options_, this);
  {
    std::lock_guard lock(impl.mutex);
    ++impl.stats.stepMisses;
    ++stats_.stepMisses;
    obs_->memoMiss.add();
    impl.steps[key].push_back(
        {1, p, options_.maxRbarDelta, options_.enumerationLimit, result});
  }
  if (storage != nullptr) {
    storage->storeStep(1, p, hash, options_, result);
    std::lock_guard lock(impl.mutex);
    ++impl.stats.storeWrites;
    ++stats_.storeWrites;
    obs_->storeWrite.add();
  }
  return result;
}

Problem EngineSession::speedupStep(const Problem& p) {
  return applyRbar(applyR(p).problem).problem;
}

std::vector<LabelSet> EngineSession::edgeCompatibility(const Constraint& edge,
                                                       int alphabetSize) {
  EngineCore::Impl& impl = *core_->impl_;
  const std::uint64_t key =
      mixKey(structuralHash(edge), static_cast<std::uint64_t>(alphabetSize));
  {
    std::lock_guard lock(impl.mutex);
    const auto it = impl.edgeCompat.find(key);
    if (it != impl.edgeCompat.end()) {
      for (const auto& e : it->second) {
        if (e.alphabetSize == alphabetSize && e.edge == edge) {
          ++impl.stats.edgeCompatHits;
          ++stats_.edgeCompatHits;
          return e.compat;
        }
      }
    }
  }
  std::vector<LabelSet> compat = re::edgeCompatibility(edge, alphabetSize);
  std::lock_guard lock(impl.mutex);
  ++impl.stats.edgeCompatMisses;
  ++stats_.edgeCompatMisses;
  impl.edgeCompat[key].push_back({edge, alphabetSize, compat});
  return compat;
}

StrengthRelation EngineSession::strength(const Constraint& constraint,
                                         int alphabetSize,
                                         std::size_t enumerationLimit) {
  EngineCore::Impl& impl = *core_->impl_;
  const std::uint64_t key = mixKey(
      mixKey(structuralHash(constraint),
             static_cast<std::uint64_t>(alphabetSize)),
      enumerationLimit);
  {
    std::lock_guard lock(impl.mutex);
    const auto it = impl.strengths.find(key);
    if (it != impl.strengths.end()) {
      for (const auto& e : it->second) {
        if (e.alphabetSize == alphabetSize && e.limit == enumerationLimit &&
            e.constraint == constraint) {
          ++impl.stats.strengthHits;
          ++stats_.strengthHits;
          return e.relation;
        }
      }
    }
  }
  StrengthRelation relation =
      computeStrength(constraint, alphabetSize, enumerationLimit);
  std::lock_guard lock(impl.mutex);
  ++impl.stats.strengthMisses;
  ++stats_.strengthMisses;
  impl.strengths[key].push_back(
      {constraint, alphabetSize, enumerationLimit, relation});
  return relation;
}

std::vector<LabelSet> EngineSession::rightClosedSets(
    const Constraint& constraint, int alphabetSize, LabelSet universe,
    std::size_t enumerationLimit) {
  EngineCore::Impl& impl = *core_->impl_;
  const std::uint64_t key = mixKey(
      mixKey(mixKey(structuralHash(constraint),
                    static_cast<std::uint64_t>(alphabetSize)),
             universe.bits()),
      enumerationLimit);
  {
    std::lock_guard lock(impl.mutex);
    const auto it = impl.rightClosed.find(key);
    if (it != impl.rightClosed.end()) {
      for (const auto& e : it->second) {
        if (e.alphabetSize == alphabetSize && e.universe == universe &&
            e.limit == enumerationLimit && e.constraint == constraint) {
          ++impl.stats.rightClosedHits;
          ++stats_.rightClosedHits;
          return e.sets;
        }
      }
    }
  }
  std::vector<LabelSet> sets =
      strength(constraint, alphabetSize, enumerationLimit)
          .allRightClosedSets(universe);
  std::lock_guard lock(impl.mutex);
  ++impl.stats.rightClosedMisses;
  ++stats_.rightClosedMisses;
  impl.rightClosed[key].push_back(
      {constraint, alphabetSize, universe, enumerationLimit, sets});
  return sets;
}

bool EngineSession::zeroRoundSolvable(const Problem& p, ZeroRoundMode mode) {
  const obs::ScopedSpan span("engine.zeroRound", *tracer_);
  EngineCore::Impl& impl = *core_->impl_;
  const std::uint64_t hash = structuralHash(p);
  const std::uint64_t key =
      mixKey(static_cast<std::uint64_t>(mode) + 7, hash);
  std::shared_ptr<StepStorage> storage;
  {
    std::lock_guard lock(impl.mutex);
    const auto it = impl.zeroRound.find(key);
    if (it != impl.zeroRound.end()) {
      for (const auto& e : it->second) {
        if (e.mode == mode && e.input == p) {
          ++impl.stats.zeroRoundHits;
          ++stats_.zeroRoundHits;
          obs_->zeroRoundHit.add();
          return e.solvable;
        }
      }
    }
    storage = impl.storage;
  }
  if (storage != nullptr) {
    if (const auto loaded = storage->loadZeroRound(mode, p, hash)) {
      std::lock_guard lock(impl.mutex);
      ++impl.stats.storeHits;
      ++stats_.storeHits;
      obs_->storeHit.add();
      impl.zeroRound[key].push_back({p, mode, *loaded});
      return *loaded;
    }
    std::lock_guard lock(impl.mutex);
    ++impl.stats.storeMisses;
    ++stats_.storeMisses;
    obs_->storeMiss.add();
  }
  bool solvable = false;
  switch (mode) {
    case ZeroRoundMode::kSymmetricPorts:
      solvable = zeroRoundSolvableSymmetricPorts(p);
      break;
    case ZeroRoundMode::kAdversarialPorts:
      solvable = zeroRoundSolvableAdversarialPorts(p);
      break;
    case ZeroRoundMode::kWithEdgeInputs:
      solvable = zeroRoundSolvableWithEdgeInputs(p);
      break;
  }
  {
    std::lock_guard lock(impl.mutex);
    ++impl.stats.zeroRoundMisses;
    ++stats_.zeroRoundMisses;
    obs_->zeroRoundMiss.add();
    impl.zeroRound[key].push_back({p, mode, solvable});
  }
  if (storage != nullptr) {
    storage->storeZeroRound(mode, p, hash, solvable);
    std::lock_guard lock(impl.mutex);
    ++impl.stats.storeWrites;
    ++stats_.storeWrites;
    obs_->storeWrite.add();
  }
  return solvable;
}

EngineSession::InternResult EngineSession::intern(const Problem& p) {
  const obs::ScopedSpan span("engine.intern", *tracer_);
  EngineCore::Impl& impl = *core_->impl_;
  const std::uint64_t exactKey = structuralHash(p);
  std::optional<CanonicalForm> form;
  {
    std::lock_guard lock(impl.mutex);
    const auto it = impl.canonicals.find(exactKey);
    if (it != impl.canonicals.end()) {
      for (const auto& e : it->second) {
        if (e.input == p) {
          ++impl.stats.canonicalHits;
          ++stats_.canonicalHits;
          obs_->canonicalHit.add();
          form = e.form;
          break;
        }
      }
    }
  }
  if (!form) {
    form = canonicalize(p);
    std::lock_guard lock(impl.mutex);
    ++impl.stats.canonicalMisses;
    ++stats_.canonicalMisses;
    obs_->canonicalMiss.add();
    impl.canonicals[exactKey].push_back({p, *form});
  }

  InternResult result;
  result.hash = form->hash;
  result.canonical = std::move(*form);
  std::lock_guard lock(impl.mutex);
  auto& orbit = impl.interned[result.hash];
  result.alreadyInterned =
      std::any_of(orbit.begin(), orbit.end(), [&](const Problem& q) {
        return q == result.canonical.problem;
      });
  if (!result.alreadyInterned) {
    orbit.push_back(result.canonical.problem);
    ++impl.stats.internedProblems;
    ++stats_.internedProblems;
  }
  return result;
}

CacheStats EngineSession::stats() const {
  std::lock_guard lock(core_->impl_->mutex);
  return stats_;
}

void EngineSession::resetStats() {
  std::lock_guard lock(core_->impl_->mutex);
  stats_ = CacheStats{};
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

namespace {

class ApplyRPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "ApplyR"; }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    StepResult r = in.context.applyR(in.problem);
    PassOutput out;
    out.problem = std::move(r.problem);
    out.meaning = std::move(r.meaning);
    return out;
  }
};

class ApplyRbarPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "ApplyRbar"; }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    StepResult r = in.context.applyRbar(in.problem);
    PassOutput out;
    out.problem = std::move(r.problem);
    out.meaning = std::move(r.meaning);
    return out;
  }
};

class RenamePass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "Rename"; }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    auto interned = in.context.intern(in.problem);
    PassOutput out;
    out.problem = std::move(interned.canonical.problem);
    out.note = interned.alreadyInterned ? "canonical form already interned"
                                        : "fresh canonical form";
    return out;
  }
};

class RelaxPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "Relax"; }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    PassOutput out;
    out.problem = in.problem;
    const std::size_t nodeBefore = out.problem.node.size();
    const std::size_t edgeBefore = out.problem.edge.size();
    out.problem.node.removeDominatedConfigurations();
    out.problem.edge.removeDominatedConfigurations();
    out.note = "dropped " +
               std::to_string((nodeBefore - out.problem.node.size()) +
                              (edgeBefore - out.problem.edge.size())) +
               " dominated configuration(s)";
    return out;
  }
};

class ZeroRoundCheckPass final : public Pass {
 public:
  explicit ZeroRoundCheckPass(ZeroRoundMode mode) : mode_(mode) {}
  [[nodiscard]] std::string_view name() const override {
    return "ZeroRoundCheck";
  }
  [[nodiscard]] PassOutput run(const PassInput& in) override {
    PassOutput out;
    out.problem = in.problem;
    const bool solvable = in.context.zeroRoundSolvable(in.problem, mode_);
    out.stop = solvable;
    out.note = solvable ? "0-round solvable; pipeline stopped"
                        : "not 0-round solvable";
    return out;
  }

 private:
  ZeroRoundMode mode_;
};

}  // namespace

std::unique_ptr<Pass> makeApplyRPass() {
  return std::make_unique<ApplyRPass>();
}
std::unique_ptr<Pass> makeApplyRbarPass() {
  return std::make_unique<ApplyRbarPass>();
}
std::unique_ptr<Pass> makeRenamePass() {
  return std::make_unique<RenamePass>();
}
std::unique_ptr<Pass> makeRelaxPass() {
  return std::make_unique<RelaxPass>();
}
std::unique_ptr<Pass> makeZeroRoundCheckPass(ZeroRoundMode mode) {
  return std::make_unique<ZeroRoundCheckPass>(mode);
}

// ---------------------------------------------------------------------------
// PassManager
// ---------------------------------------------------------------------------

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

PassManager PassManager::speedupPipeline() {
  PassManager pm;
  pm.add(makeApplyRPass());
  pm.add(makeApplyRbarPass());
  return pm;
}

PipelineResult PassManager::run(const Problem& p,
                                EngineSession& session) const {
  PipelineResult out;
  Problem current = p;
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    Pass& pass = *passes_[i];
    PassStats st;
    st.name = std::string(pass.name());
    st.labelsIn = current.alphabet.size();
    st.nodeConfigsIn = current.node.size();
    st.edgeConfigsIn = current.edge.size();
    const CacheStats before = session.stats();
    const std::string spanName = "pass." + st.name;
    const auto t0 = std::chrono::steady_clock::now();
    PassOutput po;
    {
      const obs::ScopedSpan span(spanName, session.tracer());
      po = pass.run({current, session, session.options()});
    }
    const auto t1 = std::chrono::steady_clock::now();
    const CacheStats after = session.stats();
    st.wallMicros =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
    st.fromCache = after.stepHits > before.stepHits &&
                   after.stepMisses == before.stepMisses;
    current = std::move(po.problem);
    {
      session.registry().gauge("re.labels.last")
          .set(static_cast<std::int64_t>(current.alphabet.size()));
      obs::Tracer& tracer = session.tracer();
      if (tracer.enabled()) {
        tracer.counter("re.labels.last",
                       static_cast<std::int64_t>(current.alphabet.size()));
      }
    }
    st.labelsOut = current.alphabet.size();
    st.nodeConfigsOut = current.node.size();
    st.edgeConfigsOut = current.edge.size();
    st.note = std::move(po.note);
    out.passes.push_back(std::move(st));
    if (po.stop) {
      out.stopped = true;
      out.stoppedAt = i;
      break;
    }
  }
  out.problem = std::move(current);
  return out;
}

std::string PipelineResult::renderStatsTable() const {
  // Column layout:  pass | wall us | labels in->out | node cfgs | edge cfgs
  //                 | cache | note
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"pass", "wall(us)", "labels", "node cfgs", "edge cfgs",
                  "cache", "note"});
  for (const PassStats& s : passes) {
    rows.push_back({s.name, std::to_string(s.wallMicros),
                    std::to_string(s.labelsIn) + "->" +
                        std::to_string(s.labelsOut),
                    std::to_string(s.nodeConfigsIn) + "->" +
                        std::to_string(s.nodeConfigsOut),
                    std::to_string(s.edgeConfigsIn) + "->" +
                        std::to_string(s.edgeConfigsOut),
                    s.fromCache ? "hit" : "miss", s.note});
  }
  std::vector<std::size_t> width(rows.front().size(), 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  }
  if (stopped) {
    out += "(pipeline stopped at pass " + std::to_string(stoppedAt) + ": " +
           passes[stoppedAt].name + ")\n";
  }
  return out;
}

}  // namespace relb::re
