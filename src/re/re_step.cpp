#include "re/re_step.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "re/antichain.hpp"
#include "re/bitkernels.hpp"
#include "re/engine.hpp"
#include "re/packed_words.hpp"
#include "util/arena.hpp"
#include "util/thread_pool.hpp"

namespace relb::re {

namespace {

using detail::SignatureBuckets;
using kernels::PackedWord;

// Registry references are interned once; hot loops accumulate locally and
// add to the shared counter once per item (see docs/observability.md).
struct StepCounters {
  obs::Counter& rbarCandidates;
  obs::Counter& rbarMaximal;
  obs::Counter& antichainPairs;
  obs::Counter& antichainTests;
  obs::Counter& labelsProduced;
};

StepCounters& stepCounters() {
  auto& reg = obs::Registry::global();
  static StepCounters c{
      reg.counter("re.rbar.candidates"), reg.counter("re.rbar.maximal"),
      reg.counter("re.antichain.pairs"), reg.counter("re.antichain.tests"),
      reg.counter("re.labels.produced")};
  return c;
}

// Per-thread arena pair for the step hot paths (see util/arena.hpp):
// `scratch` backs the DFS level buffers under strict mark/rewind LIFO;
// `results` backs the completability memo and the candidate accumulator,
// whose growth is non-LIFO and is reclaimed only by reset() at the start of
// the next step on this thread.
struct StepArenas {
  util::Arena scratch;
  util::Arena results;
};

StepArenas& stepArenas() {
  thread_local StepArenas arenas;
  return arenas;
}

// Builds the fresh alphabet for a collection of label sets over the old
// alphabet.  Singletons keep their old name; larger sets get a parenthesized
// concatenation, e.g. "(MOX)".
Alphabet freshAlphabet(const std::vector<LabelSet>& sets,
                       const Alphabet& oldAlphabet) {
  Alphabet fresh;
  for (LabelSet s : sets) {
    const auto labels = s.toVector();
    if (labels.size() == 1) {
      fresh.add(oldAlphabet.name(labels[0]));
      continue;
    }
    std::string name = "(";
    bool multiChar = false;
    for (Label l : labels) multiChar |= oldAlphabet.name(l).size() > 1;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0 && multiChar) name += ' ';
      name += oldAlphabet.name(labels[i]);
    }
    name += ')';
    fresh.add(std::move(name));
  }
  return fresh;
}

// Replacement method (Section 2.3): rewrites a constraint over the old
// alphabet into one over the fresh alphabet by replacing every old label y
// with the disjunction of all fresh labels whose meaning contains y; for a
// group with set S this is the set of fresh labels whose meaning intersects
// S.  The per-old-label fresh-set table turns the per-group scan over all
// fresh meanings into an OR of precomputed masks.
Constraint replaceConstraint(const Constraint& constraint,
                             const std::vector<LabelSet>& meaning) {
  assert(meaning.size() <= static_cast<std::size_t>(kMaxLabels));
  std::array<std::uint32_t, kMaxLabels> freshOf{};
  for (std::size_t n = 0; n < meaning.size(); ++n) {
    forEachLabel(meaning[n],
                 [&](Label y) { freshOf[y] |= std::uint32_t{1} << n; });
  }
  Constraint out(constraint.degree(), {});
  for (const auto& c : constraint.configurations()) {
    // A group whose labels are represented by no fresh label makes the whole
    // configuration unrealizable; drop it.
    bool realizable = true;
    auto mapped = c.mapSets([&](LabelSet oldSet) {
      std::uint32_t fresh = 0;
      forEachLabel(oldSet, [&](Label y) { fresh |= freshOf[y]; });
      if (fresh == 0) {
        realizable = false;
        fresh = 1;  // placeholder; configuration is discarded
      }
      return LabelSet(fresh);
    });
    if (realizable) out.add(std::move(mapped));
  }
  return out;
}

// Sorted deduplicated copy of `sets` -- the fresh-label meaning order, equal
// to iterating a std::set<LabelSet> of the same elements.
std::vector<LabelSet> sortedDistinctSets(std::vector<LabelSet> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  return sets;
}

}  // namespace

StepResult detail::applyRImpl(const Problem& p, const StepOptions& options,
                              EngineContext* ctx) {
  p.validate();
  const int n = p.alphabet.size();
  const auto compat = ctx != nullptr ? ctx->edgeCompatibility(p.edge, n)
                                     : edgeCompatibility(p.edge, n);
  const auto pairs =
      detail::maximalEdgePairsFromCompat(compat, n, options.numThreads);
  if (pairs.empty()) {
    throw Error("applyR: empty edge constraint after maximization");
  }

  // Fresh alphabet: all sets appearing in a maximal pair, ordered by bitset
  // value for determinism.
  std::vector<LabelSet> setsSeen;
  setsSeen.reserve(pairs.size() * 2);
  for (const auto& [a, b] : pairs) {
    setsSeen.push_back(a);
    setsSeen.push_back(b);
  }
  StepResult result;
  result.meaning = sortedDistinctSets(std::move(setsSeen));
  result.problem.alphabet = freshAlphabet(result.meaning, p.alphabet);
  stepCounters().labelsProduced.add(result.meaning.size());

  const auto freshLabelOf = [&](LabelSet s) {
    const auto it = std::lower_bound(result.meaning.begin(),
                                     result.meaning.end(), s);
    assert(it != result.meaning.end() && *it == s);
    return static_cast<Label>(it - result.meaning.begin());
  };

  Constraint edge(2, {});
  for (const auto& [a, b] : pairs) {
    const Label la = freshLabelOf(a);
    const Label lb = freshLabelOf(b);
    if (la == lb) {
      edge.add(Configuration({{LabelSet{la}, 2}}));
    } else {
      edge.add(Configuration({{LabelSet{la}, 1}, {LabelSet{lb}, 1}}));
    }
  }
  result.problem.edge = std::move(edge);
  result.problem.node = replaceConstraint(p.node, result.meaning);
  result.problem.validate();
  return result;
}

StepResult applyR(const Problem& p, const StepOptions& options) {
  return detail::applyRImpl(p, options, nullptr);
}

namespace {

// Words with per-label counts <= 15 over alphabets of <= 16 labels pack into
// one uint64 (4 bits per label); the Rbar enumeration runs entirely on this
// encoding (see re/bitkernels.hpp and re/packed_words.hpp for the
// primitives).
//
// Enumerates multisets of right-closed sets of size delta (non-decreasing
// index sequences) with prefix sharing: the level set of distinct partial
// choice words is extended one slot at a time, and a branch dies as soon as
// some partial word can no longer be completed to an allowed word.  Level
// buffers live in the scratch arena under mark/rewind; the memo and the
// flat candidate accumulator live in the results arena.  Each enumerator
// owns its arenas and output, so independent top-level branches can run on
// separate threads.
struct RbarEnumerator {
  const std::vector<LabelSet>& rcSets;
  const PackedWord* nodeWords;  // sorted ascending
  const kernels::ExpandedWord* nodeWordsExpanded;  // same order
  const std::size_t nodeWordCount;
  const Count delta;

  util::Arena& scratch;
  // The same partial word recurs across many branches; memoize its
  // completability.
  kernels::CompletabilityMemo memo;
  // Accepted candidates as delta-strided slot records: candidate k occupies
  // valid[k*delta .. (k+1)*delta), each entry a LabelSet::bits() value, in
  // the (non-decreasing) order the DFS chose the slots.
  util::ArenaVector<std::uint32_t> valid;
  std::uint32_t slots[16];
  Count depth = 0;

  RbarEnumerator(const std::vector<LabelSet>& rcSets,
                 const PackedWord* nodeWords,
                 const kernels::ExpandedWord* nodeWordsExpanded,
                 std::size_t nodeWordCount, Count delta, util::Arena& scratch,
                 util::Arena& results)
      : rcSets(rcSets),
        nodeWords(nodeWords),
        nodeWordsExpanded(nodeWordsExpanded),
        nodeWordCount(nodeWordCount),
        delta(delta),
        scratch(scratch),
        memo(results),
        valid(results) {}

  bool canComplete(PackedWord w) {
    return memo.getOrCompute(w, [&] {
      return kernels::dominatedBySome(kernels::expandWord(w),
                                      nodeWordsExpanded, nodeWordCount);
    });
  }

  // One loop iteration of rec: extend `level` by slot set rcSets[i] and
  // recurse if every resulting partial word is still completable.
  void descend(std::size_t i, const PackedWord* level, std::size_t levelSize) {
    const util::Arena::Mark levelMark = scratch.mark();
    PackedWord* next = scratch.allocate<PackedWord>(
        levelSize * static_cast<std::size_t>(rcSets[i].size()));
    std::size_t nextSize = 0;
    for (std::size_t k = 0; k < levelSize; ++k) {
      const PackedWord w = level[k];
      forEachLabel(rcSets[i], [&](Label l) {
        next[nextSize++] = w + (PackedWord{1} << (4 * l));
      });
    }
    std::sort(next, next + nextSize);
    nextSize =
        static_cast<std::size_t>(std::unique(next, next + nextSize) - next);
    const bool viable = std::all_of(
        next, next + nextSize, [&](PackedWord w) { return canComplete(w); });
    if (viable) {
      slots[depth++] = rcSets[i].bits();
      rec(i, next, nextSize);
      --depth;
    }
    scratch.rewind(levelMark);
  }

  void rec(std::size_t minIdx, const PackedWord* level,
           std::size_t levelSize) {
    if (depth == delta) {
      // Completion: every distinct choice word must be allowed.
      const bool all =
          std::all_of(level, level + levelSize, [&](PackedWord w) {
            return std::binary_search(nodeWords, nodeWords + nodeWordCount, w);
          });
      if (all) valid.append(slots, static_cast<std::size_t>(delta));
      return;
    }
    for (std::size_t i = minIdx; i < rcSets.size(); ++i) {
      descend(i, level, levelSize);
    }
  }
};

// Encodes a delta-strided slot record as a Configuration whose groups carry
// the slot sets directly (one group per distinct set).  Slots arrive in
// non-decreasing bits() order (the DFS chooses rcSets indices monotonically
// and rcSets is ascending), so a run-length scan produces the groups already
// normalized; under this encoding, Configuration::relaxesTo is exactly the
// relaxation order of Definition 7.
Configuration slotsToConfiguration(const std::uint32_t* slots, Count delta) {
  std::vector<Group> groups;
  for (Count k = 0; k < delta;) {
    Count run = k + 1;
    while (run < delta && slots[run] == slots[k]) ++run;
    groups.push_back({LabelSet(slots[k]), run - k});
    k = run;
  }
  return Configuration(std::move(groups));
}

}  // namespace

StepResult detail::applyRbarImpl(const Problem& p, const StepOptions& options,
                                 EngineContext* ctx) {
  p.validate();
  const int n = p.alphabet.size();
  const Count delta = p.delta();
  if (delta > options.maxRbarDelta) {
    throw Error("applyRbar: node degree too large for exact maximization");
  }

  // Strength relation w.r.t. the node constraint -> right-closed candidate
  // slot sets (Observation 4 plus the up-closure argument documented in
  // re_step.hpp).
  const auto rcSets =
      ctx != nullptr
          ? ctx->rightClosedSets(p.node, n, p.alphabet.all(),
                                 options.enumerationLimit)
          : computeStrength(p.node, n, options.enumerationLimit)
                .allRightClosedSets(p.alphabet.all());

  if (n > 16 || delta > 15) {
    throw Error("applyRbar: packed-word enumeration needs <= 16 labels and "
                "delta <= 15");
  }
  const std::vector<PackedWord> nodeWords =
      kernels::collectPackedWords(p.node, n, options.enumerationLimit);
  // Pre-expanded copy for the branch-free domination kernel; shared
  // read-only by every enumeration lane.
  std::vector<kernels::ExpandedWord> nodeWordsExpanded(nodeWords.size());
  for (std::size_t i = 0; i < nodeWords.size(); ++i) {
    nodeWordsExpanded[i] = kernels::expandWord(nodeWords[i]);
  }

  // Multiset enumeration (see RbarEnumerator).  With more than one thread,
  // the top-level branches fan out: branch i enumerates exactly the
  // multisets whose smallest chosen set is rcSets[i], and concatenating the
  // per-branch results in branch order reproduces the serial DFS output
  // verbatim.  Each branch owns a private memo; per-branch results are
  // copied out of the lane's arenas before the next branch resets them.
  const int width = std::min<int>(util::resolveThreadCount(options.numThreads),
                                  static_cast<int>(rcSets.size()));
  // Delta-strided slot records (see RbarEnumerator::valid).
  std::vector<std::uint32_t> validFlat;
  {
    const obs::ScopedSpan span("re.rbar.enumerate");
    if (width <= 1) {
      StepArenas& arenas = stepArenas();
      util::Arena& results =
          options.arena != nullptr ? *options.arena : arenas.results;
      arenas.scratch.reset();
      results.reset();
      RbarEnumerator enumerator(rcSets, nodeWords.data(),
                                nodeWordsExpanded.data(), nodeWords.size(),
                                delta, arenas.scratch, results);
      const PackedWord root = 0;
      enumerator.rec(0, &root, 1);
      validFlat.assign(enumerator.valid.begin(), enumerator.valid.end());
    } else {
      std::vector<std::vector<std::uint32_t>> branchValid(rcSets.size());
      util::parallel_for(
          options.numThreads, rcSets.size(), [&](std::size_t i) {
            StepArenas& arenas = stepArenas();
            arenas.scratch.reset();
            arenas.results.reset();
            RbarEnumerator enumerator(rcSets, nodeWords.data(),
                                      nodeWordsExpanded.data(),
                                      nodeWords.size(), delta, arenas.scratch,
                                      arenas.results);
            const PackedWord root = 0;
            enumerator.descend(i, &root, 1);
            branchValid[i].assign(enumerator.valid.begin(),
                                  enumerator.valid.end());
          });
      std::size_t total = 0;
      for (const auto& branch : branchValid) total += branch.size();
      validFlat.reserve(total);
      for (const auto& branch : branchValid) {
        validFlat.insert(validFlat.end(), branch.begin(), branch.end());
      }
    }
  }
  const std::size_t numValid =
      validFlat.size() / static_cast<std::size_t>(delta);
  stepCounters().rbarCandidates.add(numValid);
  if (numValid == 0) {
    throw Error("applyRbar: node constraint empty after maximization");
  }
  const auto candidate = [&](std::size_t i) {
    return validFlat.data() + i * static_cast<std::size_t>(delta);
  };

  // Keep only maximal candidates under the relaxation order.  Candidates
  // are pairwise distinct slot multisets (the DFS emits each once), so
  // strict domination is `relaxes-to and not equal`.  A relaxation requires
  // the slot unions to nest, so the all-pairs scan is bucketed by union
  // signature and each candidate compared against superset buckets only.
  std::vector<std::uint32_t> signatures(numValid);
  for (std::size_t i = 0; i < numValid; ++i) {
    std::uint32_t u = 0;
    const std::uint32_t* rec = candidate(i);
    for (Count k = 0; k < delta; ++k) u |= rec[k];
    signatures[i] = u;
  }
  const SignatureBuckets buckets(signatures);
  std::vector<char> dominated(numValid, 0);
  {
    const obs::ScopedSpan span("re.rbar.filter");
    util::parallel_for(options.numThreads, numValid, [&](std::size_t i) {
      std::uint64_t pairsVisited = 0;
      std::uint64_t testsRun = 0;
      const std::uint32_t* mine = candidate(i);
      dominated[i] = buckets.anyInSupersetBucket(
          signatures[i], [&](std::size_t j) {
            if (j == i) return false;
            ++pairsVisited;
            ++testsRun;
            const std::uint32_t* other = candidate(j);
            if (!kernels::slotsRelaxTo(mine, other,
                                       static_cast<int>(delta))) {
              return false;
            }
            // The reverse relaxation needs union(j) subsetOf union(i);
            // inside a strictly-larger bucket it is impossible, so
            // domination is already established.
            if (signatures[j] != signatures[i]) return true;
            ++testsRun;
            return !kernels::slotsRelaxTo(other, mine,
                                          static_cast<int>(delta));
          });
      stepCounters().antichainPairs.add(pairsVisited);
      stepCounters().antichainTests.add(testsRun);
    });
  }
  std::vector<Configuration> maximal;
  for (std::size_t i = 0; i < numValid; ++i) {
    if (!dominated[i]) maximal.push_back(slotsToConfiguration(candidate(i), delta));
  }
  std::sort(maximal.begin(), maximal.end());
  maximal.erase(std::unique(maximal.begin(), maximal.end()), maximal.end());
  stepCounters().rbarMaximal.add(maximal.size());

  // Fresh alphabet: sets appearing in maximal node configurations.
  std::vector<LabelSet> setsSeen;
  for (const auto& c : maximal) {
    for (const auto& g : c.groups()) setsSeen.push_back(g.set);
  }
  StepResult result;
  result.meaning = sortedDistinctSets(std::move(setsSeen));
  result.problem.alphabet = freshAlphabet(result.meaning, p.alphabet);
  stepCounters().labelsProduced.add(result.meaning.size());

  const auto freshLabelOf = [&](LabelSet s) {
    const auto it =
        std::lower_bound(result.meaning.begin(), result.meaning.end(), s);
    assert(it != result.meaning.end() && *it == s);
    return static_cast<Label>(it - result.meaning.begin());
  };

  Constraint node(delta, {});
  for (const auto& c : maximal) {
    std::vector<Group> groups;
    for (const auto& g : c.groups()) {
      groups.push_back({LabelSet::single(freshLabelOf(g.set)), g.count});
    }
    node.add(Configuration(std::move(groups)));
  }
  result.problem.node = std::move(node);
  result.problem.edge = replaceConstraint(p.edge, result.meaning);
  result.problem.validate();
  return result;
}

StepResult applyRbar(const Problem& p, const StepOptions& options) {
  return detail::applyRbarImpl(p, options, nullptr);
}

Problem speedupStep(const Problem& p, const StepOptions& options) {
  return applyRbar(applyR(p, options).problem, options).problem;
}

}  // namespace relb::re
