#include "re/re_step.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "re/antichain.hpp"
#include "re/engine.hpp"
#include "util/thread_pool.hpp"

namespace relb::re {

namespace {

using detail::SignatureBuckets;

// Registry references are interned once; hot loops accumulate locally and
// add to the shared counter once per item (see docs/observability.md).
struct StepCounters {
  obs::Counter& rbarCandidates;
  obs::Counter& rbarMaximal;
  obs::Counter& antichainPairs;
  obs::Counter& antichainTests;
  obs::Counter& labelsProduced;
};

StepCounters& stepCounters() {
  auto& reg = obs::Registry::global();
  static StepCounters c{
      reg.counter("re.rbar.candidates"), reg.counter("re.rbar.maximal"),
      reg.counter("re.antichain.pairs"), reg.counter("re.antichain.tests"),
      reg.counter("re.labels.produced")};
  return c;
}

// Builds the fresh alphabet for a collection of label sets over the old
// alphabet.  Singletons keep their old name; larger sets get a parenthesized
// concatenation, e.g. "(MOX)".
Alphabet freshAlphabet(const std::vector<LabelSet>& sets,
                       const Alphabet& oldAlphabet) {
  Alphabet fresh;
  for (LabelSet s : sets) {
    const auto labels = s.toVector();
    if (labels.size() == 1) {
      fresh.add(oldAlphabet.name(labels[0]));
      continue;
    }
    std::string name = "(";
    bool multiChar = false;
    for (Label l : labels) multiChar |= oldAlphabet.name(l).size() > 1;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0 && multiChar) name += ' ';
      name += oldAlphabet.name(labels[i]);
    }
    name += ')';
    fresh.add(std::move(name));
  }
  return fresh;
}

// Replacement method (Section 2.3): rewrites a constraint over the old
// alphabet into one over the fresh alphabet by replacing every old label y
// with the disjunction of all fresh labels whose meaning contains y; for a
// group with set S this is the set of fresh labels whose meaning intersects
// S.
Constraint replaceConstraint(const Constraint& constraint,
                             const std::vector<LabelSet>& meaning) {
  Constraint out(constraint.degree(), {});
  for (const auto& c : constraint.configurations()) {
    // A group whose labels are represented by no fresh label makes the whole
    // configuration unrealizable; drop it.
    bool realizable = true;
    auto mapped = c.mapSets([&](LabelSet oldSet) {
      LabelSet fresh;
      for (std::size_t n = 0; n < meaning.size(); ++n) {
        if (meaning[n].intersects(oldSet)) {
          fresh.insert(static_cast<Label>(n));
        }
      }
      if (fresh.empty()) {
        realizable = false;
        fresh.insert(0);  // placeholder; configuration is discarded
      }
      return fresh;
    });
    if (realizable) out.add(std::move(mapped));
  }
  return out;
}

}  // namespace

StepResult detail::applyRImpl(const Problem& p, const StepOptions& options,
                              EngineContext* ctx) {
  p.validate();
  const int n = p.alphabet.size();
  const auto compat = ctx != nullptr ? ctx->edgeCompatibility(p.edge, n)
                                     : edgeCompatibility(p.edge, n);
  const auto pairs =
      detail::maximalEdgePairsFromCompat(compat, n, options.numThreads);
  if (pairs.empty()) {
    throw Error("applyR: empty edge constraint after maximization");
  }

  // Fresh alphabet: all sets appearing in a maximal pair, ordered by bitset
  // value for determinism.
  std::set<LabelSet> setsSeen;
  for (const auto& [a, b] : pairs) {
    setsSeen.insert(a);
    setsSeen.insert(b);
  }
  StepResult result;
  result.meaning.assign(setsSeen.begin(), setsSeen.end());
  result.problem.alphabet = freshAlphabet(result.meaning, p.alphabet);
  stepCounters().labelsProduced.add(result.meaning.size());

  const auto freshLabelOf = [&](LabelSet s) {
    const auto it = std::lower_bound(result.meaning.begin(),
                                     result.meaning.end(), s);
    assert(it != result.meaning.end() && *it == s);
    return static_cast<Label>(it - result.meaning.begin());
  };

  Constraint edge(2, {});
  for (const auto& [a, b] : pairs) {
    const Label la = freshLabelOf(a);
    const Label lb = freshLabelOf(b);
    if (la == lb) {
      edge.add(Configuration({{LabelSet{la}, 2}}));
    } else {
      edge.add(Configuration({{LabelSet{la}, 1}, {LabelSet{lb}, 1}}));
    }
  }
  result.problem.edge = std::move(edge);
  result.problem.node = replaceConstraint(p.node, result.meaning);
  result.problem.validate();
  return result;
}

StepResult applyR(const Problem& p, const StepOptions& options) {
  return detail::applyRImpl(p, options, nullptr);
}

namespace {

// Words with per-label counts <= 15 over alphabets of <= 16 labels pack into
// one uint64 (4 bits per label); the Rbar enumeration runs entirely on this
// encoding.
using PackedWord = std::uint64_t;

PackedWord packWord(const Word& w) {
  PackedWord packed = 0;
  for (std::size_t l = 0; l < w.size(); ++l) {
    packed |= static_cast<PackedWord>(w[l]) << (4 * l);
  }
  return packed;
}

// True iff some word in `sorted` dominates `p` componentwise (i.e. the
// partial word p can still be completed to an allowed word).
bool dominatedBySome(PackedWord p, const std::vector<PackedWord>& words,
                     int alphabetSize) {
  for (const PackedWord w : words) {
    bool ok = true;
    for (int l = 0; l < alphabetSize; ++l) {
      if (((p >> (4 * l)) & 0xF) > ((w >> (4 * l)) & 0xF)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

// Definition 7 on explicit slot vectors: true iff there is a perfect
// matching pairing every slot of `a` with a superset slot of `b`.
// Allocation-free Kuhn matching; both vectors have the same (small) length.
bool slotsRelaxTo(const std::vector<LabelSet>& a,
                  const std::vector<LabelSet>& b) {
  const int n = static_cast<int>(a.size());
  // Quick rejects: unions must nest, and every a-slot needs some superset.
  LabelSet unionA, unionB;
  for (const LabelSet s : a) unionA = unionA | s;
  for (const LabelSet s : b) unionB = unionB | s;
  if (!unionA.subsetOf(unionB)) return false;

  std::array<int, 16> matchOfB{};
  matchOfB.fill(-1);
  std::array<bool, 16> visited{};
  std::function<bool(int)> augment = [&](int i) -> bool {
    for (int j = 0; j < n; ++j) {
      if (visited[static_cast<std::size_t>(j)] ||
          !a[static_cast<std::size_t>(i)].subsetOf(
              b[static_cast<std::size_t>(j)])) {
        continue;
      }
      visited[static_cast<std::size_t>(j)] = true;
      if (matchOfB[static_cast<std::size_t>(j)] < 0 ||
          augment(matchOfB[static_cast<std::size_t>(j)])) {
        matchOfB[static_cast<std::size_t>(j)] = i;
        return true;
      }
    }
    return false;
  };
  for (int i = 0; i < n; ++i) {
    visited.fill(false);
    if (!augment(i)) return false;
  }
  return true;
}

// Encodes a multiset of label sets as a Configuration whose groups carry the
// slot sets directly (one group per distinct set).  Under this encoding,
// Configuration::relaxesTo is exactly the relaxation order of Definition 7.
Configuration slotsToConfiguration(const std::vector<LabelSet>& slots) {
  std::map<LabelSet, Count> counts;
  for (LabelSet s : slots) ++counts[s];
  std::vector<Group> groups;
  groups.reserve(counts.size());
  for (const auto& [set, count] : counts) groups.push_back({set, count});
  return Configuration(std::move(groups));
}

// Enumerates multisets of right-closed sets of size delta (non-decreasing
// index sequences) with prefix sharing: the level set of distinct partial
// choice words is extended one slot at a time, and a branch dies as soon as
// some partial word can no longer be completed to an allowed word.  Each
// enumerator owns its memo and output, so independent top-level branches can
// run on separate threads.
struct RbarEnumerator {
  const std::vector<LabelSet>& rcSets;
  const std::vector<PackedWord>& nodeWords;  // sorted
  const int alphabetSize;
  const Count delta;

  // The same partial word recurs across many branches; memoize its
  // completability.
  std::unordered_map<PackedWord, bool> completable;
  std::vector<LabelSet> slots;
  std::vector<std::vector<LabelSet>> valid;

  bool canComplete(PackedWord w) {
    const auto it = completable.find(w);
    if (it != completable.end()) return it->second;
    const bool result = dominatedBySome(w, nodeWords, alphabetSize);
    completable.emplace(w, result);
    return result;
  }

  // One loop iteration of rec: extend `level` by slot set rcSets[i] and
  // recurse if every resulting partial word is still completable.
  void descend(std::size_t i, const std::vector<PackedWord>& level) {
    std::vector<PackedWord> next;
    next.reserve(level.size() * static_cast<std::size_t>(rcSets[i].size()));
    for (const PackedWord w : level) {
      forEachLabel(rcSets[i], [&](Label l) {
        next.push_back(w + (PackedWord{1} << (4 * l)));
      });
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    const bool viable = std::all_of(next.begin(), next.end(),
                                    [&](PackedWord w) { return canComplete(w); });
    if (!viable) return;
    slots.push_back(rcSets[i]);
    rec(i, next);
    slots.pop_back();
  }

  void rec(std::size_t minIdx, const std::vector<PackedWord>& level) {
    if (static_cast<Count>(slots.size()) == delta) {
      // Completion: every distinct choice word must be allowed.
      const bool all =
          std::all_of(level.begin(), level.end(), [&](PackedWord w) {
            return std::binary_search(nodeWords.begin(), nodeWords.end(), w);
          });
      if (all) valid.push_back(slots);
      return;
    }
    for (std::size_t i = minIdx; i < rcSets.size(); ++i) descend(i, level);
  }
};

}  // namespace

StepResult detail::applyRbarImpl(const Problem& p, const StepOptions& options,
                                 EngineContext* ctx) {
  p.validate();
  const int n = p.alphabet.size();
  const Count delta = p.delta();
  if (delta > options.maxRbarDelta) {
    throw Error("applyRbar: node degree too large for exact maximization");
  }

  // Strength relation w.r.t. the node constraint -> right-closed candidate
  // slot sets (Observation 4 plus the up-closure argument documented in
  // re_step.hpp).
  const auto rcSets =
      ctx != nullptr
          ? ctx->rightClosedSets(p.node, n, p.alphabet.all(),
                                 options.enumerationLimit)
          : computeStrength(p.node, n, options.enumerationLimit)
                .allRightClosedSets(p.alphabet.all());

  if (n > 16 || delta > 15) {
    throw Error("applyRbar: packed-word enumeration needs <= 16 labels and "
                "delta <= 15");
  }
  const auto nodeWordList =
      p.node.enumerateWords(n, options.enumerationLimit);
  std::vector<PackedWord> nodeWords;
  nodeWords.reserve(nodeWordList.size());
  for (const Word& w : nodeWordList) nodeWords.push_back(packWord(w));
  std::sort(nodeWords.begin(), nodeWords.end());

  // Multiset enumeration (see RbarEnumerator).  With more than one thread,
  // the top-level branches fan out: branch i enumerates exactly the
  // multisets whose smallest chosen set is rcSets[i], and concatenating the
  // per-branch results in branch order reproduces the serial DFS output
  // verbatim.  Each branch owns a private memo; the serial path keeps the
  // single shared memo of the original implementation.
  const int width = std::min<int>(util::resolveThreadCount(options.numThreads),
                                  static_cast<int>(rcSets.size()));
  std::vector<std::vector<LabelSet>> valid;
  const std::vector<PackedWord> root{0};
  {
    const obs::ScopedSpan span("re.rbar.enumerate");
    if (width <= 1 || delta == 0) {
      RbarEnumerator enumerator{rcSets, nodeWords, n, delta, {}, {}, {}};
      enumerator.rec(0, root);
      valid = std::move(enumerator.valid);
    } else {
      std::vector<std::vector<std::vector<LabelSet>>> branchValid(
          rcSets.size());
      util::parallel_for(
          options.numThreads, rcSets.size(), [&](std::size_t i) {
            RbarEnumerator enumerator{rcSets, nodeWords, n, delta, {}, {}, {}};
            enumerator.descend(i, root);
            branchValid[i] = std::move(enumerator.valid);
          });
      for (auto& branch : branchValid) {
        for (auto& v : branch) valid.push_back(std::move(v));
      }
    }
  }
  stepCounters().rbarCandidates.add(valid.size());
  if (valid.empty()) {
    throw Error("applyRbar: node constraint empty after maximization");
  }

  // Keep only maximal candidates under the relaxation order.  Candidates
  // are pairwise distinct slot multisets (the DFS emits each once), so
  // strict domination is `relaxes-to and not equal`.  A relaxation requires
  // the slot unions to nest, so the all-pairs scan is bucketed by union
  // signature and each candidate compared against superset buckets only.
  std::vector<std::uint32_t> signatures(valid.size());
  for (std::size_t i = 0; i < valid.size(); ++i) {
    LabelSet u;
    for (const LabelSet s : valid[i]) u = u | s;
    signatures[i] = u.bits();
  }
  const SignatureBuckets buckets(signatures);
  std::vector<char> dominated(valid.size(), 0);
  {
    const obs::ScopedSpan span("re.rbar.filter");
    util::parallel_for(options.numThreads, valid.size(), [&](std::size_t i) {
      std::uint64_t pairsVisited = 0;
      std::uint64_t testsRun = 0;
      dominated[i] = buckets.anyInSupersetBucket(
          signatures[i], [&](std::size_t j) {
            if (j == i) return false;
            ++pairsVisited;
            ++testsRun;
            if (!slotsRelaxTo(valid[i], valid[j])) return false;
            // The reverse relaxation needs union(j) subsetOf union(i);
            // inside a strictly-larger bucket it is impossible, so
            // domination is already established.
            if (signatures[j] != signatures[i]) return true;
            ++testsRun;
            return !slotsRelaxTo(valid[j], valid[i]);
          });
      stepCounters().antichainPairs.add(pairsVisited);
      stepCounters().antichainTests.add(testsRun);
    });
  }
  std::vector<Configuration> maximal;
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (!dominated[i]) maximal.push_back(slotsToConfiguration(valid[i]));
  }
  std::sort(maximal.begin(), maximal.end());
  maximal.erase(std::unique(maximal.begin(), maximal.end()), maximal.end());
  stepCounters().rbarMaximal.add(maximal.size());

  // Fresh alphabet: sets appearing in maximal node configurations.
  std::set<LabelSet> setsSeen;
  for (const auto& c : maximal) {
    for (const auto& g : c.groups()) setsSeen.insert(g.set);
  }
  StepResult result;
  result.meaning.assign(setsSeen.begin(), setsSeen.end());
  result.problem.alphabet = freshAlphabet(result.meaning, p.alphabet);
  stepCounters().labelsProduced.add(result.meaning.size());

  const auto freshLabelOf = [&](LabelSet s) {
    const auto it =
        std::lower_bound(result.meaning.begin(), result.meaning.end(), s);
    assert(it != result.meaning.end() && *it == s);
    return static_cast<Label>(it - result.meaning.begin());
  };

  Constraint node(delta, {});
  for (const auto& c : maximal) {
    std::vector<Group> groups;
    for (const auto& g : c.groups()) {
      groups.push_back({LabelSet::single(freshLabelOf(g.set)), g.count});
    }
    node.add(Configuration(std::move(groups)));
  }
  result.problem.node = std::move(node);
  result.problem.edge = replaceConstraint(p.edge, result.meaning);
  result.problem.validate();
  return result;
}

StepResult applyRbar(const Problem& p, const StepOptions& options) {
  return detail::applyRbarImpl(p, options, nullptr);
}

Problem speedupStep(const Problem& p, const StepOptions& options) {
  return applyRbar(applyR(p, options).problem, options).problem;
}

}  // namespace relb::re
