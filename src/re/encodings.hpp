// A catalog of classic locally checkable problems in the round-elimination
// formalism, beyond the MIS / sinkless-orientation encodings of
// problem.hpp.  These are the problems the paper's related-work discussion
// revolves around (maximal matchings and b-matchings [BBHORS'19, BO'20],
// colorings [Linial'92], weak coloring [BHOS'19]) and they double as
// generality tests for the engine.
//
// All encodings are on Delta-regular graphs and use the conventions of
// Section 2.2: a solution assigns one label per (node, incident edge) pair;
// the node constraint governs each node's multiset, the edge constraint each
// edge's pair.
#pragma once

#include "re/problem.hpp"

namespace relb::re {

/// Maximal matching: label M marks the matched edge (both sides), a
/// saturated node shows M O^{Delta-1}, an unmatched node P^Delta (every
/// neighbor of an unmatched node must be matched, or the matching would not
/// be maximal).  E = { MM, PO, OO }.
[[nodiscard]] Problem maximalMatchingProblem(Count delta);

/// Maximal b-matching: a node may be in up to b matched edges; a node with
/// i < b matched edges certifies maximality by pointing P on every unmatched
/// edge (its other endpoint must be saturated); a saturated node uses O.
/// N = { M^i P^{Delta-i} : 0 <= i < b } + { M^b O^{Delta-b} },
/// E = { MM, PO, OO }.  b = 1 coincides with maximalMatchingProblem.
[[nodiscard]] Problem bMatchingProblem(Count delta, Count b);

/// Proper c-coloring of the nodes: each node outputs its color on every
/// port; adjacent nodes differ.  N = { i^Delta : i in [c] },
/// E = { ij : i != j }.
[[nodiscard]] Problem cColoringProblem(Count delta, int c);

/// Weak c-coloring: every node needs at least one neighbor of a different
/// color.  A node of color i points (P_i) at one differing neighbor and
/// writes C_i elsewhere.  2c labels.
[[nodiscard]] Problem weakColoringProblem(Count delta, int c);

/// Proper c-edge-coloring: each edge gets one of c colors, agreeing on both
/// sides, with all colors distinct around a node.  The node constraint has
/// one configuration per Delta-subset of colors; requires small c and Delta
/// (guarded).
[[nodiscard]] Problem edgeColoringProblem(int delta, int c);

}  // namespace relb::re
