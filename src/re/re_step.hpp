// The round-elimination operators R and Rbar (Section 2.3, following
// Brandt [PODC'19], Theorem 4.3).
//
// Given a problem Pi with complexity T on high-girth Delta-regular graphs,
// Rbar(R(Pi)) has complexity exactly max{T-1, 0}.  R replaces labels by sets
// of labels and maximizes the *edge* constraint; Rbar does the same on the
// *node* constraint.  The sets of the output become fresh labels of the
// output problem; `StepResult::meaning` records which set of input labels
// each fresh label stands for.
//
// Scalability:
//   * applyR is exact for every Delta: the edge side is degree-2 (and thus
//     Delta-independent), and the node side uses the replacement method on
//     condensed configurations.
//   * applyRbar must maximize over node configurations; this is done exactly
//     by enumerating multisets of right-closed label sets with a
//     deduplicating all-choices check, which is feasible for small Delta
//     (the number of distinct choice words is bounded by the number of
//     multisets, not by |set|^Delta).  Guarded by `options.maxRbarDelta`.
//
// Parallelism: the subset sweep of maximalEdgePairs, the top-level branches
// of the Rbar multiset enumeration, and both maximality filters fan out over
// a thread pool (see util/thread_pool.hpp) when StepOptions::numThreads
// resolves to more than one thread.  Partial results are merged in a fixed
// index order and the domination filters are pure per-candidate predicates,
// so the output is bit-identical for every thread count; numThreads == 1
// runs the original serial code paths.  Independently of threading, the
// quadratic domination filters are pruned by union-signature bucketing:
// a candidate can only be dominated by one whose label-set union is a
// superset, so candidates are compared against plausibly-dominating buckets
// only (an antichain prune that helps even at one thread).
#pragma once

#include <vector>

#include "re/diagram.hpp"
#include "re/edge_compat.hpp"
#include "re/problem.hpp"
#include "util/thread_pool.hpp"

namespace relb::util {
class Arena;
}

namespace relb::re {

// The cached engine entry points live on EngineSession (re/engine.hpp); the
// pre-split name EngineContext survives as an alias for source
// compatibility.
class EngineSession;
using EngineContext = EngineSession;

struct StepResult {
  Problem problem;
  /// meaning[newLabel] = the set of input labels this fresh label denotes.
  std::vector<LabelSet> meaning;
};

struct StepOptions {
  /// applyRbar refuses node degrees above this (enumeration guard).
  Count maxRbarDelta = 8;
  /// Word-enumeration cap used for strength computation inside applyRbar.
  std::size_t enumerationLimit = 2'000'000;
  /// Fan-out width for the parallel sections of applyR / applyRbar:
  /// 0 = one thread per hardware core, 1 = fully serial, k >= 2 = exactly k
  /// lanes.  Results are bit-identical for every value.
  int numThreads = util::kDefaultNumThreads;
  /// Optional caller-owned arena backing the serial Rbar sweep's result
  /// buffers (completability memo + candidate accumulator).  The step resets
  /// it on entry, so nothing may live in it across calls.  nullptr (the
  /// default) uses an engine-owned thread-local arena; parallel lanes always
  /// use their own thread-local arenas.  Never affects results, and is
  /// ignored by result caches/stores (like numThreads).
  util::Arena* arena = nullptr;
};

/// Computes Pi' = R(Pi).  Exact for arbitrary Delta.
[[nodiscard]] StepResult applyR(const Problem& p,
                                const StepOptions& options = {});

/// Computes Pi'' = Rbar(Pi').  Exact; requires small Delta (see above).
[[nodiscard]] StepResult applyRbar(const Problem& p,
                                   const StepOptions& options = {});

/// One full speedup step Rbar(R(Pi)).
[[nodiscard]] Problem speedupStep(const Problem& p,
                                  const StepOptions& options = {});

// edgeCompatibility and maximalEdgePairs moved to re/edge_compat.hpp
// (included above): they are plain combinatorial facts about an edge
// constraint, usable by consumers -- zero-round analysis, the certificate
// verifier -- that must not link the speedup engine.

namespace detail {

/// Context-aware implementations behind both the free functions (ctx ==
/// nullptr: compute everything locally) and EngineContext (ctx != nullptr:
/// sub-results -- edge compatibility, strength diagrams, right-closed
/// families -- are fetched through the context's caches).  The produced
/// StepResult is bit-identical either way.
[[nodiscard]] StepResult applyRImpl(const Problem& p,
                                    const StepOptions& options,
                                    EngineContext* ctx);
[[nodiscard]] StepResult applyRbarImpl(const Problem& p,
                                       const StepOptions& options,
                                       EngineContext* ctx);

}  // namespace detail

}  // namespace relb::re
