// Packed enumeration of constraint languages.
//
// Words over alphabets of <= 16 labels with degree <= 15 fit one
// kernels::PackedWord (4 bits per label).  collectPackedWords enumerates a
// constraint's distinct words directly in this encoding -- no per-word
// std::vector<Count>, no std::set<Word> -- by emitting every choice of the
// per-group multiset recursion raw and deduplicating wholesale with
// sort+unique.  Configurations whose raw emission count (the
// countWordsUpperBound product) exceeds the limit fall back to the
// deduplicating Configuration::forEachWord.  Shared by the R̄ sweep
// (re_step.cpp) and the strength-diagram fast path (diagram.cpp).
#pragma once

#include <algorithm>
#include <vector>

#include "re/bitkernels.hpp"
#include "re/constraint.hpp"

namespace relb::re::kernels {

[[nodiscard]] inline PackedWord packWord(const Word& w) {
  PackedWord packed = 0;
  for (std::size_t l = 0; l < w.size(); ++l) {
    packed |= static_cast<PackedWord>(w[l]) << (4 * l);
  }
  return packed;
}

/// Emits every word of `c` in packed form, one emission per choice of the
/// per-group multiset recursion (duplicates possible across choices; the
/// caller sorts and deduplicates).  The emission count is exactly
/// c.countWordsUpperBound, which the caller must bound beforehand.  Requires
/// labels < 16 and degree <= 15 (nibble range), which the callers' guards
/// establish.
inline void emitPackedWords(const Configuration& c,
                            std::vector<PackedWord>& out) {
  const auto& groups = c.groups();
  PackedWord acc = 0;
  const auto perGroup = [&](const auto& self, std::size_t idx) -> void {
    if (idx == groups.size()) {
      out.push_back(acc);
      return;
    }
    const auto labels = groups[idx].set.toVector();
    const auto multiset = [&](const auto& mself, Count left,
                              std::size_t li) -> void {
      if (li + 1 == labels.size()) {
        acc += static_cast<PackedWord>(left) << (4 * labels[li]);
        self(self, idx + 1);
        acc -= static_cast<PackedWord>(left) << (4 * labels[li]);
        return;
      }
      for (Count take = 0; take <= left; ++take) {
        acc += static_cast<PackedWord>(take) << (4 * labels[li]);
        mself(mself, left - take, li + 1);
        acc -= static_cast<PackedWord>(take) << (4 * labels[li]);
      }
    };
    multiset(multiset, groups[idx].count, 0);
  };
  perGroup(perGroup, 0);
}

/// The distinct words of `constraint`, packed and sorted ascending.  The
/// word set, the distinct-count limit, and the Error on exceeding it match
/// Constraint::enumerateWords exactly.
[[nodiscard]] inline std::vector<PackedWord> collectPackedWords(
    const Constraint& constraint, int alphabetSize, std::size_t limit) {
  std::vector<PackedWord> words;
  const auto compact = [&] {
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    if (words.size() > limit) {
      throw Error("enumerateWords: word count exceeds limit");
    }
  };
  for (const auto& c : constraint.configurations()) {
    // Same guard (and Error) as forEachWord; also keeps every label below
    // 16, so the nibble shifts in emitPackedWords stay in range.
    if (!c.support().subsetOf(LabelSet::full(alphabetSize))) {
      throw Error(
          "forEachWord: configuration mentions labels outside alphabet");
    }
    if (c.countWordsUpperBound(limit + 1) <= limit) {
      emitPackedWords(c, words);
    } else {
      // Per-configuration distinct count above `limit` implies the global
      // distinct count is too, so forEachWord's own limit check subsumes the
      // global one.
      c.forEachWord(
          alphabetSize, [&](const Word& w) { words.push_back(packWord(w)); },
          limit);
    }
    if (words.size() > limit) compact();
  }
  compact();
  return words;
}

}  // namespace relb::re::kernels
