// Zero-round reductions between problems via label relabeling.
//
// If map : Sigma_from -> Sigma_to sends every node configuration of `from`
// into the node language of `to` and every edge configuration into the edge
// language of `to`, then any solution of `from` yields a solution of `to` in
// zero rounds (each node rewrites its own half-edge labels).  This is the
// basic "simplification" move of round-elimination proofs.
#pragma once

#include <vector>

#include "re/problem.hpp"

namespace relb::re {

/// True iff relabeling by `map` (from-label -> to-label, not necessarily
/// injective) turns every solution of `from` into a solution of `to`.
/// Exact; uses the groupwise inclusion certificate first and bounded
/// enumeration as fallback (throws Error if undecidable within `limit`).
[[nodiscard]] bool isZeroRoundRelabeling(const Problem& from, const Problem& to,
                                         const std::vector<Label>& map,
                                         std::size_t limit = 2'000'000);

}  // namespace relb::re
