// Automatic speedup iteration and fixed-point detection.
//
// Iterating Pi -> Rbar(R(Pi)) while watching for (i) 0-round solvability and
// (ii) a fixed point (a problem equivalent to its own speedup, up to
// renaming) automates two of the four lower-bound strategies described in
// Section 1.2 of the paper:
//   * if the iteration reaches a 0-round-solvable problem after t steps, the
//     original problem is solvable in t rounds (an *upper* bound certificate
//     on high-girth graphs, Theorem 3);
//   * if it reaches a non-0-round-solvable fixed point, the problem needs
//     Omega(log n) deterministic / Omega(log log n) randomized rounds (the
//     "fixed points" strategy; see [BFHKLRSU'16, CKP'19]).
// The doubly-exponential label growth that usually stops the iteration is
// reported as such -- that observable *is* the paper's motivation for the
// constant-label family.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "re/re_step.hpp"

namespace relb::re {

enum class StopReason {
  kFixedPoint,        // speedup equivalent to its input (up to renaming)
  kZeroRoundSolvable, // reached a 0-round solvable problem
  kLabelBudget,       // alphabet outgrew the configured budget
  kStepLimit,         // maxSteps iterations performed
  kEngineLimit,       // an engine guard refused (subset enumeration too big)
};

struct IterationStep {
  int labels = 0;
  std::size_t nodeConfigs = 0;
  std::size_t edgeConfigs = 0;
};

struct IterationTrace {
  std::vector<IterationStep> steps;  // steps[0] describes the input problem
  StopReason reason = StopReason::kStepLimit;
  /// Set when reason == kFixedPoint: index of the problem that equals its
  /// own speedup.
  std::optional<int> fixedPointAt;
  /// Set when reason == kZeroRoundSolvable: number of speedup steps taken to
  /// reach a 0-round-solvable problem == upper bound on the input's
  /// complexity on high-girth graphs.
  std::optional<int> zeroRoundAfter;
  /// The final problem reached.
  Problem last;

  [[nodiscard]] std::string describe() const;
};

struct IterateOptions {
  int maxSteps = 8;
  int maxLabels = 12;          // refuse to continue past this alphabet size
  StepOptions stepOptions;     // forwarded to applyR / applyRbar (including
                               // the numThreads fan-out width)
  /// Check for fixed points (needs isomorphism search; alphabets <= 10).
  bool detectFixedPoint = true;
  /// Optional engine context (see engine.hpp).  When set, speedup steps are
  /// memoized through the context (stepOptions is ignored in favor of the
  /// context's options) and fixed-point detection first tries the cheap
  /// canonical-interning route -- "canonical form already interned" -- before
  /// falling back to the semantic isomorphism search.  Results are identical
  /// with and without a context.
  EngineContext* context = nullptr;
};

/// Runs the speedup iteration and reports what happened.
[[nodiscard]] IterationTrace iterateSpeedup(const Problem& start,
                                            const IterateOptions& options = {});

// ---------------------------------------------------------------------------
// Automatic lower bounds via speedup + label merging (the paper's
// "similarity approach", Section 1.2, mechanized).
//
// Invariant: T(start) >= speedups + T(current).  Each speedup step
// decrements T(current) by exactly one (Theorem 3); merging labels only
// makes current easier, so the invariant is preserved.  Whenever `current`
// is certified not 0-round solvable in the PN-with-edge-ports model
// (zeroRoundSolvableWithEdgeInputs == false), T(current) >= 1 and hence
// T(start) >= speedups + 1 on high-girth graphs.
// ---------------------------------------------------------------------------

struct AutoLowerBound {
  /// Certified: the start problem needs more than `rounds - 1` rounds, i.e.
  /// T(start) >= rounds, in the deterministic PN model on high-girth graphs.
  int rounds = 0;
  /// Label count after each speedup(+merging) step.
  std::vector<int> labelsPerStep;
  /// Why the chain stopped.
  StopReason reason = StopReason::kStepLimit;
};

struct AutoLowerBoundOptions {
  int maxSteps = 6;
  /// After each speedup, merge label pairs (keeping the problem hard) until
  /// at most this many labels remain; stop if no hardness-preserving merge
  /// exists.
  int maxLabels = 8;
  StepOptions stepOptions;
  /// Optional engine context: memoizes speedup steps and the (heavily
  /// repeated) zero-round solvability checks of the merge search.  Results
  /// are identical with and without a context.
  EngineContext* context = nullptr;
};

/// Fully automatic lower-bound search.
[[nodiscard]] AutoLowerBound autoLowerBound(
    const Problem& start, const AutoLowerBoundOptions& options = {});

}  // namespace relb::re
