// Problem: a locally checkable problem in the round-elimination formalism.
//
// A problem is a triple (alphabet, node constraint, edge constraint) on
// Delta-regular graphs (Section 2.2 of the paper).  Problems are value types.
//
// Text format (round-eliminator style): one configuration per line, groups
// separated by whitespace.  A group is either a label name, or a disjunction
// "[AB]" / "[A B]", optionally followed by an exponent "^k", e.g.
//
//     M^3
//     P O^2
//
//     M [PO]
//     O O
//
// for the MIS problem at Delta = 3.
#pragma once

#include <string>
#include <string_view>

#include "re/alphabet.hpp"
#include "re/constraint.hpp"

namespace relb::re {

struct Problem {
  Alphabet alphabet;
  Constraint node;  // degree Delta
  Constraint edge;  // degree 2

  [[nodiscard]] Count delta() const { return node.degree(); }

  /// Validates internal consistency: edge degree 2, supports within the
  /// alphabet.  Throws Error on violation.
  void validate() const;

  /// Parses node and edge constraints; labels are registered in order of
  /// first appearance.  Throws Error on malformed input.
  static Problem parse(std::string_view nodeConstraint,
                       std::string_view edgeConstraint);

  /// Renders the problem in the text format above.
  [[nodiscard]] std::string render() const;

  /// Syntactic equality: same label names in the same order, identical
  /// constraint representations (configuration lists compare elementwise).
  /// Language-equal but differently written problems compare unequal; use
  /// rename.hpp's equivalentUpToRenaming or canonical.hpp for semantic
  /// comparisons.
  friend bool operator==(const Problem&, const Problem&) = default;
};

/// Parses a single configuration line against (and extending) `alphabet`.
[[nodiscard]] Configuration parseConfiguration(std::string_view line,
                                               Alphabet& alphabet);

/// The classic MIS encoding (Section 2.2):  N = { M^Delta, P O^{Delta-1} },
/// E = { M[PO], OO }.
[[nodiscard]] Problem misProblem(Count delta);

/// The sinkless-orientation problem:  N = { I O^{Delta-1} }, E = { IO, II }
/// (every node has >= 1 incoming edge marked I on its side; no edge is
/// outgoing on both sides).  A classic fixed point of round elimination for
/// Delta >= 3; used as an engine self-check.
[[nodiscard]] Problem sinklessOrientationProblem(Count delta);

}  // namespace relb::re
