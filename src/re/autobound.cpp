#include "re/autobound.hpp"

#include "re/engine.hpp"
#include "re/rename.hpp"
#include "re/simplify.hpp"
#include "re/zero_round.hpp"

namespace relb::re {

namespace {

IterationStep describeProblem(const Problem& p) {
  return {p.alphabet.size(), p.node.size(), p.edge.size()};
}

// Fixed-point test for two consecutive iterates.  With a context, the
// syntactic canonical forms are compared first: equal canonical forms prove
// isomorphism without any permutation search (and the intern table makes
// the lookup O(1) amortized across the whole iteration).  Unequal canonical
// forms do NOT disprove *semantic* equivalence (differently condensed but
// language-equal constraints), so the semantic search still runs as a
// fallback -- behavior matches the context-free path exactly.
bool sameUpToRenaming(const Problem& prev, const Problem& next,
                      EngineContext* ctx) {
  if (ctx != nullptr) {
    try {
      const auto prevInterned = ctx->intern(prev);
      const auto nextInterned = ctx->intern(next);
      if (prevInterned.hash == nextInterned.hash &&
          prevInterned.canonical.problem == nextInterned.canonical.problem) {
        return true;
      }
    } catch (const Error&) {
      // canonicalize refused (too symmetric / too large); fall through.
    }
  }
  try {
    return equivalentUpToRenaming(prev, next);
  } catch (const Error&) {
    return false;  // isomorphism search refused; keep iterating
  }
}

bool zeroRoundWithEdgeInputs(const Problem& p, EngineContext* ctx) {
  return ctx != nullptr
             ? ctx->zeroRoundSolvable(p, ZeroRoundMode::kWithEdgeInputs)
             : zeroRoundSolvableWithEdgeInputs(p);
}

}  // namespace

std::string IterationTrace::describe() const {
  std::string out = "speedup iteration: ";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += " -> ";
    out += std::to_string(steps[i].labels) + " labels";
  }
  switch (reason) {
    case StopReason::kFixedPoint:
      out += "; fixed point at step " + std::to_string(*fixedPointAt) +
             " => Omega(log n) det / Omega(log log n) rand on high-girth "
             "graphs";
      break;
    case StopReason::kZeroRoundSolvable:
      out += "; 0-round solvable after " + std::to_string(*zeroRoundAfter) +
             " steps => upper bound " + std::to_string(*zeroRoundAfter) +
             " rounds on high-girth graphs";
      break;
    case StopReason::kLabelBudget:
      out += "; stopped: label budget exceeded (doubly exponential growth)";
      break;
    case StopReason::kStepLimit:
      out += "; stopped: step limit";
      break;
    case StopReason::kEngineLimit:
      out += "; stopped: exact engine guard (problem too large)";
      break;
  }
  return out;
}

IterationTrace iterateSpeedup(const Problem& start,
                              const IterateOptions& options) {
  IterationTrace trace;
  trace.last = start;
  trace.steps.push_back(describeProblem(start));

  if (zeroRoundSolvableAdversarialPorts(start)) {
    trace.reason = StopReason::kZeroRoundSolvable;
    trace.zeroRoundAfter = 0;
    return trace;
  }

  for (int step = 1; step <= options.maxSteps; ++step) {
    Problem next;
    try {
      next = options.context != nullptr
                 ? options.context->speedupStep(trace.last)
                 : speedupStep(trace.last, options.stepOptions);
    } catch (const Error&) {
      trace.reason = StopReason::kEngineLimit;
      return trace;
    }
    trace.steps.push_back(describeProblem(next));

    if (options.context != nullptr
            ? options.context->zeroRoundSolvable(
                  next, ZeroRoundMode::kAdversarialPorts)
            : zeroRoundSolvableAdversarialPorts(next)) {
      trace.last = std::move(next);
      trace.reason = StopReason::kZeroRoundSolvable;
      trace.zeroRoundAfter = step;
      return trace;
    }
    if (options.detectFixedPoint && next.alphabet.size() <= 10 &&
        trace.last.alphabet.size() == next.alphabet.size()) {
      const bool same = sameUpToRenaming(trace.last, next, options.context);
      if (same) {
        trace.last = std::move(next);
        trace.reason = StopReason::kFixedPoint;
        trace.fixedPointAt = step - 1;
        return trace;
      }
    }
    trace.last = std::move(next);
    if (trace.last.alphabet.size() > options.maxLabels) {
      trace.reason = StopReason::kLabelBudget;
      return trace;
    }
  }
  trace.reason = StopReason::kStepLimit;
  return trace;
}

AutoLowerBound autoLowerBound(const Problem& start,
                              const AutoLowerBoundOptions& options) {
  AutoLowerBound result;
  Problem current = start;
  result.labelsPerStep.push_back(current.alphabet.size());

  for (int step = 0; step < options.maxSteps; ++step) {
    // The hardness check itself can hit an engine guard (the edge-input
    // analyzer enumerates label subsets); an unprovable `current` ends the
    // chain with whatever was certified so far instead of throwing.
    bool solvable = false;
    try {
      solvable = zeroRoundWithEdgeInputs(current, options.context);
    } catch (const Error&) {
      result.reason = StopReason::kEngineLimit;
      return result;
    }
    if (solvable) {
      result.reason = StopReason::kZeroRoundSolvable;
      return result;
    }
    // current is hard: T(start) >= speedups-so-far + 1.
    result.rounds = step + 1;
    Problem next;
    try {
      next = options.context != nullptr
                 ? options.context->speedupStep(current)
                 : speedupStep(current, options.stepOptions);
    } catch (const Error&) {
      result.reason = StopReason::kEngineLimit;
      return result;
    }
    // Merge labels greedily while too many, requiring every merge to keep
    // the problem hard (otherwise the chain would end uselessly early).
    while (next.alphabet.size() > options.maxLabels) {
      bool merged = false;
      const int n = next.alphabet.size();
      for (Label a = 0; a < n && !merged; ++a) {
        for (Label b = a + 1; b < n && !merged; ++b) {
          const Problem candidate = mergeTwoLabels(next, a, b);
          // A candidate whose hardness the engine cannot certify (guard
          // trips) is simply not merged -- the invariant needs a *proof*
          // that the merged problem stays hard.
          bool hard = false;
          try {
            hard = !zeroRoundWithEdgeInputs(candidate, options.context);
          } catch (const Error&) {
            hard = false;
          }
          if (hard) {
            next = candidate;
            merged = true;
          }
        }
      }
      if (!merged) {
        result.reason = StopReason::kLabelBudget;
        return result;
      }
    }
    current = std::move(next);
    result.labelsPerStep.push_back(current.alphabet.size());
  }
  result.reason = StopReason::kStepLimit;
  return result;
}

}  // namespace relb::re
