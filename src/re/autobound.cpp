#include "re/autobound.hpp"

#include "re/rename.hpp"
#include "re/simplify.hpp"
#include "re/zero_round.hpp"

namespace relb::re {

namespace {

IterationStep describeProblem(const Problem& p) {
  return {p.alphabet.size(), p.node.size(), p.edge.size()};
}

}  // namespace

std::string IterationTrace::describe() const {
  std::string out = "speedup iteration: ";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += " -> ";
    out += std::to_string(steps[i].labels) + " labels";
  }
  switch (reason) {
    case StopReason::kFixedPoint:
      out += "; fixed point at step " + std::to_string(*fixedPointAt) +
             " => Omega(log n) det / Omega(log log n) rand on high-girth "
             "graphs";
      break;
    case StopReason::kZeroRoundSolvable:
      out += "; 0-round solvable after " + std::to_string(*zeroRoundAfter) +
             " steps => upper bound " + std::to_string(*zeroRoundAfter) +
             " rounds on high-girth graphs";
      break;
    case StopReason::kLabelBudget:
      out += "; stopped: label budget exceeded (doubly exponential growth)";
      break;
    case StopReason::kStepLimit:
      out += "; stopped: step limit";
      break;
    case StopReason::kEngineLimit:
      out += "; stopped: exact engine guard (problem too large)";
      break;
  }
  return out;
}

IterationTrace iterateSpeedup(const Problem& start,
                              const IterateOptions& options) {
  IterationTrace trace;
  trace.last = start;
  trace.steps.push_back(describeProblem(start));

  if (zeroRoundSolvableAdversarialPorts(start)) {
    trace.reason = StopReason::kZeroRoundSolvable;
    trace.zeroRoundAfter = 0;
    return trace;
  }

  for (int step = 1; step <= options.maxSteps; ++step) {
    Problem next;
    try {
      next = speedupStep(trace.last, options.stepOptions);
    } catch (const Error&) {
      trace.reason = StopReason::kEngineLimit;
      return trace;
    }
    trace.steps.push_back(describeProblem(next));

    if (zeroRoundSolvableAdversarialPorts(next)) {
      trace.last = std::move(next);
      trace.reason = StopReason::kZeroRoundSolvable;
      trace.zeroRoundAfter = step;
      return trace;
    }
    if (options.detectFixedPoint && next.alphabet.size() <= 10 &&
        trace.last.alphabet.size() == next.alphabet.size()) {
      bool same = false;
      try {
        same = equivalentUpToRenaming(trace.last, next);
      } catch (const Error&) {
        same = false;  // isomorphism search refused; keep iterating
      }
      if (same) {
        trace.last = std::move(next);
        trace.reason = StopReason::kFixedPoint;
        trace.fixedPointAt = step - 1;
        return trace;
      }
    }
    trace.last = std::move(next);
    if (trace.last.alphabet.size() > options.maxLabels) {
      trace.reason = StopReason::kLabelBudget;
      return trace;
    }
  }
  trace.reason = StopReason::kStepLimit;
  return trace;
}

AutoLowerBound autoLowerBound(const Problem& start,
                              const AutoLowerBoundOptions& options) {
  AutoLowerBound result;
  Problem current = start;
  result.labelsPerStep.push_back(current.alphabet.size());

  for (int step = 0; step < options.maxSteps; ++step) {
    if (zeroRoundSolvableWithEdgeInputs(current)) {
      result.reason = StopReason::kZeroRoundSolvable;
      return result;
    }
    // current is hard: T(start) >= speedups-so-far + 1.
    result.rounds = step + 1;
    Problem next;
    try {
      next = speedupStep(current, options.stepOptions);
    } catch (const Error&) {
      result.reason = StopReason::kEngineLimit;
      return result;
    }
    // Merge labels greedily while too many, requiring every merge to keep
    // the problem hard (otherwise the chain would end uselessly early).
    while (next.alphabet.size() > options.maxLabels) {
      bool merged = false;
      const int n = next.alphabet.size();
      for (Label a = 0; a < n && !merged; ++a) {
        for (Label b = a + 1; b < n && !merged; ++b) {
          const Problem candidate = mergeTwoLabels(next, a, b);
          if (!zeroRoundSolvableWithEdgeInputs(candidate)) {
            next = candidate;
            merged = true;
          }
        }
      }
      if (!merged) {
        result.reason = StopReason::kLabelBudget;
        return result;
      }
    }
    current = std::move(next);
    result.labelsPerStep.push_back(current.alphabet.size());
  }
  result.reason = StopReason::kStepLimit;
  return result;
}

}  // namespace relb::re
