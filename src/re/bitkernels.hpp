// Bit-parallel kernels for the R / R̄ hot paths.
//
// Everything the speedup step does per candidate boils down to a handful of
// word-level primitives over the 32-bit LabelSet representation and the
// 4-bit-per-label PackedWord encoding (<= 16 labels, per-label counts <= 15,
// see re_step.hpp's enumeration guards):
//
//   * packWord / ExpandedWord — the packed multiset encoding plus its
//     byte-per-label expansion.  Expanding the 16 nibbles into 16 byte lanes
//     (values <= 15 < 128) makes componentwise comparison a three-op SWAR
//     test with no per-label loop and no branches.
//   * packedLeq / dominatedBySome — "partial word still completable":
//     p <= w in every lane, tested against a batch of candidate words.
//   * slotsRelaxTo — Definition 7 on flat slot arrays: a perfect matching
//     pairing every slot of `a` with a superset slot of `b`, via bitmask
//     adjacency rows and an allocation-free Kuhn augmentation.
//   * CompletabilityMemo — open-addressing PackedWord -> bool table over an
//     Arena; the R̄ DFS queries it once per distinct partial word.
//
// These kernels are pure functions of their operands; bit-identity against
// the pre-rewrite set/map-based reference implementations is asserted by
// tests/prop/prop_kernels_test.cpp, and bench/bench_perf_engine.cpp
// (BM_DominationFilter, BM_RightClosure, BM_SubsetSweep) tracks them in the
// committed BENCH_speedup.json trajectory.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "re/label_set.hpp"
#include "re/types.hpp"
#include "util/arena.hpp"

namespace relb::re::kernels {

/// A multiset of <= 16 labels with per-label counts <= 15: 4 bits per label,
/// label l in bits [4l, 4l+4).
using PackedWord = std::uint64_t;

/// Byte-per-label expansion of a PackedWord: lanes 0..7 in `lo`, 8..15 in
/// `hi`, every lane value <= 15 so the SWAR comparison below never borrows
/// across lanes.
struct ExpandedWord {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Spreads the 8 nibbles of `x` into the 8 byte lanes of the result
/// (nibble i -> byte i), the classic interleave cascade.
[[nodiscard]] constexpr std::uint64_t spreadNibblesToBytes(std::uint32_t x) {
  std::uint64_t t = x;
  t = (t | (t << 16)) & 0x0000FFFF0000FFFFull;
  t = (t | (t << 8)) & 0x00FF00FF00FF00FFull;
  t = (t | (t << 4)) & 0x0F0F0F0F0F0F0F0Full;
  return t;
}

[[nodiscard]] constexpr ExpandedWord expandWord(PackedWord w) {
  return {spreadNibblesToBytes(static_cast<std::uint32_t>(w)),
          spreadNibblesToBytes(static_cast<std::uint32_t>(w >> 32))};
}

/// True iff p <= w in every byte lane.  Adding 0x80 to each w-lane and
/// subtracting the p-lane (<= 15) keeps every lane strictly positive, so the
/// single 64-bit subtraction cannot borrow across lanes; the lane's high bit
/// then reads "did w_l >= p_l".
[[nodiscard]] constexpr bool packedLeq(ExpandedWord p, ExpandedWord w) {
  constexpr std::uint64_t kHigh = 0x8080808080808080ull;
  return ((((w.lo | kHigh) - p.lo) & ((w.hi | kHigh) - p.hi)) & kHigh) ==
         kHigh;
}

/// True iff some word of `words` dominates `p` componentwise — i.e. the
/// partial word `p` can still be completed to an allowed word.
[[nodiscard]] inline bool dominatedBySome(ExpandedWord p,
                                          const ExpandedWord* words,
                                          std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (packedLeq(p, words[i])) return true;
  }
  return false;
}

namespace detail {

/// One Kuhn augmentation step over bitmask adjacency rows (adj[i] = the
/// b-slots that are supersets of a-slot i).  `visited` accumulates the
/// b-slots touched in this round.
inline bool augment(int i, const std::uint16_t* adj, int* matchOfB,
                    std::uint32_t& visited) {
  for (std::uint32_t cand = adj[i] & ~visited; cand != 0; cand &= cand - 1) {
    const int j = __builtin_ctz(cand);
    if ((visited >> j) & 1u) continue;  // taken by a deeper recursion
    visited |= std::uint32_t{1} << j;
    if (matchOfB[j] < 0 || augment(matchOfB[j], adj, matchOfB, visited)) {
      matchOfB[j] = i;
      return true;
    }
  }
  return false;
}

}  // namespace detail

/// Definition 7 on flat slot arrays: true iff there is a perfect matching
/// pairing every slot of `a` with a superset slot of `b`.  Both arrays hold
/// `n` LabelSet bitmasks, n <= 16.  Allocation- and std::function-free.
[[nodiscard]] inline bool slotsRelaxTo(const std::uint32_t* a,
                                       const std::uint32_t* b, int n) {
  assert(n >= 0 && n <= 16);
  std::uint32_t unionA = 0, unionB = 0;
  for (int i = 0; i < n; ++i) {
    unionA |= a[i];
    unionB |= b[i];
  }
  if ((unionA & ~unionB) != 0) return false;
  std::uint16_t adj[16];
  for (int i = 0; i < n; ++i) {
    std::uint16_t row = 0;
    for (int j = 0; j < n; ++j) {
      row |= static_cast<std::uint16_t>(
          static_cast<std::uint16_t>((a[i] & ~b[j]) == 0) << j);
    }
    if (row == 0) return false;  // this a-slot has no superset b-slot at all
    adj[i] = row;
  }
  int matchOfB[16];
  for (int j = 0; j < n; ++j) matchOfB[j] = -1;
  for (int i = 0; i < n; ++i) {
    std::uint32_t visited = 0;
    if (!detail::augment(i, adj, matchOfB, visited)) return false;
  }
  return true;
}

/// Open-addressing PackedWord -> bool memo over an Arena.  Growth rehashes
/// into a fresh arena block and abandons the old table; the arena reclaims
/// everything at reset, so the memo must live in a reset-only (non-LIFO)
/// arena.  Key ~0 is unreachable (its lane sum exceeds any degree <= 15) and
/// serves as the empty sentinel.
class CompletabilityMemo {
 public:
  explicit CompletabilityMemo(util::Arena& arena) : arena_(&arena) {
    allocate(kInitialCapacity);
  }

  /// Returns the cached verdict for `w`, computing it with `compute()` on
  /// the first query.
  template <typename ComputeFn>
  bool getOrCompute(PackedWord w, ComputeFn&& compute) {
    assert(w != kEmpty);
    Entry* e = find(w);
    if (e->key == w) return e->value;
    const bool value = compute();
    // compute() never touches this memo (it only scans the word table), so
    // the slot is still free; fill it and grow at 70% load.
    e->key = w;
    e->value = value;
    if (++size_ * 10 >= capacity_ * 7) grow();
    return value;
  }

 private:
  struct Entry {
    PackedWord key;
    bool value;
  };

  static constexpr PackedWord kEmpty = ~PackedWord{0};
  static constexpr std::size_t kInitialCapacity = 256;  // power of two

  Entry* find(PackedWord w) const {
    std::size_t i =
        static_cast<std::size_t>(w * 0x9E3779B97F4A7C15ull) & (capacity_ - 1);
    while (table_[i].key != w && table_[i].key != kEmpty) {
      i = (i + 1) & (capacity_ - 1);
    }
    return &table_[i];
  }

  void allocate(std::size_t capacity) {
    capacity_ = capacity;
    size_ = 0;
    table_ = arena_->allocate<Entry>(capacity);
    for (std::size_t i = 0; i < capacity; ++i) table_[i].key = kEmpty;
  }

  void grow() {
    Entry* old = table_;
    const std::size_t oldCapacity = capacity_;
    allocate(oldCapacity * 2);
    for (std::size_t i = 0; i < oldCapacity; ++i) {
      if (old[i].key == kEmpty) continue;
      Entry* e = find(old[i].key);
      *e = old[i];
      ++size_;
    }
  }

  util::Arena* arena_;
  Entry* table_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace relb::re::kernels
