// Constraint: a finite union of condensed configurations of a fixed degree.
//
// Node constraints have degree Delta; edge constraints have degree 2.  The
// language L(constraint) is the union of the languages of its configurations.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "re/configuration.hpp"

namespace relb::re {

class Constraint {
 public:
  Constraint() = default;
  Constraint(Count degree, std::vector<Configuration> configurations);

  [[nodiscard]] Count degree() const { return degree_; }
  [[nodiscard]] const std::vector<Configuration>& configurations() const {
    return configurations_;
  }
  [[nodiscard]] bool empty() const { return configurations_.empty(); }
  [[nodiscard]] std::size_t size() const { return configurations_.size(); }

  /// Adds a configuration (must have matching degree); drops exact
  /// duplicates.
  void add(Configuration c);

  /// Union of the supports of all configurations.
  [[nodiscard]] LabelSet support() const;

  /// True iff the word is in the language of some configuration.
  [[nodiscard]] bool containsWord(const Word& w) const;

  /// True iff some configuration shares a word with `c`.
  [[nodiscard]] bool intersectsConfiguration(const Configuration& c) const;

  /// True iff every word of `c` is in the language of this constraint.
  /// Tries the cheap single-configuration criterion first, then falls back to
  /// exact enumeration of L(c) (throws Error if L(c) exceeds `limit`).
  [[nodiscard]] bool containsAllWordsOf(
      const Configuration& c, int alphabetSize,
      std::size_t limit = 5'000'000) const;

  /// Enumerates all distinct words of the constraint's language.  Throws
  /// Error if more than `limit` words exist.
  [[nodiscard]] std::vector<Word> enumerateWords(
      int alphabetSize, std::size_t limit = 5'000'000) const;

  /// Drops configurations whose language is contained in another remaining
  /// configuration's language (syntactic cleanup; language unchanged).
  void removeDominatedConfigurations();

  [[nodiscard]] std::string render(const Alphabet& alphabet,
                                   const std::string& sep = "\n") const;

  friend bool operator==(const Constraint&, const Constraint&) = default;

 private:
  Count degree_ = 0;
  std::vector<Configuration> configurations_;
};

/// True iff the two constraints denote the same language.  Decided by mutual
/// containment of every configuration's language; exact, may enumerate (and
/// therefore throws Error on astronomically large languages whose
/// containment cannot be certified groupwise).
[[nodiscard]] bool sameLanguage(const Constraint& a, const Constraint& b,
                                int alphabetSize);

}  // namespace relb::re
