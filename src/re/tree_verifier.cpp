#include "re/tree_verifier.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "re/re_step.hpp"

namespace relb::re {

namespace {

// ---------------------------------------------------------------------------
// View model, Delta = 3.
//
// T = 1: a view has, per port p, a component
//     comp = ownSide + 2*back + 6*(far0 + 2*far1)   in [0, 24)
// (ownSide: 1 iff this node is side 0 of the edge at p; back: the
// neighbor's port for this edge; far0/far1: the neighbor's own-side bits at
// its two other ports, in increasing port order).  viewId = sum comp_p *
// 24^p, 13824 views; every view occurs on high-girth 3-regular trees.
//
// T = 0: a view is the three own-side bits, 8 views.
//
// Two terminals (view, port) can share an edge iff their *interfaces* are
// mirrors of each other:
//     iface  = (p, s, b, far, others),   mirror = (b, 1-s, p, others, far)
// where `others` packs the view's own-side bits at its two other ports (the
// far bits the partner sees).  At T = 0 the interface is just s with mirror
// 1-s.  Crucially, the mirror is *unique*, and every terminal pair with
// mirroring interfaces is realizable; so a deterministic algorithm is
// correct iff for every interface class c, the set of labels it emits at c
// and the set at mirror(c) are pointwise edge-compatible.  W.l.o.g. those
// per-class sets can be grown to *maximal compatible set pairs* -- the same
// Galois pairs the R operator maximizes over -- which turns T-round
// solvability into a small CSP: pick one oriented maximal pair per mirror
// class pair such that every view retains an output value whose port labels
// lie in the chosen sets.
// ---------------------------------------------------------------------------

struct Comp {
  int ownSide;
  int back;
  int far;  // 2 bits
};

Comp unpackComp(int comp) {
  return {comp % 2, (comp / 2) % 3, comp / 6};
}

class TreeModel {
 public:
  explicit TreeModel(int radius) : t_(radius) {}

  [[nodiscard]] int viewCount() const { return t_ == 0 ? 8 : 24 * 24 * 24; }
  [[nodiscard]] int ifaceCount() const { return t_ == 0 ? 2 : 288; }

  [[nodiscard]] int compOf(int view, int port) const {
    if (t_ == 0) return (view >> port) & 1;  // own side bit only
    for (int i = 0; i < port; ++i) view /= 24;
    return view % 24;
  }

  [[nodiscard]] int ifaceOf(int view, int port) const {
    if (t_ == 0) return (view >> port) & 1;
    const Comp c = unpackComp(compOf(view, port));
    int others = 0;
    int idx = 0;
    for (int q = 0; q < 3; ++q) {
      if (q == port) continue;
      others |= unpackComp(compOf(view, q)).ownSide << idx;
      ++idx;
    }
    // Pack (p, s, b, far, others): 3 * 2 * 3 * 4 * 4 = 288 interfaces.
    return (((port * 2 + c.ownSide) * 3 + c.back) * 4 + c.far) * 4 + others;
  }

  [[nodiscard]] int mirrorOf(int iface) const {
    if (t_ == 0) return 1 - iface;
    const int others = iface % 4;
    const int far = (iface / 4) % 4;
    const int b = (iface / 16) % 3;
    const int s = (iface / 48) % 2;
    const int p = iface / 96;
    return (((b * 2 + (1 - s)) * 3 + p) * 4 + others) * 4 + far;
  }

 private:
  int t_;
};

}  // namespace

bool treeSolvable3(const Problem& p, int radius, long searchBudget) {
  p.validate();
  if (p.delta() != 3) throw Error("treeSolvable3: requires Delta = 3");
  if (radius < 0 || radius > 1) throw Error("treeSolvable3: radius in {0,1}");
  const int n = p.alphabet.size();
  if (n > 16) throw Error("treeSolvable3: alphabet too large");

  // Output values: label triples whose multiset is an allowed node
  // configuration, stored as per-port label bit masks for fast filtering.
  struct Value {
    std::array<std::uint32_t, 3> bit;  // 1u << label, per port
  };
  std::vector<Value> baseDomain;
  for (Label a = 0; a < n; ++a) {
    for (Label b = 0; b < n; ++b) {
      for (Label c = 0; c < n; ++c) {
        Word w(static_cast<std::size_t>(n), 0);
        ++w[a];
        ++w[b];
        ++w[c];
        if (p.node.containsWord(w)) {
          baseDomain.push_back({{1u << a, 1u << b, 1u << c}});
        }
      }
    }
  }
  if (baseDomain.empty()) return false;

  // Candidate per-class label-set pairs: the maximal edge-compatible set
  // pairs (exactly the Galois pairs of the R operator), in both
  // orientations.
  const auto maximalPairs = maximalEdgePairs(p.edge, n);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> orientedPairs;
  for (const auto& [a, b] : maximalPairs) {
    orientedPairs.emplace_back(a.bits(), b.bits());
    if (a != b) orientedPairs.emplace_back(b.bits(), a.bits());
  }
  if (orientedPairs.empty()) return false;

  const TreeModel model(radius);
  const int views = model.viewCount();
  const int ifaces = model.ifaceCount();

  // Group interfaces into mirror pairs; pairVar[c] = index of the pair
  // variable, side[c] = which component of the oriented pair applies to c.
  std::vector<int> pairVar(static_cast<std::size_t>(ifaces), -1);
  std::vector<int> side(static_cast<std::size_t>(ifaces), 0);
  int numPairs = 0;
  for (int c = 0; c < ifaces; ++c) {
    if (pairVar[static_cast<std::size_t>(c)] >= 0) continue;
    const int m = model.mirrorOf(c);
    pairVar[static_cast<std::size_t>(c)] = numPairs;
    side[static_cast<std::size_t>(c)] = 0;
    pairVar[static_cast<std::size_t>(m)] = numPairs;
    side[static_cast<std::size_t>(m)] = 1;
    ++numPairs;
  }

  // Per-view constraint scopes: the (pair variable, side) feeding each port.
  // Views whose port multisets coincide impose identical constraints (the
  // value set is closed under port permutation), so scopes are deduplicated
  // after sorting.
  struct Scope {
    std::array<std::pair<int, int>, 3> port;  // (var, side), sorted
  };
  std::vector<Scope> scopes;
  {
    std::set<std::array<std::pair<int, int>, 3>> seen;
    for (int v = 0; v < views; ++v) {
      std::array<std::pair<int, int>, 3> ports;
      for (int q = 0; q < 3; ++q) {
        const int c = model.ifaceOf(v, q);
        ports[static_cast<std::size_t>(q)] = {
            pairVar[static_cast<std::size_t>(c)],
            side[static_cast<std::size_t>(c)]};
      }
      std::sort(ports.begin(), ports.end());
      if (seen.insert(ports).second) scopes.push_back({ports});
    }
  }
  std::vector<std::vector<int>> scopesOf(static_cast<std::size_t>(numPairs));
  for (std::size_t s = 0; s < scopes.size(); ++s) {
    for (const auto& [var, sd] : scopes[s].port) {
      auto& list = scopesOf[static_cast<std::size_t>(var)];
      if (list.empty() || list.back() != static_cast<int>(s)) {
        list.push_back(static_cast<int>(s));
      }
    }
  }

  // CSP over pair variables; domain = indices into orientedPairs.
  std::vector<std::vector<int>> domain(
      static_cast<std::size_t>(numPairs), [&] {
        std::vector<int> all(orientedPairs.size());
        for (std::size_t i = 0; i < all.size(); ++i) {
          all[i] = static_cast<int>(i);
        }
        return all;
      }());

  // A scope is satisfiable under masks allowed[port] iff some output value
  // fits all three ports; memoized on the (sorted) mask triple -- the value
  // set is port-permutation closed, so sorting is sound.
  std::unordered_map<std::uint64_t, bool> feasCache;
  const auto feasible = [&](std::array<std::uint32_t, 3> allowed) {
    std::sort(allowed.begin(), allowed.end());
    const std::uint64_t key = (static_cast<std::uint64_t>(allowed[0]) << 32) ^
                              (static_cast<std::uint64_t>(allowed[1]) << 16) ^
                              allowed[2];
    const auto it = feasCache.find(key);
    if (it != feasCache.end()) return it->second;
    const bool ok = std::any_of(baseDomain.begin(), baseDomain.end(),
                                [&](const Value& value) {
                                  return (value.bit[0] & allowed[0]) &&
                                         (value.bit[1] & allowed[1]) &&
                                         (value.bit[2] & allowed[2]);
                                });
    feasCache.emplace(key, ok);
    return ok;
  };

  // Union of the chosen set over a pair variable's current domain, per side.
  const auto unionMask = [&](int var, int sd) {
    std::uint32_t mask = 0;
    for (const int idx : domain[static_cast<std::size_t>(var)]) {
      const auto& pr = orientedPairs[static_cast<std::size_t>(idx)];
      mask |= sd == 0 ? pr.first : pr.second;
    }
    return mask;
  };
  const auto pairMask = [&](int idx, int sd) {
    const auto& pr = orientedPairs[static_cast<std::size_t>(idx)];
    return sd == 0 ? pr.first : pr.second;
  };

  // Sound (union-based) pruning with a change-driven worklist: drop a pair
  // value if fixing it makes some scope infeasible even with every other
  // variable at its full union.
  const auto propagate = [&](std::vector<int> queue) -> bool {
    std::vector<bool> queued(static_cast<std::size_t>(numPairs), false);
    for (int var : queue) queued[static_cast<std::size_t>(var)] = true;
    while (!queue.empty()) {
      const int var = queue.back();
      queue.pop_back();
      queued[static_cast<std::size_t>(var)] = false;
      for (const int s : scopesOf[static_cast<std::size_t>(var)]) {
        const auto& scope = scopes[static_cast<std::size_t>(s)];
        std::array<std::uint32_t, 3> unions{};
        for (int q = 0; q < 3; ++q) {
          unions[static_cast<std::size_t>(q)] =
              unionMask(scope.port[static_cast<std::size_t>(q)].first,
                        scope.port[static_cast<std::size_t>(q)].second);
        }
        // Prune every variable of the scope against it.
        for (int target = 0; target < 3; ++target) {
          const int tv = scope.port[static_cast<std::size_t>(target)].first;
          auto& dom = domain[static_cast<std::size_t>(tv)];
          const auto bad = [&](int idx) {
            std::array<std::uint32_t, 3> allowed = unions;
            for (int q = 0; q < 3; ++q) {
              if (scope.port[static_cast<std::size_t>(q)].first == tv) {
                allowed[static_cast<std::size_t>(q)] = pairMask(
                    idx, scope.port[static_cast<std::size_t>(q)].second);
              }
            }
            return !feasible(allowed);
          };
          const auto before = dom.size();
          dom.erase(std::remove_if(dom.begin(), dom.end(), bad), dom.end());
          if (dom.empty()) return false;
          if (dom.size() != before && !queued[static_cast<std::size_t>(tv)]) {
            queued[static_cast<std::size_t>(tv)] = true;
            queue.push_back(tv);
          }
        }
      }
    }
    return true;
  };

  // Exact check of a full assignment.
  const auto fullCheck = [&]() {
    for (const auto& scope : scopes) {
      std::array<std::uint32_t, 3> allowed{};
      for (int q = 0; q < 3; ++q) {
        allowed[static_cast<std::size_t>(q)] = pairMask(
            domain[static_cast<std::size_t>(
                scope.port[static_cast<std::size_t>(q)].first)][0],
            scope.port[static_cast<std::size_t>(q)].second);
      }
      if (!feasible(allowed)) return false;
    }
    return true;
  };

  // MRV backtracking with a node budget: the CSP is an exists-forall search
  // in disguise (the adversary picks a bad view for every set choice), so
  // refutations can be exponential; past the budget we report "undecided"
  // rather than silently mislabeling the problem.
  long nodesLeft = searchBudget;
  std::function<bool(std::vector<int>)> search =
      [&](std::vector<int> touched) -> bool {
    if (--nodesLeft < 0) {
      throw Error("treeSolvable3: search budget exceeded (undecided)");
    }
    if (!propagate(std::move(touched))) return false;
    int pick = -1;
    std::size_t best = 0;
    for (int var = 0; var < numPairs; ++var) {
      const auto size = domain[static_cast<std::size_t>(var)].size();
      if (size > 1 && (pick < 0 || size < best)) {
        pick = var;
        best = size;
      }
    }
    if (pick < 0) return fullCheck();
    const auto saved = domain;
    for (const int idx : saved[static_cast<std::size_t>(pick)]) {
      domain = saved;
      domain[static_cast<std::size_t>(pick)] = {idx};
      if (search({pick})) return true;
    }
    domain = saved;
    return false;
  };
  std::vector<int> all(static_cast<std::size_t>(numPairs));
  for (int var = 0; var < numPairs; ++var) {
    all[static_cast<std::size_t>(var)] = var;
  }
  return search(std::move(all));
}

}  // namespace relb::re
