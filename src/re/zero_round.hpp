// Zero-round solvability analysis in the port-numbering model
// (Lemmas 12 and 15 of the paper, stated for arbitrary problems).
//
// The hard instance family: a Delta-edge-colored, Delta-regular graph whose
// ports are numbered so that an edge of color i uses port i at *both*
// endpoints.  In that family all nodes have identical 0-round views, so a
// deterministic 0-round algorithm outputs one fixed word with one fixed
// port assignment, and every edge receives the same label on both sides.
// The algorithm succeeds iff some node-constraint word uses only
// self-compatible labels.
#pragma once

#include <optional>

#include "re/problem.hpp"

namespace relb::re {

/// True iff the word {l, l} is allowed by the edge constraint.
[[nodiscard]] bool selfCompatible(const Problem& p, Label l);

/// Set of self-compatible labels.
[[nodiscard]] LabelSet selfCompatibleLabels(const Problem& p);

/// A witness word (if any) proving 0-round solvability on the symmetric-port
/// family: a node-constraint word all of whose labels are self-compatible.
[[nodiscard]] std::optional<Word> zeroRoundSymmetricWitness(const Problem& p);

/// Deterministic 0-round solvability on the symmetric-port family
/// (the negation is the premise of Lemma 12).
[[nodiscard]] bool zeroRoundSolvableSymmetricPorts(const Problem& p);

/// A witness word (if any) for the adversarial-ports model: a
/// node-constraint word whose *support* is pairwise (and self-) compatible.
/// Such a word solves the problem on ANY graph with any port numbering
/// (every node outputs the word in port order); the differential oracles in
/// tests/prop realize it on concrete shuffled trees via src/local.
[[nodiscard]] std::optional<Word> zeroRoundAdversarialWitness(const Problem& p);

/// Deterministic 0-round solvability against fully adversarial ports: some
/// node-constraint word whose *support* is pairwise (and self-) compatible,
/// so that any two facing labels are allowed.
[[nodiscard]] bool zeroRoundSolvableAdversarialPorts(const Problem& p);

/// Exact deterministic 0-round solvability in the full PN model *with edge
/// ports* (each node sees, per incident edge, whether it is the edge's side
/// 0) -- the model of Theorem 3.  A 0-round algorithm induces label sets
/// (A, B) used on side-0 / side-1 half-edges with A x B edge-compatible;
/// w.l.o.g. (A, B) is a maximal compatible pair, and the algorithm exists
/// iff for some oriented maximal pair every side-bit pattern admits an
/// allowed word, i.e. N intersects [A]^m [B]^{Delta-m} for every m.
/// Exact for any Delta (Delta+1 flow checks per candidate pair).
[[nodiscard]] bool zeroRoundSolvableWithEdgeInputs(const Problem& p);

/// Lemma 15 generalized: if the problem is not 0-round solvable on the
/// symmetric-port family, every randomized 0-round algorithm fails with
/// probability at least 1 / (q * Delta)^2 where q is the number of node
/// configurations.  Returns that bound, or 0 if the problem is solvable.
[[nodiscard]] double randomizedFailureLowerBound(const Problem& p);

}  // namespace relb::re
