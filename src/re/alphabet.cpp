#include "re/alphabet.hpp"

#include <utility>

namespace relb::re {

Alphabet::Alphabet(std::vector<std::string> names) {
  for (auto& n : names) add(std::move(n));
}

Label Alphabet::add(std::string name) {
  if (name.empty()) throw Error("Alphabet: empty label name");
  if (name.find_first_of("[]^#\n\r\t") != std::string::npos) {
    throw Error("Alphabet: label name '" + name +
                "' contains a reserved character");
  }
  if (index_.contains(name)) {
    throw Error("Alphabet: duplicate label name '" + name + "'");
  }
  if (size() >= kMaxLabels) {
    throw Error("Alphabet: too many labels (limit " +
                std::to_string(kMaxLabels) + ")");
  }
  const auto l = static_cast<Label>(names_.size());
  index_.emplace(name, l);
  names_.push_back(std::move(name));
  return l;
}

Label Alphabet::getOrAdd(std::string_view name) {
  if (auto l = find(name)) return *l;
  return add(std::string(name));
}

std::optional<Label> Alphabet::find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Label Alphabet::at(std::string_view name) const {
  if (auto l = find(name)) return *l;
  throw Error("Alphabet: unknown label '" + std::string(name) + "'");
}

const std::string& Alphabet::name(Label l) const {
  if (l >= names_.size()) throw Error("Alphabet: label index out of range");
  return names_[l];
}

std::string Alphabet::render(LabelSet s) const {
  if (s.empty()) return "[]";
  const auto labels = s.toVector();
  bool multiChar = false;
  for (Label l : labels) {
    if (name(l).size() > 1) multiChar = true;
  }
  if (labels.size() == 1) return name(labels[0]);
  std::string out = "[";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0 && multiChar) out += ' ';
    out += name(labels[i]);
  }
  out += ']';
  return out;
}

}  // namespace relb::re
