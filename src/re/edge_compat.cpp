#include "re/edge_compat.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "re/antichain.hpp"

namespace relb::re {

namespace {

struct EdgeCounters {
  obs::Counter& subsetsSwept;
  obs::Counter& pairCandidates;
  obs::Counter& pairMaximal;
  obs::Counter& antichainPairs;
  obs::Counter& antichainTests;
};

EdgeCounters& edgeCounters() {
  auto& reg = obs::Registry::global();
  static EdgeCounters c{
      reg.counter("re.r.subsets_swept"), reg.counter("re.r.pairs.candidates"),
      reg.counter("re.r.pairs.maximal"), reg.counter("re.antichain.pairs"),
      reg.counter("re.antichain.tests")};
  return c;
}

}  // namespace

std::vector<LabelSet> edgeCompatibility(const Constraint& edge,
                                        int alphabetSize) {
  if (edge.degree() != 2) throw Error("edgeCompatibility: degree != 2");
  // A degree-2 configuration's normal form is either one group [S^2] --
  // allowing exactly the pairs S x S -- or two count-1 groups [S T],
  // allowing S x T.  Scanning the shapes gives the whole matrix directly,
  // with no per-pair containsWord flow.
  const LabelSet universe = LabelSet::full(alphabetSize);
  std::vector<LabelSet> compat(static_cast<std::size_t>(alphabetSize));
  for (const auto& c : edge.configurations()) {
    const auto& groups = c.groups();
    const LabelSet s = groups[0].set & universe;
    const LabelSet t =
        (groups.size() == 1 ? groups[0].set : groups[1].set) & universe;
    forEachLabel(s, [&](Label a) { compat[a] = compat[a] | t; });
    forEachLabel(t, [&](Label b) { compat[b] = compat[b] | s; });
  }
  return compat;
}

std::vector<std::pair<LabelSet, LabelSet>> detail::maximalEdgePairsFromCompat(
    const std::vector<LabelSet>& compat, int alphabetSize, int numThreads) {
  if (alphabetSize > 20) {
    throw Error("maximalEdgePairs: alphabet too large to enumerate subsets");
  }
  const obs::ScopedSpan span("re.maximalEdgePairs");
  using Pair = std::pair<LabelSet, LabelSet>;
  // partner(A) = intersection of compat[a] over a in A: the unique largest
  // set pairable with A.  Maximal pairs are the Galois-closed pairs
  // (A, partner(A)) with A = partner(partner(A)).  The matrix is copied to a
  // flat word array so the sweep's inner loop is ctz + AND only.
  std::array<std::uint32_t, 20> compatBits{};
  for (int l = 0; l < alphabetSize; ++l) {
    compatBits[static_cast<std::size_t>(l)] =
        compat[static_cast<std::size_t>(l)].bits();
  }
  const std::uint32_t fullBits = LabelSet::full(alphabetSize).bits();
  const auto partner = [&](LabelSet a) {
    std::uint32_t out = fullBits;
    for (std::uint32_t m = a.bits(); m != 0; m &= m - 1) {
      out &= compatBits[static_cast<std::size_t>(__builtin_ctz(m))];
    }
    return LabelSet(out);
  };
  // Subset sweep + Galois closure, fanned out over contiguous mask ranges.
  // Every chunk deduplicates locally; the final sort + unique makes the
  // result independent of the fan-out width.
  const std::uint32_t count = std::uint32_t{1} << alphabetSize;
  std::vector<Pair> pairs = util::parallel_reduce(
      numThreads, static_cast<std::size_t>(count) - 1, std::vector<Pair>{},
      [&](std::size_t begin, std::size_t end) {
        std::vector<Pair> local;
        for (std::size_t m = begin; m < end; ++m) {
          const LabelSet a(static_cast<std::uint32_t>(m) + 1);
          const LabelSet b = partner(a);
          if (b.empty()) continue;
          const LabelSet closedA = partner(b);
          assert(partner(closedA) == b);
          const auto p = std::minmax(closedA, b);
          local.emplace_back(p.first, p.second);
        }
        std::sort(local.begin(), local.end());
        local.erase(std::unique(local.begin(), local.end()), local.end());
        return local;
      },
      [](std::vector<Pair> acc, std::vector<Pair> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  edgeCounters().subsetsSwept.add(count - 1);
  edgeCounters().pairCandidates.add(pairs.size());

  // Galois-closed pairs are maximal against same-orientation growth by
  // construction, but an unordered configuration can still be dominated in
  // the swapped orientation; filter those out.  Bucketed by union signature
  // (domination implies union inclusion) and fanned out per candidate.
  std::vector<std::uint32_t> signatures(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    signatures[i] = (pairs[i].first | pairs[i].second).bits();
  }
  const detail::SignatureBuckets buckets(signatures);
  std::vector<char> dominated(pairs.size(), 0);
  util::parallel_for(numThreads, pairs.size(), [&](std::size_t i) {
    const Pair& p = pairs[i];
    std::uint64_t pairsVisited = 0;
    dominated[i] = buckets.anyInSupersetBucket(
        signatures[i], [&](std::size_t j) {
          if (j == i) return false;  // pairs are distinct after unique
          ++pairsVisited;
          const Pair& q = pairs[j];
          const bool straight =
              p.first.subsetOf(q.first) && p.second.subsetOf(q.second);
          const bool swapped =
              p.first.subsetOf(q.second) && p.second.subsetOf(q.first);
          return straight || swapped;
        });
    edgeCounters().antichainPairs.add(pairsVisited);
    edgeCounters().antichainTests.add(pairsVisited);
  });
  std::vector<Pair> out;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (!dominated[i]) out.push_back(pairs[i]);
  }
  edgeCounters().pairMaximal.add(out.size());
  return out;
}

std::vector<std::pair<LabelSet, LabelSet>> maximalEdgePairs(
    const Constraint& edge, int alphabetSize, int numThreads) {
  return detail::maximalEdgePairsFromCompat(
      edgeCompatibility(edge, alphabetSize), alphabetSize, numThreads);
}

}  // namespace relb::re
