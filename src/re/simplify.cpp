#include "re/simplify.hpp"

namespace relb::re {

Problem mergeLabels(const Problem& p, const std::vector<Label>& map,
                    Alphabet newAlphabet) {
  if (map.size() != static_cast<std::size_t>(p.alphabet.size())) {
    throw Error("mergeLabels: map size mismatch");
  }
  for (Label to : map) {
    if (to >= newAlphabet.size()) throw Error("mergeLabels: out of range");
  }
  const auto mapSet = [&](LabelSet s) {
    LabelSet out;
    forEachLabel(s, [&](Label l) { out.insert(map[l]); });
    return out;
  };
  Problem out;
  out.alphabet = std::move(newAlphabet);
  Constraint node(p.node.degree(), {});
  for (const auto& c : p.node.configurations()) node.add(c.mapSets(mapSet));
  Constraint edge(2, {});
  for (const auto& c : p.edge.configurations()) edge.add(c.mapSets(mapSet));
  node.removeDominatedConfigurations();
  edge.removeDominatedConfigurations();
  out.node = std::move(node);
  out.edge = std::move(edge);
  out.validate();
  return out;
}

Problem mergeTwoLabels(const Problem& p, Label a, Label b) {
  const int n = p.alphabet.size();
  if (a >= n || b >= n || a == b) throw Error("mergeTwoLabels: bad labels");
  // New alphabet: all labels except b, preserving order.
  Alphabet fresh;
  std::vector<Label> map(static_cast<std::size_t>(n));
  for (Label l = 0; l < n; ++l) {
    if (l == b) continue;
    map[l] = fresh.add(p.alphabet.name(l));
  }
  map[b] = map[a];
  return mergeLabels(p, map, std::move(fresh));
}

Problem restrictToLabels(const Problem& p, LabelSet keep) {
  const auto filter = [&](const Constraint& constraint) {
    Constraint out(constraint.degree(), {});
    for (const auto& c : constraint.configurations()) {
      if (c.support().subsetOf(keep)) out.add(c);
    }
    return out;
  };
  Problem out;
  out.alphabet = p.alphabet;
  out.node = filter(p.node);
  out.edge = filter(p.edge);
  if (out.node.empty() || out.edge.empty()) {
    throw Error("restrictToLabels: a constraint became empty");
  }
  out.validate();
  return out;
}

}  // namespace relb::re
