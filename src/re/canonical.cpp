#include "re/canonical.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <string>
#include <tuple>

namespace relb::re {

namespace {

constexpr std::uint64_t kSeed = 0x243f6a8885a308d3ULL;  // pi digits

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64-style avalanche of v folded into h.
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return (h ^ v) * 0x2545f4914f6cdd1dULL + 0x632be59bd9b4e019ULL;
}

std::uint64_t hashString(std::uint64_t h, const std::string& s) {
  h = mix(h, s.size());
  for (const char c : s) h = mix(h, static_cast<std::uint64_t>(c));
  return h;
}

// One configuration under a label relabeling, as comparable data: the sorted
// list of (mapped set bits, exponent).  An injective map sends distinct group
// sets to distinct sets, so no groups merge and the encoding is faithful.
using ConfigKey = std::vector<std::pair<std::uint32_t, Count>>;

ConfigKey encodeConfiguration(const Configuration& c,
                              const std::vector<Label>& map) {
  ConfigKey key;
  key.reserve(c.groups().size());
  for (const Group& g : c.groups()) {
    LabelSet mapped;
    forEachLabel(g.set, [&](Label l) { mapped.insert(map[l]); });
    key.emplace_back(mapped.bits(), g.count);
  }
  std::sort(key.begin(), key.end());
  return key;
}

// A constraint under a relabeling: sorted configuration keys (the canonical
// encoding forgets configuration order, which a renaming cannot change
// meaningfully anyway).
using ConstraintKey = std::vector<ConfigKey>;

ConstraintKey encodeConstraint(const Constraint& c,
                               const std::vector<Label>& map) {
  ConstraintKey key;
  key.reserve(c.size());
  for (const auto& config : c.configurations()) {
    key.push_back(encodeConfiguration(config, map));
  }
  std::sort(key.begin(), key.end());
  return key;
}

std::uint64_t hashConstraintKey(std::uint64_t h, const ConstraintKey& key) {
  h = mix(h, key.size());
  for (const ConfigKey& config : key) {
    h = mix(h, config.size());
    for (const auto& [bits, count] : config) {
      h = mix(h, bits);
      h = mix(h, static_cast<std::uint64_t>(count));
    }
  }
  return h;
}

// Iterated structural refinement: every label starts with a uniform color
// and is repeatedly recolored by the multiset of (constraint tag,
// configuration signature, group signature, exponent) tuples of the groups
// containing it, where signatures are computed from the current coloring.
// Everything is aggregated through sorted multisets, so the final colors are
// invariant under label permutations; labels with different colors are
// provably non-interchangeable.
std::vector<std::uint64_t> refineColors(const Problem& p) {
  const int n = p.alphabet.size();
  std::vector<std::uint64_t> color(static_cast<std::size_t>(n), kSeed);

  const auto round = [&]() {
    std::vector<std::vector<std::uint64_t>> incidences(
        static_cast<std::size_t>(n));
    const auto scan = [&](const Constraint& constraint, std::uint64_t tag) {
      for (const auto& config : constraint.configurations()) {
        // Group signatures from the current coloring.
        std::vector<std::uint64_t> groupSig;
        groupSig.reserve(config.groups().size());
        for (const Group& g : config.groups()) {
          std::vector<std::uint64_t> member;
          forEachLabel(g.set, [&](Label l) { member.push_back(color[l]); });
          std::sort(member.begin(), member.end());
          std::uint64_t s = mix(tag, static_cast<std::uint64_t>(g.count));
          for (const std::uint64_t m : member) s = mix(s, m);
          groupSig.push_back(s);
        }
        std::vector<std::uint64_t> sorted = groupSig;
        std::sort(sorted.begin(), sorted.end());
        std::uint64_t configSig = mix(tag, sorted.size());
        for (const std::uint64_t s : sorted) configSig = mix(configSig, s);
        for (std::size_t gi = 0; gi < config.groups().size(); ++gi) {
          forEachLabel(config.groups()[gi].set, [&](Label l) {
            incidences[l].push_back(mix(configSig, groupSig[gi]));
          });
        }
      }
    };
    scan(p.node, 1);
    scan(p.edge, 2);
    std::vector<std::uint64_t> next(static_cast<std::size_t>(n));
    for (int l = 0; l < n; ++l) {
      auto& inc = incidences[static_cast<std::size_t>(l)];
      std::sort(inc.begin(), inc.end());
      std::uint64_t h = mix(color[static_cast<std::size_t>(l)], inc.size());
      for (const std::uint64_t v : inc) h = mix(h, v);
      next[static_cast<std::size_t>(l)] = h;
    }
    color = std::move(next);
  };

  // n rounds always suffice for the partition to stabilize (each round can
  // only split classes, and there are at most n of them).
  for (int i = 0; i < n; ++i) round();
  return color;
}

Problem applyCanonicalMap(const Problem& p, const std::vector<Label>& map) {
  const int n = p.alphabet.size();
  Alphabet fresh;
  for (int l = 0; l < n; ++l) fresh.add("L" + std::to_string(l));

  const auto mapSet = [&](LabelSet s) {
    LabelSet out;
    forEachLabel(s, [&](Label l) { out.insert(map[l]); });
    return out;
  };
  const auto mapConstraint = [&](const Constraint& c) {
    std::vector<Configuration> configs;
    configs.reserve(c.size());
    for (const auto& config : c.configurations()) {
      configs.push_back(config.mapSets(mapSet));
    }
    std::sort(configs.begin(), configs.end());
    return Constraint(c.degree(), std::move(configs));
  };

  Problem out;
  out.alphabet = std::move(fresh);
  out.node = mapConstraint(p.node);
  out.edge = mapConstraint(p.edge);
  out.validate();
  return out;
}

}  // namespace

std::uint64_t structuralHash(const Constraint& c) {
  std::uint64_t h = mix(kSeed, static_cast<std::uint64_t>(c.degree()));
  h = mix(h, c.size());
  // Configuration order is part of the exact key: consumers of a cached
  // result must see the bit-identical output the uncached call produced,
  // and that output can depend on the order configurations were added.
  for (const auto& config : c.configurations()) {
    h = mix(h, config.groups().size());
    for (const Group& g : config.groups()) {
      h = mix(h, g.set.bits());
      h = mix(h, static_cast<std::uint64_t>(g.count));
    }
  }
  return h;
}

std::uint64_t structuralHash(const Problem& p) {
  const int n = p.alphabet.size();
  std::uint64_t h = mix(kSeed, static_cast<std::uint64_t>(n));
  for (const std::string& name : p.alphabet.names()) h = hashString(h, name);
  h = mix(h, structuralHash(p.node));
  h = mix(h, structuralHash(p.edge));
  return h;
}

CanonicalForm canonicalize(const Problem& p, std::size_t permutationBudget) {
  p.validate();
  const int n = p.alphabet.size();
  if (n > 16) throw Error("canonicalize: alphabet too large (> 16 labels)");

  const auto colors = refineColors(p);

  // Sort labels by color; equal colors form tie classes.
  std::vector<Label> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](Label a, Label b) {
    if (colors[a] != colors[b]) return colors[a] < colors[b];
    return a < b;
  });
  std::vector<std::pair<std::size_t, std::size_t>> classes;  // [begin, end)
  std::size_t budget = 1;
  for (std::size_t i = 0; i < order.size();) {
    std::size_t j = i + 1;
    while (j < order.size() && colors[order[j]] == colors[order[i]]) ++j;
    classes.emplace_back(i, j);
    for (std::size_t k = 2; k <= j - i; ++k) {
      budget *= k;
      if (budget > permutationBudget) {
        throw Error("canonicalize: symmetry class too large for budget");
      }
    }
    i = j;
  }

  // Try every combination of within-class permutations of `order` and keep
  // the lexicographically smallest (node, edge) encoding.  The class
  // boundaries are permutation-invariant, so the winner is canonical.
  std::vector<Label> best;
  ConstraintKey bestNode, bestEdge;
  std::vector<Label> current = order;
  const std::function<void(std::size_t)> sweep = [&](std::size_t ci) {
    if (ci == classes.size()) {
      // current[i] = the label placed at canonical position i; invert.
      std::vector<Label> map(static_cast<std::size_t>(n));
      for (std::size_t i = 0; i < current.size(); ++i) {
        map[current[i]] = static_cast<Label>(i);
      }
      ConstraintKey nodeKey = encodeConstraint(p.node, map);
      ConstraintKey edgeKey = encodeConstraint(p.edge, map);
      if (best.empty() || std::tie(nodeKey, edgeKey) <
                              std::tie(bestNode, bestEdge)) {
        best = map;
        bestNode = std::move(nodeKey);
        bestEdge = std::move(edgeKey);
      }
      return;
    }
    const auto [beginIdx, endIdx] = classes[ci];
    const auto first = current.begin() + static_cast<std::ptrdiff_t>(beginIdx);
    const auto last = current.begin() + static_cast<std::ptrdiff_t>(endIdx);
    std::sort(first, last);
    do {
      sweep(ci + 1);
    } while (std::next_permutation(first, last));
  };
  sweep(0);

  CanonicalForm result;
  result.map = best;
  result.problem = applyCanonicalMap(p, best);
  std::uint64_t h = mix(kSeed, static_cast<std::uint64_t>(n));
  h = mix(h, static_cast<std::uint64_t>(p.node.degree()));
  h = hashConstraintKey(h, bestNode);
  h = hashConstraintKey(h, bestEdge);
  result.hash = h;
  return result;
}

}  // namespace relb::re
