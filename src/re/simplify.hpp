// Simplification moves on problems: the manual toolkit round-elimination
// proofs use between speedup steps (Section 1.2's "similarity approach").
//
//   * mergeLabels: identify labels via a surjection f; the image problem is
//     *easier* (any solution maps through f in zero rounds), and its
//     description is smaller -- the move that fights the doubly exponential
//     label growth.
//   * restrictToLabels: drop every configuration mentioning a label outside
//     `keep`; the restricted problem is *harder* (its solutions are
//     solutions of the original).
//
// autoLowerBound (autobound.hpp) chains speedup + merge searches into fully
// automatic lower-bound certificates.
#pragma once

#include <vector>

#include "re/problem.hpp"

namespace relb::re {

/// The image problem under a label map `map` (old label -> new label over
/// `newAlphabet`, not necessarily injective): every configuration is
/// rewritten through the map.  Any solution of `p` becomes a solution of
/// the image in zero rounds, so the image is at most as hard as `p`.
[[nodiscard]] Problem mergeLabels(const Problem& p,
                                  const std::vector<Label>& map,
                                  Alphabet newAlphabet);

/// Convenience: merge exactly the two labels `a` and `b` (the merged label
/// keeps `a`'s name).
[[nodiscard]] Problem mergeTwoLabels(const Problem& p, Label a, Label b);

/// Keeps only configurations entirely inside `keep` (node and edge).  The
/// result is at least as hard as `p`; throws Error if a constraint empties.
[[nodiscard]] Problem restrictToLabels(const Problem& p, LabelSet keep);

}  // namespace relb::re
