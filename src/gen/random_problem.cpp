#include "gen/random_problem.hpp"

#include <string>
#include <vector>

#include "re/diagram.hpp"

namespace relb::gen {

using re::Configuration;
using re::Constraint;
using re::Count;
using re::Error;
using re::Group;
using re::Label;
using re::LabelSet;
using re::Problem;

namespace {

// A non-empty random subset of the first `alphabetSize` labels: one seed
// label uniformly, then each further label independently with probability
// `density`.
LabelSet randomSet(std::mt19937& rng, int alphabetSize, double density) {
  std::uniform_int_distribution<int> pick(0, alphabetSize - 1);
  LabelSet set{static_cast<Label>(pick(rng))};
  std::bernoulli_distribution extra(density);
  for (int l = 0; l < alphabetSize; ++l) {
    if (extra(rng)) set.insert(static_cast<Label>(l));
  }
  return set;
}

Configuration randomConfiguration(std::mt19937& rng, int alphabetSize,
                                  Count degree,
                                  const RandomProblemOptions& options) {
  std::bernoulli_distribution condense(options.condenseBias);
  std::vector<Group> groups;
  Count remaining = degree;
  while (remaining > 0) {
    Count count = 1;
    while (count < remaining && condense(rng)) ++count;
    groups.push_back(
        {randomSet(rng, alphabetSize, options.disjunctionDensity), count});
    remaining -= count;
  }
  return Configuration(std::move(groups));
}

Constraint randomConstraint(std::mt19937& rng, int alphabetSize, Count degree,
                            int minConfigs, int maxConfigs,
                            const RandomProblemOptions& options) {
  std::uniform_int_distribution<int> countDist(minConfigs, maxConfigs);
  const int target = countDist(rng);
  Constraint out(degree, {});
  for (int i = 0; i < target; ++i) {
    out.add(randomConfiguration(rng, alphabetSize, degree, options));
  }
  return out;
}

void requireRange(long long lo, long long hi, const char* what) {
  if (lo < 1 || hi < lo) {
    throw Error(std::string("randomProblem: bad ") + what + " range [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
}

}  // namespace

Problem randomProblem(std::mt19937& rng, const RandomProblemOptions& options) {
  requireRange(options.minAlphabet, options.maxAlphabet, "alphabet");
  requireRange(options.minDelta, options.maxDelta, "delta");
  requireRange(options.minNodeConfigs, options.maxNodeConfigs, "node-config");
  requireRange(options.minEdgeConfigs, options.maxEdgeConfigs, "edge-config");
  if (options.maxAlphabet > re::kMaxLabels) {
    throw Error("randomProblem: alphabet range exceeds kMaxLabels");
  }

  std::uniform_int_distribution<int> alphaDist(options.minAlphabet,
                                               options.maxAlphabet);
  std::uniform_int_distribution<Count> deltaDist(options.minDelta,
                                                 options.maxDelta);
  Problem p;
  const int alphabetSize = alphaDist(rng);
  for (int i = 0; i < alphabetSize; ++i) {
    p.alphabet.add(i < 26 ? std::string(1, static_cast<char>('A' + i))
                          : "L" + std::to_string(i));
  }
  const Count delta = deltaDist(rng);
  p.node = randomConstraint(rng, alphabetSize, delta, options.minNodeConfigs,
                            options.maxNodeConfigs, options);
  p.edge = randomConstraint(rng, alphabetSize, 2, options.minEdgeConfigs,
                            options.maxEdgeConfigs, options);
  if (options.rightClosurePass) p = rightClosureRelaxation(p);
  if (options.relaxationPass) {
    p = randomRelaxation(p, rng, options.relaxationGrowProbability);
  }
  p.validate();
  return p;
}

Problem rightClosureRelaxation(const Problem& p) {
  const auto rel = re::computeStrength(p.edge, p.alphabet.size());
  Problem out;
  out.alphabet = p.alphabet;
  Constraint node(p.node.degree(), {});
  for (const Configuration& c : p.node.configurations()) {
    node.add(c.mapSets([&](LabelSet s) { return rel.rightClosure(s); }));
  }
  out.node = std::move(node);
  out.edge = p.edge;
  out.validate();
  return out;
}

Problem randomRelaxation(const Problem& p, std::mt19937& rng,
                         double growProbability) {
  std::bernoulli_distribution grow(growProbability);
  const auto relaxConstraint = [&](const Constraint& c) {
    Constraint out(c.degree(), {});
    for (const Configuration& config : c.configurations()) {
      out.add(config.mapSets([&](LabelSet s) {
        if (!grow(rng)) return s;
        return s | randomSet(rng, p.alphabet.size(), 0.3);
      }));
    }
    return out;
  };
  Problem out;
  out.alphabet = p.alphabet;
  out.node = relaxConstraint(p.node);
  out.edge = relaxConstraint(p.edge);
  out.validate();
  return out;
}

}  // namespace relb::gen
