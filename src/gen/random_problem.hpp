// Seeded random LCL problem generator.
//
// The paper's fixtures exercise one family Pi_Delta(a, x) over the five-label
// alphabet {M, P, O, A, X}; the property suites in tests/prop need valid
// problems with *no* special structure -- arbitrary alphabets, degrees,
// condensed-group shapes, and edge densities -- to catch bugs the family
// cannot reach (condensation corner cases, right-closure of irregular
// diagrams, zero-round analysis of asymmetric edge constraints).
//
// randomProblem(rng, options) draws such a problem.  Every output satisfies
// Problem::validate() by construction, and generation is a pure function of
// the RNG state and the options: the same seed reproduces the same problem,
// which is what makes property-test failures replayable from a printed seed
// (see tests/prop/prop.hpp and docs/testing.md).
//
// Two optional post-passes reshape the raw draw towards the structures round
// elimination actually produces:
//   * right-closure: replace every node-group set by its right closure under
//     the edge-constraint strength relation (Observation 4's normal form);
//   * relaxation: randomly enlarge group sets (a superset relaxation, the
//     move of Definition 7).
// Both preserve validity and are exposed standalone so oracles can compare a
// problem against its relaxations.
#pragma once

#include <random>

#include "re/problem.hpp"

namespace relb::gen {

struct RandomProblemOptions {
  /// Alphabet size range (inclusive).  Label names are single uppercase
  /// letters, so the text round-trip stays compact; sizes above 26 fall back
  /// to "L<i>" names.  Minimum 1 (single-label problems are a deliberate
  /// edge case).
  int minAlphabet = 2;
  int maxAlphabet = 5;

  /// Node-constraint degree (Delta) range, inclusive.  Keep small: the
  /// Rbar-side oracles enumerate multisets.
  re::Count minDelta = 2;
  re::Count maxDelta = 4;

  /// Number of configurations per constraint, inclusive ranges.  Duplicate
  /// draws collapse (Constraint::add drops exact duplicates), so the actual
  /// count may come out lower.
  int minNodeConfigs = 1;
  int maxNodeConfigs = 4;
  int minEdgeConfigs = 1;
  int maxEdgeConfigs = 4;

  /// Probability that a group's label set receives each extra label beyond
  /// the first (drives disjunction width, i.e. configuration density).
  double disjunctionDensity = 0.25;

  /// Probability that the next slot of a node configuration merges into the
  /// current group instead of opening a new one (drives condensation: high
  /// values produce few groups with large exponents).
  double condenseBias = 0.5;

  /// Post-pass: right-close every node group set under the edge strength
  /// relation (see rightClosureRelaxation below).
  bool rightClosurePass = false;

  /// Post-pass: randomly enlarge group sets (see randomRelaxation below).
  bool relaxationPass = false;
  double relaxationGrowProbability = 0.3;
};

/// Draws one valid problem.  Deterministic in (rng state, options); advances
/// `rng`.  Throws re::Error on inconsistent option ranges.
[[nodiscard]] re::Problem randomProblem(std::mt19937& rng,
                                        const RandomProblemOptions& options = {});

/// Replaces every node-group set by its right closure under the strength
/// relation of the edge constraint.  Any solution of `p` remains a solution
/// of the result (stronger labels may always substitute weaker ones), so
/// this is a relaxation; it is also the normal form Observation 4 feeds to
/// Rbar.  Edge constraint and alphabet are unchanged.
[[nodiscard]] re::Problem rightClosureRelaxation(const re::Problem& p);

/// Randomly enlarges group sets: each group of each constraint grows to a
/// random superset with probability `growProbability` per group.  The result
/// accepts every labeling `p` accepts (a relaxation in the sense of
/// Definition 7).  Deterministic in the RNG state.
[[nodiscard]] re::Problem randomRelaxation(const re::Problem& p,
                                           std::mt19937& rng,
                                           double growProbability = 0.3);

}  // namespace relb::gen
