// Seeded sampling of family-definition instantiations.
//
// randomProblem (random_problem.hpp) draws structureless problems; this is
// its structured counterpart: randomFamilyProblem() draws a parameter vector
// uniformly from a FamilyDef's declared ranges and instantiates it, so the
// property suites can exercise the engine on the *shape* of real lower-bound
// families (ruling sets, matchings, colorings, Pi) at parameter points the
// built-in defaults never visit.
//
// Sampling is deterministic in the RNG state, exactly like randomProblem:
// the same seed reproduces the same parameter vector and problem, keeping
// property-test failures replayable from a printed seed.
#pragma once

#include <random>

#include "family/def.hpp"

namespace relb::gen {

struct FamilySampleOptions {
  /// Intersected with the declared range of a parameter named "delta", so a
  /// suite can keep degrees inside what its oracles can enumerate.  Other
  /// parameters always use their full declared range.
  re::Count minDelta = 1;
  re::Count maxDelta = 6;

  /// Rejection-sampling budget for definitions whose `require` clauses (or
  /// instantiation-time errors, e.g. a negative exponent at an unlucky
  /// corner) rule out part of the parameter box.  Exhausting it throws.
  int maxAttempts = 64;
};

/// Draws one parameter vector uniformly from `def`'s declared ranges
/// (rejection-sampling the `require` clauses).  Deterministic in the RNG
/// state; advances `rng`.  Throws re::Error when the budget is exhausted or
/// the delta intersection is empty.
[[nodiscard]] family::Env randomFamilyParams(
    std::mt19937& rng, const family::FamilyDef& def,
    const FamilySampleOptions& options = {});

/// randomFamilyParams + instantiate: one valid problem of the family at a
/// uniformly drawn parameter point.
[[nodiscard]] re::Problem randomFamilyProblem(
    std::mt19937& rng, const family::FamilyDef& def,
    const FamilySampleOptions& options = {});

}  // namespace relb::gen
