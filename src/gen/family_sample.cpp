#include "gen/family_sample.hpp"

#include <algorithm>
#include <string>

namespace relb::gen {

using re::Count;
using re::Error;

namespace {

// One uniform draw over the parameter box, evaluating each range under the
// parameters drawn so far (ranges may reference earlier parameters).
// Returns false when a range comes out empty for this prefix -- the caller
// rejects and redraws, the same way `require` failures are handled.
bool drawOnce(std::mt19937& rng, const family::FamilyDef& def,
              const FamilySampleOptions& options, family::Env& env) {
  env.clear();
  for (const family::ParamDecl& param : def.params) {
    Count lo = family::eval(param.lo, env);
    Count hi = family::eval(param.hi, env);
    if (param.name == "delta") {
      lo = std::max(lo, options.minDelta);
      hi = std::min(hi, options.maxDelta);
    }
    if (lo > hi) return false;
    std::uniform_int_distribution<Count> dist(lo, hi);
    env[param.name] = dist(rng);
  }
  return true;
}

}  // namespace

family::Env randomFamilyParams(std::mt19937& rng, const family::FamilyDef& def,
                               const FamilySampleOptions& options) {
  family::Env env;
  for (int attempt = 0; attempt < options.maxAttempts; ++attempt) {
    if (!drawOnce(rng, def, options, env)) continue;
    try {
      // resolveParams re-validates the (declared, un-intersected) ranges and
      // every `require` clause; a throw is a rejected sample, not an error.
      return family::resolveParams(def, env);
    } catch (const Error&) {
    }
  }
  throw Error("randomFamilyParams: no valid parameter vector for family '" +
              def.name + "' in " + std::to_string(options.maxAttempts) +
              " attempts (delta clamped to [" +
              std::to_string(options.minDelta) + ", " +
              std::to_string(options.maxDelta) + "])");
}

re::Problem randomFamilyProblem(std::mt19937& rng,
                                const family::FamilyDef& def,
                                const FamilySampleOptions& options) {
  for (int attempt = 0; attempt < options.maxAttempts; ++attempt) {
    const family::Env params = randomFamilyParams(rng, def, options);
    try {
      return family::instantiate(def, params);
    } catch (const Error&) {
      // An instantiation-time corner (negative exponent, empty expansion)
      // at this parameter point; redraw.
    }
  }
  throw Error("randomFamilyProblem: no instantiable parameter vector for "
              "family '" + def.name + "' in " +
              std::to_string(options.maxAttempts) + " attempts");
}

}  // namespace relb::gen
