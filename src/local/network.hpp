// Synchronous message-passing executor for the LOCAL / port-numbering model.
//
// One round = every node reads the messages delivered on its ports, updates
// its state, and writes one outgoing message per port (LOCAL allows
// unbounded messages; `Msg` is any value type).  The executor is
// deterministic given the algorithm's own randomness; round counting is
// explicit so upper-bound experiments can report exact round complexities.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "local/graph.hpp"

namespace relb::local {

template <typename Msg>
class SyncNetwork {
 public:
  explicit SyncNetwork(const Graph& g) : graph_(&g) {
    inbox_.resize(static_cast<std::size_t>(g.numNodes()));
    outbox_.resize(static_cast<std::size_t>(g.numNodes()));
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      inbox_[static_cast<std::size_t>(v)].resize(
          static_cast<std::size_t>(g.degree(v)));
      outbox_[static_cast<std::size_t>(v)].resize(
          static_cast<std::size_t>(g.degree(v)));
    }
  }

  /// Called once per node per round:
  ///   fn(node, inbox, outbox)
  /// `inbox[p]` holds the message received on port p this round (default
  /// constructed in round 0); the node writes `outbox[p]` for each port.
  using StepFn =
      std::function<void(NodeId, std::span<const Msg>, std::span<Msg>)>;

  /// Executes one synchronous round.
  void step(const StepFn& fn) {
    const Graph& g = *graph_;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      auto& in = inbox_[static_cast<std::size_t>(v)];
      auto& out = outbox_[static_cast<std::size_t>(v)];
      fn(v, std::span<const Msg>(in), std::span<Msg>(out));
    }
    if (meter_) {
      for (const auto& msgs : outbox_) {
        for (const Msg& m : msgs) {
          maxMessageBits_ = std::max(maxMessageBits_, meter_(m));
        }
      }
    }
    // Deliver: the message a node wrote on port p reaches the neighbor on
    // the neighbor's port for the shared edge.
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      const auto& nbrs = g.neighbors(v);
      for (std::size_t p = 0; p < nbrs.size(); ++p) {
        const HalfEdge he = nbrs[p];
        const Port q = g.portOf(he.neighbor, he.edge);
        inbox_[static_cast<std::size_t>(he.neighbor)]
              [static_cast<std::size_t>(q)] =
                  outbox_[static_cast<std::size_t>(v)][p];
      }
    }
    ++rounds_;
  }

  [[nodiscard]] int rounds() const { return rounds_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }

  /// CONGEST accounting: measures every outgoing message with `meter`
  /// (bits) at the end of each subsequent step.  The paper notes its lower
  /// bounds apply to CONGEST; this lets upper-bound algorithms certify they
  /// stay within O(log n)-bit messages.
  void setMessageMeter(std::function<long(const Msg&)> meter) {
    meter_ = std::move(meter);
  }
  [[nodiscard]] long maxMessageBits() const { return maxMessageBits_; }

 private:
  const Graph* graph_;
  std::vector<std::vector<Msg>> inbox_;
  std::vector<std::vector<Msg>> outbox_;
  std::function<long(const Msg&)> meter_;
  long maxMessageBits_ = 0;
  int rounds_ = 0;
};

}  // namespace relb::local
