#include "local/families.hpp"

#include "re/types.hpp"

namespace relb::local {

namespace {

/// splitmix64: the simulator's only randomness primitive.  A counter-based
/// generator (no sequential state) keeps generation order-free and the
/// kernels' per-(seed, round, vertex) priorities reproducible.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Vertex checkedNodeCount(std::uint64_t nodes) {
  if (nodes == 0) throw re::Error("makeTree: need at least one node");
  if (nodes >= kInvalidVertex) {
    throw re::Error("makeTree: too many nodes for uint32 ids");
  }
  return static_cast<Vertex>(nodes);
}

/// Uniform attachment: node v picks an earlier node.  With a cap, full
/// candidates are skipped by a deterministic downward probe (slightly
/// non-uniform, but every probe sequence is a pure function of the seed).
std::vector<Vertex> attachmentParents(Vertex n, std::uint32_t cap,
                                      std::uint64_t seed) {
  std::vector<Vertex> parents(n, 0);
  std::vector<std::uint32_t> degree(n, 0);
  for (Vertex v = 1; v < n; ++v) {
    Vertex u = static_cast<Vertex>(splitmix64(seed ^ (0xa11ac4edull << 20) ^ v) %
                                   v);
    if (cap > 0) {
      Vertex probes = 0;
      while (degree[u] >= cap && probes < v) {
        u = (u == 0) ? v - 1 : u - 1;
        ++probes;
      }
      if (degree[u] >= cap) {
        throw re::Error("makeTree: degree cap too low for node count");
      }
    }
    parents[v] = u;
    ++degree[u];
    ++degree[v];
  }
  return parents;
}

/// Complete Delta-regular tree in BFS order: level sizes 1, Delta,
/// Delta(Delta-1), ...; generation stops at the requested node count, so the
/// last level may be partial (degrees stay <= Delta either way).
std::vector<Vertex> completeTreeParents(Vertex n, std::uint32_t delta) {
  std::vector<Vertex> parents(n, 0);
  if (n == 1) return parents;
  // Nodes 1..delta hang off the root; from there every internal node gets
  // delta - 1 children, assigned in index order.
  for (Vertex v = 1; v < n && v <= delta; ++v) parents[v] = 0;
  Vertex nextParent = 1;          // first node of the previous level
  std::uint32_t childrenLeft = delta - 1;
  for (Vertex v = delta + 1; v < n; ++v) {
    parents[v] = nextParent;
    if (--childrenLeft == 0) {
      ++nextParent;
      childrenLeft = delta - 1;
    }
  }
  return parents;
}

std::vector<Vertex> pathParents(Vertex n) {
  std::vector<Vertex> parents(n, 0);
  for (Vertex v = 1; v < n; ++v) parents[v] = v - 1;
  return parents;
}

std::vector<Vertex> broomParents(Vertex n) {
  std::vector<Vertex> parents(n, 0);
  const Vertex handle = n / 2 == 0 ? 1 : n / 2;
  for (Vertex v = 1; v < n; ++v) {
    parents[v] = v < handle ? v - 1 : handle - 1;
  }
  return parents;
}

}  // namespace

std::optional<Family> familyFromName(std::string_view name) {
  if (name == "random-tree") return Family::kRandomTree;
  if (name == "bounded-tree") return Family::kBoundedDegreeTree;
  if (name == "complete-tree") return Family::kCompleteTree;
  if (name == "path") return Family::kPath;
  if (name == "broom") return Family::kBroom;
  return std::nullopt;
}

const char* familyName(Family family) {
  switch (family) {
    case Family::kRandomTree: return "random-tree";
    case Family::kBoundedDegreeTree: return "bounded-tree";
    case Family::kCompleteTree: return "complete-tree";
    case Family::kPath: return "path";
    case Family::kBroom: return "broom";
  }
  return "?";
}

std::vector<Family> allFamilies() {
  return {Family::kRandomTree, Family::kBoundedDegreeTree,
          Family::kCompleteTree, Family::kPath, Family::kBroom};
}

TreeInstance makeTree(Family family, std::uint64_t nodes,
                      std::uint32_t maxDegree, std::uint64_t seed) {
  const Vertex n = checkedNodeCount(nodes);
  TreeInstance out;
  switch (family) {
    case Family::kRandomTree:
      out.parents = attachmentParents(n, 0, seed);
      break;
    case Family::kBoundedDegreeTree: {
      const std::uint32_t cap = maxDegree == 0 ? 8 : maxDegree;
      if (cap < 2) throw re::Error("makeTree: bounded-tree needs cap >= 2");
      out.parents = attachmentParents(n, cap, seed);
      break;
    }
    case Family::kCompleteTree: {
      const std::uint32_t delta = maxDegree == 0 ? 3 : maxDegree;
      if (delta < 2) throw re::Error("makeTree: complete-tree needs Delta >= 2");
      out.parents = completeTreeParents(n, delta);
      break;
    }
    case Family::kPath:
      out.parents = pathParents(n);
      break;
    case Family::kBroom:
      out.parents = broomParents(n);
      break;
  }
  out.graph = CsrGraph::fromParents(out.parents);
  return out;
}

}  // namespace relb::local
