// Frontier-based parallel round kernels for the paper's upper bounds.
//
// Three algorithm families, each written as runRound(frontier) -> frontier
// sweeps over the CSR vertex table (local/frontier.hpp has the blocked-range
// discipline and the determinism contract):
//
//   * Luby's randomized MIS.  Per round, an UNDECIDED vertex joins the MIS
//     iff its (priority, id) pair beats every UNDECIDED neighbor's, where
//     priority = splitmix64(seed, round, vertex) -- counter-based randomness,
//     so the coin flips are a pure function of (seed, round, vertex) and the
//     run is reproducible at any thread width.  O(log n) rounds whp.
//
//   * Cole-Vishkin color reduction on rooted trees: iterate the bit-index
//     step from the id-coloring down to <= 6 colors in log* n + O(1) rounds,
//     then three shift-down + recolor round pairs remove the classes 5, 4, 3
//     for a proper 3-coloring.  Fully deterministic -- the measured-round
//     counterpart of the paper's O(Delta + log* n) MIS upper bound.
//
//   * The Section 1.1 MIS -> bounded-out-degree dominating set reduction:
//     one round in which every non-MIS vertex points at an MIS neighbor.
//     The MIS is the dominating set, G[S] is edgeless, so the empty
//     orientation has outdegree 0 <= k for every admissible k.
//
// Kernels return plain data; observability is the caller's job (sim.cpp
// wires RoundHook into obs counters and tracer spans).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "local/csr.hpp"
#include "local/frontier.hpp"

namespace relb::local {

/// Called after every completed round with (round index, vertices processed
/// this round).  Hooks must be cheap; they run on the calling thread.
using RoundHook = std::function<void(int round, std::uint64_t active)>;

/// The per-(seed, round, vertex) priority driving Luby's coin flips.
[[nodiscard]] std::uint64_t lubyPriority(std::uint64_t seed, int round,
                                         Vertex v);

struct MisRun {
  std::vector<MisFlag> state;  // every vertex kIn or kOut on return
  int rounds = 0;
  std::uint64_t misSize = 0;
};

/// One Luby round over `frontier`: phase 1 marks local priority maxima into
/// `inMark` (reading only round-start state), phase 2 commits kIn/kOut and
/// collects the surviving frontier.  `state` and `inMark` must have one slot
/// per vertex; `inMark` is scratch reused across rounds.
[[nodiscard]] Frontier lubyMisRound(const CsrGraph& g, const Frontier& frontier,
                                    std::vector<MisFlag>& state,
                                    std::vector<std::uint8_t>& inMark,
                                    std::uint64_t seed, int round,
                                    int numThreads);

/// Runs Luby rounds until every vertex is decided.
[[nodiscard]] MisRun lubyMis(const CsrGraph& g, std::uint64_t seed,
                             int numThreads, const RoundHook& hook = {});

struct ColorRun {
  std::vector<std::uint32_t> colors;  // proper; values in [0, numColors)
  int rounds = 0;
  std::uint32_t numColors = 0;
};

/// One Cole-Vishkin step: next[v] = 2 * i + bit_i(cur[v]) for the lowest bit
/// i where cur[v] differs from the parent's color (the root uses a virtual
/// parent differing in bit 0).  Exposed for tests and the round benchmarks.
void cvColorRound(const CsrGraph& g, std::span<const Vertex> parents,
                  std::span<const std::uint32_t> cur,
                  std::span<std::uint32_t> next, int numThreads);

/// Full color reduction to a proper 3-coloring of the rooted tree.
[[nodiscard]] ColorRun treeColorReduce(const CsrGraph& g,
                                       std::span<const Vertex> parents,
                                       int numThreads,
                                       const RoundHook& hook = {});

struct DomsetRun {
  std::vector<std::uint8_t> inSet;  // 1 = in the dominating set
  /// dominator[v]: v itself for members, else the chosen MIS neighbor
  /// (kInvalidVertex marks a domination failure -- the verifier rejects).
  std::vector<Vertex> dominator;
  int rounds = 0;  // rounds of the reduction itself (1), MIS not included
  std::uint64_t setSize = 0;
};

/// The one-round MIS -> 0-outdegree dominating set reduction.
[[nodiscard]] DomsetRun domsetFromMis(const CsrGraph& g,
                                      std::span<const MisFlag> mis,
                                      int numThreads,
                                      const RoundHook& hook = {});

}  // namespace relb::local
