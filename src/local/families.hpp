// Deterministic seeded tree generators for the massive-scale simulator.
//
// Every family is generated as a parent array (parents[v] < v, node 0 the
// root) and converted to CSR by CsrGraph::fromParents, so a (family, nodes,
// maxDegree, seed) tuple names one exact graph on every machine and at
// every thread width -- the precondition for the kernels' bit-identity
// contract.  The gadget-sized builders in local/graph.hpp remain the tool
// for port-numbering arguments (symmetricPortGadget and friends); these
// builders exist to run the paper's *upper bounds* at 10^7-10^8 nodes.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "local/csr.hpp"

namespace relb::local {

enum class Family {
  /// Uniform random attachment, unbounded degree (max degree O(log n) whp).
  kRandomTree,
  /// Uniform random attachment with a hard degree cap (default 8).
  kBoundedDegreeTree,
  /// Complete Delta-regular tree (default Delta 3): every internal node has
  /// degree exactly Delta -- the host family of the paper's Theorem 1
  /// lower-bound instances.
  kCompleteTree,
  /// Path on n nodes (Delta = 2 extreme of the lower-bound family).
  kPath,
  /// Path whose far end carries n/2 leaves -- the classic MIS adversary.
  kBroom,
};

[[nodiscard]] std::optional<Family> familyFromName(std::string_view name);
[[nodiscard]] const char* familyName(Family family);
/// All families, in CLI listing order.
[[nodiscard]] std::vector<Family> allFamilies();

/// One generated instance: the CSR graph plus the rooted-tree structure the
/// color-reduction kernel consumes (parents[root] == root == 0).
struct TreeInstance {
  CsrGraph graph;
  std::vector<Vertex> parents;
};

/// Generates `family` on `nodes` nodes.  `maxDegree` 0 picks the family
/// default (8 for bounded-degree, 3 for complete trees; ignored by path and
/// broom).  `seed` only matters for the randomized families.
[[nodiscard]] TreeInstance makeTree(Family family, std::uint64_t nodes,
                                    std::uint32_t maxDegree,
                                    std::uint64_t seed);

}  // namespace relb::local
