#include "local/verify.hpp"

#include <algorithm>

#include "re/types.hpp"
#include "util/thread_pool.hpp"

namespace relb::local {

namespace {

void requireSize(const Graph& g, const std::vector<bool>& inSet) {
  if (static_cast<NodeId>(inSet.size()) != g.numNodes()) {
    throw re::Error("verify: set size does not match node count");
  }
}

void requireCsrSize(const CsrGraph& g, std::size_t slots, const char* what) {
  if (slots != g.numNodes()) {
    throw re::Error(std::string("verify: ") + what +
                    " size does not match node count");
  }
}

/// AND of perNode(v) over all vertices, swept in parallel chunks.  The
/// accumulator is uint8_t, not bool: parallel_reduce stores parts in a
/// std::vector<T>, and vector<bool>'s proxy references don't bind.
template <typename PerNode>
bool allNodes(const CsrGraph& g, int numThreads, PerNode&& perNode) {
  return util::parallel_reduce<std::uint8_t>(
             numThreads, g.numNodes(), 1,
             [&](std::size_t begin, std::size_t end) -> std::uint8_t {
               for (std::size_t v = begin; v < end; ++v) {
                 if (!perNode(static_cast<Vertex>(v))) return 0;
               }
               return 1;
             },
             [](std::uint8_t acc, std::uint8_t part) -> std::uint8_t {
               return acc & part;
             }) != 0;
}

}  // namespace

bool isIndependentSet(const Graph& g, const std::vector<bool>& inSet) {
  requireSize(g, inSet);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (inSet[static_cast<std::size_t>(u)] &&
        inSet[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

bool isDominatingSet(const Graph& g, const std::vector<bool>& inSet) {
  requireSize(g, inSet);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    if (inSet[static_cast<std::size_t>(v)]) continue;
    bool dominated = false;
    for (const HalfEdge& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool isMaximalIndependentSet(const Graph& g, const std::vector<bool>& inSet) {
  return isIndependentSet(g, inSet) && isDominatingSet(g, inSet);
}

int inducedMaxDegree(const Graph& g, const std::vector<bool>& inSet) {
  requireSize(g, inSet);
  int best = 0;
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    if (!inSet[static_cast<std::size_t>(v)]) continue;
    int d = 0;
    for (const HalfEdge& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) ++d;
    }
    best = std::max(best, d);
  }
  return best;
}

bool isKDegreeDominatingSet(const Graph& g, const std::vector<bool>& inSet,
                            int k) {
  return isDominatingSet(g, inSet) && inducedMaxDegree(g, inSet) <= k;
}

int inducedMaxOutdegree(const Graph& g, const std::vector<bool>& inSet,
                        const EdgeOrientation& orientation) {
  requireSize(g, inSet);
  if (static_cast<EdgeId>(orientation.size()) != g.numEdges()) {
    throw re::Error("verify: orientation size does not match edge count");
  }
  std::vector<int> outdeg(static_cast<std::size_t>(g.numNodes()), 0);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const bool inside = inSet[static_cast<std::size_t>(u)] &&
                        inSet[static_cast<std::size_t>(v)];
    if (!inside) continue;
    const int o = orientation[static_cast<std::size_t>(e)];
    if (o == 1) {
      ++outdeg[static_cast<std::size_t>(u)];
    } else if (o == -1) {
      ++outdeg[static_cast<std::size_t>(v)];
    } else {
      return -1;  // unoriented G[S] edge
    }
  }
  return *std::max_element(outdeg.begin(), outdeg.end());
}

bool isKOutdegreeDominatingSet(const Graph& g, const std::vector<bool>& inSet,
                               const EdgeOrientation& orientation, int k) {
  if (!isDominatingSet(g, inSet)) return false;
  const int out = inducedMaxOutdegree(g, inSet, orientation);
  return out >= 0 && out <= k;
}

EdgeOrientation orientInduced(const Graph& g, const std::vector<bool>& inSet) {
  requireSize(g, inSet);
  EdgeOrientation orientation(static_cast<std::size_t>(g.numEdges()), 0);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (inSet[static_cast<std::size_t>(u)] &&
        inSet[static_cast<std::size_t>(v)]) {
      orientation[static_cast<std::size_t>(e)] = u < v ? +1 : -1;
    }
  }
  return orientation;
}

bool csrIsIndependentSet(const CsrGraph& g, std::span<const MisFlag> state,
                         int numThreads) {
  requireCsrSize(g, state.size(), "state");
  return allNodes(g, numThreads, [&](Vertex v) {
    if (state[v] == MisFlag::kUndecided) return false;
    if (state[v] != MisFlag::kIn) return true;
    for (const Vertex w : g.neighbors(v)) {
      if (state[w] == MisFlag::kIn) return false;
    }
    return true;
  });
}

bool csrIsDominatingSet(const CsrGraph& g, std::span<const MisFlag> state,
                        int numThreads) {
  requireCsrSize(g, state.size(), "state");
  return allNodes(g, numThreads, [&](Vertex v) {
    if (state[v] == MisFlag::kUndecided) return false;
    if (state[v] != MisFlag::kOut) return true;
    for (const Vertex w : g.neighbors(v)) {
      if (state[w] == MisFlag::kIn) return true;
    }
    return false;
  });
}

bool csrIsMaximalIndependentSet(const CsrGraph& g,
                                std::span<const MisFlag> state,
                                int numThreads) {
  return csrIsIndependentSet(g, state, numThreads) &&
         csrIsDominatingSet(g, state, numThreads);
}

bool csrIsProperColoring(const CsrGraph& g,
                         std::span<const std::uint32_t> colors,
                         std::uint32_t numColors, int numThreads) {
  requireCsrSize(g, colors.size(), "colors");
  return allNodes(g, numThreads, [&](Vertex v) {
    if (colors[v] >= numColors) return false;
    for (const Vertex w : g.neighbors(v)) {
      if (colors[w] == colors[v]) return false;
    }
    return true;
  });
}

bool csrIsZeroOutdegreeDominatingSet(const CsrGraph& g,
                                     std::span<const std::uint8_t> inSet,
                                     std::span<const Vertex> dominator,
                                     int numThreads) {
  requireCsrSize(g, inSet.size(), "inSet");
  requireCsrSize(g, dominator.size(), "dominator");
  return allNodes(g, numThreads, [&](Vertex v) {
    if (inSet[v] != 0) {
      // Members must certify themselves and induce no G[S] edge (outdegree 0
      // under the empty orientation needs G[S] edgeless).
      if (dominator[v] != v) return false;
      for (const Vertex w : g.neighbors(v)) {
        if (inSet[w] != 0) return false;
      }
      return true;
    }
    const Vertex d = dominator[v];
    if (d == kInvalidVertex || d >= g.numNodes() || inSet[d] == 0) return false;
    for (const Vertex w : g.neighbors(v)) {
      if (w == d) return true;
    }
    return false;
  });
}

}  // namespace relb::local
