#include "local/verify.hpp"

#include <algorithm>

#include "re/types.hpp"

namespace relb::local {

namespace {

void requireSize(const Graph& g, const std::vector<bool>& inSet) {
  if (static_cast<NodeId>(inSet.size()) != g.numNodes()) {
    throw re::Error("verify: set size does not match node count");
  }
}

}  // namespace

bool isIndependentSet(const Graph& g, const std::vector<bool>& inSet) {
  requireSize(g, inSet);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (inSet[static_cast<std::size_t>(u)] &&
        inSet[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

bool isDominatingSet(const Graph& g, const std::vector<bool>& inSet) {
  requireSize(g, inSet);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    if (inSet[static_cast<std::size_t>(v)]) continue;
    bool dominated = false;
    for (const HalfEdge& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool isMaximalIndependentSet(const Graph& g, const std::vector<bool>& inSet) {
  return isIndependentSet(g, inSet) && isDominatingSet(g, inSet);
}

int inducedMaxDegree(const Graph& g, const std::vector<bool>& inSet) {
  requireSize(g, inSet);
  int best = 0;
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    if (!inSet[static_cast<std::size_t>(v)]) continue;
    int d = 0;
    for (const HalfEdge& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) ++d;
    }
    best = std::max(best, d);
  }
  return best;
}

bool isKDegreeDominatingSet(const Graph& g, const std::vector<bool>& inSet,
                            int k) {
  return isDominatingSet(g, inSet) && inducedMaxDegree(g, inSet) <= k;
}

int inducedMaxOutdegree(const Graph& g, const std::vector<bool>& inSet,
                        const EdgeOrientation& orientation) {
  requireSize(g, inSet);
  if (static_cast<EdgeId>(orientation.size()) != g.numEdges()) {
    throw re::Error("verify: orientation size does not match edge count");
  }
  std::vector<int> outdeg(static_cast<std::size_t>(g.numNodes()), 0);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const bool inside = inSet[static_cast<std::size_t>(u)] &&
                        inSet[static_cast<std::size_t>(v)];
    if (!inside) continue;
    const int o = orientation[static_cast<std::size_t>(e)];
    if (o == 1) {
      ++outdeg[static_cast<std::size_t>(u)];
    } else if (o == -1) {
      ++outdeg[static_cast<std::size_t>(v)];
    } else {
      return -1;  // unoriented G[S] edge
    }
  }
  return *std::max_element(outdeg.begin(), outdeg.end());
}

bool isKOutdegreeDominatingSet(const Graph& g, const std::vector<bool>& inSet,
                               const EdgeOrientation& orientation, int k) {
  if (!isDominatingSet(g, inSet)) return false;
  const int out = inducedMaxOutdegree(g, inSet, orientation);
  return out >= 0 && out <= k;
}

EdgeOrientation orientInduced(const Graph& g, const std::vector<bool>& inSet) {
  requireSize(g, inSet);
  EdgeOrientation orientation(static_cast<std::size_t>(g.numEdges()), 0);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (inSet[static_cast<std::size_t>(u)] &&
        inSet[static_cast<std::size_t>(v)]) {
      orientation[static_cast<std::size_t>(e)] = u < v ? +1 : -1;
    }
  }
  return orientation;
}

}  // namespace relb::local
