// Direct verifiers for the concrete graph problems of the paper:
// independent sets, dominating sets, MIS, and k-(out)degree dominating sets
// (Section 1: a k-outdegree dominating set is a dominating set S together
// with an orientation of G[S] in which every node of S has outdegree at most
// k; for k = 0 both notions coincide with MIS).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "local/csr.hpp"
#include "local/graph.hpp"

namespace relb::local {

/// Orientation of the edges inside G[S]: for each edge id, +1 if oriented
/// from endpoint 0 to endpoint 1, -1 for the reverse, 0 if the edge is not
/// inside G[S] (ignored).
using EdgeOrientation = std::vector<int>;

[[nodiscard]] bool isIndependentSet(const Graph& g,
                                    const std::vector<bool>& inSet);

[[nodiscard]] bool isDominatingSet(const Graph& g,
                                   const std::vector<bool>& inSet);

/// Maximal independent set == independent + dominating.
[[nodiscard]] bool isMaximalIndependentSet(const Graph& g,
                                           const std::vector<bool>& inSet);

/// Maximum degree of the induced subgraph G[S].
[[nodiscard]] int inducedMaxDegree(const Graph& g,
                                   const std::vector<bool>& inSet);

/// k-degree dominating set: dominating and G[S] has max degree <= k.
[[nodiscard]] bool isKDegreeDominatingSet(const Graph& g,
                                          const std::vector<bool>& inSet,
                                          int k);

/// k-outdegree dominating set: dominating, every edge of G[S] oriented, and
/// every node of S has outdegree <= k.
[[nodiscard]] bool isKOutdegreeDominatingSet(const Graph& g,
                                             const std::vector<bool>& inSet,
                                             const EdgeOrientation& orientation,
                                             int k);

/// Maximum outdegree within G[S] under the given orientation; -1 if some
/// G[S] edge is unoriented.
[[nodiscard]] int inducedMaxOutdegree(const Graph& g,
                                      const std::vector<bool>& inSet,
                                      const EdgeOrientation& orientation);

/// Orients every G[S] edge (from the smaller to the larger node id; the
/// paper's remark after Corollary 2: a k-degree dominating set becomes a
/// k-outdegree dominating set under *any* orientation).
[[nodiscard]] EdgeOrientation orientInduced(const Graph& g,
                                            const std::vector<bool>& inSet);

// ---------------------------------------------------------------------------
// Per-node-state verifiers over the CSR layout (the massive-scale simulator's
// outputs; docs/simulator.md).  Each sweeps the vertex table in parallel --
// the verdict is a pure AND over per-node checks, so it is deterministic at
// every thread width -- and each check reads only the node's own slot and its
// neighbors' slots, exactly the locality a LOCAL-model checker is allowed.
// ---------------------------------------------------------------------------

/// No kIn vertex has a kIn neighbor, and no vertex is kUndecided.
[[nodiscard]] bool csrIsIndependentSet(const CsrGraph& g,
                                       std::span<const MisFlag> state,
                                       int numThreads);

/// Every kOut vertex has a kIn neighbor, and no vertex is kUndecided.
[[nodiscard]] bool csrIsDominatingSet(const CsrGraph& g,
                                      std::span<const MisFlag> state,
                                      int numThreads);

/// Independent + dominating.
[[nodiscard]] bool csrIsMaximalIndependentSet(const CsrGraph& g,
                                              std::span<const MisFlag> state,
                                              int numThreads);

/// Colors are < numColors and no edge is monochromatic.
[[nodiscard]] bool csrIsProperColoring(const CsrGraph& g,
                                       std::span<const std::uint32_t> colors,
                                       std::uint32_t numColors,
                                       int numThreads);

/// The Section 1.1 reduction's certificate: members dominate themselves,
/// every non-member's `dominator` is an adjacent member, and G[S] is
/// edgeless -- so the (empty) orientation has outdegree 0, making `inSet` a
/// 0-outdegree (hence k-outdegree, for every k >= 0) dominating set.
[[nodiscard]] bool csrIsZeroOutdegreeDominatingSet(
    const CsrGraph& g, std::span<const std::uint8_t> inSet,
    std::span<const Vertex> dominator, int numThreads);

}  // namespace relb::local
