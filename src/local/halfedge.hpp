// Half-edge labelings and the generic locally-checkable-labeling checker.
//
// A solution of a problem in the round-elimination formalism assigns a label
// to every (node, incident edge) pair; we store one label per (node, port).
// The checker verifies the node constraint at every node of full degree and
// the edge constraint at every edge, reporting all violations.
#pragma once

#include <string>
#include <vector>

#include "local/graph.hpp"
#include "re/problem.hpp"

namespace relb::local {

/// Labels on half-edges, indexed by (node, port).
class HalfEdgeLabeling {
 public:
  explicit HalfEdgeLabeling(const Graph& g);

  [[nodiscard]] re::Label at(NodeId v, Port p) const {
    return labels_[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
  }
  void set(NodeId v, Port p, re::Label l) {
    labels_[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)] = l;
  }

  /// Label this node put on the half-edge towards edge `e`.
  [[nodiscard]] re::Label atEdge(const Graph& g, NodeId v, EdgeId e) const {
    return at(v, g.portOf(v, e));
  }

  [[nodiscard]] const std::vector<re::Label>& node(NodeId v) const {
    return labels_[static_cast<std::size_t>(v)];
  }

 private:
  std::vector<std::vector<re::Label>> labels_;
};

struct CheckOptions {
  /// Check the node constraint only at nodes whose degree equals the
  /// problem's Delta (finite trees have boundary nodes of smaller degree; the
  /// round-elimination guarantees only concern full-degree nodes).
  bool fullDegreeNodesOnly = true;
  /// Stop after this many recorded violations.
  int maxViolations = 16;
};

struct CheckResult {
  int nodeViolations = 0;
  int edgeViolations = 0;
  std::vector<std::string> messages;

  [[nodiscard]] bool ok() const {
    return nodeViolations == 0 && edgeViolations == 0;
  }
};

/// Verifies `labeling` against `problem` on `g`.
[[nodiscard]] CheckResult checkLabeling(const Graph& g,
                                        const re::Problem& problem,
                                        const HalfEdgeLabeling& labeling,
                                        const CheckOptions& options = {});

}  // namespace relb::local
