#include "local/kernels.hpp"

#include <algorithm>
#include <bit>

#include "obs/trace.hpp"
#include "re/types.hpp"
#include "util/thread_pool.hpp"

namespace relb::local {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// (priority, id) lexicographic win for v over w.
bool beats(std::uint64_t pv, Vertex v, std::uint64_t pw, Vertex w) {
  return pv != pw ? pv > pw : v > w;
}

}  // namespace

std::uint64_t lubyPriority(std::uint64_t seed, int round, Vertex v) {
  return splitmix64(seed ^ (static_cast<std::uint64_t>(round) << 32) ^ v);
}

Frontier lubyMisRound(const CsrGraph& g, const Frontier& frontier,
                      std::vector<MisFlag>& state,
                      std::vector<std::uint8_t>& inMark, std::uint64_t seed,
                      int round, int numThreads) {
  if (state.size() != g.numNodes() || inMark.size() != g.numNodes()) {
    throw re::Error("lubyMisRound: state arrays must have one slot per node");
  }
  // Phase 1: mark local maxima.  Reads round-start `state` only; writes
  // inMark[v] from the lane owning v.
  forBlocks(frontier.size(), numThreads, [&](std::size_t, std::size_t begin,
                                             std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const Vertex v = frontier[i];
      const std::uint64_t pv = lubyPriority(seed, round, v);
      std::uint8_t in = 1;
      for (const Vertex w : g.neighbors(v)) {
        if (state[w] != MisFlag::kUndecided) continue;
        if (!beats(pv, v, lubyPriority(seed, round, w), w)) {
          in = 0;
          break;
        }
      }
      inMark[v] = in;
    }
  });

  // Phase 2: commit kIn/kOut and collect survivors.  Reads ONLY inMark
  // (fixed since phase 1's barrier -- reading `state` here would race with
  // the commits below); writes state[v] from the lane owning v.  A stale
  // inMark[w] = 1 from an earlier round would mean w is already kIn, which
  // the frontier invariant (no survivor has a kIn neighbor) rules out.
  std::vector<Frontier> perBlock(numBlocks(frontier.size()));
  forBlocks(frontier.size(), numThreads, [&](std::size_t b, std::size_t begin,
                                             std::size_t end) {
    Frontier& out = perBlock[b];
    for (std::size_t i = begin; i < end; ++i) {
      const Vertex v = frontier[i];
      if (inMark[v] != 0) {
        state[v] = MisFlag::kIn;
        continue;
      }
      bool dominated = false;
      for (const Vertex w : g.neighbors(v)) {
        if (inMark[w] != 0) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        state[v] = MisFlag::kOut;
      } else {
        out.push_back(v);
      }
    }
  });
  return mergeBlocks(perBlock);
}

MisRun lubyMis(const CsrGraph& g, std::uint64_t seed, int numThreads,
               const RoundHook& hook) {
  MisRun run;
  run.state.assign(g.numNodes(), MisFlag::kUndecided);
  std::vector<std::uint8_t> inMark(g.numNodes(), 0);
  Frontier frontier = fullFrontier(g.numNodes());
  while (!frontier.empty()) {
    obs::ScopedSpan span("local.round.luby");
    const std::uint64_t active = frontier.size();
    frontier = lubyMisRound(g, frontier, run.state, inMark, seed, run.rounds,
                            numThreads);
    if (hook) hook(run.rounds, active);
    ++run.rounds;
  }
  run.misSize = util::parallel_reduce<std::uint64_t>(
      numThreads, g.numNodes(), 0,
      [&](std::size_t begin, std::size_t end) {
        std::uint64_t count = 0;
        for (std::size_t v = begin; v < end; ++v) {
          if (run.state[v] == MisFlag::kIn) ++count;
        }
        return count;
      },
      [](std::uint64_t acc, std::uint64_t part) { return acc + part; });
  return run;
}

void cvColorRound(const CsrGraph& g, std::span<const Vertex> parents,
                  std::span<const std::uint32_t> cur,
                  std::span<std::uint32_t> next, int numThreads) {
  forBlocks(g.numNodes(), numThreads, [&](std::size_t, std::size_t begin,
                                          std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const Vertex v = static_cast<Vertex>(i);
      const std::uint32_t mine = cur[v];
      // The root compares against a virtual parent differing in bit 0, so
      // the same map applies everywhere.
      const std::uint32_t theirs = parents[v] == v ? mine ^ 1u : cur[parents[v]];
      const std::uint32_t diff = mine ^ theirs;
      const std::uint32_t bit =
          static_cast<std::uint32_t>(std::countr_zero(diff));
      next[v] = 2 * bit + ((mine >> bit) & 1u);
    }
  });
}

ColorRun treeColorReduce(const CsrGraph& g, std::span<const Vertex> parents,
                         int numThreads, const RoundHook& hook) {
  if (parents.size() != g.numNodes()) {
    throw re::Error("treeColorReduce: parents must have one slot per node");
  }
  const Vertex n = g.numNodes();
  ColorRun run;
  run.colors.resize(n);
  for (Vertex v = 0; v < n; ++v) run.colors[v] = v;  // the id-coloring
  std::vector<std::uint32_t> next(n);

  const auto maxColor = [&](const std::vector<std::uint32_t>& colors) {
    return util::parallel_reduce<std::uint32_t>(
        numThreads, n, 0,
        [&](std::size_t begin, std::size_t end) {
          std::uint32_t best = 0;
          for (std::size_t v = begin; v < end; ++v) {
            best = std::max(best, colors[v]);
          }
          return best;
        },
        [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
  };

  const auto endRound = [&](std::uint64_t active) {
    run.colors.swap(next);
    if (hook) hook(run.rounds, active);
    ++run.rounds;
  };

  // Cole-Vishkin until <= 6 colors (values 0..5): log* n + O(1) rounds.
  while (maxColor(run.colors) > 5) {
    obs::ScopedSpan span("local.round.cv");
    cvColorRound(g, parents, run.colors, next, numThreads);
    endRound(n);
  }

  // Remove the classes 5, 4, 3, each with a shift-down round (children
  // adopt the parent's color; the root picks the smallest of {0,1,2} not
  // equal to its own) followed by a recolor round in which the -- now
  // independent, sibling-aligned -- class picks the smallest color of
  // {0,1,2} unused by its parent and its (monochromatic) children.
  for (std::uint32_t target = 5; target >= 3; --target) {
    {
      obs::ScopedSpan span("local.round.shift_down");
      forBlocks(n, numThreads, [&](std::size_t, std::size_t begin,
                                   std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const Vertex v = static_cast<Vertex>(i);
          if (parents[v] == v) {
            next[v] = run.colors[v] == 0 ? 1 : 0;
          } else {
            next[v] = run.colors[parents[v]];
          }
        }
      });
      endRound(n);
    }
    {
      obs::ScopedSpan span("local.round.recolor");
      forBlocks(n, numThreads, [&](std::size_t, std::size_t begin,
                                   std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const Vertex v = static_cast<Vertex>(i);
          if (run.colors[v] != target) {
            next[v] = run.colors[v];
            continue;
          }
          bool used[3] = {false, false, false};
          if (parents[v] != v && run.colors[parents[v]] < 3) {
            used[run.colors[parents[v]]] = true;
          }
          for (const Vertex w : g.neighbors(v)) {
            if (w == parents[v]) continue;  // children only
            if (run.colors[w] < 3) used[run.colors[w]] = true;
          }
          std::uint32_t pick = 0;
          while (pick < 3 && used[pick]) ++pick;
          next[v] = pick;
        }
      });
      endRound(n);
    }
  }

  run.numColors = maxColor(run.colors) + 1;
  return run;
}

DomsetRun domsetFromMis(const CsrGraph& g, std::span<const MisFlag> mis,
                        int numThreads, const RoundHook& hook) {
  if (mis.size() != g.numNodes()) {
    throw re::Error("domsetFromMis: state must have one slot per node");
  }
  const Vertex n = g.numNodes();
  DomsetRun run;
  run.inSet.assign(n, 0);
  run.dominator.assign(n, kInvalidVertex);
  obs::ScopedSpan span("local.round.domset");
  forBlocks(n, numThreads, [&](std::size_t, std::size_t begin,
                               std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const Vertex v = static_cast<Vertex>(i);
      if (mis[v] == MisFlag::kIn) {
        run.inSet[v] = 1;
        run.dominator[v] = v;
        continue;
      }
      for (const Vertex w : g.neighbors(v)) {
        if (mis[w] == MisFlag::kIn) {
          run.dominator[v] = w;  // first MIS neighbor in port order
          break;
        }
      }
    }
  });
  if (hook) hook(0, n);
  run.rounds = 1;
  run.setSize = util::parallel_reduce<std::uint64_t>(
      numThreads, n, 0,
      [&](std::size_t begin, std::size_t end) {
        std::uint64_t count = 0;
        for (std::size_t v = begin; v < end; ++v) count += run.inSet[v];
        return count;
      },
      [](std::uint64_t acc, std::uint64_t part) { return acc + part; });
  return run;
}

}  // namespace relb::local
