// Frontier semantics and the blocked-range fan-out the round kernels share.
//
// A frontier is the sorted list of vertices still active for a kernel (for
// Luby's MIS: still UNDECIDED).  Round kernels are functions
// frontier -> frontier: they read only round-start state, write each vertex's
// slots exclusively from the lane that owns it, and assemble the next
// frontier from per-block accumulators merged in block order.
//
// Determinism contract (pinned by tests/local/sim_parallel_test.cpp and the
// TSan CI job): the block size is a compile-time constant, so block
// boundaries -- unlike the width-dependent chunking of parallel_reduce --
// are the same at every thread width.  Blocks are claimed dynamically by
// util::parallel_for, but each block writes only its own slot and the merge
// walks slots in block order on the calling thread, so kernel output is
// bit-identical for numThreads = 1, 2, 8, ... by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "local/csr.hpp"
#include "util/thread_pool.hpp"

namespace relb::local {

/// Sorted (ascending) vertex ids active in the next round.
using Frontier = std::vector<Vertex>;

/// Every vertex, the round-0 frontier of a full-graph kernel.
[[nodiscard]] inline Frontier fullFrontier(Vertex numNodes) {
  Frontier f(numNodes);
  for (Vertex v = 0; v < numNodes; ++v) f[v] = v;
  return f;
}

/// Items per block.  Large enough that the per-block std::function dispatch
/// of the pool amortizes to noise, small enough that a 10^6-node frontier
/// still fans out over ~100 blocks.
inline constexpr std::size_t kFrontierBlockSize = std::size_t{1} << 13;

[[nodiscard]] inline std::size_t numBlocks(std::size_t items) {
  return (items + kFrontierBlockSize - 1) / kFrontierBlockSize;
}

/// Runs fn(block, begin, end) over the fixed-size blocks of [0, items) on up
/// to numThreads lanes.  Block boundaries depend only on `items`.
template <typename Fn>
void forBlocks(std::size_t items, int numThreads, Fn&& fn) {
  const std::size_t blocks = numBlocks(items);
  util::parallel_for(numThreads, blocks, [&](std::size_t b) {
    const std::size_t begin = b * kFrontierBlockSize;
    const std::size_t end =
        begin + kFrontierBlockSize < items ? begin + kFrontierBlockSize : items;
    fn(b, begin, end);
  });
}

/// Concatenates per-block accumulators in block order.  Because block b only
/// collects vertices from its own contiguous, ascending slice of the current
/// frontier, the result is globally sorted -- and independent of how blocks
/// were scheduled.
[[nodiscard]] inline Frontier mergeBlocks(
    std::vector<Frontier>& perBlock) {
  std::size_t total = 0;
  for (const Frontier& part : perBlock) total += part.size();
  Frontier out;
  out.reserve(total);
  for (Frontier& part : perBlock) {
    out.insert(out.end(), part.begin(), part.end());
    part.clear();
  }
  return out;
}

}  // namespace relb::local
