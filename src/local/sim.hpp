// The massive-scale LOCAL simulation driver: family + algorithm -> one
// instrumented, verified, checksummed run.
//
// runSim is the single entry point behind examples/relb_localsim.cpp and
// the simulator CI job: it generates the instance (local/families.hpp),
// executes the chosen kernel (local/kernels.hpp), verifies the per-node
// output with the CSR verifiers (local/verify.hpp), and reports the
// measured LOCAL round count -- the number the gap figure
// (tools/gap_figure.py) joins against the engine-certified lower bounds.
//
// Observability: the three phases emit the root spans local.build /
// local.algo / local.verify; every kernel round ticks the counters
// local.rounds.total and local.frontier.processed and (when a sink is
// attached) a local.frontier tracer counter sample, and the instance shape
// lands in the local.nodes / local.half_edges / local.max_degree gauges.
// docs/observability.md lists the taxonomy; docs/simulator.md the contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "local/families.hpp"

namespace relb::local {

enum class Algo {
  kLubyMis,         // Luby's randomized MIS, O(log n) rounds whp
  kColorReduction,  // CV + shift-down to a proper 3-coloring, log* n + O(1)
  kDomsetReduction, // Luby MIS + the one-round Section 1.1 domset reduction
};

[[nodiscard]] std::optional<Algo> algoFromName(std::string_view name);
[[nodiscard]] const char* algoName(Algo algo);

struct SimOptions {
  Family family = Family::kRandomTree;
  std::uint64_t nodes = 1'000'000;
  /// 0 = family default (families.hpp).
  std::uint32_t maxDegree = 0;
  Algo algo = Algo::kLubyMis;
  std::uint64_t seed = 1;
  /// Thread-pool width: 0 = one lane per core, 1 = serial (the repo-wide
  /// convention).  Purely a performance knob -- output is bit-identical.
  int numThreads = 0;
  /// Run the CSR verifier over the final state (skippable for benchmarks).
  bool verify = true;
};

struct SimResult {
  std::uint64_t nodes = 0;
  std::uint64_t halfEdges = 0;
  std::uint32_t maxDegree = 0;
  std::size_t graphBytes = 0;  // CSR layout bytes (offsets + neighbors)

  /// Measured LOCAL rounds of the algorithm (for the domset reduction:
  /// the MIS rounds plus the one reduction round).
  int rounds = 0;
  /// MIS / dominating-set size; for color reduction, the number of colors.
  std::uint64_t solutionSize = 0;
  /// True when options.verify was set and the verifier accepted (always
  /// false when verification was skipped).
  bool verified = false;

  /// FNV-1a over the final per-node output (MIS flags, colors, or
  /// inSet + dominator).  Equal checksums across thread widths are the
  /// cheap bit-identity witness the CI smoke and the parallel tests use.
  std::uint64_t stateChecksum = 0;

  /// One-line human summary (the CLI prints it plus the shape lines).
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] SimResult runSim(const SimOptions& options);

}  // namespace relb::local
