#include "local/graph.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>

#include "re/types.hpp"

namespace relb::local {

Graph::Graph(NodeId numNodes) : adj_(static_cast<std::size_t>(numNodes)) {
  if (numNodes < 1) throw re::Error("Graph: need at least one node");
}

EdgeId Graph::addEdge(NodeId u, NodeId v) {
  if (u < 0 || v < 0 || u >= numNodes() || v >= numNodes() || u == v) {
    throw re::Error("Graph::addEdge: bad endpoints");
  }
  const EdgeId e = numEdges();
  edges_.emplace_back(u, v);
  adj_[static_cast<std::size_t>(u)].push_back({v, e});
  adj_[static_cast<std::size_t>(v)].push_back({u, e});
  return e;
}

int Graph::maxDegree() const {
  int d = 0;
  for (const auto& list : adj_) d = std::max(d, static_cast<int>(list.size()));
  return d;
}

Port Graph::portOf(NodeId v, EdgeId e) const {
  const auto& list = adj_[static_cast<std::size_t>(v)];
  for (std::size_t p = 0; p < list.size(); ++p) {
    if (list[p].edge == e) return static_cast<Port>(p);
  }
  throw re::Error("Graph::portOf: node not incident to edge");
}

void Graph::setEdgeColors(std::vector<int> colors) {
  if (colors.size() != edges_.size()) {
    throw re::Error("Graph::setEdgeColors: size mismatch");
  }
  edgeColor_ = std::move(colors);
}

int Graph::properEdgeColorGreedy() {
  edgeColor_.assign(edges_.size(), -1);
  // Process edges in BFS order from node 0 (covers all components); on trees
  // this guarantees at most maxDegree colors.
  std::vector<bool> visited(static_cast<std::size_t>(numNodes()), false);
  std::vector<EdgeId> order;
  order.reserve(edges_.size());
  for (NodeId start = 0; start < numNodes(); ++start) {
    if (visited[static_cast<std::size_t>(start)]) continue;
    std::deque<NodeId> queue{start};
    visited[static_cast<std::size_t>(start)] = true;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const HalfEdge& he : neighbors(v)) {
        if (!visited[static_cast<std::size_t>(he.neighbor)]) {
          visited[static_cast<std::size_t>(he.neighbor)] = true;
          order.push_back(he.edge);
          queue.push_back(he.neighbor);
        }
      }
    }
  }
  // Non-tree edges (not reached via BFS-tree discovery) get appended.
  std::vector<bool> inOrder(edges_.size(), false);
  for (EdgeId e : order) inOrder[static_cast<std::size_t>(e)] = true;
  for (EdgeId e = 0; e < numEdges(); ++e) {
    if (!inOrder[static_cast<std::size_t>(e)]) order.push_back(e);
  }

  int numColors = 0;
  for (EdgeId e : order) {
    const auto [u, v] = endpoints(e);
    std::vector<bool> used(static_cast<std::size_t>(2 * maxDegree()), false);
    for (const HalfEdge& he : neighbors(u)) {
      const int c = edgeColor_[static_cast<std::size_t>(he.edge)];
      if (c >= 0) used[static_cast<std::size_t>(c)] = true;
    }
    for (const HalfEdge& he : neighbors(v)) {
      const int c = edgeColor_[static_cast<std::size_t>(he.edge)];
      if (c >= 0) used[static_cast<std::size_t>(c)] = true;
    }
    int color = 0;
    while (used[static_cast<std::size_t>(color)]) ++color;
    edgeColor_[static_cast<std::size_t>(e)] = color;
    numColors = std::max(numColors, color + 1);
  }
  return numColors;
}

bool Graph::edgeColoringIsProper(int numColors) const {
  if (!hasEdgeColoring()) return false;
  if (edges_.empty()) return true;
  for (int c : edgeColor_) {
    if (c < 0 || c >= numColors) return false;
  }
  for (NodeId v = 0; v < numNodes(); ++v) {
    std::vector<bool> seen(static_cast<std::size_t>(numColors), false);
    for (const HalfEdge& he : neighbors(v)) {
      const int c = edgeColor_[static_cast<std::size_t>(he.edge)];
      if (seen[static_cast<std::size_t>(c)]) return false;
      seen[static_cast<std::size_t>(c)] = true;
    }
  }
  return true;
}

void Graph::shufflePorts(std::mt19937& rng) {
  for (auto& list : adj_) {
    std::shuffle(list.begin(), list.end(), rng);
  }
}

bool Graph::isTree() const {
  if (numEdges() != numNodes() - 1) return false;
  std::vector<bool> visited(static_cast<std::size_t>(numNodes()), false);
  std::deque<NodeId> queue{0};
  visited[0] = true;
  NodeId reached = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const HalfEdge& he : neighbors(v)) {
      if (!visited[static_cast<std::size_t>(he.neighbor)]) {
        visited[static_cast<std::size_t>(he.neighbor)] = true;
        ++reached;
        queue.push_back(he.neighbor);
      }
    }
  }
  return reached == numNodes();
}

int Graph::girth() const {
  int best = -1;
  // BFS from every node; a non-tree edge at depths (d1, d2) closes a cycle
  // of length d1 + d2 + 1.
  for (NodeId start = 0; start < numNodes(); ++start) {
    std::vector<int> dist(static_cast<std::size_t>(numNodes()), -1);
    std::vector<EdgeId> parentEdge(static_cast<std::size_t>(numNodes()), -1);
    std::deque<NodeId> queue{start};
    dist[static_cast<std::size_t>(start)] = 0;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (const HalfEdge& he : neighbors(v)) {
        if (he.edge == parentEdge[static_cast<std::size_t>(v)]) continue;
        if (dist[static_cast<std::size_t>(he.neighbor)] < 0) {
          dist[static_cast<std::size_t>(he.neighbor)] =
              dist[static_cast<std::size_t>(v)] + 1;
          parentEdge[static_cast<std::size_t>(he.neighbor)] = he.edge;
          queue.push_back(he.neighbor);
        } else {
          const int cycle = dist[static_cast<std::size_t>(v)] +
                            dist[static_cast<std::size_t>(he.neighbor)] + 1;
          if (best < 0 || cycle < best) best = cycle;
        }
      }
    }
  }
  return best;
}

Graph completeRegularTree(int delta, int depth) {
  if (delta < 2 || depth < 0) {
    throw re::Error("completeRegularTree: bad parameters");
  }
  // Count nodes level by level.
  std::vector<NodeId> levelSize{1};
  for (int d = 1; d <= depth; ++d) {
    levelSize.push_back(d == 1 ? delta
                               : levelSize.back() * (delta - 1));
  }
  const NodeId total = std::accumulate(levelSize.begin(), levelSize.end(), 0);
  Graph g(total);
  std::vector<int> colors;
  // BFS construction; track each node's parent-edge color to avoid reuse.
  struct Pending {
    NodeId node;
    int level;
    int parentColor;  // -1 for root
  };
  std::deque<Pending> queue{{0, 0, -1}};
  NodeId next = 1;
  while (!queue.empty()) {
    const auto [v, level, parentColor] = queue.front();
    queue.pop_front();
    if (level == depth) continue;
    const int children = (level == 0) ? delta : delta - 1;
    int color = 0;
    for (int i = 0; i < children; ++i) {
      if (color == parentColor) ++color;
      const NodeId child = next++;
      const EdgeId e = g.addEdge(v, child);
      assert(e == static_cast<EdgeId>(colors.size()));
      (void)e;
      colors.push_back(color);
      queue.push_back({child, level + 1, color});
      ++color;
    }
  }
  assert(next == total);
  g.setEdgeColors(std::move(colors));
  return g;
}

Graph randomTree(NodeId n, int maxDegree, std::mt19937& rng) {
  if (n < 1 || maxDegree < 2) throw re::Error("randomTree: bad parameters");
  Graph g(n);
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  for (NodeId v = 1; v < n; ++v) {
    // Pick an earlier node with spare degree uniformly at random.
    std::vector<NodeId> candidates;
    for (NodeId u = 0; u < v; ++u) {
      if (degree[static_cast<std::size_t>(u)] < maxDegree) {
        candidates.push_back(u);
      }
    }
    if (candidates.empty()) throw re::Error("randomTree: degree cap too low");
    std::uniform_int_distribution<std::size_t> dist(0, candidates.size() - 1);
    const NodeId u = candidates[dist(rng)];
    g.addEdge(u, v);
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  g.properEdgeColorGreedy();
  return g;
}

Graph pathGraph(NodeId n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.addEdge(v, v + 1);
  g.properEdgeColorGreedy();
  return g;
}

Graph cycleGraph(NodeId n) {
  if (n < 3) throw re::Error("cycleGraph: need n >= 3");
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.addEdge(v, (v + 1) % n);
  g.properEdgeColorGreedy();
  return g;
}

Graph starGraph(NodeId leaves) {
  if (leaves < 1) throw re::Error("starGraph: need at least one leaf");
  Graph g(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) g.addEdge(0, v);
  g.properEdgeColorGreedy();
  return g;
}

Graph broomGraph(NodeId handle, NodeId bristles) {
  if (handle < 1 || bristles < 1) throw re::Error("broomGraph: bad sizes");
  Graph g(handle + bristles);
  for (NodeId v = 0; v + 1 < handle; ++v) g.addEdge(v, v + 1);
  for (NodeId b = 0; b < bristles; ++b) g.addEdge(handle - 1, handle + b);
  g.properEdgeColorGreedy();
  return g;
}

Graph symmetricPortGadget(int delta) {
  if (delta < 2) throw re::Error("symmetricPortGadget: delta >= 2 required");
  // K_{delta,delta}: left nodes 0..delta-1, right nodes delta..2delta-1.
  // Edge {left i, right j} has color (i + j) mod delta; adding edges in
  // color-major order makes every node's port p carry the edge of color p at
  // both endpoints.
  Graph g(2 * delta);
  std::vector<int> colors;
  for (int c = 0; c < delta; ++c) {
    for (int i = 0; i < delta; ++i) {
      const int j = ((c - i) % delta + delta) % delta;
      g.addEdge(i, delta + j);
      colors.push_back(c);
    }
  }
  g.setEdgeColors(std::move(colors));
  return g;
}

}  // namespace relb::local
