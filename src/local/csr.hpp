// Compact CSR adjacency for the massive-scale LOCAL simulator.
//
// The pointer-per-node Graph in local/graph.hpp is the right tool for
// gadget-sized port-numbering arguments; at 10^7-10^8 nodes its
// vector-of-vectors layout costs ~50 bytes/half-edge and a cache miss per
// hop.  CsrGraph stores the same undirected topology as two flat arrays --
// `offsets` (numNodes + 1 entries) and `neighbors` (one entry per
// half-edge) -- both uint32_t, allocated in one util::Arena so construction
// touches malloc a constant number of times and teardown is a single free.
//
// Memory math (tree on n nodes, so 2(n-1) half-edges):
//   offsets   4(n+1) bytes
//   neighbors 8(n-1) bytes        -> ~12 bytes/node, ~1.2 GiB at n = 10^8.
//
// Limits, enforced at build time: numNodes < 2^32 - 1 and
// numHalfEdges <= 2^32 - 1, so uint32_t offsets always suffice (a tree on
// the full 2^32 - 2 nodes still fits).
//
// Neighbor order is part of the determinism contract (docs/simulator.md):
// `fromParents` stores each node's parent first, then its children in
// increasing id order; `fromEdges` appends in edge enumeration order.  The
// frontier kernels never depend on the order, but tests and the CV color
// reduction may.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/arena.hpp"

namespace relb::local {

/// Vertex id in the CSR layout (distinct from the gadget-sized NodeId,
/// which stays int32_t for the port-numbering code).
using Vertex = std::uint32_t;

inline constexpr Vertex kInvalidVertex = 0xffffffffu;

/// Per-node solution state shared by the frontier kernels and the CSR
/// verifiers, in the style of the FAM mis_kernel's MatchFlag table.
enum class MisFlag : std::uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds the CSR form of the tree encoded by `parents`:
  /// parents[0] == 0 (node 0 is the root) and parents[v] < v for v > 0.
  /// Neighbor lists come out as [parent, children ascending].
  [[nodiscard]] static CsrGraph fromParents(std::span<const Vertex> parents);

  /// Builds from an explicit undirected edge list (gadgets, tests).
  /// Neighbor lists follow edge enumeration order.
  [[nodiscard]] static CsrGraph fromEdges(
      Vertex numNodes, std::span<const std::pair<Vertex, Vertex>> edges);

  [[nodiscard]] Vertex numNodes() const { return numNodes_; }
  [[nodiscard]] std::uint64_t numHalfEdges() const {
    return numNodes_ == 0 ? 0 : offsets_[numNodes_];
  }
  [[nodiscard]] std::uint32_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return {neighbors_ + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  [[nodiscard]] std::uint32_t maxDegree() const { return maxDegree_; }

  /// Exact bytes of the two CSR arrays (the quantity docs/simulator.md's
  /// memory math predicts; the arena may hold slightly more).
  [[nodiscard]] std::size_t layoutBytes() const {
    return sizeof(std::uint32_t) * (static_cast<std::size_t>(numNodes_) + 1) +
           sizeof(Vertex) * static_cast<std::size_t>(numHalfEdges());
  }
  /// Bytes actually owned by the backing arena.
  [[nodiscard]] std::size_t arenaBytes() const {
    return arena_ ? arena_->capacityBytes() : 0;
  }

 private:
  CsrGraph(std::unique_ptr<util::Arena> arena, const std::uint32_t* offsets,
           const Vertex* neighbors, Vertex numNodes, std::uint32_t maxDegree)
      : arena_(std::move(arena)),
        offsets_(offsets),
        neighbors_(neighbors),
        numNodes_(numNodes),
        maxDegree_(maxDegree) {}

  std::unique_ptr<util::Arena> arena_;
  const std::uint32_t* offsets_ = nullptr;  // numNodes_ + 1 entries
  const Vertex* neighbors_ = nullptr;       // offsets_[numNodes_] entries
  Vertex numNodes_ = 0;
  std::uint32_t maxDegree_ = 0;
};

}  // namespace relb::local
