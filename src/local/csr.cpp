#include "local/csr.hpp"

#include <algorithm>

#include "re/types.hpp"

namespace relb::local {

namespace {

struct CsrArrays {
  std::unique_ptr<util::Arena> arena;
  std::uint32_t* offsets = nullptr;
  Vertex* neighbors = nullptr;
};

/// One arena sized for the whole layout up front, so construction performs
/// exactly one chunk allocation.
CsrArrays allocateArrays(Vertex numNodes, std::uint64_t halfEdges) {
  CsrArrays out;
  const std::size_t bytes =
      sizeof(std::uint32_t) * (static_cast<std::size_t>(numNodes) + 1) +
      sizeof(Vertex) * static_cast<std::size_t>(halfEdges) + 64;
  out.arena = std::make_unique<util::Arena>(bytes);
  out.offsets = out.arena->allocate<std::uint32_t>(
      static_cast<std::size_t>(numNodes) + 1);
  out.neighbors =
      out.arena->allocate<Vertex>(static_cast<std::size_t>(halfEdges));
  return out;
}

/// Turns per-node degrees (stored in offsets[1..n]) into the exclusive
/// prefix-sum offset table and returns the half-edge total.
std::uint64_t prefixSum(std::uint32_t* offsets, Vertex numNodes) {
  std::uint64_t total = 0;
  offsets[0] = 0;
  for (Vertex v = 0; v < numNodes; ++v) {
    total += offsets[v + 1];
    if (total > 0xffffffffull) {
      throw re::Error("CsrGraph: more than 2^32 - 1 half-edges");
    }
    offsets[v + 1] = static_cast<std::uint32_t>(total);
  }
  return total;
}

std::uint32_t maxDegreeOf(const std::uint32_t* offsets, Vertex numNodes) {
  std::uint32_t best = 0;
  for (Vertex v = 0; v < numNodes; ++v) {
    best = std::max(best, offsets[v + 1] - offsets[v]);
  }
  return best;
}

}  // namespace

CsrGraph CsrGraph::fromParents(std::span<const Vertex> parents) {
  if (parents.empty()) throw re::Error("CsrGraph: need at least one node");
  if (parents.size() >= static_cast<std::size_t>(kInvalidVertex)) {
    throw re::Error("CsrGraph: too many nodes for uint32 ids");
  }
  const Vertex n = static_cast<Vertex>(parents.size());
  if (parents[0] != 0) {
    throw re::Error("CsrGraph: parents[0] must be 0 (node 0 is the root)");
  }
  for (Vertex v = 1; v < n; ++v) {
    if (parents[v] >= v) {
      throw re::Error("CsrGraph: parents[v] < v required for v > 0");
    }
  }

  CsrArrays arrays = allocateArrays(n, 2 * (static_cast<std::uint64_t>(n) - 1));
  std::uint32_t* offsets = arrays.offsets;

  // Degree count into offsets[1..n], then exclusive prefix sum.
  std::fill(offsets, offsets + n + 1, 0u);
  for (Vertex v = 1; v < n; ++v) {
    ++offsets[v + 1];
    ++offsets[parents[v] + 1];
  }
  prefixSum(offsets, n);

  // Fill in ascending v order: node u receives its parent entry at v == u
  // and its children at v > u in increasing order, which yields the
  // documented [parent, children ascending] neighbor layout.
  std::vector<std::uint32_t> cursor(offsets, offsets + n);
  for (Vertex v = 1; v < n; ++v) {
    const Vertex p = parents[v];
    arrays.neighbors[cursor[v]++] = p;
    arrays.neighbors[cursor[p]++] = v;
  }

  const std::uint32_t maxDeg = maxDegreeOf(offsets, n);
  return CsrGraph(std::move(arrays.arena), offsets, arrays.neighbors, n,
                  maxDeg);
}

CsrGraph CsrGraph::fromEdges(Vertex numNodes,
                             std::span<const std::pair<Vertex, Vertex>> edges) {
  if (numNodes == 0) throw re::Error("CsrGraph: need at least one node");
  if (numNodes == kInvalidVertex) {
    throw re::Error("CsrGraph: too many nodes for uint32 ids");
  }
  for (const auto& [u, v] : edges) {
    if (u >= numNodes || v >= numNodes || u == v) {
      throw re::Error("CsrGraph::fromEdges: bad endpoints");
    }
  }

  CsrArrays arrays = allocateArrays(numNodes, 2 * edges.size());
  std::uint32_t* offsets = arrays.offsets;
  std::fill(offsets, offsets + numNodes + 1, 0u);
  for (const auto& [u, v] : edges) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  prefixSum(offsets, numNodes);

  std::vector<std::uint32_t> cursor(offsets, offsets + numNodes);
  for (const auto& [u, v] : edges) {
    arrays.neighbors[cursor[u]++] = v;
    arrays.neighbors[cursor[v]++] = u;
  }

  const std::uint32_t maxDeg = maxDegreeOf(offsets, numNodes);
  return CsrGraph(std::move(arrays.arena), offsets, arrays.neighbors, numNodes,
                  maxDeg);
}

}  // namespace relb::local
