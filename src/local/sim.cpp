#include "local/sim.hpp"

#include <cstdio>
#include <functional>
#include <span>

#include "local/kernels.hpp"
#include "local/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "re/types.hpp"
#include "util/thread_pool.hpp"

namespace relb::local {

namespace {

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t hash = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

template <typename T>
std::uint64_t checksumSpan(std::span<const T> values, std::uint64_t hash) {
  return fnv1a64(values.data(), values.size() * sizeof(T), hash);
}

}  // namespace

std::optional<Algo> algoFromName(std::string_view name) {
  if (name == "luby-mis") return Algo::kLubyMis;
  if (name == "color-reduction") return Algo::kColorReduction;
  if (name == "domset-reduction") return Algo::kDomsetReduction;
  return std::nullopt;
}

const char* algoName(Algo algo) {
  switch (algo) {
    case Algo::kLubyMis: return "luby-mis";
    case Algo::kColorReduction: return "color-reduction";
    case Algo::kDomsetReduction: return "domset-reduction";
  }
  return "?";
}

std::string SimResult::summary() const {
  std::string out = "rounds: " + std::to_string(rounds) +
                    "  solution-size: " + std::to_string(solutionSize) +
                    "  verified: ";
  out += verified ? "yes" : "skipped";
  char hex[32];
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(stateChecksum));
  out += "\nstate-checksum: ";
  out += hex;
  return out;
}

SimResult runSim(const SimOptions& options) {
  auto& registry = obs::Registry::global();
  auto& tracer = obs::Tracer::global();
  obs::Counter& roundsTotal = registry.counter("local.rounds.total");
  obs::Counter& frontierProcessed =
      registry.counter("local.frontier.processed");

  SimResult result;

  TreeInstance instance;
  {
    obs::ScopedSpan span("local.build");
    instance = makeTree(options.family, options.nodes, options.maxDegree,
                        options.seed);
  }
  const CsrGraph& g = instance.graph;
  result.nodes = g.numNodes();
  result.halfEdges = g.numHalfEdges();
  result.maxDegree = g.maxDegree();
  result.graphBytes = g.layoutBytes();
  registry.gauge("local.nodes").set(static_cast<std::int64_t>(result.nodes));
  registry.gauge("local.half_edges")
      .set(static_cast<std::int64_t>(result.halfEdges));
  registry.gauge("local.max_degree")
      .set(static_cast<std::int64_t>(result.maxDegree));

  const RoundHook hook = [&](int, std::uint64_t active) {
    roundsTotal.add(1);
    frontierProcessed.add(active);
    if (tracer.enabled()) {
      tracer.counter("local.frontier", static_cast<std::int64_t>(active));
    }
  };

  // The kernel runs under the local.algo root span; verification gets its
  // own local.verify root span afterwards (the report's phase table then
  // separates kernel time from checking time).
  std::function<bool()> verifier;
  {
    obs::ScopedSpan span("local.algo");
    switch (options.algo) {
      case Algo::kLubyMis: {
        auto mis = std::make_shared<MisRun>(
            lubyMis(g, options.seed, options.numThreads, hook));
        result.rounds = mis->rounds;
        result.solutionSize = mis->misSize;
        result.stateChecksum = checksumSpan(
            std::span<const MisFlag>(mis->state), 0xcbf29ce484222325ull);
        verifier = [&g, &options, mis] {
          return csrIsMaximalIndependentSet(g, mis->state, options.numThreads);
        };
        break;
      }
      case Algo::kColorReduction: {
        auto colors = std::make_shared<ColorRun>(
            treeColorReduce(g, instance.parents, options.numThreads, hook));
        result.rounds = colors->rounds;
        result.solutionSize = colors->numColors;
        result.stateChecksum =
            checksumSpan(std::span<const std::uint32_t>(colors->colors),
                         0xcbf29ce484222325ull);
        verifier = [&g, &options, colors] {
          return csrIsProperColoring(g, colors->colors, 3, options.numThreads);
        };
        break;
      }
      case Algo::kDomsetReduction: {
        MisRun mis = lubyMis(g, options.seed, options.numThreads, hook);
        auto domset = std::make_shared<DomsetRun>(
            domsetFromMis(g, mis.state, options.numThreads, hook));
        result.rounds = mis.rounds + domset->rounds;
        result.solutionSize = domset->setSize;
        const std::uint64_t hash =
            checksumSpan(std::span<const std::uint8_t>(domset->inSet),
                         0xcbf29ce484222325ull);
        result.stateChecksum =
            checksumSpan(std::span<const Vertex>(domset->dominator), hash);
        verifier = [&g, &options, domset] {
          return csrIsZeroOutdegreeDominatingSet(
              g, domset->inSet, domset->dominator, options.numThreads);
        };
        break;
      }
    }
  }
  if (options.verify) {
    bool ok = false;
    {
      obs::ScopedSpan span("local.verify");
      ok = verifier();
    }
    if (!ok) {
      throw re::Error(std::string("runSim: verifier rejected the ") +
                      algoName(options.algo) + " output");
    }
    result.verified = true;
  }
  return result;
}

}  // namespace relb::local
