// Graphs for the LOCAL / port-numbering model simulator.
//
// A Graph is an undirected simple graph with, per node, an ordered list of
// incident half-edges; the position of a half-edge in that list is the
// node's *port number* for it (0-based internally).  Each undirected edge
// has a global edge id shared by its two half-edges, an optional color
// (Delta-edge colorings are first-class, as the paper's lower bound consumes
// one), and an orientation bit (the "edge port numbering" of Section 2.1).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "re/types.hpp"

namespace relb::local {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using Port = std::int32_t;

struct HalfEdge {
  NodeId neighbor = -1;
  EdgeId edge = -1;
};

class Graph {
 public:
  explicit Graph(NodeId numNodes);

  /// Adds an undirected edge and returns its id.  The first endpoint is the
  /// edge's "side 0" (used as the consistent edge orientation).
  EdgeId addEdge(NodeId u, NodeId v);

  [[nodiscard]] NodeId numNodes() const {
    return static_cast<NodeId>(adj_.size());
  }
  [[nodiscard]] EdgeId numEdges() const {
    return static_cast<EdgeId>(edges_.size());
  }
  [[nodiscard]] int degree(NodeId v) const {
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }
  [[nodiscard]] int maxDegree() const;

  [[nodiscard]] const std::vector<HalfEdge>& neighbors(NodeId v) const {
    return adj_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] HalfEdge halfEdge(NodeId v, Port p) const {
    return adj_[static_cast<std::size_t>(v)][static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::pair<NodeId, NodeId> endpoints(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }

  /// Port of `v` on edge `e`; throws if `v` is not an endpoint.
  [[nodiscard]] Port portOf(NodeId v, EdgeId e) const;

  /// Edge colors (0-based).  Unset until assigned; a graph without edges
  /// counts as (vacuously) colored.
  [[nodiscard]] bool hasEdgeColoring() const {
    return edges_.empty() || !edgeColor_.empty();
  }
  [[nodiscard]] int edgeColor(EdgeId e) const {
    return edgeColor_[static_cast<std::size_t>(e)];
  }
  void setEdgeColors(std::vector<int> colors);

  /// Computes a proper edge coloring greedily and stores it; returns the
  /// number of colors used (<= 2*maxDegree - 1; on trees built by the
  /// builders below, exactly maxDegree when `delta` is passed).
  int properEdgeColorGreedy();

  /// True iff the stored coloring is a proper edge coloring with colors in
  /// [0, numColors).
  [[nodiscard]] bool edgeColoringIsProper(int numColors) const;

  /// Randomly permutes every node's port order (the adversary's power in
  /// the PN model).  Edge ids, colors and endpoints are unaffected.
  void shufflePorts(std::mt19937& rng);

  /// True iff the graph is connected and acyclic.
  [[nodiscard]] bool isTree() const;

  /// Girth (length of shortest cycle); returns -1 for forests.
  [[nodiscard]] int girth() const;

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<int> edgeColor_;
};

// ---------------------------------------------------------------------------
// Builders.
// ---------------------------------------------------------------------------

/// Complete Delta-regular tree of the given depth: every internal node has
/// degree exactly `delta`, leaves sit at distance `depth` from the root.
/// Edges are Delta-edge-colored on construction (a proper coloring exists
/// trivially on trees).
[[nodiscard]] Graph completeRegularTree(int delta, int depth);

/// Uniform random tree on n nodes (random attachment with degree cap).
/// Delta-edge-colored on construction.
[[nodiscard]] Graph randomTree(NodeId n, int maxDegree, std::mt19937& rng);

/// Path on n nodes.
[[nodiscard]] Graph pathGraph(NodeId n);

/// Cycle on n nodes.
[[nodiscard]] Graph cycleGraph(NodeId n);

/// Star with n leaves.
[[nodiscard]] Graph starGraph(NodeId leaves);

/// "Broom": a path of length `handle` whose last node carries `bristles`
/// extra leaves.  A classic pathological tree for MIS algorithms.
[[nodiscard]] Graph broomGraph(NodeId handle, NodeId bristles);

/// The symmetric-port gadget of Lemmas 12/15: a Delta-regular,
/// Delta-edge-colored graph where the edge of color i uses port i at *both*
/// endpoints.  Realized as K_{Delta,Delta} with parts interleaved (girth 4;
/// sufficient for 0-round arguments).
[[nodiscard]] Graph symmetricPortGadget(int delta);

}  // namespace relb::local
