#include "local/halfedge.hpp"

namespace relb::local {

HalfEdgeLabeling::HalfEdgeLabeling(const Graph& g)
    : labels_(static_cast<std::size_t>(g.numNodes())) {
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    labels_[static_cast<std::size_t>(v)].assign(
        static_cast<std::size_t>(g.degree(v)), re::Label{0});
  }
}

CheckResult checkLabeling(const Graph& g, const re::Problem& problem,
                          const HalfEdgeLabeling& labeling,
                          const CheckOptions& options) {
  CheckResult result;
  const int n = problem.alphabet.size();
  const auto record = [&](std::string msg, bool nodeSide) {
    if (nodeSide) {
      ++result.nodeViolations;
    } else {
      ++result.edgeViolations;
    }
    if (static_cast<int>(result.messages.size()) < options.maxViolations) {
      result.messages.push_back(std::move(msg));
    }
  };

  for (NodeId v = 0; v < g.numNodes(); ++v) {
    if (options.fullDegreeNodesOnly &&
        static_cast<re::Count>(g.degree(v)) != problem.delta()) {
      continue;
    }
    re::Word w(static_cast<std::size_t>(n), 0);
    bool badLabel = false;
    for (const re::Label l : labeling.node(v)) {
      if (l >= n) {
        badLabel = true;
        break;
      }
      ++w[l];
    }
    if (badLabel || !problem.node.containsWord(w)) {
      record("node " + std::to_string(v) + ": configuration not allowed",
             /*nodeSide=*/true);
    }
  }

  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const re::Label lu = labeling.atEdge(g, u, e);
    const re::Label lv = labeling.atEdge(g, v, e);
    if (lu >= n || lv >= n) {
      record("edge " + std::to_string(e) + ": label out of range",
             /*nodeSide=*/false);
      continue;
    }
    re::Word w(static_cast<std::size_t>(n), 0);
    ++w[lu];
    ++w[lv];
    if (!problem.edge.containsWord(w)) {
      record("edge " + std::to_string(e) + " (" + std::to_string(u) + "," +
                 std::to_string(v) + "): " + problem.alphabet.name(lu) +
                 problem.alphabet.name(lv) + " not allowed",
             /*nodeSide=*/false);
    }
  }
  return result;
}

}  // namespace relb::local
