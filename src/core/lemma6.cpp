#include "core/lemma6.hpp"

#include <algorithm>

#include "re/diagram.hpp"

namespace relb::core {

namespace {

using re::Configuration;
using re::Constraint;
using re::Count;
using re::Group;
using re::LabelSet;
using re::Problem;

// Compares two constraints as unordered sets of normalized configurations.
bool sameConfigurationSet(const Constraint& a, const Constraint& b) {
  auto ca = a.configurations();
  auto cb = b.configurations();
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  return ca == cb;
}

}  // namespace

std::vector<re::LabelSet> rFamilyMeanings() {
  return {
      LabelSet{kX},                  // X
      LabelSet{kM, kX},              // M
      LabelSet{kO, kX},              // O
      LabelSet{kM, kO, kX},          // U
      LabelSet{kA, kO, kX},          // A
      LabelSet{kM, kA, kO, kX},      // B
      LabelSet{kP, kA, kO, kX},      // P
      LabelSet{kM, kP, kA, kO, kX},  // Q
  };
}

re::Problem claimedRFamily(Count delta, Count a, Count x) {
  if (x + 2 > a || a > delta) {
    throw re::Error("claimedRFamily: need x + 2 <= a <= delta");
  }
  Problem p;
  p.alphabet = re::Alphabet({"X", "M", "O", "U", "A", "B", "P", "Q"});

  const LabelSet mubq{kRM, kRU, kRB, kRQ};
  const LabelSet all = LabelSet::full(8);
  const LabelSet pq{kRP, kRQ};
  const LabelSet ouabpq{kRO, kRU, kRA, kRB, kRP, kRQ};
  const LabelSet abpq{kRA, kRB, kRP, kRQ};

  Constraint node(delta, {});
  node.add(Configuration({{mubq, delta - x}, {all, x}}));
  node.add(Configuration({{pq, 1}, {ouabpq, delta - 1}}));
  node.add(Configuration({{abpq, a}, {all, delta - a}}));
  p.node = std::move(node);

  Constraint edge(2, {});
  edge.add(Configuration({{LabelSet{kRX}, 1}, {LabelSet{kRQ}, 1}}));
  edge.add(Configuration({{LabelSet{kRO}, 1}, {LabelSet{kRB}, 1}}));
  edge.add(Configuration({{LabelSet{kRA}, 1}, {LabelSet{kRU}, 1}}));
  edge.add(Configuration({{LabelSet{kRP}, 1}, {LabelSet{kRM}, 1}}));
  p.edge = std::move(edge);

  p.validate();
  return p;
}

Lemma6Result verifyLemma6(Count delta, Count a, Count x) {
  Lemma6Result result;
  if (x + 2 > a || a > delta) {
    result.detail = "parameters outside x + 2 <= a <= delta";
    return result;
  }
  const Problem pi = familyProblem(delta, a, x);
  result.computed = re::applyR(pi);

  // 1. The renamed labels must denote exactly the eight right-closed sets of
  //    Figure 4, in the claimed order.
  if (result.computed.meaning != rFamilyMeanings()) {
    result.detail = "alphabet of R(Pi) does not match the eight claimed sets";
    return result;
  }

  // 2. The constraints must match the claimed problem exactly.
  const Problem claimed = claimedRFamily(delta, a, x);
  if (!sameConfigurationSet(result.computed.problem.edge, claimed.edge)) {
    result.detail = "edge constraint differs from { XQ, OB, AU, PM }";
    return result;
  }
  if (!sameConfigurationSet(result.computed.problem.node, claimed.node)) {
    result.detail = "node constraint differs from the claimed configurations";
    return result;
  }

  result.ok = true;
  return result;
}

bool verifyFigure4(Count delta, Count a, Count x) {
  const Problem pi = familyProblem(delta, a, x);
  const auto rel = re::computeStrength(pi.edge, pi.alphabet.size());
  rel.checkPreorder();
  // Claimed strict chain P < A < O < X and M < X, no other relations.
  re::StrengthRelation claimed(5);
  const auto addGeq = [&](re::Label strong, re::Label weak) {
    claimed.set(strong, weak, true);
  };
  addGeq(kA, kP);
  addGeq(kO, kP);
  addGeq(kX, kP);
  addGeq(kO, kA);
  addGeq(kX, kA);
  addGeq(kX, kO);
  addGeq(kX, kM);
  return rel == claimed;
}

}  // namespace relb::core
