// Lemma 13: the lower-bound sequence Pi_0 -> Pi_1 -> ... -> Pi_t.
//
// Each step applies Corollary 10 (Pi_Delta(a, x) is one round harder than
// Pi_Delta(floor((a-2x-1)/2), x+1), given a Delta-edge coloring) and
// optionally Lemma 11 to round the parameters down to the paper's schedule
// a_i = floor(Delta / 2^{3i}), x_i = x + i.  The chain stops when the
// preconditions fail; every problem in the chain (except possibly the last)
// is certified not 0-round solvable (Lemma 12 / 15), so the chain length is
// a lower bound on the round complexity of Pi_0 in the PN model and, via
// Theorem 14, yields the LOCAL-model bounds of Theorem 1.
#pragma once

#include <string>
#include <vector>

#include "core/family.hpp"
#include "io/certificate.hpp"
#include "util/thread_pool.hpp"

namespace relb::re {
class EngineSession;
using EngineContext = EngineSession;
}  // namespace relb::re

namespace relb::core {

struct ChainStep {
  re::Count a = 0;
  re::Count x = 0;
};

struct Chain {
  re::Count delta = 0;
  std::vector<ChainStep> steps;

  /// Number of speedup steps (= proven round lower bound in the
  /// deterministic PN model with a Delta-edge coloring).
  [[nodiscard]] re::Count length() const {
    return static_cast<re::Count>(steps.size()) - 1;
  }
};

/// The paper's schedule: Pi_i = Pi_Delta(floor(Delta/2^{3i}), x0 + i),
/// continued while Corollary 10 / Lemma 11 apply (requires xBar < aBar/8 and
/// aBar >= 4 as in the Lemma 13 proof).
[[nodiscard]] Chain paperChain(re::Count delta, re::Count x0);

/// The exact-recurrence chain: a_{i+1} = floor((a_i - 2 x_i - 1) / 2),
/// x_{i+1} = x_i + 1, continued while the Corollary 10 preconditions
/// (2x + 1 <= a and x + 2 <= a) hold.  Longer than the paper's rounded
/// schedule; same per-step justification, minus the Lemma 11 rounding.
[[nodiscard]] Chain exactChain(re::Count delta, re::Count x0);

/// Certifies a chain: every consecutive pair must be a valid Corollary 10 +
/// Lemma 11 move, and every problem in the chain must fail the 0-round
/// solvability test of Lemma 12 (checked via the zero-round analyzer).
/// Returns an empty string on success, else a description of the violation.
/// The per-step 0-round checks are independent and fan out over `numThreads`
/// (0 = hardware concurrency, 1 = serial); the reported violation is the
/// earliest one regardless of thread count.
[[nodiscard]] std::string certifyChain(
    const Chain& chain, int numThreads = util::kDefaultNumThreads);

/// Context-backed overload: the per-step 0-round verdicts are memoized in
/// `context`, so re-certifying a chain (or certifying overlapping chains)
/// against a warm context performs zero recomputation.  The verdict is
/// identical to the context-free overload.
[[nodiscard]] std::string certifyChain(
    const Chain& chain, re::EngineContext& context,
    int numThreads = util::kDefaultNumThreads);

/// Builds the durable "family-chain" certificate for `chain`: per step the
/// parameters, the fully expanded problem, and the zero-round verdict
/// (recomputed here; memoized in `context` when one is given, so a warm
/// context or attached store performs zero recomputation).  The certificate
/// is deterministic -- the same chain always serializes to the same bytes --
/// and io::verifyCertificate re-checks every claim without the engine.
/// Throws re::Error if the chain does not certify (the certificate would be
/// rejected anyway; the error carries certifyChain's violation text).
[[nodiscard]] io::Certificate buildChainCertificate(
    const Chain& chain, re::EngineContext* context = nullptr,
    int numThreads = util::kDefaultNumThreads);

/// Lemma 12 for the family: Pi_Delta(a, x) is 0-round solvable on the
/// symmetric-port family iff a == 0 or x == delta (i.e. some configuration
/// avoids non-self-compatible labels).
[[nodiscard]] bool familyZeroRoundSolvable(re::Count delta, re::Count a,
                                           re::Count x);

/// The realized PN-model lower bound for k-outdegree dominating sets at
/// degree Delta: one round for Lemma 5 plus the exact chain started at
/// x0 = k (the chain's problems are all at least one round easier each).
[[nodiscard]] re::Count pnLowerBoundRounds(re::Count delta, re::Count k);

}  // namespace relb::core
