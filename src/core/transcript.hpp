// Proof transcripts: a self-contained, human-readable certificate of the
// paper's lower bound at concrete parameters.
//
// `verifyChainDeep` re-derives everything the chain relies on -- Corollary
// 10 preconditions, Lemma 12 hardness, and the Lemma 6 / Lemma 8 machine
// checks at every step -- and `writeTranscript` renders the whole derivation
// (problems, diagrams, forbidden configurations, per-step parameters, the
// final Theorem 1 lift) as text, so the proof can be audited without
// running the code.
#pragma once

#include <string>

#include "core/sequence.hpp"

namespace relb::core {

struct DeepVerification {
  bool ok = false;
  std::string failure;      // empty when ok
  int lemma6Checks = 0;
  int lemma8Checks = 0;
  int hardnessChecks = 0;
};

/// Certifies the chain and re-verifies Lemmas 6 and 8 at every non-final
/// step.  Delta-independent cost per step.
[[nodiscard]] DeepVerification verifyChainDeep(const Chain& chain);

/// Renders the complete lower-bound derivation for (delta, k) as a text
/// transcript (several KB).  Throws re::Error if any verification fails --
/// a transcript is only produced for a fully checked proof.
[[nodiscard]] std::string writeTranscript(re::Count delta, re::Count k);

}  // namespace relb::core
