#include "core/sequence.hpp"

#include <exception>

#include "obs/trace.hpp"
#include "re/engine.hpp"
#include "re/zero_round.hpp"
#include "util/thread_pool.hpp"

namespace relb::core {

namespace {

using re::Count;

bool corollary10Applies(Count a, Count x, Count delta) {
  return 2 * x + 1 <= a && x + 2 <= a && a <= delta;
}

// Shared body of both certifyChain overloads.  `zeroRoundCheck(i)` decides
// Lemma 12 for step i; it is invoked from the fan-out workers, so it must be
// safe to call concurrently.  Spans go to `tracer` -- the session's tracer
// for the context-backed overload, so concurrent sessions keep their
// certification timelines attributable.
template <typename ZeroRoundCheck>
std::string certifyChainImpl(const Chain& chain, int numThreads,
                             obs::Tracer& tracer,
                             ZeroRoundCheck&& zeroRoundCheck) {
  if (chain.steps.empty()) return "empty chain";
  // The Lemma 12 checks dominate the certification cost and are independent
  // per step; compute them fanned out, then report violations in step order
  // so the verdict is identical to the serial scan.  Exceptions (malformed
  // parameters) are replayed at the step where the serial scan would have
  // raised them.
  std::vector<char> zeroRound(chain.steps.size());
  std::vector<std::exception_ptr> zeroRoundError(chain.steps.size());
  {
    const obs::ScopedSpan certifySpan("chain.certify", tracer);
    util::parallel_for(numThreads, chain.steps.size(), [&](std::size_t i) {
      const obs::ScopedSpan stepSpan("chain.certify.step", tracer);
      try {
        zeroRound[i] = zeroRoundCheck(i);
      } catch (...) {
        zeroRoundError[i] = std::current_exception();
      }
    });
  }
  for (std::size_t i = 0; i + 1 < chain.steps.size(); ++i) {
    const auto& cur = chain.steps[i];
    const auto& next = chain.steps[i + 1];
    if (!corollary10Applies(cur.a, cur.x, chain.delta)) {
      return "step " + std::to_string(i) +
             ": Corollary 10 preconditions violated";
    }
    const FamilyParams sped = speedupParams({chain.delta, cur.a, cur.x});
    // The next problem must be reachable: exactly the speedup result, or a
    // Lemma 11 relaxation of it (smaller a, larger-or-equal x).
    if (!(next.a <= sped.a && next.x >= sped.x)) {
      return "step " + std::to_string(i) +
             ": next problem not reachable by Corollary 10 + Lemma 11";
    }
    // Every problem except possibly the final one must be non-0-round
    // solvable, otherwise the speedup chain proves nothing (Lemma 12).
    if (zeroRoundError[i]) std::rethrow_exception(zeroRoundError[i]);
    if (zeroRound[i]) {
      return "step " + std::to_string(i) + ": problem is 0-round solvable";
    }
  }
  if (zeroRoundError.back()) std::rethrow_exception(zeroRoundError.back());
  if (zeroRound.back()) {
    return "final problem is 0-round solvable";
  }
  return "";
}

}  // namespace

Chain paperChain(Count delta, Count x0) {
  Chain chain;
  chain.delta = delta;
  Count shift = 0;  // 2^{3i}
  for (Count i = 0;; ++i) {
    const Count a = delta >> shift;
    const Count x = x0 + i;
    // Problems with a < 1 or x > delta - 1 are 0-round solvable (Lemma 12
    // needs a >= 1 and x <= delta - 1); never include them.
    if (a < 1 || x > delta - 1) break;
    chain.steps.push_back({a, x});
    // Conditions from the Lemma 13 proof: xBar < aBar / 8 and aBar >= 4
    // guarantee that Corollary 10 plus the Lemma 11 rounding reach the next
    // scheduled problem.
    if (!(8 * x < a) || a < 4) break;
    shift += 3;
  }
  return chain;
}

Chain exactChain(Count delta, Count x0) {
  Chain chain;
  chain.delta = delta;
  Count a = delta;
  Count x = x0;
  chain.steps.push_back({a, x});
  while (corollary10Applies(a, x, delta)) {
    const FamilyParams next = speedupParams({delta, a, x});
    if (next.a < 1 || next.x > delta - 1) break;  // would be 0-round solvable
    a = next.a;
    x = next.x;
    chain.steps.push_back({a, x});
  }
  return chain;
}

bool familyZeroRoundSolvable(Count delta, Count a, Count x) {
  return re::zeroRoundSolvableSymmetricPorts(familyProblem(delta, a, x));
}

std::string certifyChain(const Chain& chain, int numThreads) {
  return certifyChainImpl(
      chain, numThreads, obs::Tracer::global(), [&](std::size_t i) {
        return familyZeroRoundSolvable(chain.delta, chain.steps[i].a,
                                       chain.steps[i].x);
      });
}

std::string certifyChain(const Chain& chain, re::EngineContext& context,
                         int numThreads) {
  return certifyChainImpl(
      chain, numThreads, context.tracer(), [&](std::size_t i) {
        return context.zeroRoundSolvable(
            familyProblem(chain.delta, chain.steps[i].a, chain.steps[i].x),
            re::ZeroRoundMode::kSymmetricPorts);
      });
}

io::Certificate buildChainCertificate(const Chain& chain,
                                      re::EngineContext* context,
                                      int numThreads) {
  const std::string violation =
      context != nullptr ? certifyChain(chain, *context, numThreads)
                         : certifyChain(chain, numThreads);
  if (!violation.empty()) {
    throw re::Error("buildChainCertificate: chain does not certify: " +
                    violation);
  }
  io::Certificate cert;
  cert.kind = "family-chain";
  cert.delta = chain.delta;
  cert.x0 = chain.steps.front().x;
  cert.engineInfo.emplace_back("generator", "relb");
  cert.engineInfo.emplace_back("chain_length",
                               std::to_string(chain.length()));
  for (const ChainStep& step : chain.steps) {
    io::CertificateStep out;
    out.a = step.a;
    out.x = step.x;
    out.problem = familyProblem(chain.delta, step.a, step.x);
    // certifyChain established non-solvability for every step; the verdicts
    // below are therefore all false (and served from the context's cache
    // when one is given).
    out.zeroRoundSolvable =
        context != nullptr
            ? context->zeroRoundSolvable(out.problem,
                                         re::ZeroRoundMode::kSymmetricPorts)
            : re::zeroRoundSolvableSymmetricPorts(out.problem);
    cert.steps.push_back(std::move(out));
  }
  return cert;
}

Count pnLowerBoundRounds(Count delta, Count k) {
  // Lemma 5: solving Pi_Delta(a, k) takes one round given a k-outdegree
  // dominating set, so LB(k-outdegree DS) >= chain length - 1 ... in fact
  // the chain length t means Pi_0 needs >= t rounds, hence the dominating
  // set needs >= t - 1 rounds; report max(t - 1, 0).
  const Chain chain = exactChain(delta, k);
  const Count t = chain.length();
  return t > 0 ? t - 1 : 0;
}

}  // namespace relb::core
