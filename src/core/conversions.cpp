#include "core/conversions.hpp"

#include <algorithm>
#include <cstdint>
#include <span>

namespace relb::core {

namespace {

using local::Graph;
using local::HalfEdgeLabeling;
using local::NodeId;
using local::Port;
using re::Count;
using re::Error;
using re::Label;

// Flips labels equal to `from` into `to` until at most `keep` labels `from`
// remain at node v (scanning ports in increasing order).
void reduceLabelCount(HalfEdgeLabeling& labeling, const Graph& g, NodeId v,
                      Label from, Label to, Count keep) {
  Count seen = 0;
  for (Port p = 0; p < g.degree(v); ++p) {
    if (labeling.at(v, p) != from) continue;
    ++seen;
    if (seen > keep) labeling.set(v, p, to);
  }
}

Count countLabel(const HalfEdgeLabeling& labeling, const Graph& g, NodeId v,
                 Label l) {
  Count c = 0;
  for (Port p = 0; p < g.degree(v); ++p) {
    if (labeling.at(v, p) == l) ++c;
  }
  return c;
}

bool hasLabel(const HalfEdgeLabeling& labeling, const Graph& g, NodeId v,
              Label l) {
  return countLabel(labeling, g, v, l) > 0;
}

}  // namespace

local::HalfEdgeLabeling lemma5Labeling(const Graph& g,
                                       const std::vector<bool>& inSet,
                                       const local::EdgeOrientation& orientation,
                                       Count delta, Count k) {
  if (!local::isKOutdegreeDominatingSet(g, inSet, orientation,
                                        static_cast<int>(k))) {
    throw Error("lemma5Labeling: input is not a k-outdegree dominating set");
  }
  // The one communication round of the lemma, executed on the simulator:
  // every node announces its set membership; the per-port inbox then drives
  // a purely local labeling decision.
  local::SyncNetwork<std::uint8_t> net(g);
  net.step([&](NodeId v, std::span<const std::uint8_t>,
               std::span<std::uint8_t> outbox) {
    for (auto& m : outbox) {
      m = inSet[static_cast<std::size_t>(v)] ? 1 : 0;
    }
  });

  HalfEdgeLabeling out(g);
  net.step([&](NodeId v, std::span<const std::uint8_t> inbox,
               std::span<std::uint8_t> outbox) {
    for (auto& m : outbox) m = 0;
    if (inSet[static_cast<std::size_t>(v)]) {
      // Dominating-set node: X on edges oriented away from v inside G[S],
      // M elsewhere; then pad with X to reach exactly k labels X.
      Count xCount = 0;
      for (Port p = 0; p < g.degree(v); ++p) {
        const auto he = g.halfEdge(v, p);
        const bool inside = inbox[static_cast<std::size_t>(p)] == 1;
        const int o = orientation[static_cast<std::size_t>(he.edge)];
        const auto [e0, e1] = g.endpoints(he.edge);
        const bool outgoing =
            inside && ((o == 1 && e0 == v) || (o == -1 && e1 == v));
        out.set(v, p, outgoing ? kX : kM);
        if (outgoing) ++xCount;
      }
      for (Port p = 0; p < g.degree(v) && xCount < k; ++p) {
        if (out.at(v, p) == kM) {
          out.set(v, p, kX);
          ++xCount;
        }
      }
    } else {
      // Point P at the first dominating neighbor, O elsewhere.
      bool pointed = false;
      for (Port p = 0; p < g.degree(v); ++p) {
        if (!pointed && inbox[static_cast<std::size_t>(p)] == 1) {
          out.set(v, p, kP);
          pointed = true;
        } else {
          out.set(v, p, kO);
        }
      }
      if (!pointed) {
        throw Error("lemma5Labeling: node not dominated");  // unreachable
      }
    }
  });
  (void)delta;
  return out;
}

local::HalfEdgeLabeling lemma9Convert(const Graph& g,
                                      const HalfEdgeLabeling& plusLabeling,
                                      Count delta, Count a, Count x) {
  if (2 * x + 1 > a) throw Error("lemma9Convert: need 2x + 1 <= a");
  if (!g.hasEdgeColoring()) throw Error("lemma9Convert: edge coloring required");
  const Count lowColors = (a - 1) / 2;  // paper's colors {1 .. floor((a-1)/2)}
  const Count aNew = (a - 2 * x - 1) / 2;

  HalfEdgeLabeling out(g);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    const bool isCNode = hasLabel(plusLabeling, g, v, kC);
    const bool isANode = !isCNode && hasLabel(plusLabeling, g, v, kA);
    if (isCNode) {
      // Write A on low-colored edges currently labeled C, X on all others;
      // then trim to exactly aNew labels A.
      for (Port p = 0; p < g.degree(v); ++p) {
        const auto he = g.halfEdge(v, p);
        const bool low = g.edgeColor(he.edge) < lowColors;
        out.set(v, p, (low && plusLabeling.at(v, p) == kC) ? kA : kX);
      }
      reduceLabelCount(out, g, v, kA, kX, aNew);
    } else if (isANode) {
      // Drop A from low-colored edges, then trim to exactly aNew labels A.
      for (Port p = 0; p < g.degree(v); ++p) {
        const auto he = g.halfEdge(v, p);
        const bool low = g.edgeColor(he.edge) < lowColors;
        const Label l = plusLabeling.at(v, p);
        out.set(v, p, (low && l == kA) ? kX : l);
      }
      reduceLabelCount(out, g, v, kA, kX, aNew);
    } else {
      // M-nodes and P-nodes keep their output unchanged.
      for (Port p = 0; p < g.degree(v); ++p) {
        out.set(v, p, plusLabeling.at(v, p));
      }
    }
  }
  (void)delta;
  return out;
}

local::HalfEdgeLabeling lemma11Relax(const Graph& g,
                                     const HalfEdgeLabeling& labeling,
                                     Count delta, Count aFrom, Count xFrom,
                                     Count aTo, Count xTo) {
  if (aTo > aFrom || xTo < xFrom) {
    throw Error("lemma11Relax: need aTo <= aFrom and xTo >= xFrom");
  }
  HalfEdgeLabeling out(g);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    for (Port p = 0; p < g.degree(v); ++p) {
      out.set(v, p, labeling.at(v, p));
    }
    if (hasLabel(labeling, g, v, kM)) {
      // M^{deg - xFrom} X^{xFrom} -> M^{deg - xTo} X^{xTo}.
      reduceLabelCount(out, g, v, kM, kX,
                       std::max<Count>(0, g.degree(v) - xTo));
    } else if (hasLabel(labeling, g, v, kA)) {
      reduceLabelCount(out, g, v, kA, kX, aTo);
    }
  }
  (void)delta;
  (void)aFrom;
  return out;
}

local::HalfEdgeLabeling syntheticPlusLabelingAlternating(const Graph& g,
                                                         Count delta, Count a,
                                                         Count x) {
  if (!g.isTree()) {
    throw Error("syntheticPlusLabelingAlternating: tree required");
  }
  if (a < x + 1) throw Error("syntheticPlusLabelingAlternating: need a >= x+1");
  // BFS depths from node 0.
  std::vector<int> depth(static_cast<std::size_t>(g.numNodes()), -1);
  std::vector<NodeId> queue{0};
  depth[0] = 0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const NodeId v = queue[i];
    for (const auto& he : g.neighbors(v)) {
      if (depth[static_cast<std::size_t>(he.neighbor)] < 0) {
        depth[static_cast<std::size_t>(he.neighbor)] =
            depth[static_cast<std::size_t>(v)] + 1;
        queue.push_back(he.neighbor);
      }
    }
  }
  HalfEdgeLabeling out(g);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    const bool even = depth[static_cast<std::size_t>(v)] % 2 == 0;
    if (even) {
      // C^{deg - x} X^x.
      for (Port p = 0; p < g.degree(v); ++p) out.set(v, p, kC);
      reduceLabelCount(out, g, v, kC, kX,
                       std::max<Count>(0, g.degree(v) - x));
    } else {
      // A^{a-x-1} X^{rest}.
      for (Port p = 0; p < g.degree(v); ++p) {
        out.set(v, p, p < a - x - 1 ? kA : kX);
      }
    }
  }
  (void)delta;
  return out;
}

local::HalfEdgeLabeling plusFromFamilyLabeling(const Graph& g,
                                               const HalfEdgeLabeling& labeling,
                                               Count delta, Count a, Count x) {
  HalfEdgeLabeling out(g);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    for (Port p = 0; p < g.degree(v); ++p) {
      out.set(v, p, labeling.at(v, p));
    }
    if (hasLabel(labeling, g, v, kM)) {
      // M^{deg-x} X^x -> M^{deg-x-1} X^{x+1}.
      reduceLabelCount(out, g, v, kM, kX,
                       std::max<Count>(0, g.degree(v) - x - 1));
    } else if (hasLabel(labeling, g, v, kA)) {
      // A^a X^{deg-a} -> A^{a-x-1} X^{deg-a+x+1}.
      reduceLabelCount(out, g, v, kA, kX, a - x - 1);
    }
  }
  (void)delta;
  return out;
}

}  // namespace relb::core
