#include "core/family.hpp"

namespace relb::core {

namespace {

using re::Configuration;
using re::Constraint;
using re::Count;
using re::Error;
using re::Group;
using re::LabelSet;
using re::Problem;

// Adds one edge configuration "l paired with any of `others`".
void addEdgeConfig(Constraint& edge, re::Label l, LabelSet others) {
  edge.add(Configuration({{LabelSet{l}, 1}, {others, 1}}));
}

}  // namespace

re::Problem familyProblem(Count delta, Count a, Count x) {
  if (delta < 1 || a < 0 || a > delta || x < 0 || x > delta) {
    throw Error("familyProblem: need 0 <= a, x <= delta");
  }
  Problem p;
  p.alphabet = re::Alphabet({"M", "P", "O", "A", "X"});

  Constraint node(delta, {});
  node.add(Configuration({{LabelSet{kM}, delta - x}, {LabelSet{kX}, x}}));
  node.add(Configuration({{LabelSet{kA}, a}, {LabelSet{kX}, delta - a}}));
  node.add(Configuration({{LabelSet{kP}, 1}, {LabelSet{kO}, delta - 1}}));
  p.node = std::move(node);

  Constraint edge(2, {});
  addEdgeConfig(edge, kM, LabelSet{kP, kA, kO, kX});
  addEdgeConfig(edge, kO, LabelSet{kM, kA, kO, kX});
  addEdgeConfig(edge, kP, LabelSet{kM, kX});
  addEdgeConfig(edge, kA, LabelSet{kM, kO, kX});
  addEdgeConfig(edge, kX, LabelSet{kM, kP, kA, kO, kX});
  p.edge = std::move(edge);

  p.validate();
  return p;
}

re::Problem familyPlusProblem(Count delta, Count a, Count x) {
  if (delta < 1 || x + 1 > delta || a < x + 1 || a > delta) {
    throw Error("familyPlusProblem: need x+1 <= a <= delta and x+1 <= delta");
  }
  Problem p;
  p.alphabet = re::Alphabet({"M", "P", "O", "A", "X", "C"});

  Constraint node(delta, {});
  node.add(
      Configuration({{LabelSet{kM}, delta - x - 1}, {LabelSet{kX}, x + 1}}));
  node.add(Configuration(
      {{LabelSet{kA}, a - x - 1}, {LabelSet{kX}, delta - a + x + 1}}));
  node.add(Configuration({{LabelSet{kP}, 1}, {LabelSet{kO}, delta - 1}}));
  node.add(Configuration({{LabelSet{kC}, delta - x}, {LabelSet{kX}, x}}));
  p.node = std::move(node);

  Constraint edge(2, {});
  addEdgeConfig(edge, kM, LabelSet{kP, kA, kO, kX, kC});
  addEdgeConfig(edge, kO, LabelSet{kM, kA, kO, kX, kC});
  addEdgeConfig(edge, kP, LabelSet{kM, kX});
  addEdgeConfig(edge, kA, LabelSet{kM, kO, kX, kC});
  addEdgeConfig(edge, kX, LabelSet{kM, kP, kA, kO, kX, kC});
  addEdgeConfig(edge, kC, LabelSet{kM, kO, kA, kX});
  p.edge = std::move(edge);

  p.validate();
  return p;
}

FamilyParams speedupParams(const FamilyParams& p) {
  return {p.delta, (p.a - 2 * p.x - 1) / 2, p.x + 1};
}

}  // namespace relb::core
