// Theorem 1 and Corollary 2: the LOCAL-model lower-bound landscape.
//
// Theorem 14 lifts a PN-model lower-bound chain of length t to
//   Omega(min{t, log_Delta n})        deterministic LOCAL rounds and
//   Omega(min{t, log_Delta log n})    randomized LOCAL rounds.
// With t = Theta(log Delta) from Lemma 13 this gives Theorem 1; choosing
// Delta ~ 2^sqrt(log n) (deterministic) or 2^sqrt(log log n) (randomized)
// gives Corollary 2.  These helpers evaluate the bound formulas (with unit
// constants) and the realized chain lengths so benches can print the whole
// landscape.
//
// The interesting regimes have n as large as 2^(2^k), far beyond double's
// range, so every function takes log2(n) rather than n.
#pragma once

#include "re/types.hpp"

namespace relb::core {

/// min{t, log_Delta n}: the deterministic LOCAL bound from a PN chain of
/// length t (Theorem 14).
[[nodiscard]] double liftDeterministic(double t, double log2n, double delta);

/// min{t, log_Delta log n}: the randomized LOCAL bound (Theorem 14).
[[nodiscard]] double liftRandomized(double t, double log2n, double delta);

/// Theorem 1 with unit constants: min{log2 Delta, log_Delta n}.
[[nodiscard]] double theorem1Deterministic(double log2n, double delta);

/// Theorem 1 with unit constants: min{log2 Delta, log_Delta log2 n}.
[[nodiscard]] double theorem1Randomized(double log2n, double delta);

/// Corollary 2 with unit constants: min{log2 Delta, sqrt(log2 n)}.
[[nodiscard]] double corollary2Deterministic(double log2n, double delta);

/// Corollary 2 with unit constants: min{log2 Delta, sqrt(log2 log2 n)}.
[[nodiscard]] double corollary2Randomized(double log2n, double delta);

/// log2 of the Delta maximizing the deterministic bound: sqrt(log2 n).
[[nodiscard]] double bestLog2DeltaDeterministic(double log2n);

/// log2 of the Delta maximizing the randomized bound: sqrt(log2 log2 n).
[[nodiscard]] double bestLog2DeltaRandomized(double log2n);

/// Largest admissible k for the Theorem 1 regime, k <= Delta^epsilon.
[[nodiscard]] re::Count maxAdmissibleK(re::Count delta, double epsilon);

}  // namespace relb::core
