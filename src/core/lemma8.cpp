#include "core/lemma8.hpp"

#include <algorithm>

#include "re/diagram.hpp"

namespace relb::core {

namespace {

using re::Configuration;
using re::Constraint;
using re::Count;
using re::Group;
using re::LabelSet;
using re::Problem;

bool sameConfigurationSet(const Constraint& a, const Constraint& b) {
  auto ca = a.configurations();
  auto cb = b.configurations();
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  return ca == cb;
}

// Replacement method over the six Pi_rel sets: rewrites a constraint over
// the R(Pi) alphabet into one over the 6-label Pi+ alphabet.
Constraint replaceWithRelSets(const Constraint& constraint) {
  const auto sets = relSets();
  Constraint out(constraint.degree(), {});
  for (const auto& c : constraint.configurations()) {
    out.add(c.mapSets([&](LabelSet oldSet) {
      LabelSet fresh;
      for (std::size_t j = 0; j < sets.size(); ++j) {
        if (sets[j].intersects(oldSet)) {
          fresh.insert(static_cast<re::Label>(j));
        }
      }
      return fresh;
    }));
  }
  return out;
}

}  // namespace

std::vector<re::LabelSet> relSets() {
  // Indexed by the Pi+ label the set renames to (kM, kP, kO, kA, kX, kC).
  return {
      LabelSet{kRM, kRU, kRB, kRQ},                // M  <- MUBQ
      LabelSet{kRP, kRQ},                          // P  <- PQ
      LabelSet{kRO, kRU, kRA, kRB, kRP, kRQ},      // O  <- OUABPQ
      LabelSet{kRA, kRB, kRP, kRQ},                // A  <- ABPQ
      LabelSet::full(8),                           // X  <- XMOUABPQ
      LabelSet{kRU, kRB, kRP, kRQ},                // C  <- UBPQ
  };
}

std::vector<re::Configuration> relNodeSlotConfigs(Count delta, Count a,
                                                  Count x) {
  if (x + 2 > a || a > delta) {
    throw re::Error("relNodeSlotConfigs: need x + 2 <= a <= delta");
  }
  const auto sets = relSets();
  return {
      Configuration({{sets[kM], delta - x - 1}, {sets[kX], x + 1}}),
      Configuration({{sets[kA], a - x - 1}, {sets[kX], delta - a + x + 1}}),
      Configuration({{sets[kP], 1}, {sets[kO], delta - 1}}),
      Configuration({{sets[kC], delta - x}, {sets[kX], x}}),
  };
}

re::Problem relProblemRenamed(Count delta, Count a, Count x) {
  Problem p;
  p.alphabet = re::Alphabet({"M", "P", "O", "A", "X", "C"});
  Constraint node(delta, {});
  node.add(
      Configuration({{LabelSet{kM}, delta - x - 1}, {LabelSet{kX}, x + 1}}));
  node.add(Configuration(
      {{LabelSet{kA}, a - x - 1}, {LabelSet{kX}, delta - a + x + 1}}));
  node.add(Configuration({{LabelSet{kP}, 1}, {LabelSet{kO}, delta - 1}}));
  node.add(Configuration({{LabelSet{kC}, delta - x}, {LabelSet{kX}, x}}));
  p.node = std::move(node);
  p.edge = replaceWithRelSets(claimedRFamily(delta, a, x).edge);
  p.validate();
  return p;
}

Lemma8Result verifyLemma8Exact(Count delta, Count a, Count x,
                               const re::StepOptions& options) {
  Lemma8Result result;
  const auto lemma6 = verifyLemma6(delta, a, x);
  if (!lemma6.ok) {
    result.detail = "lemma 6 failed: " + lemma6.detail;
    return result;
  }
  const Problem rProblem = claimedRFamily(delta, a, x);
  const auto rbar = re::applyRbar(rProblem, options);

  // Every node configuration of Rbar(R(Pi)) must relax (Definition 7) to a
  // Pi_rel configuration.  Rbar node configurations have singleton groups of
  // fresh labels; re-express them through the meanings as slot sets over the
  // R(Pi) alphabet.
  const auto targets = relNodeSlotConfigs(delta, a, x);
  for (const auto& config : rbar.problem.node.configurations()) {
    std::vector<Group> slots;
    for (const auto& g : config.groups()) {
      slots.push_back({rbar.meaning[g.set.min()], g.count});
    }
    const Configuration asSlots{std::move(slots)};
    const bool relaxes =
        std::any_of(targets.begin(), targets.end(),
                    [&](const Configuration& t) {
                      return asSlots.relaxesTo(t);
                    });
    if (!relaxes) {
      result.detail = "Rbar node configuration does not relax to Pi_rel: " +
                      config.render(rbar.problem.alphabet);
      return result;
    }
  }

  // Pi_rel must be Pi+ up to the fixed renaming: node constraints coincide
  // by construction of relNodeSlotConfigs; the edge constraint (replacement
  // method over the six sets) must have the same language as Pi+'s.
  const Problem relRenamed = relProblemRenamed(delta, a, x);
  const Problem plus = familyPlusProblem(delta, a, x);
  if (!re::sameLanguage(relRenamed.edge, plus.edge, 6)) {
    result.detail = "Pi_rel edge constraint does not match Pi+";
    return result;
  }
  if (!sameConfigurationSet(relRenamed.node, plus.node)) {
    result.detail = "Pi_rel node constraint does not match Pi+";
    return result;
  }

  result.ok = true;
  return result;
}

Lemma8Result verifyLemma8Symbolic(Count delta, Count a, Count x) {
  Lemma8Result result;
  const auto fail = [&](std::string why) {
    result.detail = std::move(why);
    return result;
  };
  if (x + 2 > a || a > delta) {
    return fail("parameters outside x + 2 <= a <= delta");
  }

  // p0: Lemma 6 (exact for any Delta).
  const auto lemma6 = verifyLemma6(delta, a, x);
  if (!lemma6.ok) return fail("lemma 6 failed: " + lemma6.detail);
  const Problem rProblem = claimedRFamily(delta, a, x);

  // p1: the strength relation of the node constraint of R(Pi); the scalable
  // computation is exact when it succeeds (Delta-independent cost).
  re::StrengthRelation rel(8);
  try {
    rel = re::computeStrengthScalable(rProblem.node, 8);
  } catch (const re::Error&) {
    return fail("node strength relation undecided at this Delta");
  }
  rel.checkPreorder();

  // p2: the right-closed sets w.r.t. the Figure 5 diagram.
  const auto rc = rel.allRightClosedSets(LabelSet::full(8));

  // p3 (step A): a right-closed set without P is contained in MUBQ, so
  // fewer than x+2 P-slots forces a relaxation to configuration 1.
  const LabelSet mubq{kRM, kRU, kRB, kRQ};
  for (const LabelSet s : rc) {
    if (!s.contains(kRP) && !s.subsetOf(mubq)) {
      return fail("right-closed set without P not inside MUBQ");
    }
  }
  // p4 (step B): a right-closed set without U is contained in ABPQ.
  const LabelSet abpq{kRA, kRB, kRP, kRQ};
  for (const LabelSet s : rc) {
    if (!s.contains(kRU) && !s.subsetOf(abpq)) {
      return fail("right-closed set without U not inside ABPQ");
    }
  }
  // p5 (step C / fact f1): no word of N_{R(Pi)} holds >= 1 M, >= x+1 P and
  // >= Delta-a U simultaneously.  The counting glue needs a-x-2 >= 0 filler
  // slots, which the lemma's precondition guarantees.
  if (a - x - 2 < 0) return fail("counting glue violated (a - x - 2 < 0)");
  {
    const Configuration probe({{LabelSet{kRM}, 1},
                               {LabelSet{kRP}, x + 1},
                               {LabelSet{kRU}, delta - a},
                               {LabelSet::full(8), a - x - 2}});
    if (rProblem.node.intersectsConfiguration(probe)) {
      return fail("forbidden configuration f1 present in N_{R(Pi)}");
    }
  }
  // p6 (step D): right-closed sets without M avoid X as well (M >= X), so
  // they live inside OUABPQ.
  const LabelSet ouabpq{kRO, kRU, kRA, kRB, kRP, kRQ};
  for (const LabelSet s : rc) {
    if (!s.contains(kRM) && !s.subsetOf(ouabpq)) {
      return fail("right-closed set without M not inside OUABPQ");
    }
  }
  // p7 (step E): within OUABPQ, a right-closed set without B is inside PQ.
  const LabelSet pq{kRP, kRQ};
  for (const LabelSet s : rc) {
    if (s.subsetOf(ouabpq) && !s.contains(kRB) && !s.subsetOf(pq)) {
      return fail("right-closed set without B not inside PQ");
    }
  }
  // p8 (step F): within OUABPQ, a right-closed set without A is inside UBPQ.
  const LabelSet ubpq{kRU, kRB, kRP, kRQ};
  for (const LabelSet s : rc) {
    if (s.subsetOf(ouabpq) && !s.contains(kRA) && !s.subsetOf(ubpq)) {
      return fail("right-closed set without A not inside UBPQ");
    }
  }
  // p9 (step G / fact f2): the word A^{x+1} U^{Delta-a+1} B^{a-x-2} is not
  // in N_{R(Pi)}.
  {
    re::Word w(8, 0);
    w[kRA] = x + 1;
    w[kRU] = delta - a + 1;
    w[kRB] = a - x - 2;
    if (rProblem.node.containsWord(w)) {
      return fail("forbidden word f2 present in N_{R(Pi)}");
    }
  }

  // p10: Pi_rel is Pi+ up to the fixed renaming.
  const Problem relRenamed = relProblemRenamed(delta, a, x);
  const Problem plus = familyPlusProblem(delta, a, x);
  if (!re::sameLanguage(relRenamed.edge, plus.edge, 6)) {
    return fail("Pi_rel edge constraint does not match Pi+");
  }
  if (!sameConfigurationSet(relRenamed.node, plus.node)) {
    return fail("Pi_rel node constraint does not match Pi+");
  }

  result.ok = true;
  return result;
}

}  // namespace relb::core
