// The paper's explicit algorithmic conversions, implemented as real
// (0- or 1-round) procedures on labeled graphs:
//
//   * Lemma 5  — a k-outdegree dominating set yields a solution of
//                Pi_Delta(a, k) in one round;
//   * Lemma 9  — a Delta-edge coloring converts any solution of
//                Pi+_Delta(a, x) into a solution of
//                Pi_Delta(floor((a-2x-1)/2), x+1) in zero rounds;
//   * Lemma 11 — monotonicity: a solution of Pi_Delta(a', x') yields one of
//                Pi_Delta(a, x) for a <= a', x >= x' in zero rounds.
//
// All procedures are strictly local: the output half-edge labels of a node
// depend only on that node's own labels, its edge colors, and (for Lemma 5)
// one round of neighbor information.  Synthetic Pi+ solution generators are
// provided so Lemma 9 can be exercised on concrete trees, including the
// C/A adjacency case that motivates the edge-coloring trick.
#pragma once

#include "core/family.hpp"
#include "local/graph.hpp"
#include "local/halfedge.hpp"
#include "local/network.hpp"
#include "local/verify.hpp"

namespace relb::core {

/// Lemma 5.  `inSet`/`orientation` must form a k-outdegree dominating set.
/// Produces a labeling that solves Pi_Delta(a, k) (checked at full-degree
/// nodes; `a` only selects the target problem, the A configuration is not
/// used).  One communication round is simulated internally.
[[nodiscard]] local::HalfEdgeLabeling lemma5Labeling(
    const local::Graph& g, const std::vector<bool>& inSet,
    const local::EdgeOrientation& orientation, re::Count delta, re::Count k);

/// Lemma 9.  `plusLabeling` must solve Pi+_Delta(a, x) on `g`, and `g` must
/// carry a proper edge coloring with at least floor((a-1)/2) colors.
/// Returns a labeling of Pi_Delta(floor((a-2x-1)/2), x+1).  Zero rounds: the
/// rewrite of a node's labels uses only local information.
[[nodiscard]] local::HalfEdgeLabeling lemma9Convert(
    const local::Graph& g, const local::HalfEdgeLabeling& plusLabeling,
    re::Count delta, re::Count a, re::Count x);

/// Lemma 11.  `labeling` must solve Pi_Delta(aFrom, xFrom); returns a
/// labeling of Pi_Delta(aTo, xTo) for aTo <= aFrom, xTo >= xFrom.
[[nodiscard]] local::HalfEdgeLabeling lemma11Relax(
    const local::Graph& g, const local::HalfEdgeLabeling& labeling,
    re::Count delta, re::Count aFrom, re::Count xFrom, re::Count aTo,
    re::Count xTo);

/// Synthetic Pi+_Delta(a, x) solution that exercises the C label: nodes at
/// even BFS depth output C^{deg-x'} X^{x'}, odd-depth nodes output
/// A^{a-x-1} X^{...}.  Requires a tree.
[[nodiscard]] local::HalfEdgeLabeling syntheticPlusLabelingAlternating(
    const local::Graph& g, re::Count delta, re::Count a, re::Count x);

/// Embeds a Pi_Delta(a, x) solution into Pi+_Delta(a, x) (M-nodes flip one
/// extra M to X; A-nodes keep only a-x-1 labels A).  Zero rounds.
[[nodiscard]] local::HalfEdgeLabeling plusFromFamilyLabeling(
    const local::Graph& g, const local::HalfEdgeLabeling& labeling,
    re::Count delta, re::Count a, re::Count x);

}  // namespace relb::core
