// Lemma 8: if Pi_Delta(a, x) has complexity T, then Pi+_Delta(a, x) has
// complexity max{T-1, 0}, for all x + 2 <= a <= Delta.
//
// The proof shows that every node configuration of Rbar(R(Pi_Delta(a,x)))
// can be relaxed (Definition 7) to a node configuration of the intermediate
// problem Pi_rel, and that Pi_rel is Pi+_Delta(a,x) up to renaming via
//     MUBQ -> M,  XMOUABPQ -> X,  PQ -> P,  OUABPQ -> O,
//     ABPQ -> A,  UBPQ -> C.
//
// Two machine checks are provided:
//   * verifyLemma8Exact   — computes Rbar(R(Pi)) in full (small Delta) and
//     checks the relaxation property, the relabeling reduction to Pi+, and
//     the Pi_rel ~ Pi+ renaming directly;
//   * verifyLemma8Symbolic — transcribes the paper's proof for arbitrary
//     Delta, verifying every finitely checkable premise (the right-closed
//     set structure of the Figure 5 diagram, the two forbidden-configuration
//     facts, the counting glue, and the Pi_rel ~ Pi+ renaming) with
//     Delta-independent cost.
#pragma once

#include <string>

#include "core/lemma6.hpp"
#include "re/re_step.hpp"

namespace relb::core {

/// The six label sets of Pi_rel over the renamed alphabet of R(Pi), indexed
/// by the corresponding Pi+ label (kM, kP, kO, kA, kX, kC).
[[nodiscard]] std::vector<re::LabelSet> relSets();

/// Pi_rel's node configurations in slot-set encoding: each group's LabelSet
/// is a set over the R(Pi) alphabet denoting one of the relSets().
[[nodiscard]] std::vector<re::Configuration> relNodeSlotConfigs(re::Count delta,
                                                                re::Count a,
                                                                re::Count x);

/// Pi_rel rendered as a 6-label problem (it should coincide with
/// familyPlusProblem up to the fixed renaming; verified by the checks).
[[nodiscard]] re::Problem relProblemRenamed(re::Count delta, re::Count a,
                                            re::Count x);

struct Lemma8Result {
  bool ok = false;
  std::string detail;
};

/// Full computation check; requires delta <= options.maxRbarDelta.
[[nodiscard]] Lemma8Result verifyLemma8Exact(re::Count delta, re::Count a,
                                             re::Count x,
                                             const re::StepOptions& options = {});

/// Proof-script check for arbitrary Delta (cost independent of Delta).
[[nodiscard]] Lemma8Result verifyLemma8Symbolic(re::Count delta, re::Count a,
                                                re::Count x);

}  // namespace relb::core
