#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "re/types.hpp"

namespace relb::core {

namespace {

double log2Safe(double v) { return v > 1.0 ? std::log2(v) : 0.0; }

}  // namespace

double liftDeterministic(double t, double log2n, double delta) {
  if (delta <= 1.0) return 0.0;
  return std::min(t, std::max(0.0, log2n) / std::log2(delta));
}

double liftRandomized(double t, double log2n, double delta) {
  if (delta <= 1.0) return 0.0;
  return std::min(t, log2Safe(log2n) / std::log2(delta));
}

double theorem1Deterministic(double log2n, double delta) {
  return liftDeterministic(log2Safe(delta), log2n, delta);
}

double theorem1Randomized(double log2n, double delta) {
  return liftRandomized(log2Safe(delta), log2n, delta);
}

double corollary2Deterministic(double log2n, double delta) {
  return std::min(log2Safe(delta), std::sqrt(std::max(0.0, log2n)));
}

double corollary2Randomized(double log2n, double delta) {
  return std::min(log2Safe(delta), std::sqrt(log2Safe(log2n)));
}

double bestLog2DeltaDeterministic(double log2n) {
  return std::sqrt(std::max(0.0, log2n));
}

double bestLog2DeltaRandomized(double log2n) {
  return std::sqrt(log2Safe(log2n));
}

re::Count maxAdmissibleK(re::Count delta, double epsilon) {
  if (delta < 2 || epsilon <= 0.0) return 0;
  const double k = std::pow(static_cast<double>(delta), epsilon);
  return static_cast<re::Count>(std::floor(k));
}

}  // namespace relb::core
