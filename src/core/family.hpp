// The parameterized problem family of Section 3.1.
//
// Pi_Delta(a, x) over labels {M, P, O, A, X}:
//   node:  M^{Delta-x} X^x   |   A^a X^{Delta-a}   |   P O^{Delta-1}
//   edge:  M[PAOX]  O[MAOX]  P[MX]  A[MOX]  X[MPAOX]
//
// Pi+_Delta(a, x) (Section 3.3) additionally has the label C; it is the
// renamed form of Pi_rel, the relaxation target of Rbar(R(Pi_Delta(a,x))):
//   node:  M^{Delta-x-1} X^{x+1} | A^{a-x-1} X^{Delta-a+x+1} | P O^{Delta-1}
//          | C^{Delta-x} X^x
//   edge:  as Pi plus C[MOAX] compatibilities (C behaves like a second A).
#pragma once

#include "re/problem.hpp"

namespace relb::core {

// Fixed label indices of Pi_Delta(a, x).
inline constexpr re::Label kM = 0;
inline constexpr re::Label kP = 1;
inline constexpr re::Label kO = 2;
inline constexpr re::Label kA = 3;
inline constexpr re::Label kX = 4;
// Additional label of Pi+_Delta(a, x).
inline constexpr re::Label kC = 5;

struct FamilyParams {
  re::Count delta = 0;
  re::Count a = 0;
  re::Count x = 0;
};

/// Pi_Delta(a, x).  Requires 0 <= a, x <= Delta and Delta >= 1.
[[nodiscard]] re::Problem familyProblem(re::Count delta, re::Count a,
                                        re::Count x);

/// Pi+_Delta(a, x).  Requires x + 1 <= a <= Delta and x + 1 <= Delta.
[[nodiscard]] re::Problem familyPlusProblem(re::Count delta, re::Count a,
                                            re::Count x);

/// Parameters of the next problem in the speedup chain (Corollary 10):
/// Pi_Delta(a, x) is one round harder than Pi_Delta(floor((a-2x-1)/2), x+1).
[[nodiscard]] FamilyParams speedupParams(const FamilyParams& p);

}  // namespace relb::core
