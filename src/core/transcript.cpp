#include "core/transcript.hpp"

#include <cmath>
#include <sstream>

#include "core/bounds.hpp"
#include "core/lemma8.hpp"
#include "re/diagram.hpp"
#include "re/zero_round.hpp"

namespace relb::core {

DeepVerification verifyChainDeep(const Chain& chain) {
  DeepVerification result;
  const std::string cert = certifyChain(chain);
  if (!cert.empty()) {
    result.failure = "chain certification: " + cert;
    return result;
  }
  result.hardnessChecks = static_cast<int>(chain.steps.size());
  for (std::size_t i = 0; i + 1 < chain.steps.size(); ++i) {
    const auto& s = chain.steps[i];
    const auto l6 = verifyLemma6(chain.delta, s.a, s.x);
    if (!l6.ok) {
      result.failure = "lemma 6 at step " + std::to_string(i) + ": " +
                       l6.detail;
      return result;
    }
    ++result.lemma6Checks;
    const auto l8 = verifyLemma8Symbolic(chain.delta, s.a, s.x);
    if (!l8.ok) {
      result.failure = "lemma 8 at step " + std::to_string(i) + ": " +
                       l8.detail;
      return result;
    }
    ++result.lemma8Checks;
  }
  result.ok = true;
  return result;
}

std::string writeTranscript(re::Count delta, re::Count k) {
  const Chain chain = exactChain(delta, k);
  const DeepVerification deep = verifyChainDeep(chain);
  if (!deep.ok) {
    throw re::Error("writeTranscript: verification failed: " + deep.failure);
  }

  std::ostringstream os;
  os << "LOWER BOUND TRANSCRIPT\n"
     << "======================\n\n"
     << "Claim: every deterministic port-numbering algorithm that computes a "
     << k << "-outdegree dominating\nset on " << delta
     << "-regular trees (even given a " << delta
     << "-edge coloring) needs more than " << chain.length() - 1
     << " rounds.\n"
     << "(Balliu, Brandt, Kuhn, Olivetti -- PODC 2021, Theorem 1 at "
        "Delta = "
     << delta << ", k = " << k << ".)\n\n";

  const auto pi0 = familyProblem(delta, delta, k);
  os << "Step 0 problem Pi_Delta(Delta, k) = Pi_" << delta << "(" << delta
     << ", " << k << "), solvable in one round given the dominating set "
     << "(Lemma 5):\n"
     << pi0.render() << "\n";
  os << "Edge diagram of the family (Figure 4):\n"
     << re::computeStrength(pi0.edge, pi0.alphabet.size())
            .renderDiagram(pi0.alphabet)
     << "\n";

  os << "Speedup chain (Corollary 10: Pi(a, x) is one round harder than "
        "Pi(floor((a-2x-1)/2), x+1)):\n\n";
  os << "  step    a            x    0-round solvable\n";
  for (std::size_t i = 0; i < chain.steps.size(); ++i) {
    const auto& s = chain.steps[i];
    os << "  " << i << "\t  " << s.a << "\t" << s.x << "\t"
       << (familyZeroRoundSolvable(delta, s.a, s.x) ? "yes" : "no  (Lemma 12)")
       << "\n";
  }
  os << "\nPer-step certificates (each machine-checked):\n";
  os << "  * Lemma 6 verified at " << deep.lemma6Checks
     << " steps: R(Pi(a,x)) equals the 8-label system\n"
     << "    [MUBQ]^{D-x}[XMOUABPQ]^x | [PQ][OUABPQ]^{D-1} | "
        "[ABPQ]^a[XMOUABPQ]^{D-a},  E = {XQ, OB, AU, PM}\n";
  os << "  * Lemma 8 verified at " << deep.lemma8Checks
     << " steps: every node configuration of Rbar(R(Pi)) relaxes to "
        "Pi_rel,\n"
     << "    whose renaming is Pi+(a,x); the forbidden configurations\n"
     << "      f1 = { >=1 M, >=x+1 P, >=D-a U }   and   f2 = A^{x+1} "
        "U^{D-a+1} B^{a-x-2}\n"
     << "    were checked absent from N_{R(Pi)} by exact flow "
        "computations.\n";
  os << "  * Lemma 9: a " << delta
     << "-edge coloring converts Pi+(a,x) solutions to "
        "Pi(floor((a-2x-1)/2), x+1)\n    solutions in zero rounds (validated "
        "on concrete trees by the test suite).\n";
  os << "  * Lemma 12/15 hardness verified at " << deep.hardnessChecks
     << " chain positions.\n\n";

  const auto t = static_cast<double>(chain.length());
  os << "Conclusion (PN model): Pi_0 needs >= " << chain.length()
     << " rounds; by Lemma 5 the " << k
     << "-outdegree dominating set needs >= " << chain.length() - 1
     << " rounds.\n\n";
  os << "LOCAL-model lifts (Theorem 14, unit constants):\n";
  for (const double log2n : {64.0, 256.0, 4096.0}) {
    os << "  n = 2^" << static_cast<long long>(log2n)
       << ":  deterministic >= "
       << liftDeterministic(t, log2n, static_cast<double>(delta))
       << ",  randomized >= "
       << liftRandomized(t, log2n, static_cast<double>(delta)) << "\n";
  }
  os << "\nEnd of transcript.\n";
  return os.str();
}

}  // namespace relb::core
