// Lemma 6: the exact form of R(Pi_Delta(a, x)).
//
// After renaming (X, M, O, U, A, B, P, Q), the node constraint of
// R(Pi_Delta(a,x)) is
//     [MUBQ]^{Delta-x} [XMOUABPQ]^x
//     [PQ] [OUABPQ]^{Delta-1}
//     [ABPQ]^a [XMOUABPQ]^{Delta-a}
// and the edge constraint is  XQ | OB | AU | PM.
//
// This module builds the claimed problem, computes R with the engine (exact
// for every Delta) and verifies the two coincide, including the meaning of
// every renamed label (the right-closed sets of Figure 4's diagram).
#pragma once

#include <string>

#include "core/family.hpp"
#include "re/re_step.hpp"

namespace relb::core {

// Fixed label indices of the renamed R(Pi_Delta(a,x)); the order is the
// engine's canonical order (meaning-set bitmask ascending).
inline constexpr re::Label kRX = 0;  // {X}
inline constexpr re::Label kRM = 1;  // {M, X}
inline constexpr re::Label kRO = 2;  // {O, X}
inline constexpr re::Label kRU = 3;  // {M, O, X}
inline constexpr re::Label kRA = 4;  // {A, O, X}
inline constexpr re::Label kRB = 5;  // {M, A, O, X}
inline constexpr re::Label kRP = 6;  // {P, A, O, X}
inline constexpr re::Label kRQ = 7;  // {M, P, A, O, X}

/// The eight meaning sets, indexed by the renamed label.
[[nodiscard]] std::vector<re::LabelSet> rFamilyMeanings();

/// The claimed problem R(Pi_Delta(a,x)) of Lemma 6 (alphabet X,M,O,U,A,B,P,Q).
[[nodiscard]] re::Problem claimedRFamily(re::Count delta, re::Count a,
                                         re::Count x);

struct Lemma6Result {
  bool ok = false;
  std::string detail;           // human-readable failure description
  re::StepResult computed;      // engine's R(Pi_Delta(a,x))
};

/// Machine-checks Lemma 6 for concrete parameters (any Delta; the check is
/// Delta-independent in cost).  Requires x + 2 <= a <= Delta as in the
/// lemma statement.
[[nodiscard]] Lemma6Result verifyLemma6(re::Count delta, re::Count a,
                                        re::Count x);

/// The claimed edge diagram of Pi_Delta(a,x) (Figure 4):
/// P -> A -> O -> X and M -> X.  Returns true iff the computed strength
/// relation matches exactly.
[[nodiscard]] bool verifyFigure4(re::Count delta, re::Count a, re::Count x);

}  // namespace relb::core
