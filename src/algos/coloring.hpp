// Distributed vertex colorings: Linial-style color reduction and the
// classic reduction to Delta+1 colors.
//
// linialColorReduction starts from the unique node identifiers (an n-proper
// coloring) and iterates the polynomial set-system step: colors are encoded
// as degree-d polynomials over F_q; a node picks an evaluation point where
// it differs from every neighbor, and (x, p(x)) is its new color.  Each
// iteration takes one communication round and squares-roots-ish the color
// count, reaching O(Delta^2) colors after O(log* n) rounds (Linial '92).
//
// reduceToDeltaPlusOne then removes one color class per round (each node of
// the highest class picks a free color in {0..Delta}), costing O(Delta^2)
// additional rounds from an O(Delta^2)-coloring.
#pragma once

#include <vector>

#include "local/graph.hpp"

namespace relb::algos {

struct ColoringResult {
  std::vector<int> color;
  int numColors = 0;
  int rounds = 0;
};

/// True iff `color` is a proper vertex coloring with values in
/// [0, numColors).
[[nodiscard]] bool isProperColoring(const local::Graph& g,
                                    const std::vector<int>& color,
                                    int numColors);

/// One round of Linial reduction from an m-coloring; returns the new
/// coloring with q^2 colors (q as described above).  Exposed for tests.
[[nodiscard]] ColoringResult linialStep(const local::Graph& g,
                                        const std::vector<int>& color, int m);

/// Full Linial reduction from unique ids to O(Delta^2) colors.
[[nodiscard]] ColoringResult linialColorReduction(const local::Graph& g);

/// Color-class elimination down to Delta+1 colors; one round per removed
/// class.  `start` must be proper.
[[nodiscard]] ColoringResult reduceToDeltaPlusOne(const local::Graph& g,
                                                  const ColoringResult& start);

/// Convenience pipeline: ids -> O(Delta^2) -> Delta+1 colors.
[[nodiscard]] ColoringResult properColoring(const local::Graph& g);

/// The smallest prime >= v (v <= ~10^9; trial division).
[[nodiscard]] long long nextPrime(long long v);

}  // namespace relb::algos
