#include "algos/luby.hpp"

#include <cstdint>
#include <limits>

#include "local/network.hpp"

namespace relb::algos {

namespace {

using local::NodeId;

enum class State : std::uint8_t { Undecided, InMis, Retired };

struct Msg {
  std::uint64_t value = 0;   // round 1: the node's random draw (0 = retired)
  bool joined = false;       // round 2: the node joined the MIS
};

}  // namespace

MisResult lubyMis(const local::Graph& g, std::mt19937& rng) {
  std::vector<State> state(static_cast<std::size_t>(g.numNodes()),
                           State::Undecided);
  // Per-node random streams would be independent in the real model; a single
  // generator drawing per node in fixed order is distributionally identical.
  std::uniform_int_distribution<std::uint64_t> dist(
      1, std::numeric_limits<std::uint64_t>::max());

  local::SyncNetwork<Msg> net(g);
  MisResult result;
  result.inSet.assign(static_cast<std::size_t>(g.numNodes()), false);

  auto undecidedLeft = [&] {
    for (const State s : state) {
      if (s == State::Undecided) return true;
    }
    return false;
  };

  std::vector<std::uint64_t> draw(static_cast<std::size_t>(g.numNodes()), 0);
  while (undecidedLeft()) {
    ++result.phases;
    // Round 1: undecided nodes broadcast a fresh random value.
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      draw[static_cast<std::size_t>(v)] =
          state[static_cast<std::size_t>(v)] == State::Undecided ? dist(rng)
                                                                 : 0;
    }
    net.step([&](NodeId v, std::span<const Msg>, std::span<Msg> out) {
      for (auto& m : out) m = {draw[static_cast<std::size_t>(v)], false};
    });
    // Round 2: local maxima join and announce; neighbors retire on receipt.
    std::vector<bool> joins(static_cast<std::size_t>(g.numNodes()), false);
    net.step([&](NodeId v, std::span<const Msg> in, std::span<Msg> out) {
      bool isMax = state[static_cast<std::size_t>(v)] == State::Undecided;
      if (isMax) {
        const std::uint64_t mine = draw[static_cast<std::size_t>(v)];
        for (const Msg& m : in) {
          // Ties broken by treating equal values as blocking; with 64-bit
          // draws ties are negligible, and blocking keeps independence safe.
          if (m.value >= mine) {
            isMax = false;
            break;
          }
        }
      }
      joins[static_cast<std::size_t>(v)] = isMax;
      for (auto& m : out) m = {0, isMax};
    });
    // Deliver join announcements (consume the inboxes of the *next* step's
    // first phase -- handled by reading here via one more bookkeeping pass).
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      if (joins[static_cast<std::size_t>(v)]) {
        state[static_cast<std::size_t>(v)] = State::InMis;
        result.inSet[static_cast<std::size_t>(v)] = true;
        for (const auto& he : g.neighbors(v)) {
          if (state[static_cast<std::size_t>(he.neighbor)] ==
              State::Undecided) {
            state[static_cast<std::size_t>(he.neighbor)] = State::Retired;
          }
        }
      }
    }
  }
  result.rounds = net.rounds();
  return result;
}

}  // namespace relb::algos
