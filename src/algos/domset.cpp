#include "algos/domset.hpp"

#include <algorithm>

#include "re/types.hpp"

namespace relb::algos {

namespace {

using local::EdgeId;
using local::Graph;
using local::NodeId;

// Sweeps color classes: class-c nodes with no dominated neighbor join S.
// Returns the rounds used (= number of classes).
int sweepClasses(const Graph& g, const std::vector<int>& color, int numColors,
                 std::vector<bool>& inSet) {
  inSet.assign(static_cast<std::size_t>(g.numNodes()), false);
  for (int c = 0; c < numColors; ++c) {
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      if (color[static_cast<std::size_t>(v)] != c) continue;
      bool dominated = false;
      for (const auto& he : g.neighbors(v)) {
        if (inSet[static_cast<std::size_t>(he.neighbor)]) {
          dominated = true;
          break;
        }
      }
      if (!dominated) inSet[static_cast<std::size_t>(v)] = true;
    }
  }
  return numColors;
}

}  // namespace

DomSetResult misFromColoring(const Graph& g) {
  const ColoringResult proper = properColoring(g);
  DomSetResult result;
  result.roundsColoring = proper.rounds;
  result.roundsSweep =
      sweepClasses(g, proper.color, proper.numColors, result.inSet);
  result.orientation.assign(static_cast<std::size_t>(g.numEdges()), 0);
  return result;
}

DomSetResult kOutdegreeDominatingSet(const Graph& g, int k) {
  if (k < 0) throw re::Error("kOutdegreeDominatingSet: k must be >= 0");
  if (k == 0) return misFromColoring(g);
  const ColoringResult proper = properColoring(g);
  const ArbdefectiveColoringResult arb = kArbdefectiveColoring(g, proper, k);
  DomSetResult result;
  result.roundsColoring = proper.rounds;
  result.roundsDefective = arb.rounds;
  result.roundsSweep = sweepClasses(g, arb.color, arb.numColors, result.inSet);
  // The arbdefective orientation restricted to G[S] witnesses outdegree <= k:
  // intra-S edges always join same-class nodes (a later class member never
  // joins next to an existing S node).
  result.orientation = arb.orientation;
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    const bool inside = result.inSet[static_cast<std::size_t>(u)] &&
                        result.inSet[static_cast<std::size_t>(v)];
    if (!inside) result.orientation[static_cast<std::size_t>(e)] = 0;
  }
  return result;
}

DomSetResult kDegreeDominatingSet(const Graph& g, int k) {
  if (k < 0) throw re::Error("kDegreeDominatingSet: k must be >= 0");
  if (k == 0) return misFromColoring(g);
  const ColoringResult proper = properColoring(g);
  const DefectiveColoringResult def = kDefectiveColoring(g, proper, k);
  DomSetResult result;
  result.roundsColoring = proper.rounds;
  result.roundsDefective = def.rounds;
  result.roundsSweep = sweepClasses(g, def.color, def.numColors, result.inSet);
  result.orientation.assign(static_cast<std::size_t>(g.numEdges()), 0);
  return result;
}

std::vector<bool> greedyMis(const Graph& g) {
  std::vector<bool> inSet(static_cast<std::size_t>(g.numNodes()), false);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    bool blocked = false;
    for (const auto& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) blocked = true;
    }
    if (!blocked) inSet[static_cast<std::size_t>(v)] = true;
  }
  return inSet;
}

std::vector<bool> greedyDominatingSet(const Graph& g) {
  // Classic greedy: repeatedly take the node covering the most uncovered
  // nodes.
  std::vector<bool> inSet(static_cast<std::size_t>(g.numNodes()), false);
  std::vector<bool> covered(static_cast<std::size_t>(g.numNodes()), false);
  auto gain = [&](NodeId v) {
    int t = covered[static_cast<std::size_t>(v)] ? 0 : 1;
    for (const auto& he : g.neighbors(v)) {
      if (!covered[static_cast<std::size_t>(he.neighbor)]) ++t;
    }
    return t;
  };
  while (true) {
    NodeId best = -1;
    int bestGain = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      if (inSet[static_cast<std::size_t>(v)]) continue;
      const int t = gain(v);
      if (t > bestGain) {
        bestGain = t;
        best = v;
      }
    }
    if (best < 0) break;
    inSet[static_cast<std::size_t>(best)] = true;
    covered[static_cast<std::size_t>(best)] = true;
    for (const auto& he : g.neighbors(best)) {
      covered[static_cast<std::size_t>(he.neighbor)] = true;
    }
  }
  return inSet;
}

}  // namespace relb::algos
