// Luby's randomized MIS algorithm (Luby '86 / Alon-Babai-Itai '86), run on
// the synchronous message-passing simulator.  Each phase: every undecided
// node draws a random value, local maxima join the MIS, and joined nodes'
// neighbors retire.  O(log n) phases w.h.p.; each phase costs two
// communication rounds.
#pragma once

#include <random>
#include <vector>

#include "local/graph.hpp"

namespace relb::algos {

struct MisResult {
  std::vector<bool> inSet;
  int rounds = 0;   // communication rounds executed
  int phases = 0;   // Luby phases
};

[[nodiscard]] MisResult lubyMis(const local::Graph& g, std::mt19937& rng);

}  // namespace relb::algos
