// Defective and arbdefective colorings (Section 1.1 of the paper).
//
// A k-defective c-coloring partitions the nodes into c classes such that
// every class induces maximum degree <= k.  A k-arbdefective c-coloring
// additionally orients the intra-class edges so every node has outdegree
// <= k within its class.
//
// kDefectiveColoring is the one-round polynomial construction (Kuhn '09
// flavor): from a proper (Delta+1)-coloring, a node re-encodes its color as
// a linear polynomial over F_q (q ~ Delta/k prime) and keeps the evaluation
// point minimizing agreements with its neighbors; classes are the pairs
// (x, p(x)), giving O((Delta/k)^2) classes with defect <= Delta/q <= k.
//
// kArbdefectiveColoring is the sequential-bin construction: processing
// proper color classes in order, each node picks the bin (of
// ceil((Delta+1)/(k+1)) bins) least used by its already-processed
// neighbors and orients its intra-bin edges towards them; pigeonhole gives
// outdegree <= k.  One round per proper color class.
#pragma once

#include <vector>

#include "algos/coloring.hpp"
#include "local/graph.hpp"
#include "local/verify.hpp"

namespace relb::algos {

struct DefectiveColoringResult {
  std::vector<int> color;
  int numColors = 0;
  int rounds = 0;  // rounds spent in this stage (excludes the input coloring)
};

struct ArbdefectiveColoringResult {
  std::vector<int> color;
  /// Orientation of intra-class edges (+1: endpoint0 -> endpoint1).
  local::EdgeOrientation orientation;
  int numColors = 0;
  int rounds = 0;
};

/// Maximum degree induced inside any single color class.
[[nodiscard]] int defectOf(const local::Graph& g,
                           const std::vector<int>& color);

/// Maximum outdegree inside any single color class under `orientation`;
/// -1 if an intra-class edge is unoriented.
[[nodiscard]] int arbdefectOf(const local::Graph& g,
                              const std::vector<int>& color,
                              const local::EdgeOrientation& orientation);

[[nodiscard]] DefectiveColoringResult kDefectiveColoring(
    const local::Graph& g, const ColoringResult& proper, int k);

[[nodiscard]] ArbdefectiveColoringResult kArbdefectiveColoring(
    const local::Graph& g, const ColoringResult& proper, int k);

}  // namespace relb::algos
