#include "algos/coloring.hpp"

#include <algorithm>
#include <cmath>

#include "local/network.hpp"
#include "re/types.hpp"

namespace relb::algos {

namespace {

using local::Graph;
using local::NodeId;

// Evaluates the polynomial whose base-q digits are `color` at point x, over
// F_q.
long long evalPoly(long long color, long long q, long long x) {
  long long value = 0;
  long long power = 1;
  while (color > 0) {
    value = (value + (color % q) * power) % q;
    power = (power * x) % q;
    color /= q;
  }
  return value;
}

// Degree of the base-q encoding of colors < m (number of digits - 1).
int polyDegree(long long m, long long q) {
  int digits = 1;
  long long cap = q;
  while (cap < m) {
    cap *= q;
    ++digits;
  }
  return digits - 1;
}

}  // namespace

long long nextPrime(long long v) {
  if (v <= 2) return 2;
  for (long long c = v % 2 == 0 ? v + 1 : v;; c += 2) {
    bool prime = true;
    for (long long d = 3; d * d <= c; d += 2) {
      if (c % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) return c;
  }
}

bool isProperColoring(const Graph& g, const std::vector<int>& color,
                      int numColors) {
  if (static_cast<NodeId>(color.size()) != g.numNodes()) return false;
  for (int c : color) {
    if (c < 0 || c >= numColors) return false;
  }
  for (local::EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (color[static_cast<std::size_t>(u)] ==
        color[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

ColoringResult linialStep(const Graph& g, const std::vector<int>& color,
                          int m) {
  const long long delta = std::max(1, g.maxDegree());
  // Smallest prime q such that colors < m fit into degree-d polynomials with
  // q > delta * d (then some evaluation point separates a node from all
  // neighbors).
  long long q = 2;
  while (true) {
    q = nextPrime(q);
    const int d = polyDegree(m, q);
    if (q > delta * d) break;
    ++q;
  }
  const int d = polyDegree(m, q);
  (void)d;

  // One communication round: exchange colors, then pick a separating point.
  local::SyncNetwork<int> net(g);
  net.step([&](NodeId v, std::span<const int>, std::span<int> out) {
    for (auto& msg : out) msg = color[static_cast<std::size_t>(v)];
  });
  ColoringResult result;
  result.color.resize(static_cast<std::size_t>(g.numNodes()));
  net.step([&](NodeId v, std::span<const int> in, std::span<int> out) {
    const long long mine = color[static_cast<std::size_t>(v)];
    long long chosenX = -1;
    for (long long x = 0; x < q && chosenX < 0; ++x) {
      bool separates = true;
      for (int neighborColor : in) {
        if (neighborColor != mine &&
            evalPoly(neighborColor, q, x) == evalPoly(mine, q, x)) {
          separates = false;
          break;
        }
        if (neighborColor == mine) {
          // Input not proper; no point can separate equal colors.
          separates = false;
          break;
        }
      }
      if (separates) chosenX = x;
    }
    if (chosenX < 0) {
      throw re::Error("linialStep: no separating point (improper input?)");
    }
    result.color[static_cast<std::size_t>(v)] =
        static_cast<int>(chosenX * q + evalPoly(mine, q, chosenX));
    for (auto& msg : out) msg = 0;
  });
  result.numColors = static_cast<int>(q * q);
  result.rounds = 1;
  return result;
}

ColoringResult linialColorReduction(const Graph& g) {
  ColoringResult current;
  current.color.resize(static_cast<std::size_t>(g.numNodes()));
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    current.color[static_cast<std::size_t>(v)] = static_cast<int>(v);
  }
  current.numColors = static_cast<int>(g.numNodes());
  current.rounds = 0;
  while (true) {
    const ColoringResult next = linialStep(g, current.color, current.numColors);
    const int rounds = current.rounds + next.rounds;
    if (next.numColors >= current.numColors) break;  // fixed point reached
    current = next;
    current.rounds = rounds;
  }
  return current;
}

ColoringResult reduceToDeltaPlusOne(const Graph& g,
                                    const ColoringResult& start) {
  const int target = g.maxDegree() + 1;
  ColoringResult current = start;
  while (current.numColors > target) {
    const int top = current.numColors - 1;
    // One round: top-class nodes learn neighbor colors and recolor greedily.
    // (Top-class nodes form an independent set, so simultaneous recoloring
    // is safe.)
    std::vector<int> next = current.color;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      if (current.color[static_cast<std::size_t>(v)] != top) continue;
      std::vector<bool> used(static_cast<std::size_t>(target), false);
      for (const auto& he : g.neighbors(v)) {
        const int c = current.color[static_cast<std::size_t>(he.neighbor)];
        if (c < target) used[static_cast<std::size_t>(c)] = true;
      }
      int c = 0;
      while (used[static_cast<std::size_t>(c)]) ++c;
      next[static_cast<std::size_t>(v)] = c;
    }
    current.color = std::move(next);
    --current.numColors;
    ++current.rounds;
  }
  return current;
}

ColoringResult properColoring(const Graph& g) {
  return reduceToDeltaPlusOne(g, linialColorReduction(g));
}

}  // namespace relb::algos
