#include "algos/defective.hpp"

#include <algorithm>

#include "re/types.hpp"

namespace relb::algos {

namespace {

using local::EdgeId;
using local::Graph;
using local::NodeId;

long long evalLinear(long long color, long long q, long long x) {
  // color = a + b*q encodes the polynomial a + b*X over F_q.
  const long long a = color % q;
  const long long b = color / q;
  return (a + b * x) % q;
}

}  // namespace

int defectOf(const Graph& g, const std::vector<int>& color) {
  int worst = 0;
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    int same = 0;
    for (const auto& he : g.neighbors(v)) {
      if (color[static_cast<std::size_t>(he.neighbor)] ==
          color[static_cast<std::size_t>(v)]) {
        ++same;
      }
    }
    worst = std::max(worst, same);
  }
  return worst;
}

int arbdefectOf(const Graph& g, const std::vector<int>& color,
                const local::EdgeOrientation& orientation) {
  std::vector<int> outdeg(static_cast<std::size_t>(g.numNodes()), 0);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (color[static_cast<std::size_t>(u)] !=
        color[static_cast<std::size_t>(v)]) {
      continue;
    }
    const int o = orientation[static_cast<std::size_t>(e)];
    if (o == 1) {
      ++outdeg[static_cast<std::size_t>(u)];
    } else if (o == -1) {
      ++outdeg[static_cast<std::size_t>(v)];
    } else {
      return -1;
    }
  }
  return g.numNodes() == 0
             ? 0
             : *std::max_element(outdeg.begin(), outdeg.end());
}

DefectiveColoringResult kDefectiveColoring(const Graph& g,
                                           const ColoringResult& proper,
                                           int k) {
  if (k < 0) throw re::Error("kDefectiveColoring: k must be >= 0");
  const long long delta = std::max(1, g.maxDegree());
  // q prime with q >= Delta/(k+1)+1 (defect bound Delta/q <= k ... use
  // k+1 in the denominator so the floor lands at <= k) and q^2 >= numColors
  // (so linear polynomials encode every input color).
  long long q = std::max<long long>(2, delta / (k + 1) + 1);
  while (q * q < proper.numColors) ++q;
  q = nextPrime(q);

  DefectiveColoringResult result;
  result.color.resize(static_cast<std::size_t>(g.numNodes()));
  // One round: every node knows its neighbors' proper colors and picks the
  // evaluation point with the fewest polynomial agreements.
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    const long long mine = proper.color[static_cast<std::size_t>(v)];
    long long bestX = 0;
    int bestAgreements = g.numNodes();
    for (long long x = 0; x < q; ++x) {
      int agreements = 0;
      for (const auto& he : g.neighbors(v)) {
        const long long theirs =
            proper.color[static_cast<std::size_t>(he.neighbor)];
        if (evalLinear(theirs, q, x) == evalLinear(mine, q, x)) ++agreements;
      }
      if (agreements < bestAgreements) {
        bestAgreements = agreements;
        bestX = x;
      }
    }
    result.color[static_cast<std::size_t>(v)] =
        static_cast<int>(bestX * q + evalLinear(mine, q, bestX));
  }
  result.numColors = static_cast<int>(q * q);
  result.rounds = 1;
  return result;
}

ArbdefectiveColoringResult kArbdefectiveColoring(const Graph& g,
                                                 const ColoringResult& proper,
                                                 int k) {
  if (k < 0) throw re::Error("kArbdefectiveColoring: k must be >= 0");
  const int delta = std::max(1, g.maxDegree());
  const int bins = (delta + 1 + k) / (k + 1);  // ceil((Delta+1)/(k+1))

  ArbdefectiveColoringResult result;
  result.color.assign(static_cast<std::size_t>(g.numNodes()), -1);
  result.orientation.assign(static_cast<std::size_t>(g.numEdges()), 0);
  result.numColors = bins;
  // One round per proper color class: members (an independent set) pick the
  // bin least used among already-processed neighbors and orient intra-bin
  // edges towards those neighbors.
  for (int c = 0; c < proper.numColors; ++c) {
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      if (proper.color[static_cast<std::size_t>(v)] != c) continue;
      std::vector<int> load(static_cast<std::size_t>(bins), 0);
      for (const auto& he : g.neighbors(v)) {
        const int b = result.color[static_cast<std::size_t>(he.neighbor)];
        if (b >= 0) ++load[static_cast<std::size_t>(b)];
      }
      const int bin = static_cast<int>(
          std::min_element(load.begin(), load.end()) - load.begin());
      result.color[static_cast<std::size_t>(v)] = bin;
      for (const auto& he : g.neighbors(v)) {
        if (result.color[static_cast<std::size_t>(he.neighbor)] == bin) {
          // Orient v -> neighbor.
          const auto [e0, e1] = g.endpoints(he.edge);
          result.orientation[static_cast<std::size_t>(he.edge)] =
              (e0 == v) ? +1 : -1;
        }
      }
    }
    ++result.rounds;
  }
  return result;
}

}  // namespace relb::algos
