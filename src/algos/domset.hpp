// Bounded (out-)degree dominating sets from colorings (Section 1.1):
// iterate over the color classes of a k-(arb)defective coloring; when a
// class is processed, every node of that class with no dominating neighbor
// yet joins the set.  Edges inside the final set connect nodes that joined
// in the same round, hence of the same class, so the class's (out)degree
// bound caries over to G[S].
//
// Round accounting separates the stages so the Delta- and k-dependence of
// each stage can be reported against the paper's cited complexities.
#pragma once

#include "algos/defective.hpp"

namespace relb::algos {

struct DomSetResult {
  std::vector<bool> inSet;
  local::EdgeOrientation orientation;  // meaningful for the outdegree variant
  int roundsColoring = 0;   // proper coloring stage (O(Delta^2 + log* n))
  int roundsDefective = 0;  // defective / arbdefective stage
  int roundsSweep = 0;      // class-sweep stage
  [[nodiscard]] int totalRounds() const {
    return roundsColoring + roundsDefective + roundsSweep;
  }
};

/// Maximal independent set by sweeping the classes of a proper coloring
/// (k = 0 case; O(Delta^2 + log* n) rounds overall).
[[nodiscard]] DomSetResult misFromColoring(const local::Graph& g);

/// k-outdegree dominating set via the arbdefective-coloring route.
[[nodiscard]] DomSetResult kOutdegreeDominatingSet(const local::Graph& g,
                                                   int k);

/// k-degree dominating set via the defective-coloring route
/// (O((Delta/k)^2) sweep rounds).
[[nodiscard]] DomSetResult kDegreeDominatingSet(const local::Graph& g, int k);

/// Sequential greedy baselines (not distributed; used for validation and
/// set-size comparisons).
[[nodiscard]] std::vector<bool> greedyMis(const local::Graph& g);
[[nodiscard]] std::vector<bool> greedyDominatingSet(const local::Graph& g);

}  // namespace relb::algos
