// Text form of family definitions (docs/families.md gives the grammar).
//
// Line-oriented, one directive per line; '#' at the start of a line begins
// a comment; blank lines separate sections but carry no meaning.  The
// canonical serialization is deterministic and renderFamilyText's output
// re-parses to a structurally identical FamilyDef, so
// renderFamilyText(parseFamilyText(t)) is a fixpoint after one round --
// the property the fuzz target and the round-trip oracles pin.
//
// Hardening mirrors io::parseProblemText: a total input cap, a per-line
// cap, and a printable-text check run before any grammar work, so the
// parser is safe on arbitrary fuzz input (every rejection is an re::Error
// naming the line).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "family/def.hpp"

namespace relb::family {

/// Parses a complete definition.  Throws re::Error with a 1-based line
/// number on malformed input; the result always passes validateDef.
[[nodiscard]] FamilyDef parseFamilyText(std::string_view text);

/// Canonical serialization (header comment, metadata, parameters,
/// alphabet, node templates, edge templates).
[[nodiscard]] std::string renderFamilyText(const FamilyDef& def);

/// Reads and parses a definition file.  Throws re::Error on I/O failure or
/// parse errors (the message names the path).
[[nodiscard]] FamilyDef loadFamilyFile(const std::filesystem::path& path);

/// Writes the canonical serialization atomically (temp file + rename, via
/// io::atomicWriteFile).
void saveFamilyFile(const std::filesystem::path& path, const FamilyDef& def);

}  // namespace relb::family
