// The four built-in family definitions (docs/families.md has the bound
// table and citations):
//
//   pi                the paper's Pi_Delta(a, x) hardness family,
//                     re-expressed in the DSL; instantiation is bit-for-bit
//                     identical to core::familyProblem (pinned by tests)
//   two_ruling_set    2-ruling sets (Balliu-Brandt-Olivetti,
//                     arXiv 2004.08282)
//   maximal_matching  maximal matching in the port-numbering encoding
//                     (Khoury-Schild, arXiv 2505.15654)
//   delta_coloring    Delta-coloring with a parameterized alphabet
//                     (arXiv 2110.00643)
//
// Each definition's `bound` is the round lower bound autoLowerBound
// re-derives at the parameter defaults -- the mechanized floor of the
// published asymptotic bound, enforced by the driver's --family mode and
// the CI families job.  The same definitions ship as text under families/;
// a tier-1 test pins those files byte-for-byte to the canonical
// serialization of these built-ins.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "family/def.hpp"

namespace relb::family {

/// All built-ins, in the fixed order pi, two_ruling_set, maximal_matching,
/// delta_coloring.  Parsed once and cached; cheap to call repeatedly.
[[nodiscard]] const std::vector<FamilyDef>& builtinFamilies();

/// The built-in named `name`, or nullopt.
[[nodiscard]] std::optional<FamilyDef> findBuiltin(std::string_view name);

}  // namespace relb::family
