// FamilyDef: a parameterized LCL problem family (docs/families.md).
//
// A definition carries
//   * metadata -- name, human title, complexity model, citation, and the
//     published lower bound (an expression over the parameters, understood
//     at the parameter defaults);
//   * parameters with inclusive validity ranges (later ranges may reference
//     earlier parameters: `param a range 0 .. delta`) and optional defaults;
//   * `require` side conditions over the full parameter vector;
//   * an alphabet of plain labels and indexed comprehensions
//     (`C{i=1..delta}` names labels C1..C<delta>);
//   * node and edge configuration templates whose groups are label-set
//     atoms raised to expression exponents, optionally replicated by a
//     per-configuration comprehension (`... | for c=1..delta`).
//
// instantiate() turns (definition, parameter values) into a re::Problem by
// exactly the construction core::familyProblem uses -- templates expand in
// declaration order, zero-count groups vanish inside Configuration's
// normalization, Constraint::add drops exact duplicates -- so a DSL
// transcription of a hard-coded constructor reproduces it bit for bit
// (asserted for Pi_Delta(a, x) in tests/family and tests/prop).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "family/expr.hpp"
#include "re/problem.hpp"

namespace relb::family {

struct ParamDecl {
  std::string name;
  Expr lo;  // inclusive; may reference earlier parameters
  Expr hi;
  std::optional<Expr> defaultValue;
  friend bool operator==(const ParamDecl&, const ParamDecl&) = default;
};

/// One alphabet entry: a plain label name, or an indexed comprehension
/// `name{var=lo..hi [if cond]}` producing labels `name<var>`.
struct AlphabetItem {
  std::string name;
  bool comprehension = false;
  std::string var;
  Expr lo;
  Expr hi;
  Cond cond;  // empty conjunction = unconditional
  friend bool operator==(const AlphabetItem&, const AlphabetItem&) = default;
};

/// A reference to one label: `M` or `C{expr}` (name-plus-index).
struct LabelRef {
  std::string name;
  bool indexed = false;
  Expr index;
  friend bool operator==(const LabelRef&, const LabelRef&) = default;
};

/// A label-set atom: a single reference, an explicit set `[A B C]`, or a
/// set comprehension `[C{j} | j=lo..hi if cond]`.
struct SetAtom {
  std::vector<LabelRef> refs;  // exactly 1 for a comprehension
  bool comprehension = false;
  std::string var;
  Expr lo;
  Expr hi;
  Cond cond;
  friend bool operator==(const SetAtom&, const SetAtom&) = default;
};

struct GroupTemplate {
  SetAtom atom;
  Expr count;  // defaults to the literal 1 in the text form
  friend bool operator==(const GroupTemplate&, const GroupTemplate&) = default;
};

struct ConfigTemplate {
  std::vector<GroupTemplate> groups;
  /// Optional trailing `| for var=lo..hi [if cond]`: the template expands
  /// once per binding, in increasing order of `var`.
  bool comprehension = false;
  std::string var;
  Expr lo;
  Expr hi;
  Cond cond;
  friend bool operator==(const ConfigTemplate&, const ConfigTemplate&) =
      default;
};

struct FamilyDef {
  std::string name;
  std::string title;  // "" = absent (same for model / cite)
  std::string model;
  std::string cite;
  std::vector<ParamDecl> params;
  std::vector<Cond> requirements;
  /// Published round lower bound at the parameter defaults; absent when the
  /// family ships without a pinned bound.
  std::optional<Expr> bound;
  std::vector<AlphabetItem> alphabet;
  std::vector<ConfigTemplate> node;
  std::vector<ConfigTemplate> edge;

  friend bool operator==(const FamilyDef&, const FamilyDef&) = default;
};

/// Resolves the full parameter vector: overrides win, defaults fill the
/// rest, every value is validated against its (evaluated) range and every
/// `require` condition.  Throws re::Error on unknown override names,
/// missing values, empty ranges, out-of-range values, or failed
/// requirements.
[[nodiscard]] Env resolveParams(const FamilyDef& def, const Env& overrides);

/// Structural sanity independent of parameter values: non-empty name and
/// alphabet, at least one node and edge template, no duplicate parameter
/// names, comprehension variables distinct from parameters.  Throws
/// re::Error; parse and the builders call this, instantiate re-checks.
void validateDef(const FamilyDef& def);

/// Expands the definition under a fully resolved environment (use
/// resolveParams) into a validated problem.  Deterministic; throws
/// re::Error on any ill-formed expansion (duplicate labels, unknown label
/// references, negative exponents, empty sets with positive exponents,
/// non-uniform node degrees, edge degree != 2).
[[nodiscard]] re::Problem instantiate(const FamilyDef& def, const Env& params);

/// Convenience: resolveParams + instantiate.
[[nodiscard]] re::Problem instantiateWithDefaults(const FamilyDef& def,
                                                  const Env& overrides = {});

/// The published bound evaluated under `params`; nullopt when the
/// definition declares none.
[[nodiscard]] std::optional<re::Count> publishedBound(const FamilyDef& def,
                                                      const Env& params);

}  // namespace relb::family
