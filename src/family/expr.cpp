#include "family/expr.hpp"

#include <cctype>
#include <cstdlib>

namespace relb::family {

using re::Count;
using re::Error;

namespace {

// Magnitude guard: |operand| stays below 2^40, so sums fit trivially and a
// product of two guarded values fits in the 63 bits of Count.  Family
// parameters are degrees and exponents; nothing legitimate gets near this.
constexpr Count kMagnitudeGuard = Count{1} << 40;

Count guarded(Count v, const char* what) {
  if (v >= kMagnitudeGuard || v <= -kMagnitudeGuard) {
    throw Error(std::string("family expr: ") + what + " overflows the " +
                "evaluation guard");
  }
  return v;
}

Count floorDiv(Count a, Count b) {
  if (b == 0) throw Error("family expr: division by zero");
  Count q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

int precedence(Expr::Kind k) {
  switch (k) {
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
      return 1;
    case Expr::Kind::kMul:
    case Expr::Kind::kDiv:
      return 2;
    case Expr::Kind::kNeg:
      return 3;
    case Expr::Kind::kInt:
    case Expr::Kind::kVar:
      return 4;
  }
  return 4;
}

void renderInto(const Expr& e, std::string& out) {
  const auto child = [&](const Expr& c, bool needParens) {
    if (needParens) out += '(';
    renderInto(c, out);
    if (needParens) out += ')';
  };
  const int prec = precedence(e.kind);
  switch (e.kind) {
    case Expr::Kind::kInt:
      out += std::to_string(e.value);
      return;
    case Expr::Kind::kVar:
      out += e.name;
      return;
    case Expr::Kind::kNeg:
      out += '-';
      child(e.args[0], precedence(e.args[0].kind) < prec);
      return;
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
    case Expr::Kind::kDiv: {
      // The parser is left-associative, so the right child needs parentheses
      // already at equal precedence to round-trip structurally.
      child(e.args[0], precedence(e.args[0].kind) < prec);
      switch (e.kind) {
        case Expr::Kind::kAdd: out += " + "; break;
        case Expr::Kind::kSub: out += " - "; break;
        case Expr::Kind::kMul: out += " * "; break;
        default: out += " / "; break;
      }
      child(e.args[1], precedence(e.args[1].kind) <= prec);
      return;
    }
  }
}

Expr binary(Expr::Kind kind, Expr lhs, Expr rhs) {
  Expr e;
  e.kind = kind;
  e.args.push_back(std::move(lhs));
  e.args.push_back(std::move(rhs));
  return e;
}

}  // namespace

Expr Expr::integer(Count v) {
  Expr e;
  e.kind = Kind::kInt;
  e.value = v;
  return e;
}

Expr Expr::variable(std::string name) {
  Expr e;
  e.kind = Kind::kVar;
  e.name = std::move(name);
  return e;
}

Count eval(const Expr& e, const Env& env) {
  switch (e.kind) {
    case Expr::Kind::kInt:
      return guarded(e.value, "literal");
    case Expr::Kind::kVar: {
      const auto it = env.find(e.name);
      if (it == env.end()) {
        throw Error("family expr: unbound variable '" + e.name + "'");
      }
      return guarded(it->second, "variable");
    }
    case Expr::Kind::kNeg:
      return -eval(e.args[0], env);
    case Expr::Kind::kAdd:
      return guarded(eval(e.args[0], env) + eval(e.args[1], env), "sum");
    case Expr::Kind::kSub:
      return guarded(eval(e.args[0], env) - eval(e.args[1], env),
                     "difference");
    case Expr::Kind::kMul: {
      // Sub-results are each guarded below 2^40, so the product needs a
      // 128-bit intermediate to detect overflow rather than commit it.
      const auto product = static_cast<__int128>(eval(e.args[0], env)) *
                           static_cast<__int128>(eval(e.args[1], env));
      if (product >= kMagnitudeGuard || product <= -kMagnitudeGuard) {
        throw Error("family expr: product overflows the evaluation guard");
      }
      return static_cast<Count>(product);
    }
    case Expr::Kind::kDiv:
      return floorDiv(eval(e.args[0], env), eval(e.args[1], env));
  }
  throw Error("family expr: corrupt node");
}

bool eval(const Cond& c, const Env& env) {
  for (const Cond::Cmp& cmp : c.terms) {
    const Count l = eval(cmp.lhs, env);
    const Count r = eval(cmp.rhs, env);
    bool ok = false;
    if (cmp.op == "==") ok = l == r;
    else if (cmp.op == "!=") ok = l != r;
    else if (cmp.op == "<=") ok = l <= r;
    else if (cmp.op == ">=") ok = l >= r;
    else if (cmp.op == "<") ok = l < r;
    else if (cmp.op == ">") ok = l > r;
    else throw Error("family expr: unknown comparison '" + cmp.op + "'");
    if (!ok) return false;
  }
  return true;
}

std::string render(const Expr& e) {
  std::string out;
  renderInto(e, out);
  return out;
}

std::string render(const Cond& c) {
  std::string out;
  for (std::size_t i = 0; i < c.terms.size(); ++i) {
    if (i > 0) out += " and ";
    out += render(c.terms[i].lhs) + " " + c.terms[i].op + " " +
           render(c.terms[i].rhs);
  }
  return out;
}

void Scanner::skipSpace() {
  while (pos_ < text_.size() &&
         (text_[pos_] == ' ' || text_[pos_] == '\t')) {
    ++pos_;
  }
}

bool Scanner::atEnd() {
  skipSpace();
  return pos_ >= text_.size();
}

char Scanner::peek() {
  skipSpace();
  return pos_ < text_.size() ? text_[pos_] : '\0';
}

bool Scanner::consume(char c) {
  skipSpace();
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool Scanner::consumeWord(std::string_view word) {
  skipSpace();
  if (text_.substr(pos_, word.size()) != word) return false;
  const std::size_t after = pos_ + word.size();
  if (after < text_.size() &&
      (std::isalnum(static_cast<unsigned char>(text_[after])) != 0 ||
       text_[after] == '_')) {
    return false;  // prefix of a longer identifier
  }
  pos_ = after;
  return true;
}

std::optional<std::string> Scanner::ident() {
  skipSpace();
  if (pos_ >= text_.size()) return std::nullopt;
  const char first = text_[pos_];
  if (std::isalpha(static_cast<unsigned char>(first)) == 0 && first != '_') {
    return std::nullopt;
  }
  std::size_t end = pos_ + 1;
  while (end < text_.size() &&
         (std::isalnum(static_cast<unsigned char>(text_[end])) != 0 ||
          text_[end] == '_')) {
    ++end;
  }
  std::string out(text_.substr(pos_, end - pos_));
  pos_ = end;
  return out;
}

std::optional<Count> Scanner::integer() {
  skipSpace();
  std::size_t end = pos_;
  while (end < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[end])) != 0) {
    ++end;
  }
  if (end == pos_) return std::nullopt;
  if (end - pos_ > 12) fail("integer literal too long");
  const Count v = std::strtoll(std::string(text_.substr(pos_, end - pos_)).c_str(),
                               nullptr, 10);
  pos_ = end;
  return v;
}

bool Scanner::consumeRangeDots() {
  skipSpace();
  if (text_.substr(pos_, 2) == "..") {
    pos_ += 2;
    return true;
  }
  return false;
}

void Scanner::fail(const std::string& what) const {
  throw Error("family parse: " + what + " at column " +
              std::to_string(pos_ + 1) + " of '" + std::string(text_) + "'");
}

Expr Scanner::parseExpr() {
  Expr lhs = parseTerm();
  for (;;) {
    if (consume('+')) {
      lhs = binary(Expr::Kind::kAdd, std::move(lhs), parseTerm());
    } else if (consume('-')) {
      lhs = binary(Expr::Kind::kSub, std::move(lhs), parseTerm());
    } else {
      return lhs;
    }
  }
}

Expr Scanner::parseTerm() {
  Expr lhs = parseUnary();
  for (;;) {
    if (consume('*')) {
      lhs = binary(Expr::Kind::kMul, std::move(lhs), parseUnary());
    } else if (consume('/')) {
      lhs = binary(Expr::Kind::kDiv, std::move(lhs), parseUnary());
    } else {
      return lhs;
    }
  }
}

Expr Scanner::parseUnary() {
  if (consume('-')) {
    Expr e;
    e.kind = Expr::Kind::kNeg;
    e.args.push_back(parseUnary());
    return e;
  }
  return parsePrimary();
}

Expr Scanner::parsePrimary() {
  if (consume('(')) {
    Expr inner = parseExpr();
    if (!consume(')')) fail("expected ')'");
    return inner;
  }
  if (auto v = integer()) return Expr::integer(*v);
  if (auto name = ident()) return Expr::variable(std::move(*name));
  fail("expected integer, identifier, or '('");
}

Cond::Cmp Scanner::parseCmp() {
  Cond::Cmp cmp;
  cmp.lhs = parseExpr();
  skipSpace();
  for (std::string_view op : {"==", "!=", "<=", ">=", "<", ">"}) {
    if (remainder().substr(0, op.size()) == op) {
      cmp.op = std::string(op);
      for (std::size_t i = 0; i < op.size(); ++i) consume(op[i]);
      cmp.rhs = parseExpr();
      return cmp;
    }
  }
  fail("expected comparison operator");
}

Cond Scanner::parseCond() {
  Cond cond;
  cond.terms.push_back(parseCmp());
  while (consumeWord("and")) cond.terms.push_back(parseCmp());
  return cond;
}

Expr parseExpr(std::string_view text) {
  Scanner s(text);
  Expr e = s.parseExpr();
  if (!s.atEnd()) s.fail("trailing input after expression");
  return e;
}

Cond parseCond(std::string_view text) {
  Scanner s(text);
  Cond c = s.parseCond();
  if (!s.atEnd()) s.fail("trailing input after condition");
  return c;
}

}  // namespace relb::family
