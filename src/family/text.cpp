#include "family/text.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "io/certificate.hpp"

namespace relb::family {

using re::Error;

namespace {

constexpr std::size_t kMaxInputBytes = 1 << 20;  // 1 MiB
constexpr std::size_t kMaxLineBytes = 4096;

[[noreturn]] void failLine(std::size_t lineNo, const std::string& what) {
  throw Error("family parse: line " + std::to_string(lineNo) + ": " + what);
}

/// Trailing free text of a metadata directive (title/model/cite), trimmed.
std::string restText(Scanner& s, std::size_t lineNo, const char* directive) {
  s.skipSpace();
  std::string out(s.remainder());
  while (!out.empty() &&
         (out.back() == ' ' || out.back() == '\t')) {
    out.pop_back();
  }
  if (out.empty()) {
    failLine(lineNo, std::string(directive) + " needs a value");
  }
  return out;
}

/// `var=lo..hi [if cond]`, shared by every comprehension form.  `stop` is
/// the character that ends the clause ('}' / ']' / '\0' for end-of-line).
void parseBindingClause(Scanner& s, std::string& var, Expr& lo, Expr& hi,
                        Cond& cond) {
  auto name = s.ident();
  if (!name) s.fail("expected comprehension variable");
  var = std::move(*name);
  if (!s.consume('=')) s.fail("expected '=' after comprehension variable");
  lo = s.parseExpr();
  if (!s.consumeRangeDots()) s.fail("expected '..' in comprehension range");
  hi = s.parseExpr();
  if (s.consumeWord("if")) cond = s.parseCond();
}

LabelRef parseLabelRef(Scanner& s) {
  LabelRef ref;
  auto name = s.ident();
  if (!name) s.fail("expected label name");
  ref.name = std::move(*name);
  if (s.consume('{')) {
    ref.indexed = true;
    ref.index = s.parseExpr();
    if (!s.consume('}')) s.fail("expected '}' after label index");
  }
  return ref;
}

SetAtom parseSetAtom(Scanner& s) {
  SetAtom atom;
  if (!s.consume('[')) {
    atom.refs.push_back(parseLabelRef(s));
    return atom;
  }
  atom.refs.push_back(parseLabelRef(s));
  if (s.consume('|')) {
    atom.comprehension = true;
    parseBindingClause(s, atom.var, atom.lo, atom.hi, atom.cond);
  } else {
    while (!s.consume(']')) {
      if (s.atEnd()) s.fail("unterminated label set");
      atom.refs.push_back(parseLabelRef(s));
    }
    return atom;
  }
  if (!s.consume(']')) s.fail("expected ']' after set comprehension");
  return atom;
}

ConfigTemplate parseConfigTemplate(Scanner& s) {
  ConfigTemplate tmpl;
  while (!s.atEnd() && s.peek() != '|') {
    GroupTemplate group;
    group.atom = parseSetAtom(s);
    group.count = s.consume('^') ? s.parsePrimary() : Expr::integer(1);
    tmpl.groups.push_back(std::move(group));
  }
  if (tmpl.groups.empty()) s.fail("expected at least one group");
  if (s.consume('|')) {
    if (!s.consumeWord("for")) s.fail("expected 'for' after '|'");
    tmpl.comprehension = true;
    parseBindingClause(s, tmpl.var, tmpl.lo, tmpl.hi, tmpl.cond);
    if (!s.atEnd()) s.fail("trailing input after 'for' clause");
  }
  return tmpl;
}

AlphabetItem parseAlphabetItem(Scanner& s) {
  AlphabetItem item;
  auto name = s.ident();
  if (!name) s.fail("expected label name in alphabet");
  item.name = std::move(*name);
  if (s.consume('{')) {
    item.comprehension = true;
    parseBindingClause(s, item.var, item.lo, item.hi, item.cond);
    if (!s.consume('}')) s.fail("expected '}' after alphabet comprehension");
  }
  return item;
}

std::string renderRange(const Expr& lo, const Expr& hi) {
  return render(lo) + ".." + render(hi);
}

std::string renderBindingClause(const std::string& var, const Expr& lo,
                                const Expr& hi, const Cond& cond) {
  std::string out = var + "=" + renderRange(lo, hi);
  if (!cond.alwaysTrue()) out += " if " + render(cond);
  return out;
}

std::string renderLabelRef(const LabelRef& ref) {
  if (!ref.indexed) return ref.name;
  return ref.name + "{" + render(ref.index) + "}";
}

std::string renderSetAtom(const SetAtom& atom) {
  if (atom.comprehension) {
    return "[" + renderLabelRef(atom.refs.front()) + " | " +
           renderBindingClause(atom.var, atom.lo, atom.hi, atom.cond) + "]";
  }
  if (atom.refs.size() == 1 && !atom.refs.front().indexed) {
    return atom.refs.front().name;
  }
  std::string out = "[";
  for (std::size_t i = 0; i < atom.refs.size(); ++i) {
    if (i > 0) out += ' ';
    out += renderLabelRef(atom.refs[i]);
  }
  return out + "]";
}

std::string renderConfigTemplate(const ConfigTemplate& tmpl) {
  std::string out;
  for (std::size_t i = 0; i < tmpl.groups.size(); ++i) {
    if (i > 0) out += ' ';
    const GroupTemplate& g = tmpl.groups[i];
    out += renderSetAtom(g.atom);
    if (g.count == Expr::integer(1)) continue;
    if (g.count.kind == Expr::Kind::kInt ||
        g.count.kind == Expr::Kind::kVar) {
      out += "^" + render(g.count);
    } else {
      out += "^(" + render(g.count) + ")";
    }
  }
  if (tmpl.comprehension) {
    out += " | for " +
           renderBindingClause(tmpl.var, tmpl.lo, tmpl.hi, tmpl.cond);
  }
  return out;
}

}  // namespace

FamilyDef parseFamilyText(std::string_view text) {
  if (text.size() > kMaxInputBytes) {
    throw Error("family parse: input is " + std::to_string(text.size()) +
                " bytes (limit " + std::to_string(kMaxInputBytes) + ")");
  }
  FamilyDef def;
  bool sawFamily = false;
  std::istringstream iss{std::string(text)};
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(iss, line)) {
    ++lineNo;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.size() > kMaxLineBytes) {
      failLine(lineNo, "line is " + std::to_string(line.size()) +
                           " bytes long (limit " +
                           std::to_string(kMaxLineBytes) + ")");
    }
    for (const char ch : line) {
      const auto c = static_cast<unsigned char>(ch);
      if (c < 0x20 && ch != '\t') {
        failLine(lineNo, "control character in input");
      }
    }
    Scanner s(line);
    if (s.atEnd() || s.peek() == '#') continue;

    auto directive = s.ident();
    if (!directive) failLine(lineNo, "expected a directive");
    try {
      if (*directive == "family") {
        if (sawFamily) failLine(lineNo, "duplicate 'family' directive");
        auto name = s.ident();
        if (!name || !s.atEnd()) {
          failLine(lineNo, "'family' needs exactly one identifier");
        }
        def.name = std::move(*name);
        sawFamily = true;
        continue;
      }
      if (!sawFamily) {
        failLine(lineNo, "the first directive must be 'family <name>'");
      }
      if (*directive == "title") {
        if (!def.title.empty()) failLine(lineNo, "duplicate 'title'");
        def.title = restText(s, lineNo, "title");
      } else if (*directive == "model") {
        if (!def.model.empty()) failLine(lineNo, "duplicate 'model'");
        def.model = restText(s, lineNo, "model");
      } else if (*directive == "cite") {
        if (!def.cite.empty()) failLine(lineNo, "duplicate 'cite'");
        def.cite = restText(s, lineNo, "cite");
      } else if (*directive == "param") {
        ParamDecl p;
        auto name = s.ident();
        if (!name) s.fail("expected parameter name");
        p.name = std::move(*name);
        if (!s.consumeWord("range")) s.fail("expected 'range'");
        p.lo = s.parseExpr();
        if (!s.consumeRangeDots()) s.fail("expected '..' in range");
        p.hi = s.parseExpr();
        if (s.consumeWord("default")) p.defaultValue = s.parseExpr();
        if (!s.atEnd()) s.fail("trailing input after 'param'");
        def.params.push_back(std::move(p));
      } else if (*directive == "require") {
        Cond cond = s.parseCond();
        if (!s.atEnd()) s.fail("trailing input after 'require'");
        def.requirements.push_back(std::move(cond));
      } else if (*directive == "bound") {
        if (def.bound) failLine(lineNo, "duplicate 'bound'");
        Expr b = s.parseExpr();
        if (!s.atEnd()) s.fail("trailing input after 'bound'");
        def.bound = std::move(b);
      } else if (*directive == "alphabet") {
        if (!def.alphabet.empty()) failLine(lineNo, "duplicate 'alphabet'");
        while (!s.atEnd()) def.alphabet.push_back(parseAlphabetItem(s));
        if (def.alphabet.empty()) failLine(lineNo, "'alphabet' needs labels");
      } else if (*directive == "node") {
        def.node.push_back(parseConfigTemplate(s));
      } else if (*directive == "edge") {
        def.edge.push_back(parseConfigTemplate(s));
      } else {
        failLine(lineNo, "unknown directive '" + *directive + "'");
      }
    } catch (const Error& e) {
      // Scanner errors carry the column; prefix the line number once.
      const std::string what = e.what();
      if (what.rfind("family parse: line ", 0) == 0) throw;
      failLine(lineNo, what);
    }
  }
  if (!sawFamily) throw Error("family parse: no 'family' directive");
  validateDef(def);
  return def;
}

std::string renderFamilyText(const FamilyDef& def) {
  std::string out = "# relb-family v1\n";
  out += "family " + def.name + "\n";
  if (!def.title.empty()) out += "title " + def.title + "\n";
  if (!def.model.empty()) out += "model " + def.model + "\n";
  if (!def.cite.empty()) out += "cite " + def.cite + "\n";
  out += "\n";
  for (const ParamDecl& p : def.params) {
    out += "param " + p.name + " range " + render(p.lo) + " .. " +
           render(p.hi);
    if (p.defaultValue) out += " default " + render(*p.defaultValue);
    out += "\n";
  }
  for (const Cond& req : def.requirements) {
    out += "require " + render(req) + "\n";
  }
  if (def.bound) out += "bound " + render(*def.bound) + "\n";
  out += "\n";
  out += "alphabet";
  for (const AlphabetItem& item : def.alphabet) {
    out += ' ';
    if (item.comprehension) {
      out += item.name + "{" +
             renderBindingClause(item.var, item.lo, item.hi, item.cond) + "}";
    } else {
      out += item.name;
    }
  }
  out += "\n\n";
  for (const ConfigTemplate& tmpl : def.node) {
    out += "node " + renderConfigTemplate(tmpl) + "\n";
  }
  out += "\n";
  for (const ConfigTemplate& tmpl : def.edge) {
    out += "edge " + renderConfigTemplate(tmpl) + "\n";
  }
  return out;
}

FamilyDef loadFamilyFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open family file '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parseFamilyText(buffer.str());
  } catch (const Error& e) {
    throw Error(path.string() + ": " + e.what());
  }
}

void saveFamilyFile(const std::filesystem::path& path, const FamilyDef& def) {
  io::atomicWriteFile(path, renderFamilyText(def));
}

}  // namespace relb::family
