// Re-deriving a family's lower bound and certifying the run.
//
// deriveFamilyBound() instantiates a definition, runs the automatic
// lower-bound search (speedup + hardness-preserving merging, re/autobound),
// and builds a "speedup-trace" certificate of the R/Rbar iteration --
// byte-for-byte the certificate the CLI's --save-cert writes for the same
// problem and budgets, with the family name and parameter vector recorded
// in the engineInfo section.  Certificates stay engine-free verifiable
// through io::verifyCertificate / examples/certificate_verifier.
//
// The built-ins pin their expected derived bound in `bound`;
// FamilyDerivation::meetsPublishedBound() is what the driver's --family
// mode and the CI families job gate on.
#pragma once

#include <optional>

#include "family/def.hpp"
#include "io/certificate.hpp"
#include "re/autobound.hpp"
#include "re/engine.hpp"

namespace relb::family {

struct DeriveOptions {
  /// Speedup budget shared by the autobound chain and the certificate
  /// trace (the CLI's [maxSteps] positional).
  int maxSteps = 6;
  /// Merge target of the autobound chain (mirrors the driver).
  int autoboundMaxLabels = 10;
  /// The trace stops once the alphabet outgrows this (mirrors the driver).
  int traceMaxLabels = 16;
};

struct FamilyDerivation {
  Env params;
  re::Problem problem;
  re::AutoLowerBound bound;
  /// The definition's published bound under `params` (nullopt if none).
  std::optional<re::Count> published;
  io::Certificate certificate;

  /// True when no bound is declared or the derived bound reaches it.
  [[nodiscard]] bool meetsPublishedBound() const {
    return !published || bound.rounds >= *published;
  }
};

/// Records maxSteps of R / Rbar through the session as a "speedup-trace"
/// certificate (operator, renaming map, symmetric-ports verdict per step;
/// stops early on a solvable step or past maxLabels).  Identical semantics
/// to the driver's certificate path -- the driver calls this.
[[nodiscard]] io::Certificate buildTraceCertificate(const re::Problem& start,
                                                    re::EngineSession& session,
                                                    int maxSteps,
                                                    int maxLabels);

/// Appends the family name and parameter vector to a certificate's
/// engineInfo section (deterministic order: name first, then parameters
/// alphabetically).
void annotateCertificate(io::Certificate& cert, const FamilyDef& def,
                         const Env& params);

/// resolveParams + instantiate + autoLowerBound + annotated trace
/// certificate.  Throws re::Error on definition/parameter problems; engine
/// guards inside the bound search are absorbed into the returned bound's
/// StopReason (kEngineLimit), not thrown.
[[nodiscard]] FamilyDerivation deriveFamilyBound(
    const FamilyDef& def, const Env& overrides, re::EngineSession& session,
    const DeriveOptions& options = {});

}  // namespace relb::family
