#include "family/derive.hpp"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "re/zero_round.hpp"

namespace relb::family {

io::Certificate buildTraceCertificate(const re::Problem& start,
                                      re::EngineSession& session, int maxSteps,
                                      int maxLabels) {
  io::Certificate cert;
  cert.kind = "speedup-trace";
  cert.engineInfo.emplace_back("generator", "relb");

  const auto record = [&](const std::string& op, re::Problem problem,
                          std::optional<std::vector<re::LabelSet>> meaning) {
    io::CertificateStep step;
    step.op = op;
    step.meaning = std::move(meaning);
    step.zeroRoundSolvable = session.zeroRoundSolvable(
        problem, re::ZeroRoundMode::kSymmetricPorts);
    step.problem = std::move(problem);
    const bool stop = step.zeroRoundSolvable;
    cert.steps.push_back(std::move(step));
    return stop;
  };

  if (record("input", start, std::nullopt)) return cert;
  re::Problem current = start;
  for (int i = 0; i < maxSteps; ++i) {
    // An engine guard (alphabet outgrew the exact sweeps) ends the trace;
    // the prefix recorded so far is still a sound certificate.
    try {
      re::StepResult r = session.applyR(current);
      if (record("R", r.problem, r.meaning)) return cert;
      re::StepResult rbar = session.applyRbar(r.problem);
      if (record("Rbar", rbar.problem, rbar.meaning)) return cert;
      current = std::move(rbar.problem);
    } catch (const re::Error&) {
      return cert;
    }
    if (current.alphabet.size() > maxLabels) return cert;
  }
  return cert;
}

void annotateCertificate(io::Certificate& cert, const FamilyDef& def,
                         const Env& params) {
  cert.engineInfo.emplace_back("family", def.name);
  for (const auto& [name, value] : params) {
    cert.engineInfo.emplace_back("param." + name, std::to_string(value));
  }
}

FamilyDerivation deriveFamilyBound(const FamilyDef& def, const Env& overrides,
                                   re::EngineSession& session,
                                   const DeriveOptions& options) {
  FamilyDerivation out;
  out.params = resolveParams(def, overrides);
  out.problem = instantiate(def, out.params);
  out.published = publishedBound(def, out.params);

  re::AutoLowerBoundOptions lbOptions;
  lbOptions.maxSteps = options.maxSteps;
  lbOptions.maxLabels = options.autoboundMaxLabels;
  lbOptions.context = &session;
  out.bound = re::autoLowerBound(out.problem, lbOptions);

  out.certificate = buildTraceCertificate(out.problem, session,
                                          options.maxSteps,
                                          options.traceMaxLabels);
  annotateCertificate(out.certificate, def, out.params);
  return out;
}

}  // namespace relb::family
