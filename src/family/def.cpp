#include "family/def.hpp"

#include <set>
#include <string>
#include <vector>

namespace relb::family {

using re::Configuration;
using re::Constraint;
using re::Count;
using re::Error;
using re::Group;
using re::LabelSet;
using re::Problem;

namespace {

// Comprehension ranges are expanded eagerly; cap the width so a typo like
// `1..100000` fails fast instead of building an absurd alphabet (the
// alphabet itself is further capped at re::kMaxLabels by Alphabet::add).
constexpr Count kMaxComprehensionWidth = 4096;

void checkWidth(Count lo, Count hi, const std::string& var) {
  if (hi - lo + 1 > kMaxComprehensionWidth) {
    throw Error("family: comprehension over '" + var + "' spans " +
                std::to_string(hi - lo + 1) + " values (limit " +
                std::to_string(kMaxComprehensionWidth) + ")");
  }
}

/// Runs `body(env')` once per binding var=lo..hi (increasing) that passes
/// `cond`, where env' extends `env` with the binding.  A reversed (lo > hi)
/// range is simply empty.
template <typename Body>
void forEachBinding(const Env& env, const std::string& var, const Expr& lo,
                    const Expr& hi, const Cond& cond, Body&& body) {
  const Count l = eval(lo, env);
  const Count h = eval(hi, env);
  if (l > h) return;
  checkWidth(l, h, var);
  Env extended = env;
  for (Count v = l; v <= h; ++v) {
    extended[var] = v;
    if (!eval(cond, extended)) continue;
    body(extended);
  }
}

std::string labelName(const LabelRef& ref, const Env& env) {
  if (!ref.indexed) return ref.name;
  return ref.name + std::to_string(eval(ref.index, env));
}

LabelSet resolveAtom(const SetAtom& atom, const Env& env,
                     const re::Alphabet& alphabet) {
  LabelSet set;
  const auto addRef = [&](const LabelRef& ref, const Env& e) {
    const std::string name = labelName(ref, e);
    const auto label = alphabet.find(name);
    if (!label) {
      throw Error("family: configuration references unknown label '" + name +
                  "'");
    }
    set.insert(*label);
  };
  if (atom.comprehension) {
    forEachBinding(env, atom.var, atom.lo, atom.hi, atom.cond,
                   [&](const Env& e) { addRef(atom.refs.front(), e); });
  } else {
    for (const LabelRef& ref : atom.refs) addRef(ref, env);
  }
  return set;
}

Configuration expandConfig(const ConfigTemplate& tmpl, const Env& env,
                           const re::Alphabet& alphabet) {
  std::vector<Group> groups;
  for (const GroupTemplate& g : tmpl.groups) {
    const Count count = eval(g.count, env);
    if (count < 0) {
      throw Error("family: negative exponent " + std::to_string(count) +
                  " in configuration template");
    }
    if (count == 0) continue;  // matches Configuration's normalization
    const LabelSet set = resolveAtom(g.atom, env, alphabet);
    if (set.empty()) {
      throw Error(
          "family: empty label set with positive exponent in configuration "
          "template");
    }
    groups.push_back({set, count});
  }
  if (groups.empty()) {
    throw Error("family: configuration template expands to degree 0");
  }
  return Configuration(std::move(groups));
}

void expandInto(Constraint& constraint, const ConfigTemplate& tmpl,
                const Env& env, const re::Alphabet& alphabet) {
  if (tmpl.comprehension) {
    forEachBinding(env, tmpl.var, tmpl.lo, tmpl.hi, tmpl.cond,
                   [&](const Env& e) {
                     constraint.add(expandConfig(tmpl, e, alphabet));
                   });
  } else {
    constraint.add(expandConfig(tmpl, env, alphabet));
  }
}

/// The degree of the first configuration a template list produces (the node
/// constraint's Delta comes from here; every later configuration must
/// match, which Constraint::add enforces).
Count firstDegree(const std::vector<ConfigTemplate>& templates, const Env& env,
                  const char* side) {
  for (const ConfigTemplate& tmpl : templates) {
    std::optional<Count> degree;
    const auto probe = [&](const Env& e) {
      if (degree) return;
      Count d = 0;
      for (const GroupTemplate& g : tmpl.groups) {
        const Count count = eval(g.count, e);
        if (count > 0) d += count;
      }
      if (d > 0) degree = d;
    };
    if (tmpl.comprehension) {
      forEachBinding(env, tmpl.var, tmpl.lo, tmpl.hi, tmpl.cond, probe);
    } else {
      probe(env);
    }
    if (degree) return *degree;
  }
  throw Error(std::string("family: ") + side +
              " templates expand to no configurations");
}

void checkCompVar(const std::set<std::string>& paramNames,
                  const std::string& var, const char* where) {
  if (var.empty()) {
    throw Error(std::string("family: empty comprehension variable in ") +
                where);
  }
  if (paramNames.count(var) != 0) {
    throw Error("family: comprehension variable '" + var +
                "' shadows a parameter");
  }
}

}  // namespace

Env resolveParams(const FamilyDef& def, const Env& overrides) {
  validateDef(def);
  Env env;
  for (const ParamDecl& p : def.params) {
    Count value = 0;
    const auto it = overrides.find(p.name);
    if (it != overrides.end()) {
      value = it->second;
    } else if (p.defaultValue) {
      value = eval(*p.defaultValue, env);
    } else {
      throw Error("family '" + def.name + "': parameter '" + p.name +
                  "' has no default and no override");
    }
    const Count lo = eval(p.lo, env);
    const Count hi = eval(p.hi, env);
    if (lo > hi) {
      throw Error("family '" + def.name + "': parameter '" + p.name +
                  "' has empty range [" + std::to_string(lo) + ", " +
                  std::to_string(hi) + "]");
    }
    if (value < lo || value > hi) {
      throw Error("family '" + def.name + "': parameter '" + p.name + "' = " +
                  std::to_string(value) + " outside range [" +
                  std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
    env[p.name] = value;
  }
  for (const auto& [name, value] : overrides) {
    if (env.find(name) == env.end()) {
      throw Error("family '" + def.name + "': unknown parameter override '" +
                  name + "'");
    }
  }
  for (const Cond& req : def.requirements) {
    if (!eval(req, env)) {
      throw Error("family '" + def.name + "': requirement '" + render(req) +
                  "' violated");
    }
  }
  return env;
}

void validateDef(const FamilyDef& def) {
  if (def.name.empty()) throw Error("family: missing name");
  if (def.alphabet.empty()) {
    throw Error("family '" + def.name + "': empty alphabet");
  }
  if (def.node.empty() || def.edge.empty()) {
    throw Error("family '" + def.name +
                "': need at least one node and one edge template");
  }
  std::set<std::string> paramNames;
  for (const ParamDecl& p : def.params) {
    if (p.name.empty()) {
      throw Error("family '" + def.name + "': empty parameter name");
    }
    if (!paramNames.insert(p.name).second) {
      throw Error("family '" + def.name + "': duplicate parameter '" +
                  p.name + "'");
    }
  }
  for (const AlphabetItem& item : def.alphabet) {
    if (item.name.empty()) {
      throw Error("family '" + def.name + "': empty alphabet entry");
    }
    if (item.comprehension) checkCompVar(paramNames, item.var, "alphabet");
  }
  const auto checkTemplates = [&](const std::vector<ConfigTemplate>& list,
                                  const char* side) {
    for (const ConfigTemplate& tmpl : list) {
      if (tmpl.groups.empty()) {
        throw Error(std::string("family '") + def.name + "': empty " + side +
                    " configuration template");
      }
      if (tmpl.comprehension) checkCompVar(paramNames, tmpl.var, side);
      for (const GroupTemplate& g : tmpl.groups) {
        if (g.atom.refs.empty()) {
          throw Error(std::string("family '") + def.name +
                      "': empty label-set atom in " + side + " template");
        }
        if (g.atom.comprehension) {
          checkCompVar(paramNames, g.atom.var, side);
          if (g.atom.refs.size() != 1) {
            throw Error(std::string("family '") + def.name +
                        "': set comprehension must have exactly one "
                        "reference");
          }
        }
      }
    }
  };
  checkTemplates(def.node, "node");
  checkTemplates(def.edge, "edge");
}

Problem instantiate(const FamilyDef& def, const Env& params) {
  validateDef(def);
  Problem p;
  for (const AlphabetItem& item : def.alphabet) {
    if (item.comprehension) {
      forEachBinding(params, item.var, item.lo, item.hi, item.cond,
                     [&](const Env& e) {
                       p.alphabet.add(item.name +
                                      std::to_string(e.at(item.var)));
                     });
    } else {
      p.alphabet.add(item.name);
    }
  }

  Constraint node(firstDegree(def.node, params, "node"), {});
  for (const ConfigTemplate& tmpl : def.node) {
    expandInto(node, tmpl, params, p.alphabet);
  }
  p.node = std::move(node);

  Constraint edge(2, {});
  for (const ConfigTemplate& tmpl : def.edge) {
    expandInto(edge, tmpl, params, p.alphabet);
  }
  p.edge = std::move(edge);

  p.validate();
  return p;
}

Problem instantiateWithDefaults(const FamilyDef& def, const Env& overrides) {
  return instantiate(def, resolveParams(def, overrides));
}

std::optional<Count> publishedBound(const FamilyDef& def, const Env& params) {
  if (!def.bound) return std::nullopt;
  return eval(*def.bound, params);
}

}  // namespace relb::family
