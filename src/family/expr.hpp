// The arithmetic sublanguage of the family-definition DSL (docs/families.md).
//
// Expressions are integer-valued terms over the family's parameters:
//   expr  := term (('+' | '-') term)*
//   term  := unary (('*' | '/') unary)*
//   unary := '-' unary | INT | IDENT | '(' expr ')'
// Division is floor division (rounds toward negative infinity) and throws
// re::Error on a zero divisor, so evaluation is total and deterministic on
// every non-dividing input.  Conditions are conjunctions of comparisons:
//   cond := expr OP expr ('and' expr OP expr)*     OP in { == != <= >= < > }
//
// Both forms are value types with structural equality and a deterministic
// renderer whose output re-parses to the identical tree (the DSL text
// round-trip test leans on this).  The Scanner is shared with the
// definition parser in text.cpp: it is a plain cursor over one logical line
// that reports 1-based column positions in its errors.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "re/types.hpp"

namespace relb::family {

/// Parameter environment: name -> value.  Ordered, so every iteration over
/// an Env (certificate metadata, error messages) is deterministic.
using Env = std::map<std::string, re::Count, std::less<>>;

struct Expr {
  enum class Kind { kInt, kVar, kNeg, kAdd, kSub, kMul, kDiv };

  Kind kind = Kind::kInt;
  re::Count value = 0;     // kInt
  std::string name;        // kVar
  std::vector<Expr> args;  // 1 operand for kNeg, 2 for the binary kinds

  [[nodiscard]] static Expr integer(re::Count v);
  [[nodiscard]] static Expr variable(std::string name);

  friend bool operator==(const Expr&, const Expr&) = default;
};

/// A conjunction of comparisons; an empty conjunction is `true`.
struct Cond {
  struct Cmp {
    Expr lhs;
    std::string op;  // "==", "!=", "<=", ">=", "<", ">"
    Expr rhs;
    friend bool operator==(const Cmp&, const Cmp&) = default;
  };
  std::vector<Cmp> terms;

  [[nodiscard]] bool alwaysTrue() const { return terms.empty(); }
  friend bool operator==(const Cond&, const Cond&) = default;
};

/// Evaluates under `env`.  Throws re::Error on an unbound variable or a zero
/// divisor; never overflows silently (operands are validated against a
/// +/- 2^40 guard that keeps every product inside Count).
[[nodiscard]] re::Count eval(const Expr& e, const Env& env);
[[nodiscard]] bool eval(const Cond& c, const Env& env);

/// Deterministic rendering with minimal parentheses; parse(render(e)) == e.
[[nodiscard]] std::string render(const Expr& e);
[[nodiscard]] std::string render(const Cond& c);

/// Cursor over one logical line of DSL text.  All `parse*` entry points skip
/// leading whitespace; errors carry the 1-based column.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skipSpace();
  [[nodiscard]] bool atEnd();
  /// Next character without consuming ('\0' at end), after skipping space.
  [[nodiscard]] char peek();
  /// Consumes `c` if it is next; false otherwise.
  bool consume(char c);
  /// Consumes the identifier `word` if it is next as a whole word.
  bool consumeWord(std::string_view word);
  /// Consumes an identifier [A-Za-z_][A-Za-z0-9_]* if one is next.
  [[nodiscard]] std::optional<std::string> ident();
  /// Consumes a nonnegative integer literal if one is next.
  [[nodiscard]] std::optional<re::Count> integer();
  /// Consumes the exact token `..` (range separator) if next.
  bool consumeRangeDots();

  /// Everything not yet consumed (without skipping space).
  [[nodiscard]] std::string_view remainder() const {
    return text_.substr(pos_);
  }

  [[noreturn]] void fail(const std::string& what) const;

  /// Full-precedence expression.
  [[nodiscard]] Expr parseExpr();
  /// Just INT | IDENT | '(' expr ')' -- the exponent grammar after '^'.
  [[nodiscard]] Expr parsePrimary();
  [[nodiscard]] Cond parseCond();

 private:
  [[nodiscard]] Expr parseTerm();
  [[nodiscard]] Expr parseUnary();
  [[nodiscard]] Cond::Cmp parseCmp();

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parses a complete expression / condition (trailing garbage is an error).
[[nodiscard]] Expr parseExpr(std::string_view text);
[[nodiscard]] Cond parseCond(std::string_view text);

}  // namespace relb::family
