#include "family/builtin.hpp"

#include "family/text.hpp"

namespace relb::family {

namespace {

// The built-ins are *defined* in the DSL's own text form, so the text
// format is exercised on every lookup and the families/ directory can pin
// the canonical serialization of exactly these strings.

constexpr std::string_view kPi = R"(family pi
title Pi_Delta(a, x) lower-bound family (MIS / bounded out-degree domsets)
model det-PN high-girth
cite doi:10.1145/3465084.3467901 (PODC 2021)

param delta range 1 .. 16 default 4
param a range 0 .. delta default 2
param x range 0 .. delta default 0
bound 1

alphabet M P O A X

node M^(delta - x) X^x
node A^a X^(delta - a)
node P O^(delta - 1)

edge M [P A O X]
edge O [M A O X]
edge P [M X]
edge A [M O X]
edge X [M P A O X]
)";

constexpr std::string_view kTwoRulingSet = R"(family two_ruling_set
title 2-ruling set (selected nodes within distance 2 of every node)
model det-PN high-girth
cite arXiv:2004.08282 (Balliu-Brandt-Olivetti)

param delta range 2 .. 6 default 3
bound 2

alphabet S P1 O1 P2 O2

node S^delta
node P1 O1^(delta - 1)
node P2 O2^(delta - 1)

edge S [P1 O1]
edge O1 [O1 P2 O2]
edge O2 O2
)";

constexpr std::string_view kMaximalMatching = R"(family maximal_matching
title Maximal matching (port-numbering encoding)
model det-PN high-girth
cite arXiv:2505.15654 (Khoury-Schild)

param delta range 1 .. 8 default 3
bound 3

alphabet M O P

node M O^(delta - 1)
node P^delta

edge M M
edge O [O P]
)";

constexpr std::string_view kDeltaColoring = R"(family delta_coloring
title Delta-coloring (parameterized alphabet C1..C_delta)
model det-PN high-girth
cite arXiv:2110.00643

param delta range 3 .. 6 default 3
bound 2

alphabet C{c=1..delta}

node C{c}^delta | for c=1..delta
edge C{c} [C{j} | j=1..delta if j != c] | for c=1..delta
)";

}  // namespace

const std::vector<FamilyDef>& builtinFamilies() {
  static const std::vector<FamilyDef> families = [] {
    std::vector<FamilyDef> out;
    for (const std::string_view text :
         {kPi, kTwoRulingSet, kMaximalMatching, kDeltaColoring}) {
      out.push_back(parseFamilyText(text));
    }
    return out;
  }();
  return families;
}

std::optional<FamilyDef> findBuiltin(std::string_view name) {
  for (const FamilyDef& def : builtinFamilies()) {
    if (def.name == name) return def;
  }
  return std::nullopt;
}

}  // namespace relb::family
