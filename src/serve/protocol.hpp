// The relb service wire protocol: framed, versioned JSON envelopes.
//
// Framing (length-prefixed, line-delimited):
//
//     <decimal payload length>\n<payload bytes>\n
//
// The header is 1..8 ASCII digits, the payload is exactly that many bytes of
// JSON (one envelope), and the trailing newline keeps streams greppable and
// re-synchronizable by eye.  FrameDecoder consumes a byte stream
// incrementally and yields complete payloads; any framing violation (bad
// header, oversized length, missing terminator) poisons the stream -- the
// peer must answer with a protocol error and close, there is no way to
// re-synchronize a framed stream reliably.
//
// Envelopes (schema in docs/service.md; built on io::Json, so every string
// -- including parser diagnostics echoed back in error responses -- is
// emitted with control characters escaped):
//
//   request:  {"format":"relb-request","version":1,"id":N,"kind":...}
//     kind "ping"     liveness probe, answered without touching the queue;
//     kind "problem"  the CLI's positional-argument mode: node/edge
//                     configuration lists (';'-separated), max_steps;
//     kind "chain"    the CLI's --chain mode: delta, x0.
//     Options: deadline_ms (admission deadline, 0 = server default),
//     certificate (ship the certificate bytes), stats (ship session cache
//     stats).
//
//   response: {"format":"relb-response","version":1,"id":N,"code":C,
//              "status":S,...}
//     code/status pairs mirror HTTP where a mapping exists: 200 ok,
//     400 bad-request, 429 rejected (admission queue full), 500 failed,
//     503 busy|draining, 504 deadline-expired.  "output"/"diagnostics"
//     carry the exact bytes the CLI would print for the same request;
//     "certificate" carries the exact bytes --save-cert would write;
//     "stats" is the per-session cache traffic (see SessionStats).
//
// Versioning rules (docs/service.md): members may be ADDED within a
// version -- decoders ignore unknown members -- and any
// removed/renamed/retyped member bumps kProtocolVersion; a decoder rejects
// any version other than its own.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "io/json.hpp"

namespace relb::serve {

/// Bumped on any incompatible envelope change (rules above).
inline constexpr int kProtocolVersion = 1;

/// Hard cap on one frame's payload; a header advertising more poisons the
/// stream.  Generous: certificates for the paper's chains are ~100 KiB.
inline constexpr std::size_t kMaxFramePayloadBytes = 8u * 1024 * 1024;

/// Wraps a payload in the framing above.
[[nodiscard]] std::string encodeFrame(std::string_view payload);

/// Incremental frame parser over an arbitrary byte stream.  feed() bytes as
/// they arrive, then drain next() until it returns nullopt.  next() throws
/// re::Error on a framing violation and the decoder stays poisoned (every
/// later call rethrows): close the connection.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);

  /// The next complete payload, or nullopt when more bytes are needed.
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes buffered but not yet returned.
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  [[noreturn]] void poison(const std::string& what);

  std::string buffer_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  std::string poisonReason_;
};

// ---------------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------------

struct Request {
  enum class Kind { kPing, kProblem, kChain };

  /// Echoed verbatim into the response; clients use it to match pipelined
  /// responses to requests.
  std::int64_t id = 0;
  Kind kind = Kind::kPing;

  // kProblem: the CLI's positional grammar ("M^3; P O^2").
  std::string nodeSpec;
  std::string edgeSpec;
  int maxSteps = 6;

  // kChain: exactChain(delta, x0).
  std::int64_t chainDelta = -1;
  std::int64_t chainX0 = 1;

  /// Admission deadline in milliseconds from receipt; a request still queued
  /// when it expires is answered 504 without being executed.  0 = use the
  /// server's default (which may be "none").
  std::int64_t deadlineMillis = 0;

  /// Ship the certificate bytes (exactly what --save-cert writes).
  bool wantCertificate = false;
  /// Ship per-session cache statistics in the response.
  bool wantStats = true;
};

[[nodiscard]] io::Json requestToJson(const Request& request);
/// Validates format/version/kind and per-kind required members; throws
/// re::Error with a message safe to echo into an error response.
[[nodiscard]] Request requestFromJson(const io::Json& j);

/// Per-session cache traffic attributed to one request, plus queue/run wall
/// times.  The sum of *Misses fields is the number of computations the
/// request actually paid for: a warm duplicate shows totalMisses() == 0 and
/// storeWrites == 0.
struct SessionStats {
  std::int64_t stepHits = 0, stepMisses = 0;
  std::int64_t edgeCompatHits = 0, edgeCompatMisses = 0;
  std::int64_t strengthHits = 0, strengthMisses = 0;
  std::int64_t rightClosedHits = 0, rightClosedMisses = 0;
  std::int64_t zeroRoundHits = 0, zeroRoundMisses = 0;
  std::int64_t canonicalHits = 0, canonicalMisses = 0;
  std::int64_t storeHits = 0, storeMisses = 0, storeWrites = 0;
  std::int64_t queueMicros = 0;
  std::int64_t runMicros = 0;

  [[nodiscard]] std::int64_t totalHits() const {
    return stepHits + edgeCompatHits + strengthHits + rightClosedHits +
           zeroRoundHits + canonicalHits;
  }
  [[nodiscard]] std::int64_t totalMisses() const {
    return stepMisses + edgeCompatMisses + strengthMisses +
           rightClosedMisses + zeroRoundMisses + canonicalMisses;
  }
  /// The loadgen/CI one-liner: "N hits / M misses / W writes".
  [[nodiscard]] std::string describeLine() const;
};

/// Response status codes (the `code` member).  Numbers mirror HTTP where a
/// mapping exists, so logs read naturally.
enum class StatusCode : int {
  kOk = 200,
  kBadRequest = 400,      // malformed envelope / parse or usage error
  kRejected = 429,        // admission queue full
  kFailed = 500,          // step / certification failure
  kBusy = 503,            // connection limit reached, or server draining
  kDeadlineExpired = 504, // expired while queued
};

/// The canonical status string for a code ("ok", "bad-request", ...).
[[nodiscard]] std::string_view statusString(StatusCode code);

struct Response {
  std::int64_t id = 0;
  StatusCode code = StatusCode::kOk;
  /// statusString(code) on the wire; kept as data so future minor versions
  /// can refine it without a code change.
  std::string status = "ok";
  /// Exactly the CLI's stdout / stderr bytes for the same request.
  std::string output;
  std::string diagnostics;
  /// Exactly the bytes --save-cert would write; empty when not requested or
  /// not produced.
  std::string certificate;
  /// Present iff the request asked for stats and was executed.
  std::optional<SessionStats> stats;

  [[nodiscard]] bool ok() const { return code == StatusCode::kOk; }
};

[[nodiscard]] io::Json responseToJson(const Response& response);
[[nodiscard]] Response responseFromJson(const io::Json& j);

/// Convenience: a response carrying just id/code/status/diagnostics.
[[nodiscard]] Response errorResponse(std::int64_t id, StatusCode code,
                                     std::string diagnostics);

}  // namespace relb::serve
