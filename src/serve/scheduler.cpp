#include "serve/scheduler.hpp"

#include <utility>

namespace relb::serve {

Scheduler::Scheduler(const SchedulerConfig& config, obs::Registry& registry)
    : acceptedCounter_(registry.counter("serve.accepted")),
      rejectedCounter_(registry.counter("serve.rejected")),
      expiredCounter_(registry.counter("serve.expired")),
      completedCounter_(registry.counter("serve.completed")),
      failedCounter_(registry.counter("serve.failed")),
      queueDepthGauge_(registry.gauge("serve.queue_depth")),
      queueHighWaterGauge_(registry.gauge("serve.queue_high_water")),
      capacity_(config.queueCapacity),
      pool_(config.workers, registry),
      laneCount_(util::resolveThreadCount(config.workers)) {
  dispatcher_ = std::thread([this] {
    pool_.forEachIndex(static_cast<std::size_t>(laneCount_),
                       [this](std::size_t) { laneLoop(); });
  });
}

Scheduler::~Scheduler() { drain(); }

Scheduler::Admit Scheduler::submit(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      rejectedCounter_.add();
      return Admit::kDraining;
    }
    if (queue_.size() >= capacity_) {
      rejectedCounter_.add();
      return Admit::kQueueFull;
    }
    queue_.push_back(std::move(job));
    acceptedCounter_.add();
    const auto depth = static_cast<std::int64_t>(queue_.size());
    queueDepthGauge_.set(depth);
    queueHighWaterGauge_.setMax(depth);
  }
  hasWork_.notify_one();
  return Admit::kAccepted;
}

void Scheduler::laneLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      hasWork_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining_ and nothing left to do
      job = std::move(queue_.front());
      queue_.pop_front();
      queueDepthGauge_.set(static_cast<std::int64_t>(queue_.size()));
    }
    // Deadlines govern queueing: checked once, at dequeue.  A job that makes
    // it past this point runs to completion even if it is slow.
    if (job.deadline != std::chrono::steady_clock::time_point::min() &&
        std::chrono::steady_clock::now() > job.deadline) {
      expiredCounter_.add();
      if (job.expire) job.expire();
      continue;
    }
    try {
      job.run();
      completedCounter_.add();
    } catch (...) {
      // Jobs are expected to answer their client themselves; an escaped
      // exception must not take down the lane (or, via forEachIndex's
      // rethrow, the whole scheduler).
      failedCounter_.add();
    }
  }
}

void Scheduler::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  hasWork_.notify_all();
  // Exactly one caller joins (thread::join from two threads is UB); every
  // caller returns only after the lanes have finished.
  std::lock_guard<std::mutex> joinLock(drainMutex_);
  if (!dispatcherJoined_) {
    dispatcher_.join();
    dispatcherJoined_ = true;
  }
}

std::size_t Scheduler::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace relb::serve
