#include "serve/protocol.hpp"

#include "re/types.hpp"

namespace relb::serve {

using io::Json;
using re::Error;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::string encodeFrame(std::string_view payload) {
  if (payload.size() > kMaxFramePayloadBytes) {
    throw Error("serve: frame payload of " + std::to_string(payload.size()) +
                " bytes exceeds the " +
                std::to_string(kMaxFramePayloadBytes) + "-byte cap");
  }
  std::string out = std::to_string(payload.size());
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  // Compact before growing: everything before pos_ was already handed out.
  if (pos_ > 0 && pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

void FrameDecoder::poison(const std::string& what) {
  poisoned_ = true;
  poisonReason_ = "serve: malformed frame: " + what;
  throw Error(poisonReason_);
}

std::optional<std::string> FrameDecoder::next() {
  if (poisoned_) throw Error(poisonReason_);

  // Header: 1..8 digits terminated by '\n'.
  constexpr std::size_t kMaxHeaderDigits = 8;
  std::size_t cursor = pos_;
  std::size_t length = 0;
  std::size_t digits = 0;
  while (true) {
    if (cursor >= buffer_.size()) {
      // Even an incomplete header must look like one.
      if (digits > kMaxHeaderDigits) poison("length header too long");
      return std::nullopt;
    }
    const char ch = buffer_[cursor];
    if (ch == '\n') {
      if (digits == 0) poison("empty length header");
      ++cursor;
      break;
    }
    if (ch < '0' || ch > '9') {
      poison(std::string("non-digit '") +
             (ch >= 0x20 && ch < 0x7f ? std::string(1, ch)
                                      : std::string("\\x??")) +
             "' in length header");
    }
    if (++digits > kMaxHeaderDigits) poison("length header too long");
    length = length * 10 + static_cast<std::size_t>(ch - '0');
    ++cursor;
  }
  if (length > kMaxFramePayloadBytes) {
    poison("payload length " + std::to_string(length) + " exceeds the " +
           std::to_string(kMaxFramePayloadBytes) + "-byte cap");
  }

  // Payload + terminator.
  if (buffer_.size() - cursor < length + 1) return std::nullopt;
  std::string payload = buffer_.substr(cursor, length);
  if (buffer_[cursor + length] != '\n') {
    poison("payload not terminated by newline");
  }
  pos_ = cursor + length + 1;
  return payload;
}

// ---------------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kRequestFormat = "relb-request";
constexpr const char* kResponseFormat = "relb-response";

void checkEnvelope(const Json& j, const char* format) {
  if (!j.isObject()) throw Error("serve: envelope is not a JSON object");
  const std::string& got = j.at("format").asString();
  if (got != format) {
    throw Error("serve: expected format '" + std::string(format) +
                "', have '" + got + "'");
  }
  const std::int64_t version = j.at("version").asInt();
  if (version != kProtocolVersion) {
    throw Error("serve: unsupported " + std::string(format) + " version " +
                std::to_string(version) + " (this build speaks version " +
                std::to_string(kProtocolVersion) + ")");
  }
}

// Optional-member helpers: absent means "keep the default" (versioning rule:
// members may be added within a version, so decoders never require them).
std::int64_t intOr(const Json& j, std::string_view key, std::int64_t dflt) {
  const Json* member = j.find(key);
  return member == nullptr ? dflt : member->asInt();
}

bool boolOr(const Json& j, std::string_view key, bool dflt) {
  const Json* member = j.find(key);
  return member == nullptr ? dflt : member->asBool();
}

std::string stringOr(const Json& j, std::string_view key) {
  const Json* member = j.find(key);
  return member == nullptr ? std::string() : member->asString();
}

}  // namespace

Json requestToJson(const Request& request) {
  Json j = Json::object();
  j.set("format", kRequestFormat);
  j.set("version", kProtocolVersion);
  j.set("id", request.id);
  switch (request.kind) {
    case Request::Kind::kPing:
      j.set("kind", "ping");
      break;
    case Request::Kind::kProblem:
      j.set("kind", "problem");
      j.set("node", request.nodeSpec);
      j.set("edge", request.edgeSpec);
      j.set("max_steps", request.maxSteps);
      break;
    case Request::Kind::kChain:
      j.set("kind", "chain");
      j.set("delta", request.chainDelta);
      j.set("x0", request.chainX0);
      break;
  }
  if (request.deadlineMillis != 0) {
    j.set("deadline_ms", request.deadlineMillis);
  }
  if (request.wantCertificate) j.set("certificate", true);
  if (!request.wantStats) j.set("stats", false);
  return j;
}

Request requestFromJson(const Json& j) {
  checkEnvelope(j, kRequestFormat);
  Request request;
  request.id = j.at("id").asInt();
  if (request.id < 0) throw Error("serve: request id must be >= 0");
  const std::string& kind = j.at("kind").asString();
  if (kind == "ping") {
    request.kind = Request::Kind::kPing;
  } else if (kind == "problem") {
    request.kind = Request::Kind::kProblem;
    request.nodeSpec = j.at("node").asString();
    request.edgeSpec = j.at("edge").asString();
    if (request.nodeSpec.empty() || request.edgeSpec.empty()) {
      throw Error("serve: problem request needs non-empty node and edge");
    }
    const std::int64_t steps = intOr(j, "max_steps", 6);
    if (steps < 1 || steps > 64) {
      throw Error("serve: max_steps must be in [1, 64]");
    }
    request.maxSteps = static_cast<int>(steps);
  } else if (kind == "chain") {
    request.kind = Request::Kind::kChain;
    request.chainDelta = j.at("delta").asInt();
    if (request.chainDelta < 0) throw Error("serve: delta must be >= 0");
    request.chainX0 = intOr(j, "x0", 1);
  } else {
    throw Error("serve: unknown request kind '" + kind + "'");
  }
  request.deadlineMillis = intOr(j, "deadline_ms", 0);
  if (request.deadlineMillis < 0) {
    throw Error("serve: deadline_ms must be >= 0");
  }
  request.wantCertificate = boolOr(j, "certificate", false);
  request.wantStats = boolOr(j, "stats", true);
  return request;
}

std::string SessionStats::describeLine() const {
  return std::to_string(totalHits()) + " hits / " +
         std::to_string(totalMisses()) + " misses / " +
         std::to_string(storeWrites) + " writes";
}

std::string_view statusString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kBadRequest: return "bad-request";
    case StatusCode::kRejected: return "rejected";
    case StatusCode::kFailed: return "failed";
    case StatusCode::kBusy: return "busy";
    case StatusCode::kDeadlineExpired: return "deadline-expired";
  }
  return "unknown";
}

namespace {

Json statsToJson(const SessionStats& stats) {
  Json j = Json::object();
  j.set("step_hits", stats.stepHits);
  j.set("step_misses", stats.stepMisses);
  j.set("edge_compat_hits", stats.edgeCompatHits);
  j.set("edge_compat_misses", stats.edgeCompatMisses);
  j.set("strength_hits", stats.strengthHits);
  j.set("strength_misses", stats.strengthMisses);
  j.set("right_closed_hits", stats.rightClosedHits);
  j.set("right_closed_misses", stats.rightClosedMisses);
  j.set("zero_round_hits", stats.zeroRoundHits);
  j.set("zero_round_misses", stats.zeroRoundMisses);
  j.set("canonical_hits", stats.canonicalHits);
  j.set("canonical_misses", stats.canonicalMisses);
  j.set("store_hits", stats.storeHits);
  j.set("store_misses", stats.storeMisses);
  j.set("store_writes", stats.storeWrites);
  j.set("queue_micros", stats.queueMicros);
  j.set("run_micros", stats.runMicros);
  return j;
}

SessionStats statsFromJson(const Json& j) {
  SessionStats stats;
  stats.stepHits = intOr(j, "step_hits", 0);
  stats.stepMisses = intOr(j, "step_misses", 0);
  stats.edgeCompatHits = intOr(j, "edge_compat_hits", 0);
  stats.edgeCompatMisses = intOr(j, "edge_compat_misses", 0);
  stats.strengthHits = intOr(j, "strength_hits", 0);
  stats.strengthMisses = intOr(j, "strength_misses", 0);
  stats.rightClosedHits = intOr(j, "right_closed_hits", 0);
  stats.rightClosedMisses = intOr(j, "right_closed_misses", 0);
  stats.zeroRoundHits = intOr(j, "zero_round_hits", 0);
  stats.zeroRoundMisses = intOr(j, "zero_round_misses", 0);
  stats.canonicalHits = intOr(j, "canonical_hits", 0);
  stats.canonicalMisses = intOr(j, "canonical_misses", 0);
  stats.storeHits = intOr(j, "store_hits", 0);
  stats.storeMisses = intOr(j, "store_misses", 0);
  stats.storeWrites = intOr(j, "store_writes", 0);
  stats.queueMicros = intOr(j, "queue_micros", 0);
  stats.runMicros = intOr(j, "run_micros", 0);
  return stats;
}

}  // namespace

Json responseToJson(const Response& response) {
  Json j = Json::object();
  j.set("format", kResponseFormat);
  j.set("version", kProtocolVersion);
  j.set("id", response.id);
  j.set("code", static_cast<std::int64_t>(response.code));
  j.set("status", response.status);
  if (!response.output.empty()) j.set("output", response.output);
  if (!response.diagnostics.empty()) {
    j.set("diagnostics", response.diagnostics);
  }
  if (!response.certificate.empty()) {
    j.set("certificate", response.certificate);
  }
  if (response.stats.has_value()) j.set("stats", statsToJson(*response.stats));
  return j;
}

Response responseFromJson(const Json& j) {
  checkEnvelope(j, kResponseFormat);
  Response response;
  response.id = j.at("id").asInt();
  const std::int64_t code = j.at("code").asInt();
  switch (code) {
    case 200: case 400: case 429: case 500: case 503: case 504:
      response.code = static_cast<StatusCode>(code);
      break;
    default:
      throw Error("serve: unknown response code " + std::to_string(code));
  }
  response.status = j.at("status").asString();
  response.output = stringOr(j, "output");
  response.diagnostics = stringOr(j, "diagnostics");
  response.certificate = stringOr(j, "certificate");
  const Json* stats = j.find("stats");
  if (stats != nullptr) response.stats = statsFromJson(*stats);
  return response;
}

Response errorResponse(std::int64_t id, StatusCode code,
                       std::string diagnostics) {
  Response response;
  response.id = id;
  response.code = code;
  response.status = std::string(statusString(code));
  response.diagnostics = std::move(diagnostics);
  return response;
}

}  // namespace relb::serve
