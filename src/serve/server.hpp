// relb-served's engine room: a socket front end over one shared warm
// EngineCore.
//
// One Server owns
//   * a listening socket -- TCP loopback by default, or a unix-domain
//     socket when ServeConfig::unixSocketPath is set (CI uses the latter to
//     dodge port collisions);
//   * a Scheduler (bounded admission queue + worker lanes, scheduler.hpp);
//   * one shared re::EngineCore, optionally warmed by a store::DiskStepStore
//     attached at start() -- every request's EngineSession runs over it, so
//     a request identical to an earlier one is answered from cache with
//     0 misses / 0 writes and bit-identical certificate bytes.
//
// Connection lifecycle: the accept thread admits up to maxConnections
// concurrent connections (one beyond the limit is answered 503 busy and
// closed).  Each connection gets a thread that speaks the framed protocol
// (protocol.hpp): requests are answered in order per connection; pings
// inline, work requests through the scheduler with an admission deadline
// (the request's deadline_ms, else defaultDeadlineMillis, else none).
// A framing violation gets a final 400 and the connection closed; a
// malformed envelope gets a 400 and the stream continues.
//
// Execution: each admitted request becomes a driver::RunRequest (the CLI's
// own library entry point) run over the shared core with numThreads = 1 --
// lanes are already ThreadPool workers, so engine-internal parallel
// sections inline onto the lane; concurrency across requests is the
// scaling axis, and width invariance keeps the bytes equal to any CLI
// run's.  Each request runs under its own obs::SessionScope, which is what
// makes the per-response cache stats *attributable* rather than a slice of
// a global blur.
//
// Shutdown: requestStop() (signal-handler-adjacent: a pipe write) begins a
// graceful drain -- stop accepting, answer everything admitted, close
// connections, join threads; stop() does that and blocks until done.  The
// destructor stops.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "re/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"

namespace relb::serve {

struct ServeConfig {
  /// TCP endpoint; port 0 binds an ephemeral port (read it back via
  /// port()).  Ignored when unixSocketPath is set.
  std::string host = "127.0.0.1";
  int port = 0;
  /// When non-empty, listen on this unix-domain socket instead of TCP.  A
  /// stale socket file is unlinked at start and the live one at stop.
  std::string unixSocketPath;

  /// Scheduler lanes (util::ThreadPool width semantics: 0 = one per core).
  int workers = 0;
  /// Admission queue capacity; submissions beyond it are answered 429.
  std::size_t queueCapacity = 64;
  /// Concurrent connections; one more is answered 503 busy and closed.
  int maxConnections = 64;
  /// Admission deadline applied to requests that do not carry their own
  /// deadline_ms.  0 = none.
  std::int64_t defaultDeadlineMillis = 0;
  /// Attach a store::DiskStepStore at this directory to the shared core at
  /// start() ('' = in-memory caches only).
  std::string storeDir;
};

class Server {
 public:
  /// The server runs every request over `core` (a fresh private core when
  /// nullptr).  Counters -- the scheduler's serve.* set plus
  /// serve.connections / serve.connections_busy -- are interned in
  /// `registry`, which must outlive the server.
  explicit Server(ServeConfig config,
                  std::shared_ptr<re::EngineCore> core = nullptr,
                  obs::Registry& registry = obs::Registry::global());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts accepting.  Throws re::Error on any socket
  /// or store failure; at most one start() per Server.
  void start();

  /// The bound TCP port (resolves port 0); 0 for unix-socket servers.
  [[nodiscard]] int port() const { return port_; }

  /// Begins a graceful drain without blocking: new connections and
  /// admissions stop, everything already admitted is answered.
  void requestStop();

  /// requestStop() + blocks until the drain finished and every thread is
  /// joined.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// The shared core (for tests asserting on aggregate cache stats).
  [[nodiscard]] const std::shared_ptr<re::EngineCore>& core() const {
    return core_;
  }

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptLoop();
  void serveConnection(int fd);
  /// Parses and answers one frame payload; false = close the connection.
  bool handlePayload(const std::string& payload, int fd);
  [[nodiscard]] Response execute(
      const Request& request,
      std::chrono::steady_clock::time_point admitted);
  void sendResponse(int fd, const Response& response);
  void reapFinishedLocked();

  ServeConfig config_;
  std::shared_ptr<re::EngineCore> core_;
  obs::Registry& registry_;
  obs::Counter& connectionsCounter_;
  obs::Counter& connectionsBusyCounter_;
  Scheduler scheduler_;

  int listenFd_ = -1;
  int port_ = 0;
  int stopReadFd_ = -1;
  int stopWriteFd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptThread_;

  std::mutex connectionsMutex_;
  std::list<Connection> connections_;

  std::mutex stopMutex_;  // serializes stop()
  bool stopped_ = false;  // guarded by stopMutex_
};

}  // namespace relb::serve
