// The request scheduler: a bounded admission queue drained by worker lanes
// running on the existing util::ThreadPool.
//
// Admission model:
//   * submit() either accepts a job (bounded FIFO queue) or rejects it
//     immediately -- kQueueFull when the queue is at capacity (the caller
//     answers 429), kDraining once drain() started (the caller answers 503).
//     Nothing ever blocks on admission, so a saturated server sheds load in
//     O(1) instead of stacking clients.
//   * every job may carry an absolute deadline.  Deadlines govern QUEUEING:
//     a job whose deadline passed before a lane picked it up runs its
//     expire() callback (the caller answers 504) instead of run(); a job
//     that started in time always runs to completion.
//
// Execution model: the scheduler owns a private ThreadPool and occupies it
// with one long-running lane per resolved thread (the pool's dynamic
// fan-out, deliberately used as a fixed lane set).  Because lanes are pool
// workers, any parallel_for the engine reaches from inside a request runs
// inline on that lane (nested-section rule in thread_pool.hpp): requests
// are serial inside, concurrent across -- exactly the scaling the shared
// warm EngineCore wants, and still bit-identical by the width-invariance
// guarantee.
//
// Draining: drain() stops admission, lets every queued job run (or expire)
// to completion, and joins the lanes.  Idempotent; the destructor drains.
//
// Observability (the serve.* glossary in docs/observability.md): counters
// serve.accepted / serve.rejected / serve.expired / serve.completed /
// serve.failed, gauges serve.queue_depth (current) and
// serve.queue_high_water (all-time max), interned in the injected registry.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace relb::serve {

struct SchedulerConfig {
  /// Lane count, util::ThreadPool width semantics (0 = one per core).
  int workers = 0;
  /// Maximum number of ADMITTED-but-not-started jobs; submissions beyond it
  /// are rejected with kQueueFull.
  std::size_t queueCapacity = 64;
};

class Scheduler {
 public:
  enum class Admit { kAccepted, kQueueFull, kDraining };

  struct Job {
    /// Executed on a lane.  Must not throw; a defensive catch counts
    /// serve.failed and swallows.
    std::function<void()> run;
    /// Executed instead of run() when the deadline passed while queued.
    /// Optional; an expired job without one is simply dropped (counted).
    std::function<void()> expire;
    /// Absolute admission deadline; time_point::min() = none.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::min();
  };

  explicit Scheduler(const SchedulerConfig& config,
                     obs::Registry& registry = obs::Registry::global());
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Admit submit(Job job);

  /// Stops admission, completes (or expires) every queued job, joins the
  /// lanes.  Safe to call repeatedly and from any thread.
  void drain();

  /// Jobs admitted but not yet picked up by a lane.
  [[nodiscard]] std::size_t queueDepth() const;

  /// Resolved lane count.
  [[nodiscard]] int workers() const { return laneCount_; }

 private:
  void laneLoop();

  obs::Counter& acceptedCounter_;
  obs::Counter& rejectedCounter_;
  obs::Counter& expiredCounter_;
  obs::Counter& completedCounter_;
  obs::Counter& failedCounter_;
  obs::Gauge& queueDepthGauge_;
  obs::Gauge& queueHighWaterGauge_;

  std::size_t capacity_;
  util::ThreadPool pool_;
  int laneCount_ = 1;

  mutable std::mutex mutex_;
  std::condition_variable hasWork_;
  std::deque<Job> queue_;
  bool draining_ = false;

  /// Runs pool_.forEachIndex(laneCount_, lane) -- forEachIndex blocks for
  /// the batch's lifetime, so it needs a thread of its own (and contributes
  /// the calling-thread lane, making laneCount_ total).
  std::thread dispatcher_;
  std::mutex drainMutex_;  // serializes the join in drain()
  bool dispatcherJoined_ = false;  // guarded by drainMutex_
};

}  // namespace relb::serve
