// The relb service client: a blocking, single-connection protocol speaker.
//
// One Client owns one connected socket and a FrameDecoder.  send() writes a
// framed request; receive() blocks for the next framed response; roundTrip()
// does both.  Requests MAY be pipelined (several send()s before the first
// receive()): the server answers in order per connection, and the envelope
// id lets callers re-associate.  Any protocol violation from the peer, and
// EOF mid-conversation, surface as re::Error -- after which the connection
// is closed and the client unusable.
//
// This is the substance of tools/relb_loadgen.cpp and of every serve test;
// it is deliberately transport-thin so that what it measures is the server.
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace relb::serve {

class Client {
 public:
  /// Connects to a TCP endpoint ("127.0.0.1", port) or a unix-domain
  /// socket path.  Throw re::Error on any connect failure.
  [[nodiscard]] static Client connectTcp(const std::string& host, int port);
  [[nodiscard]] static Client connectUnix(const std::string& path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Frames and writes one request; throws re::Error if the peer hung up.
  void send(const Request& request);

  /// Blocks for the next complete response frame.  Throws re::Error on EOF,
  /// on a framing violation, and on an undecodable envelope.
  [[nodiscard]] Response receive();

  /// send() + receive().
  [[nodiscard]] Response roundTrip(const Request& request);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace relb::serve
