#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <utility>

#include "driver/driver.hpp"
#include "obs/scope.hpp"
#include "re/types.hpp"
#include "store/step_store.hpp"

namespace relb::serve {

using re::Error;

namespace {

[[noreturn]] void socketError(const std::string& what) {
  throw Error("serve: " + what + ": " + std::strerror(errno));
}

void setCloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Writes all of `data`, retrying on EINTR / short writes.  MSG_NOSIGNAL:
/// a peer that vanished mid-response must surface as an error return, not
/// as SIGPIPE taking the process down.
bool sendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

Server::Server(ServeConfig config, std::shared_ptr<re::EngineCore> core,
               obs::Registry& registry)
    : config_(std::move(config)),
      core_(core != nullptr ? std::move(core)
                            : std::make_shared<re::EngineCore>()),
      registry_(registry),
      connectionsCounter_(registry.counter("serve.connections")),
      connectionsBusyCounter_(registry.counter("serve.connections_busy")),
      scheduler_(SchedulerConfig{config_.workers, config_.queueCapacity},
                 registry) {}

Server::~Server() {
  stop();
  if (stopReadFd_ >= 0) ::close(stopReadFd_);
  if (stopWriteFd_ >= 0) ::close(stopWriteFd_);
}

void Server::start() {
  if (running_.load(std::memory_order_acquire) || stopping_.load()) {
    throw Error("serve: start() called twice");
  }
  if (!config_.storeDir.empty()) {
    core_->attachStore(
        std::make_shared<store::DiskStepStore>(config_.storeDir, registry_));
  }

  int pipeFds[2];
  if (::pipe(pipeFds) != 0) socketError("pipe");
  stopReadFd_ = pipeFds[0];
  stopWriteFd_ = pipeFds[1];
  setCloexec(stopReadFd_);
  setCloexec(stopWriteFd_);

  if (!config_.unixSocketPath.empty()) {
    if (config_.unixSocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw Error("serve: unix socket path too long: " +
                  config_.unixSocketPath);
    }
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) socketError("socket(AF_UNIX)");
    setCloexec(listenFd_);
    ::unlink(config_.unixSocketPath.c_str());  // stale file from a crash
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unixSocketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      socketError("bind('" + config_.unixSocketPath + "')");
    }
  } else {
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) socketError("socket(AF_INET)");
    setCloexec(listenFd_);
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      throw Error("serve: not an IPv4 address: " + config_.host);
    }
    if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      socketError("bind(" + config_.host + ":" +
                  std::to_string(config_.port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      socketError("getsockname");
    }
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(listenFd_, 64) != 0) socketError("listen");

  running_.store(true, std::memory_order_release);
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void Server::requestStop() {
  if (stopping_.exchange(true)) return;
  // One byte, never consumed: the pipe stays readable, so every poll() in
  // every thread sees the stop condition from here on.
  if (stopWriteFd_ >= 0) {
    const char byte = 's';
    (void)!::write(stopWriteFd_, &byte, 1);
  }
}

void Server::stop() {
  requestStop();
  std::lock_guard<std::mutex> lock(stopMutex_);
  if (stopped_) return;
  stopped_ = true;
  if (acceptThread_.joinable()) acceptThread_.join();
  // Drain before joining connections: threads blocked on a queued job's
  // future need the scheduler to run (or expire) that job first.
  scheduler_.drain();
  std::list<Connection> connections;
  {
    std::lock_guard<std::mutex> connLock(connectionsMutex_);
    connections.splice(connections.begin(), connections_);
  }
  for (Connection& connection : connections) {
    if (connection.thread.joinable()) connection.thread.join();
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (!config_.unixSocketPath.empty()) {
    ::unlink(config_.unixSocketPath.c_str());
  }
  running_.store(false, std::memory_order_release);
}

void Server::reapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::acceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listenFd_, POLLIN, 0}, {stopReadFd_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    setCloexec(fd);
    std::lock_guard<std::mutex> lock(connectionsMutex_);
    reapFinishedLocked();
    if (connections_.size() >=
        static_cast<std::size_t>(config_.maxConnections)) {
      connectionsBusyCounter_.add();
      sendResponse(fd, errorResponse(0, StatusCode::kBusy,
                                     "connection limit reached"));
      ::close(fd);
      continue;
    }
    connectionsCounter_.add();
    connections_.emplace_back();
    Connection& connection = connections_.back();
    // &connection is stable: std::list never relocates, and the entry
    // outlives the thread (erased only after join).
    connection.thread = std::thread([this, fd, &connection] {
      serveConnection(fd);
      connection.done.store(true, std::memory_order_release);
    });
  }
}

void Server::serveConnection(int fd) {
  FrameDecoder decoder;
  char buffer[65536];
  bool open = true;
  while (open) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {stopReadFd_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Drain rule: between requests, stop means close.  (A request already
    // admitted is always answered -- handlePayload blocks on its future
    // below, before we come back to this poll.)
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF or hard error
    }
    try {
      decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      while (open) {
        std::optional<std::string> payload = decoder.next();
        if (!payload.has_value()) break;
        open = handlePayload(*payload, fd);
      }
    } catch (const Error& e) {
      // Framing violation: answer once, then close -- a poisoned stream
      // cannot be re-synchronized.
      sendResponse(fd, errorResponse(0, StatusCode::kBadRequest, e.what()));
      break;
    }
  }
  ::close(fd);
}

bool Server::handlePayload(const std::string& payload, int fd) {
  Request request;
  try {
    request = requestFromJson(io::Json::parse(payload));
  } catch (const Error& e) {
    // Envelope-level problem: the stream is still framed correctly, so
    // answer 400 and keep the connection.
    return sendAll(fd, encodeFrame(responseToJson(errorResponse(
                           0, StatusCode::kBadRequest, e.what()))
                                       .dump()));
  }

  if (request.kind == Request::Kind::kPing) {
    Response pong;
    pong.id = request.id;
    sendResponse(fd, pong);
    return true;
  }

  const auto admitted = std::chrono::steady_clock::now();
  const std::int64_t deadlineMillis = request.deadlineMillis != 0
                                          ? request.deadlineMillis
                                          : config_.defaultDeadlineMillis;
  auto answered = std::make_shared<std::promise<Response>>();
  std::future<Response> future = answered->get_future();
  Scheduler::Job job;
  if (deadlineMillis != 0) {
    job.deadline = admitted + std::chrono::milliseconds(deadlineMillis);
  }
  job.run = [this, request, admitted, answered] {
    try {
      answered->set_value(execute(request, admitted));
    } catch (const std::exception& e) {
      answered->set_value(errorResponse(request.id, StatusCode::kFailed,
                                        std::string("serve: ") + e.what()));
    }
  };
  job.expire = [request, deadlineMillis, answered] {
    answered->set_value(errorResponse(
        request.id, StatusCode::kDeadlineExpired,
        "serve: still queued after " + std::to_string(deadlineMillis) +
            " ms admission deadline"));
  };

  switch (scheduler_.submit(std::move(job))) {
    case Scheduler::Admit::kAccepted:
      sendResponse(fd, future.get());
      return true;
    case Scheduler::Admit::kQueueFull:
      sendResponse(fd, errorResponse(request.id, StatusCode::kRejected,
                                     "serve: admission queue full"));
      return true;
    case Scheduler::Admit::kDraining:
      sendResponse(fd, errorResponse(request.id, StatusCode::kBusy,
                                     "serve: draining"));
      return false;
  }
  return true;
}

Response Server::execute(const Request& request,
                         std::chrono::steady_clock::time_point admitted) {
  const auto started = std::chrono::steady_clock::now();

  driver::RunRequest run;
  if (request.kind == Request::Kind::kChain) {
    run.mode = driver::RunRequest::Mode::kChain;
    run.chainDelta = static_cast<long>(request.chainDelta);
    run.chainX0 = static_cast<long>(request.chainX0);
  } else {
    run.mode = driver::RunRequest::Mode::kProblem;
    run.nodeSpec = request.nodeSpec;
    run.edgeSpec = request.edgeSpec;
    run.maxSteps = request.maxSteps;
  }
  // Lanes are ThreadPool workers already: engine parallel sections inline
  // onto the lane, and width invariance keeps the bytes identical to any
  // CLI run's.  Concurrency across requests is the scaling axis.
  run.numThreads = util::kSerialNumThreads;
  run.captureCert = request.wantCertificate;
  obs::SessionScope scope("serve-req-" + std::to_string(request.id),
                          &registry_);
  run.scope = &scope;

  const driver::RunResult result = driver::run(run, core_);
  const auto finished = std::chrono::steady_clock::now();

  Response response;
  response.id = request.id;
  switch (result.status) {
    case driver::RunStatus::kOk:
      response.code = StatusCode::kOk;
      break;
    case driver::RunStatus::kFailure:
      response.code = StatusCode::kFailed;
      break;
    case driver::RunStatus::kUsage:
      response.code = StatusCode::kBadRequest;
      break;
  }
  response.status = std::string(statusString(response.code));
  response.output = result.output;
  response.diagnostics = result.diagnostics;
  response.certificate = result.certificateBytes;
  if (request.wantStats) {
    const re::CacheStats& cache = result.sessionStats;
    SessionStats stats;
    const auto asInt = [](std::size_t v) {
      return static_cast<std::int64_t>(v);
    };
    stats.stepHits = asInt(cache.stepHits);
    stats.stepMisses = asInt(cache.stepMisses);
    stats.edgeCompatHits = asInt(cache.edgeCompatHits);
    stats.edgeCompatMisses = asInt(cache.edgeCompatMisses);
    stats.strengthHits = asInt(cache.strengthHits);
    stats.strengthMisses = asInt(cache.strengthMisses);
    stats.rightClosedHits = asInt(cache.rightClosedHits);
    stats.rightClosedMisses = asInt(cache.rightClosedMisses);
    stats.zeroRoundHits = asInt(cache.zeroRoundHits);
    stats.zeroRoundMisses = asInt(cache.zeroRoundMisses);
    stats.canonicalHits = asInt(cache.canonicalHits);
    stats.canonicalMisses = asInt(cache.canonicalMisses);
    stats.storeHits = asInt(cache.storeHits);
    stats.storeMisses = asInt(cache.storeMisses);
    stats.storeWrites = asInt(cache.storeWrites);
    stats.queueMicros = std::chrono::duration_cast<std::chrono::microseconds>(
                            started - admitted)
                            .count();
    stats.runMicros = std::chrono::duration_cast<std::chrono::microseconds>(
                          finished - started)
                          .count();
    response.stats = stats;
  }
  return response;
}

void Server::sendResponse(int fd, const Response& response) {
  (void)sendAll(fd, encodeFrame(responseToJson(response).dump()));
}

}  // namespace relb::serve
