#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "io/json.hpp"
#include "re/types.hpp"

namespace relb::serve {

using re::Error;

namespace {

[[noreturn]] void socketError(const std::string& what) {
  throw Error("serve client: " + what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connectTcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) socketError("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("serve client: not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    socketError("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return Client(fd);
}

Client Client::connectUnix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw Error("serve client: unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) socketError("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    socketError("connect('" + path + "')");
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(const Request& request) {
  if (fd_ < 0) throw Error("serve client: not connected");
  const std::string frame = encodeFrame(requestToJson(request).dump());
  std::string_view rest = frame;
  while (!rest.empty()) {
    const ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      socketError("send");
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
}

Response Client::receive() {
  if (fd_ < 0) throw Error("serve client: not connected");
  char buffer[65536];
  for (;;) {
    if (std::optional<std::string> payload = decoder_.next();
        payload.has_value()) {
      return responseFromJson(io::Json::parse(*payload));
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) {
      close();
      throw Error("serve client: connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      socketError("recv");
    }
    decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

Response Client::roundTrip(const Request& request) {
  send(request);
  return receive();
}

}  // namespace relb::serve
