// Certificate: the durable, independently checkable record of a
// lower-bound derivation (docs/formats.md gives the full schema).
//
// Two kinds:
//   * "family-chain" -- a Lemma 13 speedup chain over the paper's family
//     Pi_Delta(a, x): per step the parameters, the full problem, and the
//     claimed zero-round verdict.  Everything is re-derivable from first
//     principles, so the verifier re-checks every claim without the engine.
//   * "speedup-trace" -- an explicit R / Rbar iteration: per step the
//     operator applied, the resulting problem, and the renaming map
//     (meaning[newLabel] = set of previous-step labels).  The verifier
//     re-checks the soundness side of each operator plus the zero-round
//     verdicts (see io/verify.hpp for the exact contract).
//
// The serialized form carries a format version and one checksum per section
// ("params", "steps", "engine"); loadCertificate rejects any mismatch, so a
// tampered or truncated file never reaches semantic verification.
// Certificates contain no timestamps or timings: re-deriving the same chain
// must reproduce the file byte for byte (asserted in CI against the golden
// certificate and between cold- and warm-store runs).
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "io/serialize.hpp"

namespace relb::io {

struct CertificateStep {
  // family-chain: the family parameters of this step's problem.
  re::Count a = 0;
  re::Count x = 0;
  // speedup-trace: "input", "R", or "Rbar", plus the renaming map from the
  // previous step's labels.
  std::string op;
  std::optional<std::vector<re::LabelSet>> meaning;
  // Both kinds.
  re::Problem problem;
  bool zeroRoundSolvable = false;
  /// Free-form per-step annotations (pass notes, label counts).  Checksummed
  /// but not semantically verified; must stay reproducible (no timings).
  std::vector<std::string> notes;
};

struct Certificate {
  int version = kFormatVersion;
  std::string kind;  // "family-chain" or "speedup-trace"
  // family-chain parameters (0 for speedup-trace).
  re::Count delta = 0;
  re::Count x0 = 0;
  std::vector<CertificateStep> steps;
  /// Freeform generator metadata (tool name, thread count, ...).  Verified
  /// only against the section checksum.
  std::vector<std::pair<std::string, std::string>> engineInfo;

  /// Steps - 1 for a chain: the round lower bound the certificate claims.
  [[nodiscard]] re::Count claimedRounds() const {
    return steps.empty() ? 0 : static_cast<re::Count>(steps.size()) - 1;
  }
};

/// Serializes with per-section checksums; deterministic byte-for-byte.
[[nodiscard]] Json certificateToJson(const Certificate& cert);

/// Validates format, version, and every section checksum before decoding;
/// throws re::Error (naming the section) on any mismatch.
[[nodiscard]] Certificate certificateFromJson(const Json& j);

/// Pretty-printed JSON to `path` via a temp file + atomic rename.
void saveCertificate(const std::filesystem::path& path,
                     const Certificate& cert);

/// Reads and decodes (including checksum validation).  Throws re::Error on
/// I/O failure or any validation error.
[[nodiscard]] Certificate loadCertificate(const std::filesystem::path& path);

/// Writes `content` to `path` atomically (same-directory temp file, then
/// rename).  Shared by the certificate writer and the step store.
void atomicWriteFile(const std::filesystem::path& path,
                     std::string_view content);

}  // namespace relb::io
