#include "io/json.hpp"

#include <algorithm>
#include <cctype>

namespace relb::io {

using re::Error;

namespace {

[[noreturn]] void typeError(const char* expected, Json::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "int",
                                           "string", "array", "object"};
  throw Error(std::string("json: expected ") + expected + ", have " +
              kNames[static_cast<int>(got)]);
}

void writeEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(ch >> 4) & 0xF];
          out += kHex[ch & 0xF];
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parseDocument() {
    Json value = parseValue(0);
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: line " + std::to_string(line_) + ", column " +
                std::to_string(pos_ - lineStart_ + 1) + ": " + what);
  }

  void skipWhitespace() {
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == '\n') {
        ++line_;
        ++pos_;
        lineStart_ = pos_;
      } else if (ch == ' ' || ch == '\t' || ch == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parseValue(int depth) {
    if (depth > 64) fail("nesting too deep");
    skipWhitespace();
    const char ch = peek();
    switch (ch) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return Json(parseString());
      case 't':
        if (consumeLiteral("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parseNumber();
    }
  }

  Json parseObject(int depth) {
    expect('{');
    Json out = Json::object();
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skipWhitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parseString();
      if (out.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skipWhitespace();
      expect(':');
      out.set(std::move(key), parseValue(depth + 1));
      skipWhitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return out;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parseArray(int depth) {
    expect('[');
    Json out = Json::array();
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push(parseValue(depth + 1));
      skipWhitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return out;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      // RFC 8259: control characters (U+0000..U+001F) must be escaped inside
      // strings.  The writer always escapes them (writeEscaped above), so a
      // raw one here is a corrupt or hand-forged document -- and letting it
      // through would make dump(parse(text)) disagree with text, breaking
      // the checksum reproducibility the formats rely on.
      if (ch == '\n') fail("raw newline in string");
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("raw control character in string (escape it as \\u00xx)");
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The schemas only ever escape control characters; reject the rest
          // rather than implementing UTF-16 surrogate handling.
          if (code > 0x7F) fail("\\u escape above 0x7f unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      fail("invalid value");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fail("non-integer numbers are not part of the schema");
    }
    const std::string_view digits = text_.substr(start, pos_ - start);
    std::int64_t value = 0;
    const bool negative = digits.front() == '-';
    for (const char d : digits.substr(negative ? 1 : 0)) {
      if (value > (INT64_MAX - (d - '0')) / 10) fail("integer overflow");
      value = value * 10 + (d - '0');
    }
    return Json(negative ? -value : value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t lineStart_ = 0;
};

}  // namespace

bool Json::asBool() const {
  if (type_ != Type::kBool) typeError("bool", type_);
  return bool_;
}

std::int64_t Json::asInt() const {
  if (type_ != Type::kInt) typeError("int", type_);
  return int_;
}

const std::string& Json::asString() const {
  if (type_ != Type::kString) typeError("string", type_);
  return string_;
}

const Json::Array& Json::asArray() const {
  if (type_ != Type::kArray) typeError("array", type_);
  return array_;
}

const Json::Object& Json::asObject() const {
  if (type_ != Type::kObject) typeError("object", type_);
  return object_;
}

void Json::push(Json v) {
  if (type_ != Type::kArray) typeError("array", type_);
  array_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  if (type_ != Type::kObject) typeError("object", type_);
  object_.emplace_back(std::move(key), std::move(v));
}

const Json* Json::find(std::string_view key) const {
  const auto& members = asObject();
  const auto it =
      std::find_if(members.begin(), members.end(),
                   [&](const auto& kv) { return kv.first == key; });
  return it == members.end() ? nullptr : &it->second;
}

const Json& Json::at(std::string_view key) const {
  const Json* member = find(key);
  if (member == nullptr) {
    throw Error("json: missing member '" + std::string(key) + "'");
  }
  return *member;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kString: writeEscaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        writeEscaped(out, object_[i].first);
        out += ':';
        if (indent > 0) out += ' ';
        object_[i].second.write(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::dumpPretty() const {
  std::string out;
  write(out, 2, 0);
  out += '\n';
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parseDocument();
}

std::string fnv1a64Hex(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x00000100000001b3ULL;
  }
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace relb::io
