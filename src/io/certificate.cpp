#include "io/certificate.hpp"

#include <atomic>
#include <fstream>
#include <sstream>

namespace relb::io {

using re::Error;

namespace {

Json stepToJson(const CertificateStep& step, const std::string& kind) {
  Json out = Json::object();
  if (kind == "family-chain") {
    out.set("a", static_cast<std::int64_t>(step.a));
    out.set("x", static_cast<std::int64_t>(step.x));
  } else {
    out.set("op", step.op);
    if (step.meaning.has_value()) {
      Json meaning = Json::array();
      for (const re::LabelSet s : *step.meaning) {
        meaning.push(labelSetToJson(s));
      }
      out.set("meaning", std::move(meaning));
    }
  }
  out.set("problem", problemToJson(step.problem));
  out.set("zero_round_solvable", step.zeroRoundSolvable);
  if (!step.notes.empty()) {
    Json notes = Json::array();
    for (const std::string& note : step.notes) notes.push(note);
    out.set("notes", std::move(notes));
  }
  return out;
}

CertificateStep stepFromJson(const Json& j, const std::string& kind) {
  CertificateStep step;
  if (kind == "family-chain") {
    step.a = j.at("a").asInt();
    step.x = j.at("x").asInt();
  } else {
    step.op = j.at("op").asString();
    if (step.op != "input" && step.op != "R" && step.op != "Rbar") {
      throw Error("certificate: unknown step operator '" + step.op + "'");
    }
  }
  step.problem = problemFromJson(j.at("problem"));
  if (const Json* meaning = j.find("meaning")) {
    std::vector<re::LabelSet> sets;
    for (const Json& s : meaning->asArray()) {
      // Meanings refer to the *previous* step's alphabet, which is unknown
      // here; bounds are checked against kMaxLabels now and against the
      // actual predecessor during verification.
      sets.push_back(labelSetFromJson(s, re::kMaxLabels));
    }
    step.meaning = std::move(sets);
  }
  step.zeroRoundSolvable = j.at("zero_round_solvable").asBool();
  if (const Json* notes = j.find("notes")) {
    for (const Json& note : notes->asArray()) {
      step.notes.push_back(note.asString());
    }
  }
  return step;
}

}  // namespace

Json certificateToJson(const Certificate& cert) {
  if (cert.kind != "family-chain" && cert.kind != "speedup-trace") {
    throw Error("certificate: unknown kind '" + cert.kind + "'");
  }
  Json params = Json::object();
  params.set("kind", cert.kind);
  if (cert.kind == "family-chain") {
    params.set("delta", static_cast<std::int64_t>(cert.delta));
    params.set("x0", static_cast<std::int64_t>(cert.x0));
  }

  Json steps = Json::array();
  for (const CertificateStep& step : cert.steps) {
    steps.push(stepToJson(step, cert.kind));
  }

  Json engine = Json::object();
  for (const auto& [key, value] : cert.engineInfo) engine.set(key, value);

  Json checksums = Json::object();
  checksums.set("params", fnv1a64Hex(params.dump()));
  checksums.set("steps", fnv1a64Hex(steps.dump()));
  checksums.set("engine", fnv1a64Hex(engine.dump()));

  Json out = Json::object();
  out.set("format", "relb-certificate");
  out.set("version", cert.version);
  out.set("params", std::move(params));
  out.set("steps", std::move(steps));
  out.set("engine", std::move(engine));
  out.set("checksums", std::move(checksums));
  return out;
}

Certificate certificateFromJson(const Json& j) {
  if (j.at("format").asString() != "relb-certificate") {
    throw Error("certificate: not a relb-certificate document");
  }
  Certificate cert;
  cert.version = static_cast<int>(j.at("version").asInt());
  if (cert.version != kFormatVersion) {
    throw Error("certificate: unsupported version " +
                std::to_string(cert.version) + " (supported: " +
                std::to_string(kFormatVersion) + ")");
  }

  const Json& checksums = j.at("checksums");
  for (const char* section : {"params", "steps", "engine"}) {
    const std::string actual = fnv1a64Hex(j.at(section).dump());
    const std::string& expected = checksums.at(section).asString();
    if (actual != expected) {
      throw Error(std::string("certificate: checksum mismatch in section '") +
                  section + "' (expected " + expected + ", computed " +
                  actual + ")");
    }
  }

  const Json& params = j.at("params");
  cert.kind = params.at("kind").asString();
  if (cert.kind != "family-chain" && cert.kind != "speedup-trace") {
    throw Error("certificate: unknown kind '" + cert.kind + "'");
  }
  if (cert.kind == "family-chain") {
    cert.delta = params.at("delta").asInt();
    cert.x0 = params.at("x0").asInt();
  }
  for (const Json& step : j.at("steps").asArray()) {
    cert.steps.push_back(stepFromJson(step, cert.kind));
  }
  for (const auto& [key, value] : j.at("engine").asObject()) {
    cert.engineInfo.emplace_back(key, value.asString());
  }
  return cert;
}

void atomicWriteFile(const std::filesystem::path& path,
                     std::string_view content) {
  static std::atomic<unsigned> counter{0};
  const std::filesystem::path dir =
      path.has_parent_path() ? path.parent_path() : ".";
  const std::filesystem::path tmp =
      dir / (".tmp-" + std::to_string(counter.fetch_add(1)) + "-" +
             path.filename().string());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("io: cannot open '" + tmp.string() + "' for writing");
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw Error("io: short write to '" + tmp.string() + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw Error("io: cannot rename into '" + path.string() + "'");
  }
}

void saveCertificate(const std::filesystem::path& path,
                     const Certificate& cert) {
  atomicWriteFile(path, certificateToJson(cert).dumpPretty());
}

Certificate loadCertificate(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("io: cannot open '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return certificateFromJson(Json::parse(buffer.str()));
}

}  // namespace relb::io
