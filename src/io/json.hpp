// A minimal, dependency-free JSON value type with a deterministic writer and
// a position-reporting recursive-descent parser.
//
// Scope is exactly what the persistence layer needs (docs/formats.md):
//   * numbers are 64-bit signed integers -- every quantity in the schemas
//     (degrees, exponents, label indices, counters) is integral, and
//     integers round-trip exactly, which the per-section checksums require;
//   * object member order is preserved, so serialize(parse(text)) == text
//     for documents this writer produced (checksums are computed over the
//     serialized bytes and must be reproducible);
//   * parse errors throw re::Error with 1-based line/column positions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "re/types.hpp"

namespace relb::io {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered; duplicate keys are rejected by the parser.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::int64_t i) : type_(Type::kInt), int_(i) {}
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool isNull() const { return type_ == Type::kNull; }
  [[nodiscard]] bool isObject() const { return type_ == Type::kObject; }
  [[nodiscard]] bool isArray() const { return type_ == Type::kArray; }

  // Checked accessors; throw re::Error naming the expected type.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const Array& asArray() const;
  [[nodiscard]] const Object& asObject() const;

  /// Appends to an array value.
  void push(Json v);
  /// Appends a member to an object value (no duplicate-key check; builders
  /// control their keys).
  void set(std::string key, Json v);

  /// Pointer to the member `key`, or nullptr if absent (object values only;
  /// throws on other types).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// The member `key`; throws re::Error if absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Compact serialization (no whitespace).  Deterministic: the same value
  /// always produces the same bytes.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with 2-space indentation, for files humans read.
  [[nodiscard]] std::string dumpPretty() const;

  /// Parses a complete JSON document (trailing whitespace allowed, anything
  /// else is an error).  Throws re::Error with line/column on malformed
  /// input, duplicate object keys, non-integer numbers, or nesting deeper
  /// than 64 levels.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// FNV-1a 64-bit checksum of a byte string, as a fixed-width lowercase hex
/// string (16 chars).  The store and the certificate sections both use this;
/// it detects corruption and casual tampering, not adversaries.
[[nodiscard]] std::string fnv1a64Hex(std::string_view bytes);

}  // namespace relb::io
