// Versioned serialization of problems (and their building blocks) in two
// formats, both specified in docs/formats.md:
//
//   * JSON: self-describing and fully structural (alphabet as a name array,
//     configurations as explicit (label-index-set, exponent) groups).  The
//     strict round-trip guarantee problemFromJson(problemToJson(p)) == p
//     holds for every valid problem, including syntactic details the text
//     format cannot carry (label registration order).
//   * Text: the round-eliminator-compatible format of re/problem.hpp, plus
//     a "# alphabet: ..." header line that pins the label order.  Standard
//     round-eliminator tooling ignores the header (it is a comment); with
//     the header present, parseProblemText guarantees the same round-trip
//     identity.  Refuses label names containing whitespace (they cannot be
//     tokenized back); use JSON for machine-generated alphabets.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "io/json.hpp"
#include "re/problem.hpp"

namespace relb::io {

/// Version stamped into every problem/certificate/store document this
/// library writes.  Parsers accept exactly this version; bump it on any
/// schema change (rules in docs/formats.md).
inline constexpr int kFormatVersion = 1;

// -- JSON ------------------------------------------------------------------

/// {"format":"relb-problem","version":1,"alphabet":[...],"delta":...,
///  "node":[[{"set":[...],"count":...},...],...],"edge":[...]}
[[nodiscard]] Json problemToJson(const re::Problem& p);

/// Inverse of problemToJson.  Validates format/version, label indices,
/// degrees, and Problem::validate(); throws re::Error on any mismatch.
[[nodiscard]] re::Problem problemFromJson(const Json& j);

/// A label set as a JSON array of label indices (ascending).
[[nodiscard]] Json labelSetToJson(re::LabelSet s);
[[nodiscard]] re::LabelSet labelSetFromJson(const Json& j, int alphabetSize);

[[nodiscard]] Json configurationToJson(const re::Configuration& c);
[[nodiscard]] re::Configuration configurationFromJson(const Json& j,
                                                      int alphabetSize);

// -- Text ------------------------------------------------------------------

/// "# alphabet: M P O A X\n<node configs>\n\n<edge configs>\n".
/// Throws re::Error if a label name contains whitespace.
[[nodiscard]] std::string renderProblemText(const re::Problem& p);

/// Longest line parseProblemText accepts, in bytes.  Configurations over a
/// <= kMaxLabels alphabet render far below this; anything longer is a
/// corrupt or hostile input and is rejected with the offending line number.
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

/// Parses the text form.  With a "# alphabet:" header, labels are
/// pre-registered in header order and configurations may not mention labels
/// outside it; without one, this is exactly Problem::parse on the two
/// sections (labels registered in order of first appearance).
///
/// Hardened against malformed input: rejects non-UTF-8 bytes (with the byte
/// offset), lines longer than kMaxLineBytes (with the line number), and
/// duplicate labels in the alphabet header (with both positions) -- all as
/// re::Error diagnostics.
[[nodiscard]] re::Problem parseProblemText(std::string_view text);

}  // namespace relb::io
