#include "io/serialize.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace relb::io {

using re::Alphabet;
using re::Configuration;
using re::Constraint;
using re::Count;
using re::Error;
using re::Group;
using re::Label;
using re::LabelSet;
using re::Problem;

namespace {

void requireFormat(const Json& j, std::string_view format) {
  if (j.at("format").asString() != format) {
    throw Error("serialize: expected format '" + std::string(format) +
                "', have '" + j.at("format").asString() + "'");
  }
  const std::int64_t version = j.at("version").asInt();
  if (version != kFormatVersion) {
    throw Error("serialize: unsupported " + std::string(format) +
                " version " + std::to_string(version) + " (supported: " +
                std::to_string(kFormatVersion) + ")");
  }
}

Json constraintToJson(const Constraint& c) {
  Json out = Json::array();
  for (const Configuration& config : c.configurations()) {
    out.push(configurationToJson(config));
  }
  return out;
}

Constraint constraintFromJson(const Json& j, Count degree, int alphabetSize) {
  std::vector<Configuration> configs;
  for (const Json& config : j.asArray()) {
    configs.push_back(configurationFromJson(config, alphabetSize));
    if (configs.back().degree() != degree) {
      throw Error("serialize: configuration degree " +
                  std::to_string(configs.back().degree()) +
                  " does not match constraint degree " +
                  std::to_string(degree));
    }
  }
  return Constraint(degree, std::move(configs));
}

// Strict UTF-8 validation (RFC 3629): rejects stray continuation bytes,
// overlong encodings, surrogates, and anything past U+10FFFF.  Problem text
// frequently comes from hand-edited files and fuzzers; a precise byte-level
// diagnostic beats a confusing tokenizer error three layers down.
void requireUtf8(std::string_view text) {
  const auto fail = [&](std::size_t offset) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "0x%02X",
                  static_cast<unsigned char>(text[offset]));
    throw Error("parseProblemText: invalid UTF-8 byte " + std::string(buf) +
                " at offset " + std::to_string(offset) +
                " (inputs must be UTF-8 text)");
  };
  std::size_t i = 0;
  while (i < text.size()) {
    const auto c = static_cast<unsigned char>(text[i]);
    if (c < 0x80) {
      ++i;
      continue;
    }
    std::size_t need = 0;
    unsigned char lo = 0x80;
    unsigned char hi = 0xBF;
    if (c >= 0xC2 && c <= 0xDF) {
      need = 1;
    } else if (c >= 0xE0 && c <= 0xEF) {
      need = 2;
      if (c == 0xE0) lo = 0xA0;  // reject overlong
      if (c == 0xED) hi = 0x9F;  // reject surrogates
    } else if (c >= 0xF0 && c <= 0xF4) {
      need = 3;
      if (c == 0xF0) lo = 0x90;  // reject overlong
      if (c == 0xF4) hi = 0x8F;  // reject > U+10FFFF
    } else {
      fail(i);
    }
    if (i + need >= text.size()) fail(i);
    for (std::size_t k = 1; k <= need; ++k) {
      const auto cont = static_cast<unsigned char>(text[i + k]);
      const unsigned char floor = (k == 1) ? lo : 0x80;
      const unsigned char ceil = (k == 1) ? hi : 0xBF;
      if (cont < floor || cont > ceil) fail(i + k);
    }
    i += need + 1;
  }
}

}  // namespace

Json labelSetToJson(LabelSet s) {
  Json out = Json::array();
  for (const Label l : s.toVector()) out.push(static_cast<std::int64_t>(l));
  return out;
}

LabelSet labelSetFromJson(const Json& j, int alphabetSize) {
  LabelSet out;
  for (const Json& entry : j.asArray()) {
    const std::int64_t l = entry.asInt();
    if (l < 0 || l >= alphabetSize) {
      throw Error("serialize: label index " + std::to_string(l) +
                  " outside alphabet of size " + std::to_string(alphabetSize));
    }
    out.insert(static_cast<Label>(l));
  }
  return out;
}

Json configurationToJson(const Configuration& c) {
  Json out = Json::array();
  for (const Group& g : c.groups()) {
    Json group = Json::object();
    group.set("set", labelSetToJson(g.set));
    group.set("count", static_cast<std::int64_t>(g.count));
    out.push(std::move(group));
  }
  return out;
}

Configuration configurationFromJson(const Json& j, int alphabetSize) {
  std::vector<Group> groups;
  for (const Json& group : j.asArray()) {
    const LabelSet set = labelSetFromJson(group.at("set"), alphabetSize);
    const std::int64_t count = group.at("count").asInt();
    if (set.empty()) throw Error("serialize: empty group set");
    if (count < 1) {
      throw Error("serialize: group count must be >= 1, have " +
                  std::to_string(count));
    }
    groups.push_back({set, count});
  }
  if (groups.empty()) throw Error("serialize: empty configuration");
  return Configuration(std::move(groups));
}

Json problemToJson(const Problem& p) {
  Json out = Json::object();
  out.set("format", "relb-problem");
  out.set("version", kFormatVersion);
  Json alphabet = Json::array();
  for (const std::string& name : p.alphabet.names()) alphabet.push(name);
  out.set("alphabet", std::move(alphabet));
  out.set("delta", static_cast<std::int64_t>(p.delta()));
  out.set("node", constraintToJson(p.node));
  out.set("edge", constraintToJson(p.edge));
  return out;
}

Problem problemFromJson(const Json& j) {
  requireFormat(j, "relb-problem");
  Problem p;
  std::vector<std::string> names;
  for (const Json& name : j.at("alphabet").asArray()) {
    names.push_back(name.asString());
  }
  p.alphabet = Alphabet(std::move(names));
  const Count delta = j.at("delta").asInt();
  if (delta < 1) throw Error("serialize: delta must be >= 1");
  p.node = constraintFromJson(j.at("node"), delta, p.alphabet.size());
  p.edge = constraintFromJson(j.at("edge"), 2, p.alphabet.size());
  p.validate();
  return p;
}

std::string renderProblemText(const Problem& p) {
  std::string header = "# alphabet:";
  for (const std::string& name : p.alphabet.names()) {
    for (const char ch : name) {
      if (std::isspace(static_cast<unsigned char>(ch))) {
        throw Error("renderProblemText: label name '" + name +
                    "' contains whitespace; use the JSON format");
      }
    }
    header += ' ';
    header += name;
  }
  return header + "\n" + p.render();
}

Problem parseProblemText(std::string_view text) {
  requireUtf8(text);
  // Peel off an optional "# alphabet:" header.
  std::istringstream iss{std::string(text)};
  std::string line;
  std::vector<std::string> headerNames;
  std::string body;
  bool sawHeader = false;
  bool firstContent = true;
  std::size_t lineNo = 0;
  while (std::getline(iss, line)) {
    ++lineNo;
    if (line.size() > kMaxLineBytes) {
      throw Error("parseProblemText: line " + std::to_string(lineNo) +
                  " is " + std::to_string(line.size()) +
                  " bytes long (limit " + std::to_string(kMaxLineBytes) +
                  "); problem text lines never get this large");
    }
    if (firstContent && line.starts_with("# alphabet:")) {
      std::istringstream names{line.substr(std::string("# alphabet:").size())};
      std::string name;
      while (names >> name) headerNames.push_back(name);
      sawHeader = true;
      firstContent = false;
      continue;
    }
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      firstContent = false;
    }
    body += line;
    body += '\n';
  }

  // Split the body into the node and edge sections at the first blank-line
  // run that separates two non-empty sections (Problem::render emits exactly
  // one).
  std::istringstream sections{body};
  std::string nodeText;
  std::string edgeText;
  bool inEdge = false;
  bool nodeSeen = false;
  while (std::getline(sections, line)) {
    const bool blank = line.find_first_not_of(" \t\r") == std::string::npos;
    if (!inEdge && blank && nodeSeen) {
      inEdge = true;
      continue;
    }
    if (!blank && !line.starts_with('#')) {
      (inEdge ? edgeText : nodeText) += line + "\n";
      nodeSeen = nodeSeen || !inEdge;
    }
  }

  if (!sawHeader) return Problem::parse(nodeText, edgeText);

  for (std::size_t a = 0; a < headerNames.size(); ++a) {
    for (std::size_t b = a + 1; b < headerNames.size(); ++b) {
      if (headerNames[a] == headerNames[b]) {
        throw Error("parseProblemText: duplicate label '" + headerNames[a] +
                    "' in alphabet header (positions " + std::to_string(a) +
                    " and " + std::to_string(b) + ")");
      }
    }
  }

  Problem p = Problem::parse(nodeText, edgeText);
  // Re-parse against the declared alphabet so label order matches the
  // header exactly; reject labels the header does not declare.
  Problem seeded;
  seeded.alphabet = Alphabet(headerNames);
  const int declared = seeded.alphabet.size();
  auto reparse = [&](const Constraint& c, Count degree) {
    std::vector<Configuration> configs;
    for (const Configuration& config : c.configurations()) {
      configs.push_back(
          re::parseConfiguration(config.render(p.alphabet), seeded.alphabet));
    }
    if (seeded.alphabet.size() != declared) {
      throw Error("parseProblemText: configuration mentions label '" +
                  seeded.alphabet.names().back() +
                  "' not declared in the alphabet header");
    }
    return Constraint(degree, std::move(configs));
  };
  seeded.node = reparse(p.node, p.node.degree());
  seeded.edge = reparse(p.edge, 2);
  seeded.validate();
  return seeded;
}

}  // namespace relb::io
