#include "io/verify.hpp"

#include "re/zero_round.hpp"

namespace relb::io {

using re::Configuration;
using re::Constraint;
using re::Count;
using re::Error;
using re::Label;
using re::LabelSet;
using re::Problem;

namespace {

// Reporting helpers: every check lands in exactly one of the two lists.
struct Checker {
  VerifyReport report;

  void pass(std::string what) { report.checks.push_back(std::move(what)); }
  void fail(std::string what) { report.errors.push_back(std::move(what)); }
  void check(bool ok, const std::string& what) {
    ok ? pass(what) : fail(what);
  }
};

bool corollary10Applies(Count a, Count x, Count delta) {
  return 2 * x + 1 <= a && x + 2 <= a && a <= delta;
}

// Labels of the new problem replaced by the union of their meanings; the
// decoded configuration denotes exactly the old-alphabet words reachable by
// choosing a new label per slot and then an old label from its meaning.
Configuration decodeThroughMeaning(const Configuration& c,
                                   const std::vector<LabelSet>& meaning) {
  return c.mapSets([&](LabelSet s) {
    LabelSet out;
    re::forEachLabel(s, [&](Label l) { out = out | meaning[l]; });
    return out;
  });
}

void verifyFamilyChain(const Certificate& cert, Checker& c) {
  if (cert.delta < 1) {
    c.fail("delta must be >= 1, have " + std::to_string(cert.delta));
    return;
  }
  if (!cert.steps.empty()) {
    const CertificateStep& first = cert.steps.front();
    c.check(first.x == cert.x0,
            "step 0 starts at x0 = " + std::to_string(cert.x0));
  }
  for (std::size_t i = 0; i < cert.steps.size(); ++i) {
    const CertificateStep& step = cert.steps[i];
    const std::string tag = "step " + std::to_string(i);

    Problem expected;
    try {
      expected = reconstructFamilyProblem(cert.delta, step.a, step.x);
    } catch (const Error& e) {
      c.fail(tag + ": invalid family parameters (a = " +
             std::to_string(step.a) + ", x = " + std::to_string(step.x) +
             "): " + e.what());
      continue;
    }
    c.check(step.problem == expected,
            tag + ": recorded problem equals the reconstruction of Pi_" +
                std::to_string(cert.delta) + "(" + std::to_string(step.a) +
                ", " + std::to_string(step.x) + ")");

    const bool solvable = re::zeroRoundSolvableSymmetricPorts(step.problem);
    c.check(!solvable, tag + ": problem is not 0-round solvable (Lemma 12)");
    c.check(step.zeroRoundSolvable == solvable,
            tag + ": recorded zero-round verdict matches recomputation");

    if (i + 1 < cert.steps.size()) {
      const CertificateStep& next = cert.steps[i + 1];
      c.check(corollary10Applies(step.a, step.x, cert.delta),
              tag + ": Corollary 10 preconditions hold");
      const Count spedA = (step.a - 2 * step.x - 1) / 2;
      const Count spedX = step.x + 1;
      c.check(next.a <= spedA && next.x >= spedX,
              tag + ": step " + std::to_string(i + 1) +
                  " reachable by Corollary 10 + Lemma 11");
    }
  }
  if (c.report.errors.empty()) {
    c.report.provenRounds = cert.claimedRounds();
  }
}

void verifySpeedupTrace(const Certificate& cert, Checker& c) {
  for (std::size_t i = 0; i < cert.steps.size(); ++i) {
    const CertificateStep& step = cert.steps[i];
    const std::string tag = "step " + std::to_string(i);

    if (i == 0) {
      c.check(step.op == "input" && !step.meaning.has_value(),
              "step 0 is the input problem");
    } else {
      const Problem& prev = cert.steps[i - 1].problem;
      const int prevSize = prev.alphabet.size();

      if (step.op != "R" && step.op != "Rbar") {
        c.fail(tag + ": operator must be R or Rbar, have '" + step.op + "'");
        continue;
      }
      if (!step.meaning.has_value()) {
        c.fail(tag + ": missing renaming map");
        continue;
      }
      const std::vector<LabelSet>& meaning = *step.meaning;
      bool meaningOk =
          static_cast<int>(meaning.size()) == step.problem.alphabet.size();
      for (const LabelSet s : meaning) {
        meaningOk = meaningOk && !s.empty() &&
                    s.subsetOf(LabelSet::full(prevSize));
      }
      c.check(meaningOk,
              tag + ": renaming map covers the alphabet with non-empty "
                    "subsets of the previous alphabet");
      if (!meaningOk) continue;

      // Soundness of the universal side: R maximizes the edge constraint
      // (every decoded edge configuration must already be allowed), Rbar
      // the node constraint.
      const bool isR = step.op == "R";
      const Constraint& oldSide = isR ? prev.edge : prev.node;
      const Constraint& newSide =
          isR ? step.problem.edge : step.problem.node;
      bool sound = true;
      std::string firstBad;
      for (const Configuration& config : newSide.configurations()) {
        const Configuration decoded = decodeThroughMeaning(config, meaning);
        if (!oldSide.containsAllWordsOf(decoded, prevSize)) {
          sound = false;
          if (firstBad.empty()) firstBad = config.render(step.problem.alphabet);
          break;
        }
      }
      c.check(sound, tag + ": " + step.op + " " +
                         (isR ? "edge" : "node") +
                         " constraint is sound w.r.t. the previous problem" +
                         (sound ? "" : " (violated by " + firstBad + ")"));
    }

    const bool solvable = re::zeroRoundSolvableSymmetricPorts(step.problem);
    c.check(step.zeroRoundSolvable == solvable,
            tag + ": recorded zero-round verdict matches recomputation");
  }
}

}  // namespace

re::Problem reconstructFamilyProblem(Count delta, Count a, Count x) {
  // Section 3.1, written out from the paper rather than shared with
  // core::familyProblem (see the header).
  if (delta < 1 || a < 0 || a > delta || x < 0 || x > delta) {
    throw Error("reconstructFamilyProblem: need 0 <= a, x <= delta");
  }
  Problem p;
  p.alphabet = re::Alphabet({"M", "P", "O", "A", "X"});
  const Label m = p.alphabet.at("M");
  const Label pp = p.alphabet.at("P");
  const Label o = p.alphabet.at("O");
  const Label aa = p.alphabet.at("A");
  const Label xx = p.alphabet.at("X");

  // node:  M^{Delta-x} X^x  |  A^a X^{Delta-a}  |  P O^{Delta-1}
  Constraint node(delta, {});
  node.add(Configuration({{LabelSet{m}, delta - x}, {LabelSet{xx}, x}}));
  node.add(Configuration({{LabelSet{aa}, a}, {LabelSet{xx}, delta - a}}));
  node.add(Configuration({{LabelSet{pp}, 1}, {LabelSet{o}, delta - 1}}));
  p.node = std::move(node);

  // edge:  M[PAOX]  O[MAOX]  P[MX]  A[MOX]  X[MPAOX]
  Constraint edge(2, {});
  const auto pairUp = [&](Label l, LabelSet others) {
    edge.add(Configuration({{LabelSet{l}, 1}, {others, 1}}));
  };
  pairUp(m, LabelSet{pp, aa, o, xx});
  pairUp(o, LabelSet{m, aa, o, xx});
  pairUp(pp, LabelSet{m, xx});
  pairUp(aa, LabelSet{m, o, xx});
  pairUp(xx, LabelSet{m, pp, aa, o, xx});
  p.edge = std::move(edge);

  p.validate();
  return p;
}

VerifyReport verifyCertificate(const Certificate& cert) {
  Checker c;
  if (cert.steps.empty()) {
    c.fail("certificate has no steps");
  } else if (cert.kind == "family-chain") {
    verifyFamilyChain(cert, c);
  } else if (cert.kind == "speedup-trace") {
    verifySpeedupTrace(cert, c);
  } else {
    throw Error("verifyCertificate: unknown kind '" + cert.kind + "'");
  }
  c.report.ok = c.report.errors.empty();
  return c.report;
}

std::string VerifyReport::describe() const {
  std::string out;
  out += ok ? "VERIFIED" : "REJECTED";
  out += " (" + std::to_string(checks.size()) + " checks passed, " +
         std::to_string(errors.size()) + " failed)";
  if (ok && provenRounds > 0) {
    out += "\nproven lower bound: " + std::to_string(provenRounds) +
           " rounds (deterministic PN model)";
  }
  for (const std::string& e : errors) out += "\nFAIL: " + e;
  return out;
}

}  // namespace relb::io
