// Independent certificate verification.
//
// This module deliberately links only the low-level problem machinery
// (relb_re_base: problems, constraints, zero-round analysis) and NOT the
// speedup engine -- a bug in engine.cpp / re_step.cpp cannot hide a bug in
// itself.  The family problems are reconstructed here from the paper's
// definition, independently of core::familyProblem (the tests cross-check
// the two constructions against each other).
//
// What is verified, per certificate kind:
//
//   "family-chain" (fully verified):
//     * every step's problem equals the independent reconstruction of
//       Pi_Delta(a_i, x_i) from its recorded parameters;
//     * every consecutive pair satisfies the Corollary 10 preconditions
//       (2x+1 <= a, x+2 <= a, a <= Delta) and the Lemma 11 reachability
//       condition (a_{i+1} <= floor((a_i - 2x_i - 1)/2), x_{i+1} >= x_i+1);
//     * every step's problem is re-checked NOT 0-round solvable on the
//       symmetric-port family (Lemma 12), and the recorded verdict matches.
//     On success the certificate proves: Pi_Delta(delta, x0) needs at least
//     `steps - 1` rounds in the deterministic PN model (Lemma 13).
//
//   "speedup-trace" (soundness side only):
//     * step 0 is the input; each later step records R or Rbar plus the
//       renaming map `meaning` over the previous step's alphabet;
//     * for R, the new edge constraint is checked sound: every decoded edge
//       configuration (labels replaced by their meanings) is contained in
//       the previous edge constraint;
//     * for Rbar, the same check runs against the node constraint;
//     * every step's recorded zero-round verdict is recomputed.
//     NOT checked: maximality of the chosen sets and the exists-side
//     ("replacement") constraint -- certifying those would re-run the
//     engine.  A passing trace therefore shows each step permits only
//     correct outputs, not that it is exactly R / Rbar.
#pragma once

#include <string>
#include <vector>

#include "io/certificate.hpp"

namespace relb::io {

struct VerifyReport {
  bool ok = false;
  /// Failed checks, in step order.  Empty iff ok.
  std::vector<std::string> errors;
  /// Passed checks, human-readable (for --verbose output and the tests).
  std::vector<std::string> checks;
  /// family-chain only: the round lower bound the verified chain proves.
  re::Count provenRounds = 0;

  [[nodiscard]] std::string describe() const;
};

/// Runs every check applicable to `cert.kind` (see the contract above).
/// Never throws on a *failed check* -- failures land in `errors`; throws
/// re::Error only on structurally impossible input (e.g. an unknown kind,
/// which certificateFromJson already rejects).
[[nodiscard]] VerifyReport verifyCertificate(const Certificate& cert);

/// The verifier's own reconstruction of Pi_Delta(a, x) from the paper
/// (Section 3.1).  Intentionally independent of core::familyProblem.
[[nodiscard]] re::Problem reconstructFamilyProblem(re::Count delta,
                                                   re::Count a, re::Count x);

}  // namespace relb::io
