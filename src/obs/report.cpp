#include "obs/report.hpp"

#include <fstream>
#include <sstream>

#include "io/certificate.hpp"  // io::atomicWriteFile
#include "re/types.hpp"

namespace relb::obs {

using io::Json;
using re::Error;

RunReport buildRunReport(const SpanAggregator& aggregator,
                         const Registry& registry) {
  RunReport report;
  const auto toRows = [](const SpanAggregator::Rows& rows) {
    std::vector<RunReport::Row> out;
    out.reserve(rows.size());
    for (const auto& [name, totals] : rows) {
      out.push_back({name, totals.count, totals.wallMicros});
    }
    return out;
  };
  report.phases = toRows(aggregator.rootTotals());
  report.spans = toRows(aggregator.totals());
  Registry::Snapshot snapshot = registry.snapshot();
  report.counters = std::move(snapshot.counters);
  report.gauges = std::move(snapshot.gauges);
  return report;
}

namespace {

Json rowsToJson(const std::vector<RunReport::Row>& rows) {
  Json out = Json::array();
  for (const RunReport::Row& row : rows) {
    Json r = Json::object();
    r.set("name", row.name);
    r.set("count", static_cast<std::int64_t>(row.count));
    r.set("wall_micros", row.wallMicros);
    out.push(std::move(r));
  }
  return out;
}

std::vector<RunReport::Row> rowsFromJson(const Json& j) {
  std::vector<RunReport::Row> out;
  for (const Json& r : j.asArray()) {
    RunReport::Row row;
    row.name = r.at("name").asString();
    row.count = static_cast<std::uint64_t>(r.at("count").asInt());
    row.wallMicros = r.at("wall_micros").asInt();
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace

Json runReportToJson(const RunReport& report) {
  Json run = Json::object();
  run.set("command", report.command);
  run.set("total_wall_micros", report.totalWallMicros);
  run.set("threads", report.threads);
  if (report.chainDelta >= 0) {
    Json chain = Json::object();
    chain.set("delta", report.chainDelta);
    chain.set("x0", report.chainX0);
    Json steps = Json::array();
    for (const RunReport::ChainStep& step : report.chainSteps) {
      Json s = Json::object();
      s.set("a", step.a);
      s.set("x", step.x);
      steps.push(std::move(s));
    }
    chain.set("steps", std::move(steps));
    run.set("chain", std::move(chain));
  }
  if (!report.opsWalked.empty()) {
    Json ops = Json::array();
    for (const std::string& op : report.opsWalked) ops.push(op);
    run.set("ops_walked", std::move(ops));
  }

  Json phases = rowsToJson(report.phases);
  Json spans = rowsToJson(report.spans);

  Json counters = Json::object();
  for (const auto& [name, value] : report.counters) {
    counters.set(name, static_cast<std::int64_t>(value));
  }
  Json gauges = Json::object();
  for (const auto& [name, value] : report.gauges) gauges.set(name, value);

  Json checksums = Json::object();
  checksums.set("run", io::fnv1a64Hex(run.dump()));
  checksums.set("phases", io::fnv1a64Hex(phases.dump()));
  checksums.set("spans", io::fnv1a64Hex(spans.dump()));
  checksums.set("counters", io::fnv1a64Hex(counters.dump()));
  checksums.set("gauges", io::fnv1a64Hex(gauges.dump()));

  Json out = Json::object();
  out.set("format", "relb-run-report");
  out.set("version", report.version);
  out.set("run", std::move(run));
  out.set("phases", std::move(phases));
  out.set("spans", std::move(spans));
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("checksums", std::move(checksums));
  return out;
}

RunReport runReportFromJson(const Json& j) {
  if (j.at("format").asString() != "relb-run-report") {
    throw Error("run report: not a relb-run-report document");
  }
  RunReport report;
  report.version = static_cast<int>(j.at("version").asInt());
  if (report.version != kRunReportVersion) {
    throw Error("run report: unsupported version " +
                std::to_string(report.version) + " (supported: " +
                std::to_string(kRunReportVersion) + ")");
  }

  const Json& checksums = j.at("checksums");
  for (const char* section : {"run", "phases", "spans", "counters", "gauges"}) {
    const std::string actual = io::fnv1a64Hex(j.at(section).dump());
    const std::string& expected = checksums.at(section).asString();
    if (actual != expected) {
      throw Error(std::string("run report: checksum mismatch in section '") +
                  section + "' (expected " + expected + ", computed " +
                  actual + ")");
    }
  }

  const Json& run = j.at("run");
  report.command = run.at("command").asString();
  report.totalWallMicros = run.at("total_wall_micros").asInt();
  report.threads = static_cast<int>(run.at("threads").asInt());
  if (const Json* chain = run.find("chain")) {
    report.chainDelta = chain->at("delta").asInt();
    report.chainX0 = chain->at("x0").asInt();
    for (const Json& s : chain->at("steps").asArray()) {
      report.chainSteps.push_back({s.at("a").asInt(), s.at("x").asInt()});
    }
  }
  if (const Json* ops = run.find("ops_walked")) {
    for (const Json& op : ops->asArray()) {
      report.opsWalked.push_back(op.asString());
    }
  }

  report.phases = rowsFromJson(j.at("phases"));
  report.spans = rowsFromJson(j.at("spans"));
  for (const auto& [name, value] : j.at("counters").asObject()) {
    report.counters.emplace_back(name,
                                 static_cast<std::uint64_t>(value.asInt()));
  }
  for (const auto& [name, value] : j.at("gauges").asObject()) {
    report.gauges.emplace_back(name, value.asInt());
  }
  return report;
}

void saveRunReport(const std::filesystem::path& path,
                   const RunReport& report) {
  io::atomicWriteFile(path, runReportToJson(report).dumpPretty());
}

RunReport loadRunReport(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("run report: cannot open '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return runReportFromJson(Json::parse(buffer.str()));
}

}  // namespace relb::obs
