#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace relb::obs {

namespace {

std::int64_t monotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<int> nextThreadId{0};
thread_local int tlsThreadId = -1;
thread_local int tlsSpanDepth = 0;

}  // namespace

int currentThreadId() {
  if (tlsThreadId < 0) {
    tlsThreadId = nextThreadId.fetch_add(1, std::memory_order_relaxed);
  }
  return tlsThreadId;
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  buffer_.reserve(capacity_);
}

void RingBufferSink::consume(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
    return;
  }
  wrapped_ = true;
  ++dropped_;
  buffer_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> RingBufferSink::events() const {
  std::lock_guard lock(mutex_);
  if (!wrapped_) return buffer_;
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  out.insert(out.end(), buffer_.begin() + static_cast<std::ptrdiff_t>(next_),
             buffer_.end());
  out.insert(out.end(), buffer_.begin(),
             buffer_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

std::size_t RingBufferSink::size() const {
  std::lock_guard lock(mutex_);
  return buffer_.size();
}

std::size_t RingBufferSink::droppedEvents() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void TextSink::consume(const TraceEvent& event) {
  std::string line = "[tid " + std::to_string(event.threadId) + "] ";
  line += std::to_string(event.startMicros) + "us";
  switch (event.kind) {
    case TraceEvent::Kind::kSpan:
      line += " + " + std::to_string(event.durationMicros) + "us ";
      line.append(static_cast<std::size_t>(event.depth) * 2, ' ');
      line += event.name;
      break;
    case TraceEvent::Kind::kCounter:
      line += " # " + event.name + " = " + std::to_string(event.value);
      break;
    case TraceEvent::Kind::kInstant:
      line += " ! " + event.name;
      break;
  }
  line += '\n';
  std::lock_guard lock(mutex_);
  out_ += line;
}

std::string TextSink::render() const {
  std::lock_guard lock(mutex_);
  return out_;
}

SpanAggregator::Totals& SpanAggregator::slot(
    std::vector<std::pair<std::string, Totals>>& rows, std::string_view name) {
  for (auto& [rowName, totals] : rows) {
    if (rowName == name) return totals;
  }
  rows.emplace_back(std::string(name), Totals{});
  return rows.back().second;
}

void SpanAggregator::consume(const TraceEvent& event) {
  if (event.kind != TraceEvent::Kind::kSpan) return;
  std::lock_guard lock(mutex_);
  Totals& all = slot(all_, event.name);
  ++all.count;
  all.wallMicros += event.durationMicros;
  if (event.depth == 0) {
    Totals& root = slot(roots_, event.name);
    ++root.count;
    root.wallMicros += event.durationMicros;
  }
}

SpanAggregator::Rows SpanAggregator::sorted(
    const std::vector<std::pair<std::string, Totals>>& rows) {
  Rows out = rows;
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

SpanAggregator::Rows SpanAggregator::totals() const {
  std::lock_guard lock(mutex_);
  return sorted(all_);
}

SpanAggregator::Rows SpanAggregator::rootTotals() const {
  std::lock_guard lock(mutex_);
  return sorted(roots_);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer::Tracer() : epochNanos_(monotonicNanos()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::addSink(std::shared_ptr<TraceSink> sink) {
  if (sink == nullptr) return;
  std::lock_guard lock(mutex_);
  sinks_.push_back(std::move(sink));
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::removeSink(const TraceSink* sink) {
  std::lock_guard lock(mutex_);
  sinks_.erase(std::remove_if(sinks_.begin(), sinks_.end(),
                              [&](const std::shared_ptr<TraceSink>& s) {
                                return s.get() == sink;
                              }),
               sinks_.end());
  enabled_.store(!sinks_.empty(), std::memory_order_relaxed);
}

void Tracer::clearSinks() {
  std::lock_guard lock(mutex_);
  sinks_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

std::int64_t Tracer::nowMicros() const {
  return (monotonicNanos() - epochNanos_) / 1000;
}

void Tracer::dispatch(TraceEvent event) {
  std::lock_guard lock(mutex_);
  for (const auto& sink : sinks_) sink->consume(event);
}

void Tracer::emitSpan(std::string_view name, std::int64_t startMicros,
                      std::int64_t durationMicros, int depth) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSpan;
  event.name = std::string(name);
  event.startMicros = startMicros;
  event.durationMicros = durationMicros;
  event.threadId = currentThreadId();
  event.depth = depth;
  dispatch(std::move(event));
}

void Tracer::counter(std::string_view name, std::int64_t value) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kCounter;
  event.name = std::string(name);
  event.startMicros = nowMicros();
  event.threadId = currentThreadId();
  event.value = value;
  dispatch(std::move(event));
}

void Tracer::emit(TraceEvent event) {
  if (!enabled()) return;
  dispatch(std::move(event));
}

void Tracer::instant(std::string_view name) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.name = std::string(name);
  event.startMicros = nowMicros();
  event.threadId = currentThreadId();
  dispatch(std::move(event));
}

void Tracer::flush() {
  std::lock_guard lock(mutex_);
  for (const auto& sink : sinks_) sink->flush();
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(std::string_view name, Tracer& tracer)
    : tracer_(tracer.enabled() ? &tracer : nullptr), name_(name) {
  if (tracer_ == nullptr) return;
  start_ = tracer_->nowMicros();
  depth_ = tlsSpanDepth++;
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  --tlsSpanDepth;
  tracer_->emitSpan(name_, start_, tracer_->nowMicros() - start_, depth_);
}

}  // namespace relb::obs
