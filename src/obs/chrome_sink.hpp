// Chrome trace_event JSON sink: buffers the event stream and, on flush,
// writes a document that chrome://tracing and Perfetto (ui.perfetto.dev)
// open directly.  Spans become "ph": "X" complete events (one per span,
// microsecond timestamps/durations), counters "ph": "C", instants "ph": "i".
// Thread ids are the tracer's dense ids, so the PR-1 fan-out lanes appear as
// separate tracks.
//
// Lives outside trace.hpp because it serializes through io::json (the
// deterministic writer the certificate formats use); the obs core itself
// stays dependency-free.
#pragma once

#include <filesystem>
#include <mutex>
#include <vector>

#include "io/json.hpp"
#include "obs/trace.hpp"

namespace relb::obs {

class ChromeTraceSink final : public TraceSink {
 public:
  /// Events are held in memory until flush() writes `path` atomically.
  explicit ChromeTraceSink(std::filesystem::path path);

  void consume(const TraceEvent& event) override;
  void flush() override;

  /// The document flush() would write; exposed so tests can parse it back
  /// through io::Json without touching the filesystem.
  [[nodiscard]] io::Json toJson() const;

 private:
  std::filesystem::path path_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace relb::obs
