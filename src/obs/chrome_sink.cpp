#include "obs/chrome_sink.hpp"

#include "io/certificate.hpp"  // io::atomicWriteFile

namespace relb::obs {

ChromeTraceSink::ChromeTraceSink(std::filesystem::path path)
    : path_(std::move(path)) {}

void ChromeTraceSink::consume(const TraceEvent& event) {
  std::lock_guard lock(mutex_);
  events_.push_back(event);
}

io::Json ChromeTraceSink::toJson() const {
  io::Json traceEvents = io::Json::array();
  std::lock_guard lock(mutex_);
  for (const TraceEvent& event : events_) {
    io::Json e = io::Json::object();
    e.set("name", event.name);
    e.set("cat", "relb");
    switch (event.kind) {
      case TraceEvent::Kind::kSpan:
        e.set("ph", "X");
        e.set("dur", event.durationMicros);
        break;
      case TraceEvent::Kind::kCounter:
        e.set("ph", "C");
        break;
      case TraceEvent::Kind::kInstant:
        e.set("ph", "i");
        e.set("s", "t");
        break;
    }
    e.set("ts", event.startMicros);
    e.set("pid", 1);
    e.set("tid", event.threadId);
    if (event.kind == TraceEvent::Kind::kCounter) {
      io::Json args = io::Json::object();
      args.set("value", event.value);
      e.set("args", std::move(args));
    }
    traceEvents.push(std::move(e));
  }
  io::Json out = io::Json::object();
  out.set("traceEvents", std::move(traceEvents));
  out.set("displayTimeUnit", "ms");
  return out;
}

void ChromeTraceSink::flush() {
  io::atomicWriteFile(path_, toJson().dump());
}

}  // namespace relb::obs
