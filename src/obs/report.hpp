// The versioned run report: one JSON document summarizing a whole engine
// run -- per-phase and per-span wall time from the tracer's SpanAggregator,
// the full counter/gauge registry, and the (a, x) chain actually walked.
//
// Reports follow the same discipline as certificates (docs/formats.md):
// a "format"/"version" header readers match exactly, per-section FNV-1a
// checksums computed over the compact section dump, and no timestamps or
// other nondeterminism outside the measured quantities -- so two reports of
// the same run shape are diffable field by field, and a truncated or edited
// report fails at load time naming the bad section.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace relb::obs {

inline constexpr int kRunReportVersion = 1;

struct RunReport {
  struct Row {
    std::string name;
    std::uint64_t count = 0;
    std::int64_t wallMicros = 0;
  };
  struct ChainStep {
    std::int64_t a = 0;
    std::int64_t x = 0;
  };

  int version = kRunReportVersion;
  /// The command line (argv joined by spaces), for provenance.
  std::string command;
  /// End-to-end wall time of the traced region (CLI: setup through report
  /// assembly).  The root-phase wall times tile this to within a few
  /// percent; tests/obs/report_test.cpp and the CLI acceptance check both
  /// compare against it.
  std::int64_t totalWallMicros = 0;
  /// Resolved engine fan-out width.
  int threads = 1;

  /// Depth-0 spans aggregated by name (sequential on the main thread, so
  /// their sum is comparable to totalWallMicros).
  std::vector<Row> phases;
  /// Every span aggregated by name, all threads -- overlapping spans mean
  /// these can legitimately sum past wall time on multi-core runs.
  std::vector<Row> spans;

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;

  /// Family-chain runs: the Lemma 13 chain walked.  chainDelta < 0 means
  /// "not a chain run" and the section is omitted.
  std::int64_t chainDelta = -1;
  std::int64_t chainX0 = 1;
  std::vector<ChainStep> chainSteps;
  /// Step-mode runs: the operator sequence walked ("input", "R", "Rbar", …).
  std::vector<std::string> opsWalked;
};

/// Fills phases/spans/counters/gauges from the aggregator and the registry.
/// Callers set the run metadata (command, totalWallMicros, chain) themselves.
[[nodiscard]] RunReport buildRunReport(const SpanAggregator& aggregator,
                                       const Registry& registry);

[[nodiscard]] io::Json runReportToJson(const RunReport& report);
/// Verifies format, version, and per-section checksums; throws re::Error.
[[nodiscard]] RunReport runReportFromJson(const io::Json& j);

void saveRunReport(const std::filesystem::path& path, const RunReport& report);
[[nodiscard]] RunReport loadRunReport(const std::filesystem::path& path);

}  // namespace relb::obs
