// Per-session observability scopes.
//
// A SessionScope gives one logical client (an EngineSession, a driver run, a
// future service request) its own metric Registry and its own Tracer, so
// concurrent sessions multiplexed onto one process produce *attributable*
// streams instead of one indistinguishable global blur:
//
//   * counters/gauges ticked through scope.registry() accumulate locally;
//     flush() (also run by the destructor) rolls the deltas up into the
//     parent registry, so global totals still equal the sum of all sessions
//     -- snapshot() before flushing is the per-session view;
//   * spans emitted through scope.tracer() are forwarded into the parent
//     tracer (timestamps re-based onto the parent's epoch), but only when
//     the parent had a sink attached at scope construction -- a scope over
//     a quiet parent keeps the tracer's no-sink fast path intact.  Sinks
//     attached directly to scope.tracer() see this session's spans only.
//
// Lifetime rules: the scope must outlive every consumer holding references
// into it (EngineSession caches counter references from the scope registry
// at construction), and the parent registry/tracer must outlive the scope.
// flush() is idempotent -- each counter's already-rolled-up amount is
// remembered, so periodic flushing from a long-lived session never double
// counts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace relb::obs {

class SessionScope {
 public:
  /// `label` is cosmetic (reports, logs, debugging); sessions are
  /// distinguished by holding distinct scopes, not by label uniqueness.
  explicit SessionScope(std::string label = {},
                        Registry* parentRegistry = &Registry::global(),
                        Tracer* parentTracer = &Tracer::global());
  ~SessionScope();

  SessionScope(const SessionScope&) = delete;
  SessionScope& operator=(const SessionScope&) = delete;

  [[nodiscard]] const std::string& label() const { return label_; }

  /// The session-local registry.  References returned by its counter()/
  /// gauge() stay valid for the scope's lifetime.
  [[nodiscard]] Registry& registry() { return local_; }

  /// The session-local tracer.  Forwards into the parent tracer iff the
  /// parent was enabled when this scope was constructed.
  [[nodiscard]] Tracer& tracer() { return tracer_; }

  /// The per-session view: this scope's counters and gauges only.
  [[nodiscard]] Registry::Snapshot snapshot() const { return local_.snapshot(); }

  /// Rolls local counter deltas (since the previous flush) into the parent
  /// registry and writes non-zero local gauges through.  Idempotent; the
  /// destructor runs a final flush.
  void flush();

 private:
  std::string label_;
  Registry local_;
  Tracer tracer_;
  Registry* parentRegistry_;
  std::shared_ptr<TraceSink> forward_;  // attached to tracer_, kept to detach
  std::mutex flushMutex_;
  std::map<std::string, std::uint64_t, std::less<>> flushedCounters_;
};

}  // namespace relb::obs
