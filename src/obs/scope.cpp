#include "obs/scope.hpp"

#include <utility>

namespace relb::obs {

namespace {

// Re-dispatches every event consumed from a session tracer into the parent
// tracer, re-based onto the parent's epoch.  consume() runs under the
// session tracer's mutex and takes the parent's -- the lock order is always
// session -> parent (the parent never forwards back), so this cannot
// deadlock.
class ForwardSink final : public TraceSink {
 public:
  ForwardSink(Tracer& child, Tracer& parent)
      : parent_(parent),
        epochDeltaMicros_((child.epochNanos() - parent.epochNanos()) / 1000) {}

  void consume(const TraceEvent& event) override {
    TraceEvent rebased = event;
    rebased.startMicros += epochDeltaMicros_;
    parent_.emit(std::move(rebased));
  }

  void flush() override { parent_.flush(); }

 private:
  Tracer& parent_;
  const std::int64_t epochDeltaMicros_;
};

}  // namespace

SessionScope::SessionScope(std::string label, Registry* parentRegistry,
                           Tracer* parentTracer)
    : label_(std::move(label)), parentRegistry_(parentRegistry) {
  if (parentTracer != nullptr && parentTracer->enabled()) {
    forward_ = std::make_shared<ForwardSink>(tracer_, *parentTracer);
    tracer_.addSink(forward_);
  }
}

SessionScope::~SessionScope() {
  flush();
  if (forward_ != nullptr) tracer_.removeSink(forward_.get());
}

void SessionScope::flush() {
  if (parentRegistry_ == nullptr) return;
  const Registry::Snapshot snap = local_.snapshot();
  std::lock_guard lock(flushMutex_);
  for (const auto& [name, value] : snap.counters) {
    std::uint64_t& alreadyFlushed = flushedCounters_[name];
    if (value > alreadyFlushed) {
      parentRegistry_->counter(name).add(value - alreadyFlushed);
      alreadyFlushed = value;
    }
  }
  // Gauges are last-write-wins; zero-valued ones are skipped so an idle
  // session cannot clobber a gauge another session just set.
  for (const auto& [name, value] : snap.gauges) {
    if (value != 0) parentRegistry_->gauge(name).set(value);
  }
}

}  // namespace relb::obs
