#include "obs/metrics.hpp"

namespace relb::obs {

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot out;
  std::lock_guard lock(mutex_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value_.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t Registry::Snapshot::counterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t Registry::Snapshot::gaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

}  // namespace relb::obs
