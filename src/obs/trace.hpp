// Structured tracing for the round-elimination engine.
//
// The design goal is a tracer that costs (almost) nothing when nobody is
// listening: instrumentation sites construct a `ScopedSpan`, whose
// constructor performs exactly one relaxed atomic load when no sink is
// attached and bails out before touching the clock.  The no-sink overhead
// guard in tests/obs/overhead_test.cpp holds that fast path to < 2% of
// `certifyChain`'s cost; the instrumented hot paths (engine operators,
// passes, store I/O, chain certification) therefore keep their spans
// unconditionally.
//
// When a sink IS attached:
//   * spans record a monotonic-clock start timestamp (microseconds since the
//     tracer's epoch) and emit one *complete* event at destruction, carrying
//     the duration, a small dense thread id (so the PR-1 fan-out lanes are
//     distinguishable in a trace viewer), and the per-thread nesting depth;
//   * events are fanned to every attached sink under the tracer mutex --
//     sinks see a globally consistent stream but must tolerate events from
//     different threads interleaving in completion (not start) order.
//
// Sinks shipped here are dependency-free: Null (measurement baseline),
// RingBuffer (bounded in-memory capture, oldest events dropped first), Text
// (human-readable lines), and SpanAggregator (per-name wall-time totals, the
// source of the run report's tables).  The Chrome trace_event JSON sink
// lives in obs/chrome_sink.hpp because it writes through io::json.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace relb::obs {

/// Small dense id of the calling thread, assigned on first use.  Distinct
/// from std::thread::id so traces are stable, readable, and 32-bit.
[[nodiscard]] int currentThreadId();

struct TraceEvent {
  enum class Kind { kSpan, kCounter, kInstant };

  Kind kind = Kind::kSpan;
  std::string name;
  /// Microseconds since the owning tracer's epoch (monotonic clock).
  std::int64_t startMicros = 0;
  /// Spans only; 0 for counters and instants.
  std::int64_t durationMicros = 0;
  int threadId = 0;
  /// Span nesting depth on its thread at emission time (0 = root span).
  int depth = 0;
  /// Counters only.
  std::int64_t value = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Called under the tracer mutex; must not re-enter the tracer.
  virtual void consume(const TraceEvent& event) = 0;
  /// Called by Tracer::flush (end of run); default is a no-op.
  virtual void flush() {}
};

/// Swallows everything.  Attaching it makes the tracer take the *enabled*
/// path, which is what the overhead benchmarks compare against.
class NullSink final : public TraceSink {
 public:
  void consume(const TraceEvent&) override {}
};

/// Keeps the most recent `capacity` events; older events are dropped (and
/// counted) once the buffer is full.  The capture tool for tests and for
/// always-on tracing with bounded memory.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void consume(const TraceEvent& event) override;

  /// The buffered events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t droppedEvents() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> buffer_;  // circular once full
  std::size_t next_ = 0;
  bool wrapped_ = false;
  std::size_t dropped_ = 0;
};

/// Renders one line per event, nested spans indented by depth:
///
///   [tid 0]       1234us +   56us   engine.applyR
///   [tid 1]       1250us +   12us     store.load
class TextSink final : public TraceSink {
 public:
  void consume(const TraceEvent& event) override;
  [[nodiscard]] std::string render() const;

 private:
  mutable std::mutex mutex_;
  std::string out_;
};

/// Accumulates per-name span totals: how many spans ran under each name and
/// their summed wall time.  Root totals (depth 0 only) are kept separately
/// -- root spans on one thread tile the run, so their sum is comparable to
/// end-to-end wall time, which is what the run report's phase table and its
/// 5%-coverage acceptance check rely on.
class SpanAggregator final : public TraceSink {
 public:
  struct Totals {
    std::uint64_t count = 0;
    std::int64_t wallMicros = 0;
  };
  using Rows = std::vector<std::pair<std::string, Totals>>;

  void consume(const TraceEvent& event) override;

  /// All spans, aggregated by name, sorted by name.
  [[nodiscard]] Rows totals() const;
  /// Depth-0 spans only, aggregated by name, sorted by name.
  [[nodiscard]] Rows rootTotals() const;

 private:
  static Rows sorted(const std::vector<std::pair<std::string, Totals>>& rows);
  Totals& slot(std::vector<std::pair<std::string, Totals>>& rows,
               std::string_view name);

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Totals>> all_;
  std::vector<std::pair<std::string, Totals>> roots_;
};

class Tracer {
 public:
  Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every instrumentation site uses by default.
  [[nodiscard]] static Tracer& global();

  /// True iff at least one sink is attached.  The no-sink fast path: span
  /// construction is this single relaxed load.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void addSink(std::shared_ptr<TraceSink> sink);
  void removeSink(const TraceSink* sink);
  void clearSinks();

  /// Microseconds since this tracer's construction (monotonic clock).
  [[nodiscard]] std::int64_t nowMicros() const;

  /// This tracer's epoch on the shared monotonic clock (nanoseconds).
  /// Events carry timestamps relative to their tracer's epoch; forwarding an
  /// event between tracers (see obs/scope.hpp) re-bases it by the epoch
  /// delta so both timelines stay aligned.
  [[nodiscard]] std::int64_t epochNanos() const { return epochNanos_; }

  /// Dispatches a fully formed event whose startMicros is already relative
  /// to THIS tracer's epoch.  Dropped when no sink is attached.  The entry
  /// point for cross-tracer forwarding; normal instrumentation goes through
  /// emitSpan/counter/instant.
  void emit(TraceEvent event);

  /// Emits a completed span (normally called by ~ScopedSpan).
  void emitSpan(std::string_view name, std::int64_t startMicros,
                std::int64_t durationMicros, int depth);
  /// Emits a counter sample (a Chrome "C" event; ignored by aggregation).
  void counter(std::string_view name, std::int64_t value);
  /// Emits a zero-duration marker.
  void instant(std::string_view name);

  /// Flushes every attached sink.
  void flush();

 private:
  void dispatch(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::int64_t epochNanos_ = 0;
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<TraceSink>> sinks_;
};

/// RAII span.  `name` must outlive the span (instrumentation sites pass
/// string literals or strings scoped around the span).  When the tracer has
/// no sink, construction is one relaxed atomic load and destruction is one
/// branch.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, Tracer& tracer = Tracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;  // nullptr when the tracer was disabled at construction
  std::string_view name_;
  std::int64_t start_ = 0;
  int depth_ = 0;
};

}  // namespace relb::obs
