// Named monotonic counters and gauges for the engine's observability layer.
//
// Counters answer "how much work happened" questions the span tree cannot
// (memo hits vs misses, configurations enumerated, antichain prune ratio);
// gauges record last-written values (thread-pool concurrency, labels after
// the latest step).  Both are plain relaxed atomics: ticking one is a few
// nanoseconds, so the instrumented hot paths tick them unconditionally --
// but call sites inside tight loops accumulate locally and add once per
// call, not once per iteration.
//
// The registry is process-global and append-only: `counter(name)` interns
// the name on first use and returns a reference that stays valid forever.
// Instrumentation sites cache that reference in a static, so steady-state
// cost is the atomic add alone.  `snapshot()` returns name-sorted values --
// the deterministic ordering the run report and the tests key on.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace relb::obs {

/// Monotonically increasing. Relaxed atomics: totals are exact, ordering
/// against other counters is not guaranteed mid-run.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value wins; `setMax` keeps the high-water mark instead.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void setMax(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  std::atomic<std::int64_t> value_{0};
};

class Registry {
 public:
  /// The process-wide registry all instrumentation writes to.
  [[nodiscard]] static Registry& global();

  /// Interns `name` on first use; the returned reference is valid for the
  /// registry's lifetime.  Takes a mutex -- cache the reference at the call
  /// site (static local) rather than looking it up per event.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);

  struct Snapshot {
    /// Both name-sorted (std::map iteration order).
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;

    /// Value of `name`, or 0 when absent (unregistered == never ticked).
    [[nodiscard]] std::uint64_t counterValue(std::string_view name) const;
    [[nodiscard]] std::int64_t gaugeValue(std::string_view name) const;
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every registered counter and gauge (names stay interned, and
  /// references handed out earlier stay valid).  For tests and for the
  /// CLI's per-run accounting; NOT safe to race against a run in progress
  /// if exact totals matter.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

}  // namespace relb::obs
