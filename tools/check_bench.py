#!/usr/bin/env python3
"""Benchmark regression gate over google-benchmark JSON files.

Compares a candidate run (a fresh ``bench/run_bench.sh`` output) against the
committed baseline trajectory ``BENCH_speedup.json`` and fails when any key
serial row slowed down by more than the tolerance.  Used by the
``bench-regression`` CI job; run it locally the same way:

    bench/run_bench.sh                      # writes BENCH_speedup.json
    BENCH_OUT=/tmp/candidate.json bench/run_bench.sh
    tools/check_bench.py BENCH_speedup.json /tmp/candidate.json

Key rows are the serial (numThreads = 1) engine rows plus the bit-kernel
rows -- the quantities the repo promises not to regress.  Parallel rows and
the tracer-overhead rows are compared informationally only: on shared CI
runners their noise exceeds any plausible regression signal.

Both files must carry ``context.library_build_type == "release"`` (stamped
by run_bench.sh): comparing Debug numbers against a Release baseline would
make every run fail, and the reverse would hide real regressions.

``--self-test BASELINE`` verifies the gate itself: the baseline must pass
against an identical copy, and must fail against a synthetic candidate whose
key rows are 20% slower.  Exit codes: 0 = pass, 1 = regression (or
self-test failure), 2 = bad input.
"""

import argparse
import copy
import json
import sys

# Benchmarks whose serial rows are gated.  A trailing "/" keeps
# e.g. BM_SpeedupStepMisCached out of BM_SpeedupStepMis's bucket.
KEY_PREFIXES = (
    "BM_SpeedupStepMis/",
    "BM_SpeedupStepFamily/",
    "BM_MaximalEdgePairs/",
    "BM_CertifyChain/",
    "BM_DominationFilter/",
    "BM_RightClosure/",
    "BM_SubsetSweep/",
    "BM_CsrBuild/",
    "BM_LubyMisRound/",
)

# Benchmarks where the last argument is StepOptions::numThreads; only their
# "/1" (serial) rows are gated.  The kernel rows have no thread argument and
# are always serial.
THREADED_PREFIXES = (
    "BM_SpeedupStepMis/",
    "BM_SpeedupStepFamily/",
    "BM_MaximalEdgePairs/",
    "BM_CertifyChain/",
    "BM_LubyMisRound/",
)

TIME_SUFFIXES = ("real_time", "process_time")

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def fail_usage(message):
    print(f"check_bench: error: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"cannot read {path}: {e}")


def require_release(path, data):
    build_type = data.get("context", {}).get("library_build_type", "")
    if build_type != "release":
        fail_usage(
            f"{path}: context.library_build_type is {build_type!r}, not "
            "'release' (regenerate with bench/run_bench.sh)")


def row_time_ns(row):
    """Per-iteration time in nanoseconds; cpu_time unless the row opted into
    real time (UseRealTime rows measure wall time of parallel sections)."""
    field = "real_time" if row["name"].endswith("/real_time") else "cpu_time"
    value = row.get(field, row.get("cpu_time"))
    return float(value) * UNIT_TO_NS.get(row.get("time_unit", "ns"), 1.0)


def iteration_rows(data):
    rows = {}
    for row in data.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue
        rows[row["name"]] = row
    return rows


def is_key_row(name):
    if not name.startswith(KEY_PREFIXES):
        return False
    parts = name.split("/")
    while parts[-1] in TIME_SUFFIXES:  # e.g. .../process_time/real_time
        parts = parts[:-1]
    if name.startswith(THREADED_PREFIXES):
        return parts[-1] == "1"
    return True


def compare(baseline, candidate, tolerance, verbose=True):
    """Returns a list of failure messages (empty = gate passes)."""
    base_rows = iteration_rows(baseline)
    cand_rows = iteration_rows(candidate)
    failures = []
    for name, base_row in sorted(base_rows.items()):
        if not is_key_row(name):
            continue
        cand_row = cand_rows.get(name)
        if cand_row is None:
            failures.append(f"key row missing from candidate: {name}")
            continue
        base_ns = row_time_ns(base_row)
        cand_ns = row_time_ns(cand_row)
        if base_ns <= 0:
            failures.append(f"non-positive baseline time for {name}")
            continue
        ratio = cand_ns / base_ns
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {base_ns:.0f} ns -> {cand_ns:.0f} ns "
                f"({ratio:.2f}x, tolerance {1.0 + tolerance:.2f}x)")
        if verbose:
            print(f"  {verdict:>10}  {ratio:5.2f}x  {name}")
    return failures


def self_test(baseline, tolerance):
    identical = compare(baseline, copy.deepcopy(baseline), tolerance,
                        verbose=False)
    if identical:
        print("self-test FAILED: identical candidate was rejected:")
        for f in identical:
            print(f"  {f}")
        return 1
    slowed = copy.deepcopy(baseline)
    scale = 1.0 + max(0.20, tolerance + 0.01)
    scaled_rows = 0
    for row in slowed.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue
        if not is_key_row(row["name"]):
            continue
        for field in ("real_time", "cpu_time"):
            if field in row:
                row[field] = float(row[field]) * scale
        scaled_rows += 1
    if scaled_rows == 0:
        print("self-test FAILED: baseline contains no key rows to scale")
        return 1
    if not compare(baseline, slowed, tolerance, verbose=False):
        print(f"self-test FAILED: {scale:.2f}x-slowed candidate "
              f"({scaled_rows} key rows) was accepted")
        return 1
    print(f"self-test passed: identical candidate accepted, {scale:.2f}x "
          f"slowdown on {scaled_rows} key rows rejected")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Compare a candidate benchmark JSON against the "
        "committed baseline; fail on key-row regressions.")
    parser.add_argument("baseline", help="committed BENCH_speedup.json")
    parser.add_argument("candidate", nargs="?",
                        help="fresh run to gate (omit with --self-test)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown of key rows "
                        "(default: 0.15)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate accepts the baseline against "
                        "itself and rejects a synthetic 20%% regression")
    args = parser.parse_args()
    if args.tolerance < 0:
        fail_usage("tolerance must be non-negative")

    baseline = load(args.baseline)
    require_release(args.baseline, baseline)
    if args.self_test:
        if args.candidate is not None:
            fail_usage("--self-test takes only the baseline")
        sys.exit(self_test(baseline, args.tolerance))
    if args.candidate is None:
        fail_usage("candidate file required (or pass --self-test)")
    candidate = load(args.candidate)
    require_release(args.candidate, candidate)

    print(f"comparing {args.candidate} against {args.baseline} "
          f"(tolerance {args.tolerance:.2f}):")
    failures = compare(baseline, candidate, args.tolerance)
    if failures:
        print(f"\nFAILED: {len(failures)} key-row regression(s):")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print("\nbenchmark gate passed")


if __name__ == "__main__":
    main()
