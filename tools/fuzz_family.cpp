// Fuzz entry point + standalone corpus runner for the family-definition
// DSL parser (the fuzz_parse pattern, applied to src/family).
//
// Oracles on every input:
//   * parseFamilyText must either throw re::Error or yield a definition
//     whose render -> parse round-trip is the structural identity (and
//     whose canonical serialization is a fixpoint);
//   * a successfully parsed definition must instantiate deterministically
//     at its parameter defaults, or reject with re::Error -- instantiation
//     of hostile definitions must never crash, loop, or produce an invalid
//     problem (the result always passes Problem::validate, re-asserted
//     through a JSON round-trip).
// Anything else -- a crash, a non-Error exception, a mismatch -- is a
// finding.
//
// Build modes (mirrors tools/fuzz_parse.cpp):
//   * default: standalone runner.  `fuzz_family <file-or-dir>...` replays
//     corpus entries; `fuzz_family --generate <dir>` writes the canonical
//     serialization of every built-in definition into <dir> (this is also
//     how families/*.fam are produced, so the pinned files can never drift
//     from the built-ins except by failing their test).
//   * -DRELB_FUZZ_ENGINE: libFuzzer entry point; the corpus under
//     tests/data/fuzz/family seeds the exploration.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "family/text.hpp"
#include "io/serialize.hpp"

namespace {

// Distinct from re::Error so the catch blocks cannot swallow it: an Error
// is the parser doing its job, a Finding is a broken promise.
struct Finding : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void fuzzOne(std::string_view text) {
  namespace family = relb::family;
  namespace io = relb::io;
  namespace re = relb::re;
  family::FamilyDef def;
  try {
    def = family::parseFamilyText(text);
  } catch (const re::Error&) {
    return;  // rejection with a diagnostic is correct on malformed input
  }
  const std::string canonical = family::renderFamilyText(def);
  if (!(family::parseFamilyText(canonical) == def)) {
    throw Finding("family text round-trip mismatch");
  }
  if (family::renderFamilyText(family::parseFamilyText(canonical)) !=
      canonical) {
    throw Finding("family canonical serialization is not a fixpoint");
  }
  try {
    const re::Problem p = family::instantiateWithDefaults(def);
    const re::Problem again = family::instantiateWithDefaults(def);
    if (!(again == p)) {
      throw Finding("family instantiation is not deterministic");
    }
    const re::Problem reloaded =
        io::problemFromJson(io::Json::parse(io::problemToJson(p).dump()));
    if (!(reloaded == p)) {
      throw Finding("instantiated problem fails the JSON round-trip");
    }
  } catch (const re::Error&) {
    // Unsatisfiable parameters / ill-formed expansions reject cleanly.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzzOne(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}

#ifndef RELB_FUZZ_ENGINE

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "family/builtin.hpp"

namespace {

namespace fs = std::filesystem;

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Finding("cannot open " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

bool replay(const fs::path& path) {
  try {
    fuzzOne(readFile(path));
    return true;
  } catch (const std::exception& e) {
    std::cerr << "FINDING " << path.string() << ": " << e.what() << "\n";
    return false;
  }
}

int runCorpus(const std::vector<std::string>& roots) {
  std::vector<fs::path> entries;
  for (const std::string& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& e : fs::recursive_directory_iterator(root)) {
        if (e.is_regular_file()) entries.push_back(e.path());
      }
    } else {
      entries.emplace_back(root);
    }
  }
  std::sort(entries.begin(), entries.end());
  int findings = 0;
  for (const fs::path& entry : entries) {
    if (!replay(entry)) ++findings;
  }
  std::cout << "fuzz_family: " << entries.size() << " corpus entries, "
            << findings << " findings\n";
  if (entries.empty()) {
    std::cerr << "fuzz_family: no corpus entries found\n";
    return 2;
  }
  return findings == 0 ? 0 : 1;
}

// Writes <name>.fam for every built-in: the generator for both families/
// and the corpus seeds.
int generateBuiltins(const fs::path& dir) {
  namespace family = relb::family;
  fs::create_directories(dir);
  for (const family::FamilyDef& def : family::builtinFamilies()) {
    family::saveFamilyFile(dir / (def.name + ".fam"), def);
  }
  std::cout << "fuzz_family: wrote "
            << family::builtinFamilies().size()
            << " canonical definitions to " << dir.string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 2 && args[0] == "--generate") {
    return generateBuiltins(args[1]);
  }
  if (args.empty() || args[0] == "--help") {
    std::cerr << "usage: fuzz_family <file-or-dir>...\n"
              << "       fuzz_family --generate <dir>\n"
              << "Replays fuzz corpus entries through the family-definition\n"
              << "DSL parser (see docs/testing.md), or writes the canonical\n"
              << "serialization of the built-in families.  Exits 0 iff\n"
              << "every entry behaves.\n";
    return args.empty() ? 2 : 0;
  }
  return runCorpus(args);
}

#endif  // RELB_FUZZ_ENGINE
