#!/usr/bin/env python3
"""Join measured upper bounds with engine-certified lower bounds.

The two halves of the reproduction meet here:

  * relb_localsim run reports (relb-run-report JSON, --report) carry the
    *measured* LOCAL round count of an upper-bound kernel on a concrete
    instance -- the local.rounds.total counter plus the instance shape in
    the local.nodes / local.max_degree gauges.
  * round_eliminator_cli certificates (relb-certificate JSON, --save-cert,
    params.kind == "family-chain") carry a PN-model chain of length t for
    Pi_Delta, which Theorem 14 lifts to Omega(min{t, log_Delta n})
    deterministic LOCAL rounds at n nodes.

For every (run, certificate) pair with a matching Delta -- or every pair at
all with --all-pairs -- the script emits one row: instance shape, measured
rounds, the lifted lower bound at that instance's n, the Theorem 1 bound
min{log2 Delta, log_Delta n} with unit constants, and the measured/lifted
gap factor.  Output is an aligned table on stdout and, with --csv FILE, a
machine-readable CSV.  Only the Python standard library is used.

Usage:
  tools/gap_figure.py --run report.json [--run ...] \
                      --cert cert.json [--cert ...] [--csv out.csv]
                      [--all-pairs]

Exit codes: 0 = table written, 1 = no joinable rows, 2 = bad input.
"""

import argparse
import csv
import json
import math
import sys


def fail(message):
    print(f"gap_figure: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def parse_cert(path):
    """A family-chain certificate -> {delta, t, path}."""
    doc = load_json(path)
    if doc.get("format") != "relb-certificate":
        fail(f"{path}: not a relb-certificate (format = {doc.get('format')!r})")
    params = doc.get("params", {})
    if params.get("kind") != "family-chain":
        fail(f"{path}: params.kind is {params.get('kind')!r}, need a "
             "'family-chain' certificate (round_eliminator_cli --chain DELTA "
             "--save-cert FILE)")
    delta = int(params.get("delta", -1))
    steps = doc.get("steps", [])
    if delta < 2 or not steps:
        fail(f"{path}: missing delta or steps")
    # The chain walks t+1 problems Pi(x0), ..., Pi(x_t); its PN-model round
    # lower bound t is the number of *steps between* them.
    return {"path": path, "delta": delta, "t": len(steps) - 1}


def section(report, name):
    """A counters/gauges section -> dict, tolerating list-of-pairs form."""
    raw = report.get(name, {})
    if isinstance(raw, dict):
        return raw
    return {str(k): v for k, v in raw}


def parse_run(path):
    """A relb_localsim run report -> {algo, nodes, delta, rounds, path}."""
    doc = load_json(path)
    if doc.get("format") != "relb-run-report":
        fail(f"{path}: not a relb-run-report (format = {doc.get('format')!r})")
    counters = section(doc, "counters")
    gauges = section(doc, "gauges")
    for key in ("local.rounds.total",):
        if key not in counters:
            fail(f"{path}: counter {key} missing -- was this report written "
                 "by relb_localsim?")
    for key in ("local.nodes", "local.max_degree"):
        if key not in gauges:
            fail(f"{path}: gauge {key} missing")
    ops = doc.get("run", {}).get("ops_walked") or []
    return {
        "path": path,
        "algo": ops[0] if ops else "?",
        "nodes": int(gauges["local.nodes"]),
        "delta": int(gauges["local.max_degree"]),
        "rounds": int(counters["local.rounds.total"]),
    }


def lift_deterministic(t, nodes, delta):
    """Theorem 14 with unit constants: min{t, log_Delta n} LOCAL rounds."""
    if delta < 2 or nodes < 2:
        return 0.0
    return min(float(t), math.log(nodes) / math.log(delta))


def theorem1_deterministic(nodes, delta):
    """Theorem 1 with unit constants: min{log2 Delta, log_Delta n}."""
    if delta < 2 or nodes < 2:
        return 0.0
    return min(math.log2(delta), math.log(nodes) / math.log(delta))


def build_rows(runs, certs, all_pairs):
    rows = []
    for run in runs:
        matched = [c for c in certs
                   if all_pairs or c["delta"] == run["delta"]]
        if not matched and certs:
            # Fall back to the strongest chain available: a chain for any
            # Delta' <= Delta also lower-bounds the Delta instance family.
            usable = [c for c in certs if c["delta"] <= run["delta"]]
            matched = [max(usable, key=lambda c: c["t"])] if usable else []
        for cert in matched:
            lifted = lift_deterministic(cert["t"], run["nodes"], run["delta"])
            thm1 = theorem1_deterministic(run["nodes"], run["delta"])
            rows.append({
                "algo": run["algo"],
                "nodes": run["nodes"],
                "delta": run["delta"],
                "measured_rounds": run["rounds"],
                "chain_delta": cert["delta"],
                "chain_t": cert["t"],
                "lifted_lower_bound": round(lifted, 3),
                "theorem1_lower_bound": round(thm1, 3),
                "gap_factor": (round(run["rounds"] / lifted, 3)
                               if lifted > 0 else float("inf")),
            })
    return rows


COLUMNS = ("algo", "nodes", "delta", "measured_rounds", "chain_delta",
           "chain_t", "lifted_lower_bound", "theorem1_lower_bound",
           "gap_factor")


def render_table(rows):
    widths = {c: len(c) for c in COLUMNS}
    for row in rows:
        for c in COLUMNS:
            widths[c] = max(widths[c], len(str(row[c])))
    lines = ["  ".join(c.ljust(widths[c]) for c in COLUMNS)]
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in COLUMNS))
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description="join relb_localsim upper bounds with certified "
                    "lower bounds")
    parser.add_argument("--run", action="append", default=[],
                        help="relb_localsim --report JSON (repeatable)")
    parser.add_argument("--cert", action="append", default=[],
                        help="family-chain certificate JSON (repeatable)")
    parser.add_argument("--csv", help="also write the rows as CSV")
    parser.add_argument("--all-pairs", action="store_true",
                        help="join every run with every certificate instead "
                             "of matching on Delta")
    args = parser.parse_args()
    if not args.run or not args.cert:
        fail("need at least one --run and one --cert")

    runs = [parse_run(p) for p in args.run]
    certs = [parse_cert(p) for p in args.cert]
    rows = build_rows(runs, certs, args.all_pairs)
    if not rows:
        print("gap_figure: no joinable (run, certificate) rows",
              file=sys.stderr)
        return 1

    print(render_table(rows))
    if args.csv:
        with open(args.csv, "w", newline="") as f:
            writer = csv.DictWriter(f, fieldnames=COLUMNS)
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {args.csv} ({len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
