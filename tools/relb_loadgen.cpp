// relb_loadgen: client and load generator for relb-served.
//
// Two modes.
//
// Single-shot (--chain DELTA, optionally --cert-out FILE): sends one chain
// request asking for the certificate and the session stats, writes the
// certificate bytes verbatim to FILE, and prints
//
//     status: ok
//     session: N hits / M misses / W writes
//
// -- the line the CI service job greps: a warm duplicate request must show
// `0 misses / 0 writes`, and FILE must be byte-identical (`cmp`) to what
// `round_eliminator_cli --chain DELTA --save-cert` writes, because both are
// the same driver run over the same engine.
//
// Load mode (default): replays --requests mixed requests over --clients
// concurrent connections -- random problems drawn from gen::randomProblem
// under --seed (deterministic: same seed, same request stream), a chain
// request every --chain-every, and a repeat of an earlier problem every
// --duplicate-every (the warm-cache path) -- then prints a latency /
// throughput / cache-hit-rate summary.
//
//   relb_loadgen (--unix PATH | --host H --port P) [mode flags]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "family/builtin.hpp"
#include "gen/family_sample.hpp"
#include "gen/random_problem.hpp"
#include "re/problem.hpp"
#include "re/types.hpp"
#include "serve/client.hpp"

namespace {

using relb::serve::Client;
using relb::serve::Request;
using relb::serve::Response;
using relb::serve::StatusCode;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string unixPath;

  // Load mode.
  int requests = 256;
  int clients = 8;
  unsigned seed = 42;
  int maxSteps = 2;
  int chainEvery = 16;
  int duplicateEvery = 4;
  int familyEvery = 0;
  long deadlineMs = 0;

  // Single-shot mode.
  long chainDelta = -1;
  long chainX0 = 1;
  std::string certOut;
};

int usage(std::ostream& out, int code) {
  out << "usage: relb_loadgen (--unix PATH | --host H --port P) [options]\n"
         "single-shot mode:\n"
         "  --chain DELTA        send one chain request (with certificate)\n"
         "  --x0 X               chain start parameter (default 1)\n"
         "  --cert-out FILE      write the returned certificate bytes to "
         "FILE\n"
         "load mode (default):\n"
         "  --requests N         total requests to send (default 256)\n"
         "  --clients N          concurrent connections (default 8)\n"
         "  --seed S             request-stream seed (default 42)\n"
         "  --max-steps N        per-problem speedup budget (default 2)\n"
         "  --chain-every K      every K-th request is a chain (default 16,"
         " 0 = never)\n"
         "  --duplicate-every K  every K-th request repeats an earlier one "
         "(default 4, 0 = never)\n"
         "  --family-every K     every K-th request instantiates a built-in "
         "family (default 0 = never)\n"
         "  --deadline-ms N      per-request admission deadline (default 0)"
         "\n";
  return code;
}

/// The CLI's ';'-separated spec for one constraint.
std::string toSpec(const std::string& renderedConstraint) {
  std::string spec;
  for (const char ch : renderedConstraint) {
    if (ch == '\n') {
      if (!spec.empty() && spec.back() != ';') spec += ';';
    } else {
      spec += ch;
    }
  }
  while (!spec.empty() && spec.back() == ';') spec.pop_back();
  return spec;
}

Client connect(const Options& options) {
  if (!options.unixPath.empty()) return Client::connectUnix(options.unixPath);
  return Client::connectTcp(options.host, options.port);
}

int runSingleShot(const Options& options) {
  Request request;
  request.kind = Request::Kind::kChain;
  request.id = 1;
  request.chainDelta = options.chainDelta;
  request.chainX0 = options.chainX0;
  request.wantCertificate = true;
  request.deadlineMillis = options.deadlineMs;

  Client client = connect(options);
  const Response response = client.roundTrip(request);
  std::cout << "status: " << response.status << "\n";
  if (response.stats.has_value()) {
    std::cout << "session: " << response.stats->describeLine() << "\n";
  }
  if (!response.diagnostics.empty()) std::cerr << response.diagnostics;
  if (!response.ok()) return 1;
  if (!options.certOut.empty()) {
    if (response.certificate.empty()) {
      std::cerr << "relb_loadgen: response carried no certificate\n";
      return 1;
    }
    std::ofstream file(options.certOut, std::ios::binary);
    file << response.certificate;
    if (!file.good()) {
      std::cerr << "relb_loadgen: cannot write " << options.certOut << "\n";
      return 1;
    }
    std::cout << "wrote certificate: " << options.certOut << " ("
              << response.certificate.size() << " bytes)\n";
  }
  return 0;
}

struct Tally {
  std::int64_t ok = 0, failed = 0, rejected = 0, expired = 0, other = 0;
  std::int64_t hits = 0, misses = 0, writes = 0;
  std::vector<std::int64_t> latencyMicros;
};

int runLoad(const Options& options) {
  // The request stream is a pure function of the seed: random problems,
  // periodic chains, and periodic repeats of earlier problems (the warm
  // path a shared cache exists for).
  std::mt19937 rng(options.seed);
  relb::gen::RandomProblemOptions problemOptions;
  problemOptions.maxAlphabet = 3;
  problemOptions.maxDelta = 3;
  std::vector<Request> stream;
  stream.reserve(static_cast<std::size_t>(options.requests));
  std::vector<std::size_t> problemIndices;
  for (int i = 0; i < options.requests; ++i) {
    Request request;
    request.id = i + 1;
    request.deadlineMillis = options.deadlineMs;
    if (options.chainEvery > 0 && (i + 1) % options.chainEvery == 0) {
      request.kind = Request::Kind::kChain;
      request.chainDelta = 2 + (i / options.chainEvery) % 2;
      request.chainX0 = 1;
    } else if (options.familyEvery > 0 && (i + 1) % options.familyEvery == 0) {
      // Round-robin over the built-ins, parameters drawn from the stream
      // RNG: family-shaped problems with non-default parameter points.
      const auto& families = relb::family::builtinFamilies();
      const relb::family::FamilyDef& def =
          families[static_cast<std::size_t>(i / options.familyEvery) %
                   families.size()];
      relb::gen::FamilySampleOptions sampleOptions;
      sampleOptions.minDelta = 2;
      sampleOptions.maxDelta = 3;
      const relb::re::Problem p =
          relb::gen::randomFamilyProblem(rng, def, sampleOptions);
      request.kind = Request::Kind::kProblem;
      request.nodeSpec = toSpec(p.node.render(p.alphabet));
      request.edgeSpec = toSpec(p.edge.render(p.alphabet));
      request.maxSteps = options.maxSteps;
      problemIndices.push_back(stream.size());
    } else if (options.duplicateEvery > 0 && !problemIndices.empty() &&
               (i + 1) % options.duplicateEvery == 0) {
      const std::size_t pick = problemIndices[std::uniform_int_distribution<
          std::size_t>(0, problemIndices.size() - 1)(rng)];
      request = stream[pick];
      request.id = i + 1;
    } else {
      const relb::re::Problem p =
          relb::gen::randomProblem(rng, problemOptions);
      request.kind = Request::Kind::kProblem;
      request.nodeSpec = toSpec(p.node.render(p.alphabet));
      request.edgeSpec = toSpec(p.edge.render(p.alphabet));
      request.maxSteps = options.maxSteps;
      problemIndices.push_back(stream.size());
    }
    stream.push_back(std::move(request));
  }

  // Round-robin partition over the client connections; every thread speaks
  // its own connection, sequentially.
  const int clients = std::max(1, options.clients);
  std::vector<Tally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto begin = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Tally& tally = tallies[static_cast<std::size_t>(c)];
      try {
        Client client = connect(options);
        for (std::size_t i = static_cast<std::size_t>(c);
             i < stream.size(); i += static_cast<std::size_t>(clients)) {
          const auto sent = std::chrono::steady_clock::now();
          const Response response = client.roundTrip(stream[i]);
          const auto got = std::chrono::steady_clock::now();
          tally.latencyMicros.push_back(
              std::chrono::duration_cast<std::chrono::microseconds>(got -
                                                                    sent)
                  .count());
          switch (response.code) {
            case StatusCode::kOk: ++tally.ok; break;
            case StatusCode::kFailed: ++tally.failed; break;
            case StatusCode::kRejected: ++tally.rejected; break;
            case StatusCode::kDeadlineExpired: ++tally.expired; break;
            default: ++tally.other; break;
          }
          if (response.stats.has_value()) {
            tally.hits += response.stats->totalHits();
            tally.misses += response.stats->totalMisses();
            tally.writes += response.stats->storeWrites;
          }
        }
      } catch (const relb::re::Error& e) {
        // A dead connection invalidates this lane's remaining requests;
        // they are reported as 'other'.
        std::cerr << "relb_loadgen: client " << c << ": " << e.what()
                  << "\n";
        ++tally.other;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto end = std::chrono::steady_clock::now();

  Tally total;
  for (const Tally& tally : tallies) {
    total.ok += tally.ok;
    total.failed += tally.failed;
    total.rejected += tally.rejected;
    total.expired += tally.expired;
    total.other += tally.other;
    total.hits += tally.hits;
    total.misses += tally.misses;
    total.writes += tally.writes;
    total.latencyMicros.insert(total.latencyMicros.end(),
                               tally.latencyMicros.begin(),
                               tally.latencyMicros.end());
  }
  std::sort(total.latencyMicros.begin(), total.latencyMicros.end());
  const auto percentile = [&](double p) -> std::int64_t {
    if (total.latencyMicros.empty()) return 0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(total.latencyMicros.size() - 1));
    return total.latencyMicros[rank];
  };
  const std::int64_t elapsedMillis =
      std::chrono::duration_cast<std::chrono::milliseconds>(end - begin)
          .count();
  const double seconds =
      static_cast<double>(std::max<std::int64_t>(elapsedMillis, 1)) / 1000.0;

  std::cout << "loadgen: " << stream.size() << " requests over " << clients
            << " connections in " << elapsedMillis << " ms ("
            << static_cast<std::int64_t>(
                   static_cast<double>(stream.size()) / seconds)
            << " req/s)\n";
  std::cout << "status: " << total.ok << " ok, " << total.failed
            << " failed, " << total.rejected << " rejected, " << total.expired
            << " expired, " << total.other << " other\n";
  std::cout << "latency: p50 " << percentile(0.50) << " us, p90 "
            << percentile(0.90) << " us, p99 " << percentile(0.99)
            << " us, max " << percentile(1.0) << " us\n";
  const std::int64_t lookups = total.hits + total.misses;
  std::cout << "cache: " << total.hits << " hits / " << total.misses
            << " misses / " << total.writes << " writes (hit rate "
            << (lookups == 0
                    ? 0
                    : (100 * total.hits + lookups / 2) / lookups)
            << "%)\n";
  // The stream is fully deterministic, so 'other' is always a bug --
  // either here or in the server.
  return total.other == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  bool haveEndpoint = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "relb_loadgen: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--host") {
        options.host = value();
        haveEndpoint = true;
      } else if (arg == "--port") {
        options.port = std::stoi(value());
        haveEndpoint = true;
      } else if (arg == "--unix") {
        options.unixPath = value();
        haveEndpoint = true;
      } else if (arg == "--requests") {
        options.requests = std::stoi(value());
      } else if (arg == "--clients") {
        options.clients = std::stoi(value());
      } else if (arg == "--seed") {
        options.seed = static_cast<unsigned>(std::stoul(value()));
      } else if (arg == "--max-steps") {
        options.maxSteps = std::stoi(value());
      } else if (arg == "--chain-every") {
        options.chainEvery = std::stoi(value());
      } else if (arg == "--duplicate-every") {
        options.duplicateEvery = std::stoi(value());
      } else if (arg == "--family-every") {
        options.familyEvery = std::stoi(value());
      } else if (arg == "--deadline-ms") {
        options.deadlineMs = std::stol(value());
      } else if (arg == "--chain") {
        options.chainDelta = std::stol(value());
      } else if (arg == "--x0") {
        options.chainX0 = std::stol(value());
      } else if (arg == "--cert-out") {
        options.certOut = value();
      } else {
        std::cerr << "relb_loadgen: unknown flag '" << arg << "'\n";
        return usage(std::cerr, 2);
      }
    } catch (const std::exception&) {
      std::cerr << "relb_loadgen: bad value for " << arg << "\n";
      return 2;
    }
  }
  if (!haveEndpoint) {
    std::cerr << "relb_loadgen: need --unix PATH or --host/--port\n";
    return usage(std::cerr, 2);
  }
  try {
    return options.chainDelta >= 0 ? runSingleShot(options)
                                   : runLoad(options);
  } catch (const relb::re::Error& e) {
    std::cerr << "relb_loadgen: " << e.what() << "\n";
    return 1;
  }
}
