// Fuzz entry point + standalone corpus runner for the problem parsers.
//
// Two oracles run on every input:
//   * io::parseProblemText must either throw re::Error or yield a problem
//     whose render -> parse round-trip is the identity;
//   * io::Json::parse + io::problemFromJson, with the same contract on the
//     JSON side.
// Anything else -- a crash, a non-Error exception, a round-trip mismatch --
// is a finding.
//
// Build modes:
//   * default: standalone runner.  `fuzz_parse <file-or-dir>...` replays
//     every corpus entry (directories are walked recursively) and exits 0
//     iff all of them behave; `fuzz_parse --generate <count> <seed> <dir>`
//     serializes fresh random problems (text and JSON) into <dir> to grow
//     the corpus from src/gen.
//   * -DRELB_FUZZ_ENGINE (with clang and -fsanitize=fuzzer): drops main()
//     and exposes LLVMFuzzerTestOneInput for libFuzzer.  The committed
//     corpus under tests/data/fuzz/parse seeds the exploration.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "io/serialize.hpp"
#include "re/problem.hpp"

namespace {

// Distinct from re::Error so the catch blocks below cannot swallow it: an
// Error is the parser doing its job, a Finding is the parser breaking a
// promise.
struct Finding : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void fuzzOne(std::string_view text) {
  namespace io = relb::io;
  namespace re = relb::re;
  try {
    const re::Problem p = io::parseProblemText(text);
    const re::Problem again = io::parseProblemText(io::renderProblemText(p));
    if (!(again == p)) {
      throw Finding("parseProblemText round-trip mismatch");
    }
  } catch (const re::Error&) {
    // Rejection with a diagnostic is correct behavior on malformed input.
  }
  try {
    const io::Json j = io::Json::parse(text);
    const re::Problem p = io::problemFromJson(j);
    const re::Problem again =
        io::problemFromJson(io::Json::parse(io::problemToJson(p).dump()));
    if (!(again == p)) {
      throw Finding("problemFromJson round-trip mismatch");
    }
  } catch (const re::Error&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzzOne(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}

#ifndef RELB_FUZZ_ENGINE

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <vector>

#include "gen/random_problem.hpp"

namespace {

namespace fs = std::filesystem;

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Finding("cannot open " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

// Replays one corpus entry; returns true iff it behaved.
bool replay(const fs::path& path) {
  try {
    fuzzOne(readFile(path));
    return true;
  } catch (const std::exception& e) {
    std::cerr << "FINDING " << path.string() << ": " << e.what() << "\n";
    return false;
  }
}

int runCorpus(const std::vector<std::string>& roots) {
  std::vector<fs::path> entries;
  for (const std::string& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& e : fs::recursive_directory_iterator(root)) {
        if (e.is_regular_file()) entries.push_back(e.path());
      }
    } else {
      entries.emplace_back(root);
    }
  }
  std::sort(entries.begin(), entries.end());
  int findings = 0;
  for (const fs::path& entry : entries) {
    if (!replay(entry)) ++findings;
  }
  std::cout << "fuzz_parse: " << entries.size() << " corpus entries, "
            << findings << " findings\n";
  if (entries.empty()) {
    std::cerr << "fuzz_parse: no corpus entries found\n";
    return 2;
  }
  return findings == 0 ? 0 : 1;
}

// Serializes `count` random problems into `dir`, both formats.  File names
// embed the seed so regenerated corpora never collide with existing entries.
int generateCorpus(int count, unsigned seed, const fs::path& dir) {
  namespace gen = relb::gen;
  namespace io = relb::io;
  fs::create_directories(dir);
  std::mt19937 rng(seed);
  gen::RandomProblemOptions options;
  options.rightClosurePass = true;
  for (int i = 0; i < count; ++i) {
    const relb::re::Problem p = gen::randomProblem(rng, options);
    const std::string stem =
        "gen-" + std::to_string(seed) + "-" + std::to_string(i);
    std::ofstream(dir / (stem + ".txt"), std::ios::binary)
        << io::renderProblemText(p);
    std::ofstream(dir / (stem + ".json"), std::ios::binary)
        << io::problemToJson(p).dumpPretty() << "\n";
  }
  std::cout << "fuzz_parse: wrote " << 2 * count << " corpus entries to "
            << dir.string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 4 && args[0] == "--generate") {
    return generateCorpus(std::stoi(args[1]),
                          static_cast<unsigned>(std::stoul(args[2])),
                          args[3]);
  }
  if (args.empty() || args[0] == "--help") {
    std::cerr << "usage: fuzz_parse <file-or-dir>...\n"
              << "       fuzz_parse --generate <count> <seed> <dir>\n"
              << "Replays fuzz corpus entries through the problem parsers\n"
              << "(see docs/testing.md), or grows the corpus with random\n"
              << "generator output.  Exits 0 iff every entry behaves.\n";
    return args.empty() ? 2 : 0;
  }
  return runCorpus(args);
}

#endif  // RELB_FUZZ_ENGINE
