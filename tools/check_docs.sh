#!/usr/bin/env sh
# Documentation drift checks, run by the CI docs job:
#
#   1. every intra-repo markdown link in README.md and docs/*.md resolves to
#      an existing file (anchors are stripped; external http/https/mailto
#      links are skipped);
#   2. every --flag appearing in a fenced round_eliminator_cli invocation is
#      actually listed by the built binary's --help, so the tutorials cannot
#      drift ahead of (or behind) the CLI;
#   3. the same cross-check for fenced relb_localsim invocations against the
#      simulator binary's --help (docs/simulator.md).
#
# Usage: tools/check_docs.sh [build-dir]   (default: build; the CLI and
# relb_localsim binaries must already be built there).  Exit 0 = clean,
# 1 = drift found.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/examples/round_eliminator_cli"
LOCALSIM="$BUILD_DIR/examples/relb_localsim"

if [ ! -x "$CLI" ]; then
  echo "error: $CLI not built (run: cmake --build $BUILD_DIR --target round_eliminator_cli)" >&2
  exit 1
fi
if [ ! -x "$LOCALSIM" ]; then
  echo "error: $LOCALSIM not built (run: cmake --build $BUILD_DIR --target relb_localsim)" >&2
  exit 1
fi

fail=0

# --- 1. intra-repo links -------------------------------------------------
for md in README.md docs/*.md; do
  links=$(grep -o '\[[^]]*\]([^)]*)' "$md" | sed 's/.*(\(.*\))$/\1/') || true
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    base=$(dirname "$md")
    if [ ! -e "$base/$target" ] && [ ! -e "$target" ]; then
      echo "broken link: $md -> $link"
      fail=1
    fi
  done
done

# --- 2. CLI flags used in fenced code blocks -----------------------------
# Join backslash-continued lines inside fenced blocks, keep the ones that
# invoke the CLI, and collect every --flag they mention.
help_text=$("$CLI" --help 2>&1) || true
flags=$(awk '/^```/{infence=!infence; next} infence' README.md docs/*.md \
  | sed ':a;/\\$/{N;s/\\\n/ /;ba}' \
  | grep 'round_eliminator_cli' \
  | grep -o -- '--[a-z0-9-][a-z0-9-]*' | sort -u) || true
for flag in $flags; do
  if ! printf '%s' "$help_text" | grep -q -- "$flag"; then
    echo "doc flag not in --help: $flag"
    fail=1
  fi
done

# --- 3. simulator flags used in fenced code blocks -----------------------
sim_help=$("$LOCALSIM" --help 2>&1) || true
sim_flags=$(awk '/^```/{infence=!infence; next} infence' README.md docs/*.md \
  | sed ':a;/\\$/{N;s/\\\n/ /;ba}' \
  | grep 'relb_localsim' \
  | grep -o -- '--[a-z0-9-][a-z0-9-]*' | sort -u) || true
for flag in $sim_flags; do
  if ! printf '%s' "$sim_help" | grep -q -- "$flag"; then
    echo "doc flag not in relb_localsim --help: $flag"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "docs check passed ($(printf '%s\n' $flags | wc -l) CLI flags, $(printf '%s\n' $sim_flags | wc -l) simulator flags cross-checked)"
fi
exit "$fail"
