// Fuzz entry point + standalone corpus runner for the service wire protocol
// (serve/protocol.hpp).
//
// Three oracles run on every input:
//   * FrameDecoder fed the raw bytes (whole, then byte-at-a-time -- the two
//     feeds must agree on payloads and on whether the stream poisons) must
//     either yield payloads or throw re::Error; once poisoned it must stay
//     poisoned;
//   * every extracted payload goes through Json::parse + requestFromJson
//     and responseFromJson, which must either throw re::Error or yield an
//     envelope whose re-encode -> decode round-trip is the identity;
//   * any payload that decodes must also re-frame: encodeFrame(payload)
//     fed back through a fresh decoder must return the identical payload.
// Anything else -- a crash, a non-Error exception, a disagreement between
// the two feeds, a round-trip mismatch -- is a finding.
//
// Build modes mirror fuzz_parse.cpp: a standalone corpus runner by default
// (`fuzz_frame <file-or-dir>...`, plus `--generate <count> <seed> <dir>` to
// grow the corpus from well-formed random envelopes), and a libFuzzer
// target with -DRELB_FUZZ (clang only).  The committed corpus lives under
// tests/data/fuzz/serve.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "io/json.hpp"
#include "serve/protocol.hpp"

namespace {

// Distinct from re::Error so the catch blocks below cannot swallow it: an
// Error is the decoder doing its job, a Finding is the decoder breaking a
// promise.
struct Finding : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct DecodeRun {
  std::vector<std::string> payloads;
  bool poisoned = false;
};

DecodeRun drain(relb::serve::FrameDecoder& decoder) {
  DecodeRun run;
  try {
    while (true) {
      std::optional<std::string> payload = decoder.next();
      if (!payload.has_value()) break;
      run.payloads.push_back(std::move(*payload));
    }
  } catch (const relb::re::Error&) {
    run.poisoned = true;
    // Poison must be sticky.
    try {
      (void)decoder.next();
      throw Finding("poisoned decoder yielded instead of rethrowing");
    } catch (const relb::re::Error&) {
    }
  }
  return run;
}

void checkPayload(const std::string& payload) {
  namespace serve = relb::serve;
  namespace io = relb::io;
  // Re-framing a decoded payload is the identity.
  serve::FrameDecoder again;
  again.feed(serve::encodeFrame(payload));
  if (again.next() != payload) {
    throw Finding("encodeFrame(payload) did not decode back to payload");
  }
  try {
    const io::Json j = io::Json::parse(payload);
    try {
      const serve::Request request = serve::requestFromJson(j);
      const serve::Request reencoded =
          serve::requestFromJson(serve::requestToJson(request));
      if (serve::requestToJson(reencoded).dump() !=
          serve::requestToJson(request).dump()) {
        throw Finding("request envelope round-trip mismatch");
      }
    } catch (const relb::re::Error&) {
    }
    try {
      const serve::Response response = serve::responseFromJson(j);
      const serve::Response reencoded =
          serve::responseFromJson(serve::responseToJson(response));
      if (serve::responseToJson(reencoded).dump() !=
          serve::responseToJson(response).dump()) {
        throw Finding("response envelope round-trip mismatch");
      }
    } catch (const relb::re::Error&) {
    }
  } catch (const relb::re::Error&) {
    // Payloads need not be JSON at the framing layer.
  }
}

void fuzzOne(std::string_view bytes) {
  namespace serve = relb::serve;
  // Whole-buffer feed and byte-at-a-time feed must agree exactly: the
  // decoder is incremental by contract.
  serve::FrameDecoder whole;
  whole.feed(bytes);
  const DecodeRun wholeRun = drain(whole);

  serve::FrameDecoder trickle;
  DecodeRun trickleRun;
  for (std::size_t i = 0; i < bytes.size() && !trickleRun.poisoned; ++i) {
    trickle.feed(bytes.substr(i, 1));
    DecodeRun step = drain(trickle);
    trickleRun.poisoned = step.poisoned;
    for (std::string& payload : step.payloads) {
      trickleRun.payloads.push_back(std::move(payload));
    }
  }
  if (wholeRun.poisoned != trickleRun.poisoned ||
      wholeRun.payloads != trickleRun.payloads) {
    throw Finding("whole-buffer and incremental decodes disagree");
  }
  for (const std::string& payload : wholeRun.payloads) {
    checkPayload(payload);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzzOne(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;
}

#ifndef RELB_FUZZ_ENGINE

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>

namespace {

namespace fs = std::filesystem;

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Finding("cannot open " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

bool replay(const fs::path& path) {
  try {
    fuzzOne(readFile(path));
    return true;
  } catch (const std::exception& e) {
    std::cerr << "FINDING " << path.string() << ": " << e.what() << "\n";
    return false;
  }
}

int runCorpus(const std::vector<std::string>& roots) {
  std::vector<fs::path> entries;
  for (const std::string& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& e : fs::recursive_directory_iterator(root)) {
        if (e.is_regular_file()) entries.push_back(e.path());
      }
    } else {
      entries.emplace_back(root);
    }
  }
  std::sort(entries.begin(), entries.end());
  int findings = 0;
  for (const fs::path& entry : entries) {
    if (!replay(entry)) ++findings;
  }
  std::cout << "fuzz_frame: " << entries.size() << " corpus entries, "
            << findings << " findings\n";
  if (entries.empty()) {
    std::cerr << "fuzz_frame: no corpus entries found\n";
    return 2;
  }
  return findings == 0 ? 0 : 1;
}

// Serializes well-formed framed envelopes (requests and responses, with a
// few back-to-back frames per entry) into `dir` to seed exploration.
int generateCorpus(int count, unsigned seed, const fs::path& dir) {
  namespace serve = relb::serve;
  fs::create_directories(dir);
  std::mt19937 rng(seed);
  for (int i = 0; i < count; ++i) {
    std::string bytes;
    const int frames = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < frames; ++f) {
      switch (rng() % 4) {
        case 0: {
          serve::Request request;
          request.kind = serve::Request::Kind::kPing;
          request.id = static_cast<std::int64_t>(rng() % 100);
          bytes += serve::encodeFrame(serve::requestToJson(request).dump());
          break;
        }
        case 1: {
          serve::Request request;
          request.kind = serve::Request::Kind::kProblem;
          request.id = static_cast<std::int64_t>(rng() % 100);
          request.nodeSpec = "M^3; P O^2";
          request.edgeSpec = "M [P O]; O O";
          request.maxSteps = 1 + static_cast<int>(rng() % 6);
          request.wantCertificate = (rng() % 2) == 0;
          bytes += serve::encodeFrame(serve::requestToJson(request).dump());
          break;
        }
        case 2: {
          serve::Request request;
          request.kind = serve::Request::Kind::kChain;
          request.id = static_cast<std::int64_t>(rng() % 100);
          request.chainDelta = static_cast<std::int64_t>(rng() % 5);
          request.deadlineMillis = static_cast<std::int64_t>(rng() % 1000);
          bytes += serve::encodeFrame(serve::requestToJson(request).dump());
          break;
        }
        default: {
          serve::Response response = serve::errorResponse(
              static_cast<std::int64_t>(rng() % 100),
              serve::StatusCode::kRejected, "admission queue full");
          bytes += serve::encodeFrame(serve::responseToJson(response).dump());
          break;
        }
      }
    }
    const std::string stem =
        "gen-" + std::to_string(seed) + "-" + std::to_string(i);
    std::ofstream(dir / (stem + ".frames"), std::ios::binary) << bytes;
  }
  std::cout << "fuzz_frame: wrote " << count << " corpus entries to "
            << dir.string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 4 && args[0] == "--generate") {
    return generateCorpus(std::stoi(args[1]),
                          static_cast<unsigned>(std::stoul(args[2])),
                          args[3]);
  }
  if (args.empty() || args[0] == "--help") {
    std::cerr << "usage: fuzz_frame <file-or-dir>...\n"
              << "       fuzz_frame --generate <count> <seed> <dir>\n"
              << "Replays fuzz corpus entries through the service frame\n"
              << "decoder and envelope codecs (see docs/service.md).\n"
              << "Exits 0 iff every entry behaves.\n";
    return args.empty() ? 2 : 0;
  }
  return runCorpus(args);
}

#endif  // RELB_FUZZ_ENGINE
