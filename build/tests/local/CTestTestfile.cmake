# CMake generated Testfile for 
# Source directory: /root/repo/tests/local
# Build directory: /root/repo/build/tests/local
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/local/local_graph_test[1]_include.cmake")
include("/root/repo/build/tests/local/local_halfedge_test[1]_include.cmake")
include("/root/repo/build/tests/local/local_verify_test[1]_include.cmake")
include("/root/repo/build/tests/local/local_network_test[1]_include.cmake")
include("/root/repo/build/tests/local/local_zero_round_gadget_test[1]_include.cmake")
include("/root/repo/build/tests/local/local_congest_test[1]_include.cmake")
