file(REMOVE_RECURSE
  "CMakeFiles/local_zero_round_gadget_test.dir/zero_round_gadget_test.cpp.o"
  "CMakeFiles/local_zero_round_gadget_test.dir/zero_round_gadget_test.cpp.o.d"
  "local_zero_round_gadget_test"
  "local_zero_round_gadget_test.pdb"
  "local_zero_round_gadget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_zero_round_gadget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
