# Empty dependencies file for local_zero_round_gadget_test.
# This may be replaced when dependencies are built.
