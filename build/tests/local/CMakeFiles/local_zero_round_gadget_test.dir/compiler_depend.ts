# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for local_zero_round_gadget_test.
