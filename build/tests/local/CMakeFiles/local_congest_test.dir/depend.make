# Empty dependencies file for local_congest_test.
# This may be replaced when dependencies are built.
