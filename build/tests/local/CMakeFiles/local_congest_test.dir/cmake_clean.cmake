file(REMOVE_RECURSE
  "CMakeFiles/local_congest_test.dir/congest_test.cpp.o"
  "CMakeFiles/local_congest_test.dir/congest_test.cpp.o.d"
  "local_congest_test"
  "local_congest_test.pdb"
  "local_congest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_congest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
