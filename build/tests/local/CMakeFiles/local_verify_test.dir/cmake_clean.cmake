file(REMOVE_RECURSE
  "CMakeFiles/local_verify_test.dir/verify_test.cpp.o"
  "CMakeFiles/local_verify_test.dir/verify_test.cpp.o.d"
  "local_verify_test"
  "local_verify_test.pdb"
  "local_verify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_verify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
