# Empty dependencies file for local_verify_test.
# This may be replaced when dependencies are built.
