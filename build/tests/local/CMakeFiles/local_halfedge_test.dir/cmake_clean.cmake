file(REMOVE_RECURSE
  "CMakeFiles/local_halfedge_test.dir/halfedge_test.cpp.o"
  "CMakeFiles/local_halfedge_test.dir/halfedge_test.cpp.o.d"
  "local_halfedge_test"
  "local_halfedge_test.pdb"
  "local_halfedge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_halfedge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
