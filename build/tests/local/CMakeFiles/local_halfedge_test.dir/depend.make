# Empty dependencies file for local_halfedge_test.
# This may be replaced when dependencies are built.
