file(REMOVE_RECURSE
  "CMakeFiles/local_graph_test.dir/graph_test.cpp.o"
  "CMakeFiles/local_graph_test.dir/graph_test.cpp.o.d"
  "local_graph_test"
  "local_graph_test.pdb"
  "local_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
