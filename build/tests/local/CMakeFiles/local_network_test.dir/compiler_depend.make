# Empty compiler generated dependencies file for local_network_test.
# This may be replaced when dependencies are built.
