file(REMOVE_RECURSE
  "CMakeFiles/local_network_test.dir/network_test.cpp.o"
  "CMakeFiles/local_network_test.dir/network_test.cpp.o.d"
  "local_network_test"
  "local_network_test.pdb"
  "local_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
