file(REMOVE_RECURSE
  "CMakeFiles/re_random_property_test.dir/random_property_test.cpp.o"
  "CMakeFiles/re_random_property_test.dir/random_property_test.cpp.o.d"
  "re_random_property_test"
  "re_random_property_test.pdb"
  "re_random_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_random_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
