# Empty dependencies file for re_random_property_test.
# This may be replaced when dependencies are built.
