# Empty dependencies file for re_tree_verifier_test.
# This may be replaced when dependencies are built.
