file(REMOVE_RECURSE
  "CMakeFiles/re_tree_verifier_test.dir/tree_verifier_test.cpp.o"
  "CMakeFiles/re_tree_verifier_test.dir/tree_verifier_test.cpp.o.d"
  "re_tree_verifier_test"
  "re_tree_verifier_test.pdb"
  "re_tree_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_tree_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
