# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for re_tree_verifier_test.
