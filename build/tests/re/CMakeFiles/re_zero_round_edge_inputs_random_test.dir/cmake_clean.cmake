file(REMOVE_RECURSE
  "CMakeFiles/re_zero_round_edge_inputs_random_test.dir/zero_round_edge_inputs_random_test.cpp.o"
  "CMakeFiles/re_zero_round_edge_inputs_random_test.dir/zero_round_edge_inputs_random_test.cpp.o.d"
  "re_zero_round_edge_inputs_random_test"
  "re_zero_round_edge_inputs_random_test.pdb"
  "re_zero_round_edge_inputs_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_zero_round_edge_inputs_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
