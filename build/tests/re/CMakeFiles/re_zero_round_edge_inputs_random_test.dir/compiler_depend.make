# Empty compiler generated dependencies file for re_zero_round_edge_inputs_random_test.
# This may be replaced when dependencies are built.
