# Empty dependencies file for re_alphabet_test.
# This may be replaced when dependencies are built.
