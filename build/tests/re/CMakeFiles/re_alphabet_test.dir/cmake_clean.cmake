file(REMOVE_RECURSE
  "CMakeFiles/re_alphabet_test.dir/alphabet_test.cpp.o"
  "CMakeFiles/re_alphabet_test.dir/alphabet_test.cpp.o.d"
  "re_alphabet_test"
  "re_alphabet_test.pdb"
  "re_alphabet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_alphabet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
