# Empty dependencies file for re_configuration_test.
# This may be replaced when dependencies are built.
