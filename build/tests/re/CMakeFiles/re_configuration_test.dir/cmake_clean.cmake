file(REMOVE_RECURSE
  "CMakeFiles/re_configuration_test.dir/configuration_test.cpp.o"
  "CMakeFiles/re_configuration_test.dir/configuration_test.cpp.o.d"
  "re_configuration_test"
  "re_configuration_test.pdb"
  "re_configuration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_configuration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
