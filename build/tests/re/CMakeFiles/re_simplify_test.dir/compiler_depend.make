# Empty compiler generated dependencies file for re_simplify_test.
# This may be replaced when dependencies are built.
