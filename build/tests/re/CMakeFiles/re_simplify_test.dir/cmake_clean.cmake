file(REMOVE_RECURSE
  "CMakeFiles/re_simplify_test.dir/simplify_test.cpp.o"
  "CMakeFiles/re_simplify_test.dir/simplify_test.cpp.o.d"
  "re_simplify_test"
  "re_simplify_test.pdb"
  "re_simplify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
