file(REMOVE_RECURSE
  "CMakeFiles/re_encodings_test.dir/encodings_test.cpp.o"
  "CMakeFiles/re_encodings_test.dir/encodings_test.cpp.o.d"
  "re_encodings_test"
  "re_encodings_test.pdb"
  "re_encodings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_encodings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
