# Empty dependencies file for re_encodings_test.
# This may be replaced when dependencies are built.
