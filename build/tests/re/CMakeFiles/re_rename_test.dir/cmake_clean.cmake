file(REMOVE_RECURSE
  "CMakeFiles/re_rename_test.dir/rename_test.cpp.o"
  "CMakeFiles/re_rename_test.dir/rename_test.cpp.o.d"
  "re_rename_test"
  "re_rename_test.pdb"
  "re_rename_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_rename_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
