file(REMOVE_RECURSE
  "CMakeFiles/re_step_random_test.dir/re_step_random_test.cpp.o"
  "CMakeFiles/re_step_random_test.dir/re_step_random_test.cpp.o.d"
  "re_step_random_test"
  "re_step_random_test.pdb"
  "re_step_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_step_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
