# Empty compiler generated dependencies file for re_step_random_test.
# This may be replaced when dependencies are built.
