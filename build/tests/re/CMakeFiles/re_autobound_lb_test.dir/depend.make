# Empty dependencies file for re_autobound_lb_test.
# This may be replaced when dependencies are built.
