# Empty compiler generated dependencies file for re_label_set_test.
# This may be replaced when dependencies are built.
