file(REMOVE_RECURSE
  "CMakeFiles/re_label_set_test.dir/label_set_test.cpp.o"
  "CMakeFiles/re_label_set_test.dir/label_set_test.cpp.o.d"
  "re_label_set_test"
  "re_label_set_test.pdb"
  "re_label_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_label_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
