file(REMOVE_RECURSE
  "CMakeFiles/re_relax_test.dir/relax_test.cpp.o"
  "CMakeFiles/re_relax_test.dir/relax_test.cpp.o.d"
  "re_relax_test"
  "re_relax_test.pdb"
  "re_relax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_relax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
