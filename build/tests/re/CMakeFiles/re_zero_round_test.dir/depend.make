# Empty dependencies file for re_zero_round_test.
# This may be replaced when dependencies are built.
