file(REMOVE_RECURSE
  "CMakeFiles/re_zero_round_test.dir/zero_round_test.cpp.o"
  "CMakeFiles/re_zero_round_test.dir/zero_round_test.cpp.o.d"
  "re_zero_round_test"
  "re_zero_round_test.pdb"
  "re_zero_round_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_zero_round_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
