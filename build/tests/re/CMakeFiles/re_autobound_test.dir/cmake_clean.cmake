file(REMOVE_RECURSE
  "CMakeFiles/re_autobound_test.dir/autobound_test.cpp.o"
  "CMakeFiles/re_autobound_test.dir/autobound_test.cpp.o.d"
  "re_autobound_test"
  "re_autobound_test.pdb"
  "re_autobound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_autobound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
