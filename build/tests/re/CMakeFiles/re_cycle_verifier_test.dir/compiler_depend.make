# Empty compiler generated dependencies file for re_cycle_verifier_test.
# This may be replaced when dependencies are built.
