file(REMOVE_RECURSE
  "CMakeFiles/re_flow_test.dir/flow_test.cpp.o"
  "CMakeFiles/re_flow_test.dir/flow_test.cpp.o.d"
  "re_flow_test"
  "re_flow_test.pdb"
  "re_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
