file(REMOVE_RECURSE
  "CMakeFiles/re_parser_fuzz_test.dir/parser_fuzz_test.cpp.o"
  "CMakeFiles/re_parser_fuzz_test.dir/parser_fuzz_test.cpp.o.d"
  "re_parser_fuzz_test"
  "re_parser_fuzz_test.pdb"
  "re_parser_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_parser_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
