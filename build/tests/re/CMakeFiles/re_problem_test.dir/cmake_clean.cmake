file(REMOVE_RECURSE
  "CMakeFiles/re_problem_test.dir/problem_test.cpp.o"
  "CMakeFiles/re_problem_test.dir/problem_test.cpp.o.d"
  "re_problem_test"
  "re_problem_test.pdb"
  "re_problem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
