# Empty compiler generated dependencies file for re_constraint_test.
# This may be replaced when dependencies are built.
