file(REMOVE_RECURSE
  "CMakeFiles/re_constraint_test.dir/constraint_test.cpp.o"
  "CMakeFiles/re_constraint_test.dir/constraint_test.cpp.o.d"
  "re_constraint_test"
  "re_constraint_test.pdb"
  "re_constraint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
