file(REMOVE_RECURSE
  "CMakeFiles/re_diagram_test.dir/diagram_test.cpp.o"
  "CMakeFiles/re_diagram_test.dir/diagram_test.cpp.o.d"
  "re_diagram_test"
  "re_diagram_test.pdb"
  "re_diagram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/re_diagram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
