# Empty dependencies file for re_diagram_test.
# This may be replaced when dependencies are built.
