# CMake generated Testfile for 
# Source directory: /root/repo/tests/re
# Build directory: /root/repo/build/tests/re
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/re/re_label_set_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_alphabet_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_configuration_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_constraint_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_problem_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_diagram_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_step_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_zero_round_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_rename_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_random_property_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_encodings_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_autobound_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_step_random_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_flow_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_relax_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_cycle_verifier_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_tree_verifier_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_parser_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_simplify_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_autobound_lb_test[1]_include.cmake")
include("/root/repo/build/tests/re/re_zero_round_edge_inputs_random_test[1]_include.cmake")
