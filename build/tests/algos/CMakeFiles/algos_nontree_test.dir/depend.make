# Empty dependencies file for algos_nontree_test.
# This may be replaced when dependencies are built.
