file(REMOVE_RECURSE
  "CMakeFiles/algos_nontree_test.dir/nontree_test.cpp.o"
  "CMakeFiles/algos_nontree_test.dir/nontree_test.cpp.o.d"
  "algos_nontree_test"
  "algos_nontree_test.pdb"
  "algos_nontree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_nontree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
