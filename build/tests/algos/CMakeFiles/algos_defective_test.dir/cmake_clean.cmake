file(REMOVE_RECURSE
  "CMakeFiles/algos_defective_test.dir/defective_test.cpp.o"
  "CMakeFiles/algos_defective_test.dir/defective_test.cpp.o.d"
  "algos_defective_test"
  "algos_defective_test.pdb"
  "algos_defective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_defective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
