file(REMOVE_RECURSE
  "CMakeFiles/algos_coloring_test.dir/coloring_test.cpp.o"
  "CMakeFiles/algos_coloring_test.dir/coloring_test.cpp.o.d"
  "algos_coloring_test"
  "algos_coloring_test.pdb"
  "algos_coloring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_coloring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
