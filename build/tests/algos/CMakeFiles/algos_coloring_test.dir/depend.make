# Empty dependencies file for algos_coloring_test.
# This may be replaced when dependencies are built.
