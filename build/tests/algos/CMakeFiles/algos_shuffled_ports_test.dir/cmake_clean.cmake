file(REMOVE_RECURSE
  "CMakeFiles/algos_shuffled_ports_test.dir/shuffled_ports_test.cpp.o"
  "CMakeFiles/algos_shuffled_ports_test.dir/shuffled_ports_test.cpp.o.d"
  "algos_shuffled_ports_test"
  "algos_shuffled_ports_test.pdb"
  "algos_shuffled_ports_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_shuffled_ports_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
