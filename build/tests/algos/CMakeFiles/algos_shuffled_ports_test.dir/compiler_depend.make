# Empty compiler generated dependencies file for algos_shuffled_ports_test.
# This may be replaced when dependencies are built.
