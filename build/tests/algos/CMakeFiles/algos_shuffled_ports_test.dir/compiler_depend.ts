# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for algos_shuffled_ports_test.
