file(REMOVE_RECURSE
  "CMakeFiles/algos_luby_test.dir/luby_test.cpp.o"
  "CMakeFiles/algos_luby_test.dir/luby_test.cpp.o.d"
  "algos_luby_test"
  "algos_luby_test.pdb"
  "algos_luby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_luby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
