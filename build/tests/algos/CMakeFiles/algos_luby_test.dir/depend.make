# Empty dependencies file for algos_luby_test.
# This may be replaced when dependencies are built.
