# Empty dependencies file for algos_domset_test.
# This may be replaced when dependencies are built.
