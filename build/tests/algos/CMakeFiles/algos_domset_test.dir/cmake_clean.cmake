file(REMOVE_RECURSE
  "CMakeFiles/algos_domset_test.dir/domset_test.cpp.o"
  "CMakeFiles/algos_domset_test.dir/domset_test.cpp.o.d"
  "algos_domset_test"
  "algos_domset_test.pdb"
  "algos_domset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_domset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
