# CMake generated Testfile for 
# Source directory: /root/repo/tests/algos
# Build directory: /root/repo/build/tests/algos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/algos/algos_coloring_test[1]_include.cmake")
include("/root/repo/build/tests/algos/algos_luby_test[1]_include.cmake")
include("/root/repo/build/tests/algos/algos_defective_test[1]_include.cmake")
include("/root/repo/build/tests/algos/algos_domset_test[1]_include.cmake")
include("/root/repo/build/tests/algos/algos_nontree_test[1]_include.cmake")
include("/root/repo/build/tests/algos/algos_shuffled_ports_test[1]_include.cmake")
