file(REMOVE_RECURSE
  "CMakeFiles/core_family_test.dir/family_test.cpp.o"
  "CMakeFiles/core_family_test.dir/family_test.cpp.o.d"
  "core_family_test"
  "core_family_test.pdb"
  "core_family_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
