# Empty compiler generated dependencies file for core_family_test.
# This may be replaced when dependencies are built.
