file(REMOVE_RECURSE
  "CMakeFiles/core_sequence_test.dir/sequence_test.cpp.o"
  "CMakeFiles/core_sequence_test.dir/sequence_test.cpp.o.d"
  "core_sequence_test"
  "core_sequence_test.pdb"
  "core_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
