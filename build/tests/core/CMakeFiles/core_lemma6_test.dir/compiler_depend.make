# Empty compiler generated dependencies file for core_lemma6_test.
# This may be replaced when dependencies are built.
