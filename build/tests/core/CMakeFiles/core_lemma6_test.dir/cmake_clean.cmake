file(REMOVE_RECURSE
  "CMakeFiles/core_lemma6_test.dir/lemma6_test.cpp.o"
  "CMakeFiles/core_lemma6_test.dir/lemma6_test.cpp.o.d"
  "core_lemma6_test"
  "core_lemma6_test.pdb"
  "core_lemma6_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lemma6_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
