# Empty compiler generated dependencies file for core_lemma8_test.
# This may be replaced when dependencies are built.
