file(REMOVE_RECURSE
  "CMakeFiles/core_transcript_test.dir/transcript_test.cpp.o"
  "CMakeFiles/core_transcript_test.dir/transcript_test.cpp.o.d"
  "core_transcript_test"
  "core_transcript_test.pdb"
  "core_transcript_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_transcript_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
