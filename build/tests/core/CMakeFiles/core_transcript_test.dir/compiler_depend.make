# Empty compiler generated dependencies file for core_transcript_test.
# This may be replaced when dependencies are built.
