# Empty compiler generated dependencies file for core_conversions_test.
# This may be replaced when dependencies are built.
