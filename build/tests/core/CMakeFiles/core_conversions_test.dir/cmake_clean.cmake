file(REMOVE_RECURSE
  "CMakeFiles/core_conversions_test.dir/conversions_test.cpp.o"
  "CMakeFiles/core_conversions_test.dir/conversions_test.cpp.o.d"
  "core_conversions_test"
  "core_conversions_test.pdb"
  "core_conversions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_conversions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
