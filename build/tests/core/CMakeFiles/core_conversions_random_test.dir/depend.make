# Empty dependencies file for core_conversions_random_test.
# This may be replaced when dependencies are built.
