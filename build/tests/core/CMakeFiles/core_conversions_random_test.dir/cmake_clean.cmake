file(REMOVE_RECURSE
  "CMakeFiles/core_conversions_random_test.dir/conversions_random_test.cpp.o"
  "CMakeFiles/core_conversions_random_test.dir/conversions_random_test.cpp.o.d"
  "core_conversions_random_test"
  "core_conversions_random_test.pdb"
  "core_conversions_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_conversions_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
