# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/core_family_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_lemma6_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_lemma8_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_conversions_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_sequence_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_transcript_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_conversions_random_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_cascade_test[1]_include.cmake")
