file(REMOVE_RECURSE
  "CMakeFiles/round_eliminator_cli.dir/round_eliminator_cli.cpp.o"
  "CMakeFiles/round_eliminator_cli.dir/round_eliminator_cli.cpp.o.d"
  "round_eliminator_cli"
  "round_eliminator_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_eliminator_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
