# Empty compiler generated dependencies file for round_eliminator_cli.
# This may be replaced when dependencies are built.
