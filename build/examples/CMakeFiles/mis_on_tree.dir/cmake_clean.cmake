file(REMOVE_RECURSE
  "CMakeFiles/mis_on_tree.dir/mis_on_tree.cpp.o"
  "CMakeFiles/mis_on_tree.dir/mis_on_tree.cpp.o.d"
  "mis_on_tree"
  "mis_on_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mis_on_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
