# Empty dependencies file for mis_on_tree.
# This may be replaced when dependencies are built.
