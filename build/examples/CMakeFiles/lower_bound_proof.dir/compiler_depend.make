# Empty compiler generated dependencies file for lower_bound_proof.
# This may be replaced when dependencies are built.
