file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_proof.dir/lower_bound_proof.cpp.o"
  "CMakeFiles/lower_bound_proof.dir/lower_bound_proof.cpp.o.d"
  "lower_bound_proof"
  "lower_bound_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
