# Empty dependencies file for domset_pipeline.
# This may be replaced when dependencies are built.
