file(REMOVE_RECURSE
  "CMakeFiles/domset_pipeline.dir/domset_pipeline.cpp.o"
  "CMakeFiles/domset_pipeline.dir/domset_pipeline.cpp.o.d"
  "domset_pipeline"
  "domset_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domset_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
