file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem1_bounds.dir/bench_theorem1_bounds.cpp.o"
  "CMakeFiles/bench_theorem1_bounds.dir/bench_theorem1_bounds.cpp.o.d"
  "bench_theorem1_bounds"
  "bench_theorem1_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem1_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
