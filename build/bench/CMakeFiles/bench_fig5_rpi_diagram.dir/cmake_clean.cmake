file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rpi_diagram.dir/bench_fig5_rpi_diagram.cpp.o"
  "CMakeFiles/bench_fig5_rpi_diagram.dir/bench_fig5_rpi_diagram.cpp.o.d"
  "bench_fig5_rpi_diagram"
  "bench_fig5_rpi_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rpi_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
