# Empty dependencies file for bench_fig5_rpi_diagram.
# This may be replaced when dependencies are built.
