# Empty dependencies file for bench_lemma9_conversion.
# This may be replaced when dependencies are built.
