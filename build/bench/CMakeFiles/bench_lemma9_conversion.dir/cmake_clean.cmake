file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma9_conversion.dir/bench_lemma9_conversion.cpp.o"
  "CMakeFiles/bench_lemma9_conversion.dir/bench_lemma9_conversion.cpp.o.d"
  "bench_lemma9_conversion"
  "bench_lemma9_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma9_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
