file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma8_table.dir/bench_lemma8_table.cpp.o"
  "CMakeFiles/bench_lemma8_table.dir/bench_lemma8_table.cpp.o.d"
  "bench_lemma8_table"
  "bench_lemma8_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma8_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
