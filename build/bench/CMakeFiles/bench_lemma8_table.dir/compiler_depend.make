# Empty compiler generated dependencies file for bench_lemma8_table.
# This may be replaced when dependencies are built.
