# Empty dependencies file for bench_fig1_mis_diagram.
# This may be replaced when dependencies are built.
