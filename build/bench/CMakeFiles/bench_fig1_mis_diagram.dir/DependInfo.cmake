
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_mis_diagram.cpp" "bench/CMakeFiles/bench_fig1_mis_diagram.dir/bench_fig1_mis_diagram.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_mis_diagram.dir/bench_fig1_mis_diagram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/relb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/relb_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/local/CMakeFiles/relb_local.dir/DependInfo.cmake"
  "/root/repo/build/src/re/CMakeFiles/relb_re.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
