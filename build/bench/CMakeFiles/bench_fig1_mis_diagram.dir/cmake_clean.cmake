file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mis_diagram.dir/bench_fig1_mis_diagram.cpp.o"
  "CMakeFiles/bench_fig1_mis_diagram.dir/bench_fig1_mis_diagram.cpp.o.d"
  "bench_fig1_mis_diagram"
  "bench_fig1_mis_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mis_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
