file(REMOVE_RECURSE
  "CMakeFiles/bench_encodings_catalog.dir/bench_encodings_catalog.cpp.o"
  "CMakeFiles/bench_encodings_catalog.dir/bench_encodings_catalog.cpp.o.d"
  "bench_encodings_catalog"
  "bench_encodings_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encodings_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
