# Empty compiler generated dependencies file for bench_encodings_catalog.
# This may be replaced when dependencies are built.
