file(REMOVE_RECURSE
  "CMakeFiles/bench_upper_bounds.dir/bench_upper_bounds.cpp.o"
  "CMakeFiles/bench_upper_bounds.dir/bench_upper_bounds.cpp.o.d"
  "bench_upper_bounds"
  "bench_upper_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upper_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
