file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_example_labeling.dir/bench_fig23_example_labeling.cpp.o"
  "CMakeFiles/bench_fig23_example_labeling.dir/bench_fig23_example_labeling.cpp.o.d"
  "bench_fig23_example_labeling"
  "bench_fig23_example_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_example_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
