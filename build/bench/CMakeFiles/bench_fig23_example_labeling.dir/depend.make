# Empty dependencies file for bench_fig23_example_labeling.
# This may be replaced when dependencies are built.
