# Empty compiler generated dependencies file for bench_theorem3_cycles.
# This may be replaced when dependencies are built.
