file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem3_cycles.dir/bench_theorem3_cycles.cpp.o"
  "CMakeFiles/bench_theorem3_cycles.dir/bench_theorem3_cycles.cpp.o.d"
  "bench_theorem3_cycles"
  "bench_theorem3_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem3_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
