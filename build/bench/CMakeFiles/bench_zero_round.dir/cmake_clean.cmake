file(REMOVE_RECURSE
  "CMakeFiles/bench_zero_round.dir/bench_zero_round.cpp.o"
  "CMakeFiles/bench_zero_round.dir/bench_zero_round.cpp.o.d"
  "bench_zero_round"
  "bench_zero_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zero_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
