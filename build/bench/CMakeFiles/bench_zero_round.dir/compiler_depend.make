# Empty compiler generated dependencies file for bench_zero_round.
# This may be replaced when dependencies are built.
