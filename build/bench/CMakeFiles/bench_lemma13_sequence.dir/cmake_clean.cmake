file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma13_sequence.dir/bench_lemma13_sequence.cpp.o"
  "CMakeFiles/bench_lemma13_sequence.dir/bench_lemma13_sequence.cpp.o.d"
  "bench_lemma13_sequence"
  "bench_lemma13_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma13_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
