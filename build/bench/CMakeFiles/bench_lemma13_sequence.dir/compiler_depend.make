# Empty compiler generated dependencies file for bench_lemma13_sequence.
# This may be replaced when dependencies are built.
