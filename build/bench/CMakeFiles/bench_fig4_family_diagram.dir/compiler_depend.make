# Empty compiler generated dependencies file for bench_fig4_family_diagram.
# This may be replaced when dependencies are built.
