# Empty compiler generated dependencies file for bench_label_growth.
# This may be replaced when dependencies are built.
