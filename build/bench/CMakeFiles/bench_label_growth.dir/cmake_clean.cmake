file(REMOVE_RECURSE
  "CMakeFiles/bench_label_growth.dir/bench_label_growth.cpp.o"
  "CMakeFiles/bench_label_growth.dir/bench_label_growth.cpp.o.d"
  "bench_label_growth"
  "bench_label_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_label_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
