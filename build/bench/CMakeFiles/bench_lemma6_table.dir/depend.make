# Empty dependencies file for bench_lemma6_table.
# This may be replaced when dependencies are built.
