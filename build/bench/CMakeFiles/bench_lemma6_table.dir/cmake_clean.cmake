file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma6_table.dir/bench_lemma6_table.cpp.o"
  "CMakeFiles/bench_lemma6_table.dir/bench_lemma6_table.cpp.o.d"
  "bench_lemma6_table"
  "bench_lemma6_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma6_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
