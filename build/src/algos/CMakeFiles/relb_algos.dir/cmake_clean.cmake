file(REMOVE_RECURSE
  "CMakeFiles/relb_algos.dir/coloring.cpp.o"
  "CMakeFiles/relb_algos.dir/coloring.cpp.o.d"
  "CMakeFiles/relb_algos.dir/defective.cpp.o"
  "CMakeFiles/relb_algos.dir/defective.cpp.o.d"
  "CMakeFiles/relb_algos.dir/domset.cpp.o"
  "CMakeFiles/relb_algos.dir/domset.cpp.o.d"
  "CMakeFiles/relb_algos.dir/luby.cpp.o"
  "CMakeFiles/relb_algos.dir/luby.cpp.o.d"
  "librelb_algos.a"
  "librelb_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relb_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
