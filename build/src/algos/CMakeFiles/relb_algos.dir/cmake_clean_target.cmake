file(REMOVE_RECURSE
  "librelb_algos.a"
)
