# Empty compiler generated dependencies file for relb_algos.
# This may be replaced when dependencies are built.
