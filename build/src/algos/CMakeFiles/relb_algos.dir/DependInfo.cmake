
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/coloring.cpp" "src/algos/CMakeFiles/relb_algos.dir/coloring.cpp.o" "gcc" "src/algos/CMakeFiles/relb_algos.dir/coloring.cpp.o.d"
  "/root/repo/src/algos/defective.cpp" "src/algos/CMakeFiles/relb_algos.dir/defective.cpp.o" "gcc" "src/algos/CMakeFiles/relb_algos.dir/defective.cpp.o.d"
  "/root/repo/src/algos/domset.cpp" "src/algos/CMakeFiles/relb_algos.dir/domset.cpp.o" "gcc" "src/algos/CMakeFiles/relb_algos.dir/domset.cpp.o.d"
  "/root/repo/src/algos/luby.cpp" "src/algos/CMakeFiles/relb_algos.dir/luby.cpp.o" "gcc" "src/algos/CMakeFiles/relb_algos.dir/luby.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/local/CMakeFiles/relb_local.dir/DependInfo.cmake"
  "/root/repo/build/src/re/CMakeFiles/relb_re.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
