
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/re/alphabet.cpp" "src/re/CMakeFiles/relb_re.dir/alphabet.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/alphabet.cpp.o.d"
  "/root/repo/src/re/autobound.cpp" "src/re/CMakeFiles/relb_re.dir/autobound.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/autobound.cpp.o.d"
  "/root/repo/src/re/configuration.cpp" "src/re/CMakeFiles/relb_re.dir/configuration.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/configuration.cpp.o.d"
  "/root/repo/src/re/constraint.cpp" "src/re/CMakeFiles/relb_re.dir/constraint.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/constraint.cpp.o.d"
  "/root/repo/src/re/cycle_verifier.cpp" "src/re/CMakeFiles/relb_re.dir/cycle_verifier.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/cycle_verifier.cpp.o.d"
  "/root/repo/src/re/diagram.cpp" "src/re/CMakeFiles/relb_re.dir/diagram.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/diagram.cpp.o.d"
  "/root/repo/src/re/encodings.cpp" "src/re/CMakeFiles/relb_re.dir/encodings.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/encodings.cpp.o.d"
  "/root/repo/src/re/flow.cpp" "src/re/CMakeFiles/relb_re.dir/flow.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/flow.cpp.o.d"
  "/root/repo/src/re/problem.cpp" "src/re/CMakeFiles/relb_re.dir/problem.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/problem.cpp.o.d"
  "/root/repo/src/re/re_step.cpp" "src/re/CMakeFiles/relb_re.dir/re_step.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/re_step.cpp.o.d"
  "/root/repo/src/re/relax.cpp" "src/re/CMakeFiles/relb_re.dir/relax.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/relax.cpp.o.d"
  "/root/repo/src/re/rename.cpp" "src/re/CMakeFiles/relb_re.dir/rename.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/rename.cpp.o.d"
  "/root/repo/src/re/simplify.cpp" "src/re/CMakeFiles/relb_re.dir/simplify.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/simplify.cpp.o.d"
  "/root/repo/src/re/tree_verifier.cpp" "src/re/CMakeFiles/relb_re.dir/tree_verifier.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/tree_verifier.cpp.o.d"
  "/root/repo/src/re/zero_round.cpp" "src/re/CMakeFiles/relb_re.dir/zero_round.cpp.o" "gcc" "src/re/CMakeFiles/relb_re.dir/zero_round.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
