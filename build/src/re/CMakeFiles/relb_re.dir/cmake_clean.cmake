file(REMOVE_RECURSE
  "CMakeFiles/relb_re.dir/alphabet.cpp.o"
  "CMakeFiles/relb_re.dir/alphabet.cpp.o.d"
  "CMakeFiles/relb_re.dir/autobound.cpp.o"
  "CMakeFiles/relb_re.dir/autobound.cpp.o.d"
  "CMakeFiles/relb_re.dir/configuration.cpp.o"
  "CMakeFiles/relb_re.dir/configuration.cpp.o.d"
  "CMakeFiles/relb_re.dir/constraint.cpp.o"
  "CMakeFiles/relb_re.dir/constraint.cpp.o.d"
  "CMakeFiles/relb_re.dir/cycle_verifier.cpp.o"
  "CMakeFiles/relb_re.dir/cycle_verifier.cpp.o.d"
  "CMakeFiles/relb_re.dir/diagram.cpp.o"
  "CMakeFiles/relb_re.dir/diagram.cpp.o.d"
  "CMakeFiles/relb_re.dir/encodings.cpp.o"
  "CMakeFiles/relb_re.dir/encodings.cpp.o.d"
  "CMakeFiles/relb_re.dir/flow.cpp.o"
  "CMakeFiles/relb_re.dir/flow.cpp.o.d"
  "CMakeFiles/relb_re.dir/problem.cpp.o"
  "CMakeFiles/relb_re.dir/problem.cpp.o.d"
  "CMakeFiles/relb_re.dir/re_step.cpp.o"
  "CMakeFiles/relb_re.dir/re_step.cpp.o.d"
  "CMakeFiles/relb_re.dir/relax.cpp.o"
  "CMakeFiles/relb_re.dir/relax.cpp.o.d"
  "CMakeFiles/relb_re.dir/rename.cpp.o"
  "CMakeFiles/relb_re.dir/rename.cpp.o.d"
  "CMakeFiles/relb_re.dir/simplify.cpp.o"
  "CMakeFiles/relb_re.dir/simplify.cpp.o.d"
  "CMakeFiles/relb_re.dir/tree_verifier.cpp.o"
  "CMakeFiles/relb_re.dir/tree_verifier.cpp.o.d"
  "CMakeFiles/relb_re.dir/zero_round.cpp.o"
  "CMakeFiles/relb_re.dir/zero_round.cpp.o.d"
  "librelb_re.a"
  "librelb_re.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relb_re.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
