# Empty dependencies file for relb_re.
# This may be replaced when dependencies are built.
