file(REMOVE_RECURSE
  "librelb_re.a"
)
