# Empty dependencies file for relb_core.
# This may be replaced when dependencies are built.
