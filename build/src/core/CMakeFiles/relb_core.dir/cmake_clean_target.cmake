file(REMOVE_RECURSE
  "librelb_core.a"
)
