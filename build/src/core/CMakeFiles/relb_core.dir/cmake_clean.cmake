file(REMOVE_RECURSE
  "CMakeFiles/relb_core.dir/bounds.cpp.o"
  "CMakeFiles/relb_core.dir/bounds.cpp.o.d"
  "CMakeFiles/relb_core.dir/conversions.cpp.o"
  "CMakeFiles/relb_core.dir/conversions.cpp.o.d"
  "CMakeFiles/relb_core.dir/family.cpp.o"
  "CMakeFiles/relb_core.dir/family.cpp.o.d"
  "CMakeFiles/relb_core.dir/lemma6.cpp.o"
  "CMakeFiles/relb_core.dir/lemma6.cpp.o.d"
  "CMakeFiles/relb_core.dir/lemma8.cpp.o"
  "CMakeFiles/relb_core.dir/lemma8.cpp.o.d"
  "CMakeFiles/relb_core.dir/sequence.cpp.o"
  "CMakeFiles/relb_core.dir/sequence.cpp.o.d"
  "CMakeFiles/relb_core.dir/transcript.cpp.o"
  "CMakeFiles/relb_core.dir/transcript.cpp.o.d"
  "librelb_core.a"
  "librelb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
