
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/relb_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/relb_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/conversions.cpp" "src/core/CMakeFiles/relb_core.dir/conversions.cpp.o" "gcc" "src/core/CMakeFiles/relb_core.dir/conversions.cpp.o.d"
  "/root/repo/src/core/family.cpp" "src/core/CMakeFiles/relb_core.dir/family.cpp.o" "gcc" "src/core/CMakeFiles/relb_core.dir/family.cpp.o.d"
  "/root/repo/src/core/lemma6.cpp" "src/core/CMakeFiles/relb_core.dir/lemma6.cpp.o" "gcc" "src/core/CMakeFiles/relb_core.dir/lemma6.cpp.o.d"
  "/root/repo/src/core/lemma8.cpp" "src/core/CMakeFiles/relb_core.dir/lemma8.cpp.o" "gcc" "src/core/CMakeFiles/relb_core.dir/lemma8.cpp.o.d"
  "/root/repo/src/core/sequence.cpp" "src/core/CMakeFiles/relb_core.dir/sequence.cpp.o" "gcc" "src/core/CMakeFiles/relb_core.dir/sequence.cpp.o.d"
  "/root/repo/src/core/transcript.cpp" "src/core/CMakeFiles/relb_core.dir/transcript.cpp.o" "gcc" "src/core/CMakeFiles/relb_core.dir/transcript.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/re/CMakeFiles/relb_re.dir/DependInfo.cmake"
  "/root/repo/build/src/local/CMakeFiles/relb_local.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
