
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/local/graph.cpp" "src/local/CMakeFiles/relb_local.dir/graph.cpp.o" "gcc" "src/local/CMakeFiles/relb_local.dir/graph.cpp.o.d"
  "/root/repo/src/local/halfedge.cpp" "src/local/CMakeFiles/relb_local.dir/halfedge.cpp.o" "gcc" "src/local/CMakeFiles/relb_local.dir/halfedge.cpp.o.d"
  "/root/repo/src/local/verify.cpp" "src/local/CMakeFiles/relb_local.dir/verify.cpp.o" "gcc" "src/local/CMakeFiles/relb_local.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/re/CMakeFiles/relb_re.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
