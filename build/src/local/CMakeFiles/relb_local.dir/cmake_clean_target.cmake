file(REMOVE_RECURSE
  "librelb_local.a"
)
