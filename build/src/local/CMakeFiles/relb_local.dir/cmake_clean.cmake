file(REMOVE_RECURSE
  "CMakeFiles/relb_local.dir/graph.cpp.o"
  "CMakeFiles/relb_local.dir/graph.cpp.o.d"
  "CMakeFiles/relb_local.dir/halfedge.cpp.o"
  "CMakeFiles/relb_local.dir/halfedge.cpp.o.d"
  "CMakeFiles/relb_local.dir/verify.cpp.o"
  "CMakeFiles/relb_local.dir/verify.cpp.o.d"
  "librelb_local.a"
  "librelb_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relb_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
