# Empty compiler generated dependencies file for relb_local.
# This may be replaced when dependencies are built.
