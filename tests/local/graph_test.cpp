#include "local/graph.hpp"

#include <gtest/gtest.h>

#include "re/types.hpp"

namespace relb::local {
namespace {

TEST(Graph, BasicAdjacency) {
  Graph g(3);
  const EdgeId e0 = g.addEdge(0, 1);
  const EdgeId e1 = g.addEdge(1, 2);
  EXPECT_EQ(g.numNodes(), 3);
  EXPECT_EQ(g.numEdges(), 2);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.halfEdge(0, 0).neighbor, 1);
  EXPECT_EQ(g.halfEdge(0, 0).edge, e0);
  EXPECT_EQ(g.portOf(1, e0), 0);
  EXPECT_EQ(g.portOf(1, e1), 1);
  EXPECT_THROW((void)g.portOf(0, e1), re::Error);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(2);
  EXPECT_THROW(g.addEdge(0, 0), re::Error);
  EXPECT_THROW(g.addEdge(0, 2), re::Error);
  EXPECT_THROW(g.addEdge(-1, 0), re::Error);
}

TEST(CompleteRegularTree, StructureAndColoring) {
  for (int delta : {2, 3, 4, 5}) {
    for (int depth : {0, 1, 2, 3}) {
      const Graph g = completeRegularTree(delta, depth);
      EXPECT_TRUE(g.isTree());
      EXPECT_LE(g.maxDegree(), delta);
      if (depth >= 1) {
        EXPECT_EQ(g.maxDegree(), delta);
      }
      EXPECT_TRUE(g.edgeColoringIsProper(delta)) << delta << "," << depth;
      // Interior nodes have degree exactly delta.
      if (depth >= 2) {
        EXPECT_EQ(g.degree(0), delta);  // root
        EXPECT_EQ(g.degree(1), delta);  // depth-1 node
      }
    }
  }
}

TEST(CompleteRegularTree, NodeCount) {
  // delta=3, depth=2: 1 + 3 + 6 = 10 nodes.
  EXPECT_EQ(completeRegularTree(3, 2).numNodes(), 10);
  // delta=4, depth=3: 1 + 4 + 12 + 36 = 53.
  EXPECT_EQ(completeRegularTree(4, 3).numNodes(), 53);
}

TEST(RandomTree, IsTreeWithCapAndProperColors) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = randomTree(60, 5, rng);
    EXPECT_TRUE(g.isTree());
    EXPECT_LE(g.maxDegree(), 5);
    EXPECT_TRUE(g.edgeColoringIsProper(5));
  }
}

TEST(Builders, PathCycleStarBroom) {
  const Graph path = pathGraph(5);
  EXPECT_TRUE(path.isTree());
  EXPECT_EQ(path.maxDegree(), 2);

  const Graph cycle = cycleGraph(6);
  EXPECT_FALSE(cycle.isTree());
  EXPECT_EQ(cycle.girth(), 6);

  const Graph star = starGraph(7);
  EXPECT_TRUE(star.isTree());
  EXPECT_EQ(star.degree(0), 7);
  EXPECT_TRUE(star.edgeColoringIsProper(7));

  const Graph broom = broomGraph(4, 3);
  EXPECT_TRUE(broom.isTree());
  EXPECT_EQ(broom.degree(3), 4);  // path end + 3 bristles
}

TEST(Girth, TreeHasNone) {
  EXPECT_EQ(completeRegularTree(3, 3).girth(), -1);
  EXPECT_EQ(pathGraph(4).girth(), -1);
}

TEST(SymmetricPortGadget, PortEqualsColorBothSides) {
  for (int delta : {2, 3, 4, 7}) {
    const Graph g = symmetricPortGadget(delta);
    EXPECT_EQ(g.numNodes(), 2 * delta);
    EXPECT_EQ(g.numEdges(), delta * delta);
    EXPECT_EQ(g.maxDegree(), delta);
    EXPECT_TRUE(g.edgeColoringIsProper(delta));
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      EXPECT_EQ(g.portOf(u, e), g.edgeColor(e));
      EXPECT_EQ(g.portOf(v, e), g.edgeColor(e));
    }
  }
}

TEST(SymmetricPortGadget, GirthFour) {
  EXPECT_EQ(symmetricPortGadget(3).girth(), 4);
}

TEST(GreedyEdgeColoring, TreeUsesAtMostDeltaColors) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = randomTree(40, 4, rng);
    const int colors = g.properEdgeColorGreedy();
    EXPECT_LE(colors, 4);
    EXPECT_TRUE(g.edgeColoringIsProper(colors));
  }
}

TEST(GreedyEdgeColoring, CycleMayNeedThree) {
  Graph g = cycleGraph(5);
  const int colors = g.properEdgeColorGreedy();
  EXPECT_LE(colors, 3);
  EXPECT_TRUE(g.edgeColoringIsProper(colors));
}

}  // namespace
}  // namespace relb::local
