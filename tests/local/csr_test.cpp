#include "local/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "local/families.hpp"
#include "local/graph.hpp"
#include "re/types.hpp"

namespace relb::local {
namespace {

/// The legacy pointer-per-node Graph built from the same parent array --
/// the round-trip oracle for the CSR layout.
Graph legacyFromParents(const std::vector<Vertex>& parents) {
  Graph g(static_cast<NodeId>(parents.size()));
  for (std::size_t v = 1; v < parents.size(); ++v) {
    g.addEdge(static_cast<NodeId>(parents[v]), static_cast<NodeId>(v));
  }
  return g;
}

std::vector<Vertex> sortedNeighbors(const CsrGraph& g, Vertex v) {
  const auto span = g.neighbors(v);
  std::vector<Vertex> out(span.begin(), span.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Vertex> sortedLegacyNeighbors(const Graph& g, NodeId v) {
  std::vector<Vertex> out;
  for (const HalfEdge& he : g.neighbors(v)) {
    out.push_back(static_cast<Vertex>(he.neighbor));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Csr, FromParentsRoundTripsAgainstLegacyGraph) {
  const TreeInstance inst = makeTree(Family::kRandomTree, 500, 0, 42);
  const Graph legacy = legacyFromParents(inst.parents);

  ASSERT_EQ(inst.graph.numNodes(), 500u);
  EXPECT_EQ(inst.graph.numHalfEdges(), 2u * 499u);
  EXPECT_EQ(static_cast<int>(inst.graph.maxDegree()), legacy.maxDegree());
  for (Vertex v = 0; v < inst.graph.numNodes(); ++v) {
    EXPECT_EQ(static_cast<int>(inst.graph.degree(v)),
              legacy.degree(static_cast<NodeId>(v)));
    EXPECT_EQ(sortedNeighbors(inst.graph, v),
              sortedLegacyNeighbors(legacy, static_cast<NodeId>(v)));
  }
}

TEST(Csr, NeighborOrderIsParentFirstThenChildrenAscending) {
  //      0
  //     / \
  //    1   2
  //   /|   |
  //  3 4   5
  const std::vector<Vertex> parents{0, 0, 0, 1, 1, 2};
  const CsrGraph g = CsrGraph::fromParents(parents);
  const auto row = [&](Vertex v) {
    const auto span = g.neighbors(v);
    return std::vector<Vertex>(span.begin(), span.end());
  };
  EXPECT_EQ(row(0), (std::vector<Vertex>{1, 2}));  // root: children only
  EXPECT_EQ(row(1), (std::vector<Vertex>{0, 3, 4}));
  EXPECT_EQ(row(2), (std::vector<Vertex>{0, 5}));
  EXPECT_EQ(row(3), (std::vector<Vertex>{1}));
  EXPECT_EQ(g.maxDegree(), 3u);
}

TEST(Csr, FromEdgesMatchesFromParents) {
  const TreeInstance inst = makeTree(Family::kBoundedDegreeTree, 300, 4, 7);
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 1; v < 300; ++v) edges.emplace_back(inst.parents[v], v);
  const CsrGraph g = CsrGraph::fromEdges(300, edges);

  EXPECT_EQ(g.numNodes(), inst.graph.numNodes());
  EXPECT_EQ(g.numHalfEdges(), inst.graph.numHalfEdges());
  EXPECT_EQ(g.maxDegree(), inst.graph.maxDegree());
  for (Vertex v = 0; v < g.numNodes(); ++v) {
    EXPECT_EQ(sortedNeighbors(g, v), sortedNeighbors(inst.graph, v));
  }
}

TEST(Csr, LayoutBytesMatchTheDocumentedMemoryMath) {
  const TreeInstance inst = makeTree(Family::kPath, 1000, 0, 0);
  // offsets: 4(n + 1) bytes; neighbors: 4 * 2(n - 1) bytes.
  EXPECT_EQ(inst.graph.layoutBytes(), 4u * 1001u + 4u * 2u * 999u);
  EXPECT_GE(inst.graph.arenaBytes(), inst.graph.layoutBytes());
}

TEST(Csr, SingleNodeGraph) {
  const std::vector<Vertex> parents{0};
  const CsrGraph g = CsrGraph::fromParents(parents);
  EXPECT_EQ(g.numNodes(), 1u);
  EXPECT_EQ(g.numHalfEdges(), 0u);
  EXPECT_EQ(g.maxDegree(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Csr, RejectsMalformedInput) {
  EXPECT_THROW(CsrGraph::fromParents({}), re::Error);
  const std::vector<Vertex> rootNotZero{1, 0};
  EXPECT_THROW(CsrGraph::fromParents(rootNotZero), re::Error);
  const std::vector<Vertex> forwardParent{0, 2, 0};  // parents[1] >= 1
  EXPECT_THROW(CsrGraph::fromParents(forwardParent), re::Error);

  const std::vector<std::pair<Vertex, Vertex>> loop{{0, 0}};
  EXPECT_THROW(CsrGraph::fromEdges(2, loop), re::Error);
  const std::vector<std::pair<Vertex, Vertex>> outOfRange{{0, 5}};
  EXPECT_THROW(CsrGraph::fromEdges(2, outOfRange), re::Error);
  EXPECT_THROW(CsrGraph::fromEdges(0, {}), re::Error);
}

TEST(Csr, FamilyShapesAndDegreeBounds) {
  for (const Family family : allFamilies()) {
    const TreeInstance inst = makeTree(family, 200, 0, 5);
    EXPECT_EQ(inst.graph.numNodes(), 200u) << familyName(family);
    EXPECT_EQ(inst.graph.numHalfEdges(), 2u * 199u) << familyName(family);
    ASSERT_EQ(inst.parents.size(), 200u);
    EXPECT_EQ(inst.parents[0], 0u);
    for (Vertex v = 1; v < 200; ++v) {
      EXPECT_LT(inst.parents[v], v) << familyName(family);
    }
  }
  EXPECT_LE(makeTree(Family::kBoundedDegreeTree, 200, 0, 5).graph.maxDegree(),
            8u);
  EXPECT_LE(makeTree(Family::kCompleteTree, 200, 0, 5).graph.maxDegree(), 3u);
  EXPECT_LE(makeTree(Family::kPath, 200, 0, 5).graph.maxDegree(), 2u);
}

TEST(Csr, BoundedTreeRespectsExplicitCap) {
  const TreeInstance inst = makeTree(Family::kBoundedDegreeTree, 2000, 4, 9);
  EXPECT_LE(inst.graph.maxDegree(), 4u);
  EXPECT_GE(inst.graph.maxDegree(), 2u);
}

TEST(Csr, FamiliesAreSeedDeterministic) {
  const TreeInstance a = makeTree(Family::kRandomTree, 1000, 0, 11);
  const TreeInstance b = makeTree(Family::kRandomTree, 1000, 0, 11);
  const TreeInstance c = makeTree(Family::kRandomTree, 1000, 0, 12);
  EXPECT_EQ(a.parents, b.parents);
  EXPECT_NE(a.parents, c.parents);
}

TEST(Csr, FamilyNamesRoundTrip) {
  for (const Family family : allFamilies()) {
    const auto parsed = familyFromName(familyName(family));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, family);
  }
  EXPECT_FALSE(familyFromName("no-such-family").has_value());
}

}  // namespace
}  // namespace relb::local
