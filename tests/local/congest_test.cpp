// CONGEST accounting: the paper notes its LOCAL lower bounds carry over to
// CONGEST (Section 2.1); here the message meter certifies that the
// *upper-bound* algorithms also fit the CONGEST regime (O(log n)-bit
// messages).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <random>

#include "local/network.hpp"

namespace relb::local {
namespace {

long bitsOf(int value) {
  return value <= 0 ? 1 : std::bit_width(static_cast<unsigned>(value));
}

TEST(Congest, MeterTracksMaximum) {
  const Graph g = pathGraph(3);
  SyncNetwork<int> net(g);
  net.setMessageMeter([](const int& m) { return bitsOf(m); });
  net.step([](NodeId v, std::span<const int>, std::span<int> out) {
    for (auto& m : out) m = v == 1 ? 1000 : 1;
  });
  EXPECT_EQ(net.maxMessageBits(), 10);  // 1000 needs 10 bits
}

TEST(Congest, UnmeteredNetworkReportsZero) {
  const Graph g = pathGraph(2);
  SyncNetwork<int> net(g);
  net.step([](NodeId, std::span<const int>, std::span<int> out) {
    for (auto& m : out) m = 1 << 20;
  });
  EXPECT_EQ(net.maxMessageBits(), 0);
}

TEST(Congest, FloodingStaysLogarithmic) {
  // Distance flooding on a path: messages are distances < n, i.e.
  // O(log n) bits -- a CONGEST algorithm.
  const NodeId n = 64;
  const Graph g = pathGraph(n);
  SyncNetwork<int> net(g);
  net.setMessageMeter([](const int& m) { return bitsOf(m); });
  std::vector<int> dist(static_cast<std::size_t>(n), -1);
  dist[0] = 0;
  for (int round = 0; round < n; ++round) {
    net.step([&](NodeId v, std::span<const int> in, std::span<int> out) {
      for (int m : in) {
        if (m > 0 && (dist[static_cast<std::size_t>(v)] < 0 ||
                      m < dist[static_cast<std::size_t>(v)])) {
          dist[static_cast<std::size_t>(v)] = m;
        }
      }
      const int send = dist[static_cast<std::size_t>(v)] >= 0
                           ? dist[static_cast<std::size_t>(v)] + 1
                           : 0;
      for (auto& m : out) m = send;
    });
  }
  EXPECT_LE(net.maxMessageBits(),
            static_cast<long>(std::ceil(std::log2(n))) + 1);
}

}  // namespace
}  // namespace relb::local
