// The bit-identity contract (docs/simulator.md): for a fixed (family,
// nodes, maxDegree, seed), every kernel produces byte-identical per-node
// output at every thread width.  These tests compare full state vectors --
// not just checksums -- across widths {1, 2, 8}, and run under TSan in CI
// to certify the kernels' two-phase barrier discipline is race-free.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "local/families.hpp"
#include "local/kernels.hpp"
#include "local/sim.hpp"

namespace relb::local {
namespace {

constexpr int kWidths[] = {1, 2, 8};

TEST(SimParallel, LubyMisStateIsBitIdenticalAcrossWidths) {
  const TreeInstance inst = makeTree(Family::kRandomTree, 50000, 0, 21);
  const MisRun base = lubyMis(inst.graph, 21, kWidths[0]);
  for (std::size_t i = 1; i < std::size(kWidths); ++i) {
    const MisRun run = lubyMis(inst.graph, 21, kWidths[i]);
    EXPECT_EQ(run.rounds, base.rounds) << "width " << kWidths[i];
    EXPECT_EQ(run.misSize, base.misSize) << "width " << kWidths[i];
    EXPECT_EQ(run.state, base.state) << "width " << kWidths[i];
  }
}

TEST(SimParallel, ColorReductionIsBitIdenticalAcrossWidths) {
  const TreeInstance inst = makeTree(Family::kBoundedDegreeTree, 50000, 0, 22);
  const ColorRun base = treeColorReduce(inst.graph, inst.parents, kWidths[0]);
  for (std::size_t i = 1; i < std::size(kWidths); ++i) {
    const ColorRun run =
        treeColorReduce(inst.graph, inst.parents, kWidths[i]);
    EXPECT_EQ(run.rounds, base.rounds) << "width " << kWidths[i];
    EXPECT_EQ(run.numColors, base.numColors) << "width " << kWidths[i];
    EXPECT_EQ(run.colors, base.colors) << "width " << kWidths[i];
  }
}

TEST(SimParallel, DomsetReductionIsBitIdenticalAcrossWidths) {
  const TreeInstance inst = makeTree(Family::kCompleteTree, 50000, 0, 23);
  const MisRun mis = lubyMis(inst.graph, 23, 1);
  const DomsetRun base = domsetFromMis(inst.graph, mis.state, kWidths[0]);
  for (std::size_t i = 1; i < std::size(kWidths); ++i) {
    const DomsetRun run = domsetFromMis(inst.graph, mis.state, kWidths[i]);
    EXPECT_EQ(run.inSet, base.inSet) << "width " << kWidths[i];
    EXPECT_EQ(run.dominator, base.dominator) << "width " << kWidths[i];
  }
}

TEST(SimParallel, RunSimChecksumsAgreeAcrossWidthsForEveryAlgo) {
  for (const Algo algo :
       {Algo::kLubyMis, Algo::kColorReduction, Algo::kDomsetReduction}) {
    SimOptions options;
    options.family = Family::kRandomTree;
    options.nodes = 20000;
    options.algo = algo;
    options.seed = 5;
    options.numThreads = 1;
    const SimResult base = runSim(options);
    EXPECT_TRUE(base.verified) << algoName(algo);
    for (std::size_t i = 1; i < std::size(kWidths); ++i) {
      options.numThreads = kWidths[i];
      const SimResult run = runSim(options);
      EXPECT_EQ(run.stateChecksum, base.stateChecksum)
          << algoName(algo) << " width " << kWidths[i];
      EXPECT_EQ(run.rounds, base.rounds) << algoName(algo);
      EXPECT_EQ(run.solutionSize, base.solutionSize) << algoName(algo);
    }
  }
}

TEST(SimParallel, DifferentSeedsProduceDifferentMis) {
  const TreeInstance inst = makeTree(Family::kRandomTree, 20000, 0, 30);
  const MisRun a = lubyMis(inst.graph, 1, 2);
  const MisRun b = lubyMis(inst.graph, 2, 2);
  EXPECT_NE(a.state, b.state);
}

}  // namespace
}  // namespace relb::local
