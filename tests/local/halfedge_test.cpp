#include "local/halfedge.hpp"

#include <gtest/gtest.h>

#include "core/family.hpp"
#include "re/problem.hpp"

namespace relb::local {
namespace {

TEST(HalfEdgeLabeling, SetGetAndEdgeView) {
  Graph g(3);
  const EdgeId e0 = g.addEdge(0, 1);
  g.addEdge(1, 2);
  HalfEdgeLabeling l(g);
  l.set(0, 0, 2);
  l.set(1, 0, 1);
  EXPECT_EQ(l.at(0, 0), 2);
  EXPECT_EQ(l.atEdge(g, 0, e0), 2);
  EXPECT_EQ(l.atEdge(g, 1, e0), 1);
}

TEST(Checker, AcceptsValidMisLabeling) {
  // Path 0-1-2 with node 1 in the MIS, Delta = 2 at node 1.
  const Graph g = pathGraph(3);
  const auto mis = re::misProblem(2);
  HalfEdgeLabeling l(g);
  const auto m = mis.alphabet.at("M");
  const auto p = mis.alphabet.at("P");
  l.set(1, 0, m);
  l.set(1, 1, m);
  l.set(0, 0, p);
  l.set(2, 0, p);
  const auto result = checkLabeling(g, mis, l);
  EXPECT_TRUE(result.ok()) << (result.messages.empty()
                                   ? ""
                                   : result.messages.front());
}

TEST(Checker, RejectsAdjacentMisNodes) {
  const Graph g = pathGraph(2);
  const auto mis = re::misProblem(2);
  HalfEdgeLabeling l(g);
  const auto m = mis.alphabet.at("M");
  l.set(0, 0, m);
  l.set(1, 0, m);
  const auto result = checkLabeling(g, mis, l);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.edgeViolations, 1);
  EXPECT_EQ(result.nodeViolations, 0);  // degree-1 nodes skipped
}

TEST(Checker, NodeConstraintCheckedAtFullDegreeOnly) {
  const Graph g = starGraph(3);  // center has degree 3, leaves 1
  const auto mis = re::misProblem(3);
  HalfEdgeLabeling l(g);
  const auto m = mis.alphabet.at("M");
  const auto p = mis.alphabet.at("P");
  for (Port q = 0; q < 3; ++q) l.set(0, q, m);
  for (NodeId leaf = 1; leaf <= 3; ++leaf) l.set(leaf, 0, p);
  EXPECT_TRUE(checkLabeling(g, mis, l).ok());
  // Break the center's configuration: M M P is not allowed at degree 3.
  l.set(0, 2, p);
  const auto result = checkLabeling(g, mis, l);
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.nodeViolations, 1);
}

TEST(Checker, AllNodesModeChecksLeavesToo) {
  const Graph g = pathGraph(2);
  const auto mis = re::misProblem(2);
  HalfEdgeLabeling l(g);
  l.set(0, 0, mis.alphabet.at("M"));
  l.set(1, 0, mis.alphabet.at("P"));
  CheckOptions opts;
  opts.fullDegreeNodesOnly = false;
  // Degree-1 node labeled M: word "M" is not M^2, so it violates.
  const auto result = checkLabeling(g, mis, l, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.nodeViolations, 2);
}

TEST(Checker, OutOfRangeLabelReported) {
  const Graph g = pathGraph(2);
  const auto mis = re::misProblem(2);
  HalfEdgeLabeling l(g);
  l.set(0, 0, 7);  // alphabet has 3 labels
  l.set(1, 0, mis.alphabet.at("O"));
  const auto result = checkLabeling(g, mis, l);
  EXPECT_FALSE(result.ok());
}

TEST(Checker, ViolationMessagesCapped) {
  const Graph g = completeRegularTree(3, 2);
  const auto pi = core::familyProblem(3, 3, 0);
  HalfEdgeLabeling l(g);
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    for (Port p = 0; p < g.degree(v); ++p) l.set(v, p, core::kM);
  }
  CheckOptions opts;
  opts.maxViolations = 3;
  const auto result = checkLabeling(g, pi, l, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_LE(result.messages.size(), 3u);
  EXPECT_GT(result.edgeViolations, 3);
}

}  // namespace
}  // namespace relb::local
