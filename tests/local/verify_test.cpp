#include "local/verify.hpp"

#include <gtest/gtest.h>

#include "re/types.hpp"

namespace relb::local {
namespace {

TEST(Verify, IndependentAndDominating) {
  const Graph g = pathGraph(4);  // 0-1-2-3
  std::vector<bool> s{false, true, false, true};
  EXPECT_TRUE(isIndependentSet(g, s));
  EXPECT_TRUE(isDominatingSet(g, s));
  EXPECT_TRUE(isMaximalIndependentSet(g, s));

  std::vector<bool> adjacent{true, true, false, false};
  EXPECT_FALSE(isIndependentSet(g, adjacent));

  std::vector<bool> sparse{true, false, false, false};
  EXPECT_TRUE(isIndependentSet(g, sparse));
  EXPECT_FALSE(isDominatingSet(g, sparse));  // node 2,3 undominated
  EXPECT_FALSE(isMaximalIndependentSet(g, sparse));
}

TEST(Verify, EmptySetOnNonemptyGraphNotDominating) {
  const Graph g = pathGraph(3);
  std::vector<bool> none(3, false);
  EXPECT_TRUE(isIndependentSet(g, none));
  EXPECT_FALSE(isDominatingSet(g, none));
}

TEST(Verify, InducedDegreeAndKDegreeDs) {
  const Graph g = starGraph(4);  // center 0
  std::vector<bool> all(5, true);
  EXPECT_EQ(inducedMaxDegree(g, all), 4);
  EXPECT_TRUE(isKDegreeDominatingSet(g, all, 4));
  EXPECT_FALSE(isKDegreeDominatingSet(g, all, 3));

  std::vector<bool> centerOnly{true, false, false, false, false};
  EXPECT_EQ(inducedMaxDegree(g, centerOnly), 0);
  EXPECT_TRUE(isKDegreeDominatingSet(g, centerOnly, 0));
}

TEST(Verify, OutdegreeOrientationRules) {
  // Path 0-1-2 with all nodes in S, edges oriented towards node 0.
  const Graph g = pathGraph(3);
  std::vector<bool> all(3, true);
  EdgeOrientation toLeft{-1, -1};  // edge(0,1) -> 0, edge(1,2) -> 1
  EXPECT_EQ(inducedMaxOutdegree(g, all, toLeft), 1);
  EXPECT_TRUE(isKOutdegreeDominatingSet(g, all, toLeft, 1));
  EXPECT_FALSE(isKOutdegreeDominatingSet(g, all, toLeft, 0));

  // Both edges outgoing from node 1: outdegree 2.
  EdgeOrientation fromMiddle{-1, +1};
  EXPECT_EQ(inducedMaxOutdegree(g, all, fromMiddle), 2);
  EXPECT_FALSE(isKOutdegreeDominatingSet(g, all, fromMiddle, 1));
}

TEST(Verify, UnorientedInducedEdgeRejected) {
  const Graph g = pathGraph(2);
  std::vector<bool> all(2, true);
  EdgeOrientation none{0};
  EXPECT_EQ(inducedMaxOutdegree(g, all, none), -1);
  EXPECT_FALSE(isKOutdegreeDominatingSet(g, all, none, 5));
}

TEST(Verify, OrientationOutsideSetIgnored) {
  const Graph g = pathGraph(3);
  std::vector<bool> s{true, false, true};
  EdgeOrientation none{0, 0};  // no G[S] edges exist
  EXPECT_EQ(inducedMaxOutdegree(g, s, none), 0);
  EXPECT_TRUE(isKOutdegreeDominatingSet(g, s, none, 0));
}

TEST(Verify, KZeroOutdegreeEqualsMis) {
  const Graph g = broomGraph(3, 2);
  // Independent dominating set: MIS <=> 0-outdegree DS (no G[S] edges).
  std::vector<bool> mis(static_cast<std::size_t>(g.numNodes()), false);
  mis[0] = true;
  mis[2] = true;  // path end (degree 3 hub at node 2)
  mis[3] = false;
  // Greedy: nodes 0, 2 dominate 1; hub 2 dominates bristles 3, 4.
  EdgeOrientation none(static_cast<std::size_t>(g.numEdges()), 0);
  EXPECT_EQ(isMaximalIndependentSet(g, mis),
            isKOutdegreeDominatingSet(g, mis, none, 0));
}

TEST(Verify, SizeMismatchThrows) {
  const Graph g = pathGraph(3);
  std::vector<bool> tooShort(2, true);
  EXPECT_THROW((void)isIndependentSet(g, tooShort), re::Error);
  std::vector<bool> all(3, true);
  EdgeOrientation tooFew{1};
  EXPECT_THROW((void)inducedMaxOutdegree(g, all, tooFew), re::Error);
}

}  // namespace
}  // namespace relb::local
