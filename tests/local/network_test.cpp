#include "local/network.hpp"

#include <gtest/gtest.h>

namespace relb::local {
namespace {

TEST(SyncNetwork, DeliversAlongPorts) {
  // Path 0-1-2; each node sends its id on every port; after one round each
  // node's inbox holds the neighbor ids in port order.
  const Graph g = pathGraph(3);
  SyncNetwork<int> net(g);
  net.step([](NodeId v, std::span<const int>, std::span<int> out) {
    for (auto& m : out) m = static_cast<int>(v);
  });
  std::vector<std::vector<int>> received(3);
  net.step([&](NodeId v, std::span<const int> in, std::span<int> out) {
    received[static_cast<std::size_t>(v)].assign(in.begin(), in.end());
    for (auto& m : out) m = 0;
  });
  EXPECT_EQ(received[0], std::vector<int>{1});
  EXPECT_EQ(received[1], (std::vector<int>{0, 2}));
  EXPECT_EQ(received[2], std::vector<int>{1});
  EXPECT_EQ(net.rounds(), 2);
}

TEST(SyncNetwork, FirstRoundInboxIsDefault) {
  const Graph g = pathGraph(2);
  SyncNetwork<int> net(g);
  bool sawDefault = true;
  net.step([&](NodeId, std::span<const int> in, std::span<int> out) {
    for (int m : in) {
      if (m != 0) sawDefault = false;
    }
    for (auto& m : out) m = 7;
  });
  EXPECT_TRUE(sawDefault);
}

TEST(SyncNetwork, FloodingComputesEccentricity) {
  // BFS-style flooding on a path: the min-distance-to-node-0 estimate
  // stabilizes after exactly the eccentricity of node 0.
  const NodeId n = 6;
  const Graph g = pathGraph(n);
  SyncNetwork<int> net(g);  // message: distance-to-0 + 1 (0 = unknown)
  std::vector<int> dist(static_cast<std::size_t>(n), -1);
  dist[0] = 0;
  for (int round = 0; round < n; ++round) {
    net.step([&](NodeId v, std::span<const int> in, std::span<int> out) {
      for (int m : in) {
        if (m > 0 && (dist[static_cast<std::size_t>(v)] < 0 ||
                      m - 1 < dist[static_cast<std::size_t>(v)])) {
          dist[static_cast<std::size_t>(v)] = m - 1;
        }
      }
      const int send =
          dist[static_cast<std::size_t>(v)] >= 0
              ? dist[static_cast<std::size_t>(v)] + 2  // my dist + 1, +1 enc
              : 0;
      for (auto& m : out) m = send == 0 ? 0 : send - 1 + 1;
    });
  }
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
  }
}

TEST(SyncNetwork, MessagesCrossSimultaneously) {
  // Two nodes exchange values in the same round (synchronous semantics).
  const Graph g = pathGraph(2);
  SyncNetwork<int> net(g);
  net.step([](NodeId v, std::span<const int>, std::span<int> out) {
    out[0] = v == 0 ? 100 : 200;
  });
  std::vector<int> got(2, 0);
  net.step([&](NodeId v, std::span<const int> in, std::span<int> out) {
    got[static_cast<std::size_t>(v)] = in[0];
    out[0] = 0;
  });
  EXPECT_EQ(got[0], 200);
  EXPECT_EQ(got[1], 100);
}

}  // namespace
}  // namespace relb::local
