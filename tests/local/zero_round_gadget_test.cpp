// Monte-Carlo link between the combinatorial zero-round analysis (re/) and
// actual executions on the Lemma 12/15 gadget graph: random 0-round
// strategies, run identically at every node of the symmetric-port instance,
// must violate the family constraints somewhere -- and the generic checker
// catches it.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/family.hpp"
#include "local/halfedge.hpp"
#include "local/verify.hpp"
#include "re/zero_round.hpp"

namespace relb::local {
namespace {

TEST(ZeroRoundGadget, EveryDeterministicStrategyFailsOnTheFamily) {
  // Delta = 4, Pi_4(2,1): enumerate a sample of pure strategies (word +
  // port assignment) and run each as the common output of all nodes.
  const int delta = 4;
  const auto pi = core::familyProblem(delta, 2, 1);
  const Graph g = symmetricPortGadget(delta);
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> labelDist(0, pi.alphabet.size() - 1);
  int validStrategies = 0;
  int testedWords = 0;
  for (int trial = 0; trial < 500; ++trial) {
    // Random port assignment; keep it only if the multiset is an allowed
    // node configuration.
    std::vector<re::Label> assignment(static_cast<std::size_t>(delta));
    re::Word word(static_cast<std::size_t>(pi.alphabet.size()), 0);
    for (auto& l : assignment) {
      l = static_cast<re::Label>(labelDist(rng));
      ++word[l];
    }
    if (!pi.node.containsWord(word)) continue;
    ++testedWords;
    HalfEdgeLabeling labeling(g);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      for (Port p = 0; p < g.degree(v); ++p) {
        labeling.set(v, p, assignment[static_cast<std::size_t>(p)]);
      }
    }
    if (checkLabeling(g, pi, labeling).ok()) ++validStrategies;
  }
  EXPECT_GT(testedWords, 0);
  EXPECT_EQ(validStrategies, 0) << "Lemma 12 violated by some strategy";
}

TEST(ZeroRoundGadget, TrivialProblemSucceedsOnTheGadget) {
  // Sanity that the harness can also succeed: the all-X relaxation
  // Pi_4(0, 1) has the 0-round solution X^4.
  const int delta = 4;
  const auto pi = core::familyProblem(delta, 0, 1);
  const auto witness = re::zeroRoundSymmetricWitness(pi);
  ASSERT_TRUE(witness.has_value());
  const Graph g = symmetricPortGadget(delta);
  HalfEdgeLabeling labeling(g);
  // Spread the witness word over the ports (any assignment works since all
  // witness labels are self-compatible).
  std::vector<re::Label> assignment;
  for (std::size_t l = 0; l < witness->size(); ++l) {
    for (re::Count i = 0; i < (*witness)[l]; ++i) {
      assignment.push_back(static_cast<re::Label>(l));
    }
  }
  ASSERT_EQ(assignment.size(), static_cast<std::size_t>(delta));
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    for (Port p = 0; p < g.degree(v); ++p) {
      labeling.set(v, p, assignment[static_cast<std::size_t>(p)]);
    }
  }
  EXPECT_TRUE(checkLabeling(g, pi, labeling).ok());
}

TEST(ZeroRoundGadget, RandomizedUniformStrategyFailureRate) {
  // Independent uniform configuration choices at every node: the empirical
  // failure probability must dominate the analytic single-edge bound of
  // Lemma 15.
  const int delta = 3;
  const auto pi = core::familyProblem(delta, 2, 1);
  const Graph g = symmetricPortGadget(delta);
  std::mt19937 rng(5);
  const auto words = pi.node.enumerateWords(pi.alphabet.size());
  std::uniform_int_distribution<std::size_t> wordDist(0, words.size() - 1);
  int failures = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    HalfEdgeLabeling labeling(g);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      const re::Word& w = words[wordDist(rng)];
      std::vector<re::Label> assignment;
      for (std::size_t l = 0; l < w.size(); ++l) {
        for (re::Count i = 0; i < w[l]; ++i) {
          assignment.push_back(static_cast<re::Label>(l));
        }
      }
      std::shuffle(assignment.begin(), assignment.end(), rng);
      for (Port p = 0; p < g.degree(v); ++p) {
        labeling.set(v, p, assignment[static_cast<std::size_t>(p)]);
      }
    }
    if (!checkLabeling(g, pi, labeling).ok()) ++failures;
  }
  const double empirical = static_cast<double>(failures) / trials;
  EXPECT_GE(empirical, re::randomizedFailureLowerBound(pi));
  // On a whole gadget (9 edges) the uniform strategy fails essentially
  // always.
  EXPECT_GT(empirical, 0.9);
}

TEST(OrientInduced, TurnsKDegreeIntoKOutdegree) {
  // The remark after Corollary 2: orienting arbitrarily converts a k-degree
  // dominating set into a k-outdegree dominating set.
  std::mt19937 rng(3);
  const Graph g = randomTree(60, 5, rng);
  std::vector<bool> all(static_cast<std::size_t>(g.numNodes()), true);
  const int k = inducedMaxDegree(g, all);
  ASSERT_TRUE(isKDegreeDominatingSet(g, all, k));
  const auto orientation = orientInduced(g, all);
  EXPECT_TRUE(isKOutdegreeDominatingSet(g, all, orientation, k));
  // The outdegree bound can even beat the degree bound, but never exceeds
  // it.
  EXPECT_LE(inducedMaxOutdegree(g, all, orientation), k);
}

}  // namespace
}  // namespace relb::local
