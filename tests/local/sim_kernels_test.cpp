// Kernel-vs-oracle tests: every frontier kernel's output is re-checked by
// BOTH verifier tiers -- the parallel CSR verifiers it ships with and the
// legacy gadget-sized local::verify checkers, after converting the instance
// back to the pointer-per-node Graph.  Agreement of two independently
// written checkers is the oracle.
#include "local/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "local/families.hpp"
#include "local/graph.hpp"
#include "local/verify.hpp"

namespace relb::local {
namespace {

Graph legacyFromParents(const std::vector<Vertex>& parents) {
  Graph g(static_cast<NodeId>(parents.size()));
  for (std::size_t v = 1; v < parents.size(); ++v) {
    g.addEdge(static_cast<NodeId>(parents[v]), static_cast<NodeId>(v));
  }
  return g;
}

std::vector<bool> toBoolSet(const std::vector<MisFlag>& state) {
  std::vector<bool> out(state.size(), false);
  for (std::size_t v = 0; v < state.size(); ++v) {
    out[v] = state[v] == MisFlag::kIn;
  }
  return out;
}

std::vector<bool> toBoolSet(const std::vector<std::uint8_t>& inSet) {
  std::vector<bool> out(inSet.size(), false);
  for (std::size_t v = 0; v < inSet.size(); ++v) out[v] = inSet[v] != 0;
  return out;
}

TEST(SimKernels, LubyMisAcceptedByBothVerifierTiers) {
  for (const Family family : allFamilies()) {
    for (const std::uint64_t seed : {1ull, 2ull, 77ull}) {
      const TreeInstance inst = makeTree(family, 400, 0, seed);
      const MisRun run = lubyMis(inst.graph, seed, 1);
      EXPECT_TRUE(csrIsMaximalIndependentSet(inst.graph, run.state, 1))
          << familyName(family) << " seed " << seed;
      const Graph legacy = legacyFromParents(inst.parents);
      EXPECT_TRUE(isMaximalIndependentSet(legacy, toBoolSet(run.state)))
          << familyName(family) << " seed " << seed;
      EXPECT_GT(run.rounds, 0);
      EXPECT_GT(run.misSize, 0u);
    }
  }
}

TEST(SimKernels, ColorReductionYieldsProper3ColoringOnEveryFamily) {
  for (const Family family : allFamilies()) {
    const TreeInstance inst = makeTree(family, 400, 0, 5);
    const ColorRun run = treeColorReduce(inst.graph, inst.parents, 1);
    EXPECT_LE(run.numColors, 3u) << familyName(family);
    EXPECT_TRUE(csrIsProperColoring(inst.graph, run.colors, 3, 1))
        << familyName(family);
    // Independent oracle: walk the legacy edge list.
    const Graph legacy = legacyFromParents(inst.parents);
    for (EdgeId e = 0; e < legacy.numEdges(); ++e) {
      const auto [u, v] = legacy.endpoints(e);
      EXPECT_NE(run.colors[static_cast<std::size_t>(u)],
                run.colors[static_cast<std::size_t>(v)]);
    }
    EXPECT_GT(run.rounds, 0);
  }
}

TEST(SimKernels, DomsetReductionIsAZeroOutdegreeDominatingSet) {
  for (const Family family : allFamilies()) {
    const TreeInstance inst = makeTree(family, 400, 0, 3);
    const MisRun mis = lubyMis(inst.graph, 3, 1);
    const DomsetRun run = domsetFromMis(inst.graph, mis.state, 1);
    EXPECT_EQ(run.rounds, 1);
    EXPECT_EQ(run.setSize, mis.misSize);
    EXPECT_TRUE(csrIsZeroOutdegreeDominatingSet(inst.graph, run.inSet,
                                                run.dominator, 1))
        << familyName(family);
    // Legacy oracle: the set dominates and G[S] admits an orientation of
    // outdegree 0 (Section 1.1's reduction target with k = 0).
    const Graph legacy = legacyFromParents(inst.parents);
    const std::vector<bool> inSet = toBoolSet(run.inSet);
    const EdgeOrientation orientation = orientInduced(legacy, inSet);
    EXPECT_TRUE(isKOutdegreeDominatingSet(legacy, inSet, orientation, 0))
        << familyName(family);
  }
}

TEST(SimKernels, CorruptedMisStateRejectedByBothTiers) {
  const TreeInstance inst = makeTree(Family::kRandomTree, 200, 0, 9);
  const Graph legacy = legacyFromParents(inst.parents);
  MisRun run = lubyMis(inst.graph, 9, 1);

  // Force an edge inside the set: some member's parent or child joins too.
  std::vector<MisFlag> adjacent = run.state;
  for (Vertex v = 1; v < 200; ++v) {
    if (adjacent[v] == MisFlag::kIn) {
      adjacent[inst.parents[v]] = MisFlag::kIn;
      break;
    }
  }
  EXPECT_FALSE(csrIsIndependentSet(inst.graph, adjacent, 1));
  EXPECT_FALSE(csrIsMaximalIndependentSet(inst.graph, adjacent, 1));
  EXPECT_FALSE(isMaximalIndependentSet(legacy, toBoolSet(adjacent)));

  // Drop one member: its (now uncovered) neighborhood breaks maximality.
  std::vector<MisFlag> dropped = run.state;
  for (Vertex v = 0; v < 200; ++v) {
    if (dropped[v] == MisFlag::kIn) {
      dropped[v] = MisFlag::kOut;
      break;
    }
  }
  EXPECT_FALSE(csrIsMaximalIndependentSet(inst.graph, dropped, 1));
  EXPECT_FALSE(isMaximalIndependentSet(legacy, toBoolSet(dropped)));

  // Undecided slots are never a valid final state.
  std::vector<MisFlag> undecided = run.state;
  undecided[0] = MisFlag::kUndecided;
  EXPECT_FALSE(csrIsIndependentSet(inst.graph, undecided, 1));
}

TEST(SimKernels, CorruptedColoringRejected) {
  const TreeInstance inst = makeTree(Family::kBoundedDegreeTree, 200, 0, 9);
  ColorRun run = treeColorReduce(inst.graph, inst.parents, 1);
  run.colors[1] = run.colors[inst.parents[1]];  // monochromatic edge
  EXPECT_FALSE(csrIsProperColoring(inst.graph, run.colors, 3, 1));
  run.colors[1] = 7;  // out of palette
  EXPECT_FALSE(csrIsProperColoring(inst.graph, run.colors, 3, 1));
}

TEST(SimKernels, CorruptedDomsetCertificateRejected) {
  const TreeInstance inst = makeTree(Family::kRandomTree, 200, 0, 4);
  const MisRun mis = lubyMis(inst.graph, 4, 1);
  const DomsetRun good = domsetFromMis(inst.graph, mis.state, 1);

  // A non-member pointing at a non-adjacent node fails the certificate.
  DomsetRun bad = good;
  for (Vertex v = 0; v < 200; ++v) {
    if (bad.inSet[v] == 0) {
      bad.dominator[v] = bad.dominator[v] == 0 ? 1 : 0;
      bool adjacent = false;
      for (const Vertex w : inst.graph.neighbors(v)) {
        if (w == bad.dominator[v]) adjacent = true;
      }
      if (!adjacent) break;
      bad.dominator[v] = good.dominator[v];  // try the next vertex
    }
  }
  EXPECT_FALSE(csrIsZeroOutdegreeDominatingSet(inst.graph, bad.inSet,
                                               bad.dominator, 1));

  // A member whose dominator is not itself fails too.
  DomsetRun selfish = good;
  for (Vertex v = 0; v < 200; ++v) {
    if (selfish.inSet[v] != 0) {
      selfish.dominator[v] = kInvalidVertex;
      break;
    }
  }
  EXPECT_FALSE(csrIsZeroOutdegreeDominatingSet(inst.graph, selfish.inSet,
                                               selfish.dominator, 1));
}

TEST(SimKernels, LubyRoundShrinksTheFrontierMonotonically) {
  const TreeInstance inst = makeTree(Family::kRandomTree, 1000, 0, 6);
  std::vector<MisFlag> state(1000, MisFlag::kUndecided);
  std::vector<std::uint8_t> inMark(1000, 0);
  Frontier frontier = fullFrontier(1000);
  int round = 0;
  while (!frontier.empty()) {
    const std::size_t before = frontier.size();
    frontier = lubyMisRound(inst.graph, frontier, state, inMark, 6, round, 1);
    EXPECT_LT(frontier.size(), before);  // at least one local max decides
    // Survivors stay sorted -- the block-merge invariant.
    EXPECT_TRUE(std::is_sorted(frontier.begin(), frontier.end()));
    ++round;
    ASSERT_LT(round, 64) << "Luby failed to converge";
  }
  EXPECT_TRUE(csrIsMaximalIndependentSet(inst.graph, state, 1));
}

}  // namespace
}  // namespace relb::local
