// Reproducible randomness for every seeded test suite.
//
// CI flakes in randomized tests are only actionable if the failing seed is
// (a) printed and (b) settable from outside the binary.  Every suite that
// draws from an RNG derives its seed through envSeedOffset(): by default the
// offset is 0 and the suite runs its historical fixed seeds; setting
// RELB_TEST_SEED=<n> shifts every case's seed by n (the properties CI job
// runs three distinct offsets).  TraceSeed drops a gtest SCOPED_TRACE so any
// failure names the exact environment to reproduce it with.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace relb::testsupport {

/// The value of RELB_TEST_SEED, or `fallback` (default 0) when unset/empty.
/// Malformed values fail the test rather than being silently ignored.
inline unsigned envSeedOffset(unsigned fallback = 0) {
  const char* raw = std::getenv("RELB_TEST_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == nullptr || *end != '\0') {
    ADD_FAILURE() << "RELB_TEST_SEED is not a number: '" << raw << "'";
    return fallback;
  }
  return static_cast<unsigned>(value);
}

/// The effective seed for a case whose historical fixed seed is `base`.
inline unsigned effectiveSeed(unsigned base) { return base + envSeedOffset(); }

/// RAII SCOPED_TRACE naming the seed; any assertion failing in its scope
/// prints the reproduction recipe.
class TraceSeed {
 public:
  explicit TraceSeed(unsigned seed)
      : trace_(__FILE__, __LINE__,
               "effective RNG seed " + std::to_string(seed) +
                   " (RELB_TEST_SEED offset " +
                   std::to_string(envSeedOffset()) +
                   "; see docs/testing.md)") {}

 private:
  ::testing::ScopedTrace trace_;
};

}  // namespace relb::testsupport
