#include "algos/coloring.hpp"

#include <gtest/gtest.h>

#include <random>

namespace relb::algos {
namespace {

TEST(NextPrime, SmallValues) {
  EXPECT_EQ(nextPrime(0), 2);
  EXPECT_EQ(nextPrime(2), 2);
  EXPECT_EQ(nextPrime(3), 3);
  EXPECT_EQ(nextPrime(4), 5);
  EXPECT_EQ(nextPrime(14), 17);
  EXPECT_EQ(nextPrime(1000), 1009);
}

TEST(LinialStep, ReducesIdsOnTree) {
  const auto g = local::completeRegularTree(3, 6);  // 190 nodes
  std::vector<int> ids(static_cast<std::size_t>(g.numNodes()));
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  const auto next = linialStep(g, ids, g.numNodes());
  EXPECT_TRUE(isProperColoring(g, next.color, next.numColors));
  EXPECT_LT(next.numColors, g.numNodes());
  EXPECT_EQ(next.rounds, 1);
}

TEST(LinialReduction, ReachesPolyDeltaColorsFast) {
  for (int delta : {3, 4, 6}) {
    const auto g = local::completeRegularTree(delta, 4);
    const auto result = linialColorReduction(g);
    EXPECT_TRUE(isProperColoring(g, result.color, result.numColors));
    // O(Delta^2) colors: q <= nextPrime(~2 Delta + small), so q^2 bounded.
    EXPECT_LE(result.numColors, (4 * delta + 8) * (4 * delta + 8));
    // log*-ish round count: generously small.
    EXPECT_LE(result.rounds, 8) << "delta=" << delta;
  }
}

TEST(LinialReduction, RoundsGrowVerySlowlyWithN) {
  std::mt19937 rng(5);
  const auto small = local::randomTree(20, 4, rng);
  const auto large = local::randomTree(4000, 4, rng);
  const auto rSmall = linialColorReduction(small);
  const auto rLarge = linialColorReduction(large);
  EXPECT_TRUE(isProperColoring(large, rLarge.color, rLarge.numColors));
  // 200x more nodes costs at most ~2 extra reduction rounds (log* growth).
  EXPECT_LE(rLarge.rounds, rSmall.rounds + 2);
}

TEST(ReduceToDeltaPlusOne, ProperAndTight) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = local::randomTree(100, 5, rng);
    const auto result = properColoring(g);
    EXPECT_TRUE(isProperColoring(g, result.color, g.maxDegree() + 1));
    EXPECT_EQ(result.numColors, g.maxDegree() + 1);
  }
}

TEST(ProperColoring, WorksOnPathAndStar) {
  const auto path = local::pathGraph(50);
  const auto pr = properColoring(path);
  EXPECT_TRUE(isProperColoring(path, pr.color, 3));

  const auto star = local::starGraph(9);
  const auto sr = properColoring(star);
  EXPECT_TRUE(isProperColoring(star, sr.color, 10));
}

TEST(ProperColoring, SingleNode) {
  const local::Graph g(1);
  const auto result = properColoring(g);
  EXPECT_EQ(result.numColors, 1);
  EXPECT_EQ(result.color[0], 0);
}

TEST(IsProperColoring, DetectsViolations) {
  const auto g = local::pathGraph(3);
  EXPECT_FALSE(isProperColoring(g, {0, 0, 1}, 2));
  EXPECT_FALSE(isProperColoring(g, {0, 1}, 2));     // size mismatch
  EXPECT_FALSE(isProperColoring(g, {0, 2, 0}, 2));  // out of range
  EXPECT_TRUE(isProperColoring(g, {0, 1, 0}, 2));
}

}  // namespace
}  // namespace relb::algos
