#include "algos/defective.hpp"

#include <gtest/gtest.h>

#include <random>

namespace relb::algos {
namespace {

struct DefCase {
  int n;
  int maxDegree;
  int k;
  unsigned seed;
};

class DefectiveSweep : public ::testing::TestWithParam<DefCase> {};

TEST_P(DefectiveSweep, DefectAndColorBoundsHold) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed);
  const auto g = local::randomTree(param.n, param.maxDegree, rng);
  const auto proper = properColoring(g);
  ASSERT_TRUE(isProperColoring(g, proper.color, proper.numColors));

  const auto def = kDefectiveColoring(g, proper, param.k);
  EXPECT_LE(defectOf(g, def.color), param.k);
  EXPECT_EQ(def.rounds, 1);
  // O((Delta/k)^2 + Delta) classes.
  const int delta = g.maxDegree();
  const int budget = delta / (param.k + 1) + 1;
  const int q = static_cast<int>(
      nextPrime(std::max<long long>({2, budget,
                                     static_cast<long long>(
                                         std::ceil(std::sqrt(delta + 1.0)))})));
  EXPECT_LE(def.numColors, (q + 30) * (q + 30));
}

TEST_P(DefectiveSweep, ArbdefectBoundsHold) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed + 1);
  const auto g = local::randomTree(param.n, param.maxDegree, rng);
  const auto proper = properColoring(g);
  const auto arb = kArbdefectiveColoring(g, proper, param.k);
  const int out = arbdefectOf(g, arb.color, arb.orientation);
  ASSERT_GE(out, 0) << "some intra-class edge unoriented";
  EXPECT_LE(out, param.k);
  // ceil((Delta+1)/(k+1)) classes.
  EXPECT_EQ(arb.numColors,
            (g.maxDegree() + 1 + param.k) / (param.k + 1));
  EXPECT_EQ(arb.rounds, proper.numColors);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DefectiveSweep,
    ::testing::Values(DefCase{50, 4, 1, 1}, DefCase{100, 5, 1, 2},
                      DefCase{100, 5, 2, 3}, DefCase{200, 8, 2, 4},
                      DefCase{200, 8, 3, 5}, DefCase{300, 10, 4, 6},
                      DefCase{300, 10, 1, 7}, DefCase{500, 12, 5, 8}),
    [](const ::testing::TestParamInfo<DefCase>& info) {
      return "n" + std::to_string(info.param.n) + "d" +
             std::to_string(info.param.maxDegree) + "k" +
             std::to_string(info.param.k) + "s" +
             std::to_string(info.param.seed);
    });

TEST(Defective, ZeroDefectIsProper) {
  std::mt19937 rng(10);
  const auto g = local::randomTree(80, 4, rng);
  const auto proper = properColoring(g);
  const auto def = kDefectiveColoring(g, proper, 0);
  EXPECT_EQ(defectOf(g, def.color), 0);
  EXPECT_TRUE(isProperColoring(g, def.color, def.numColors));
}

TEST(Defective, LargerKFewerColors) {
  std::mt19937 rng(20);
  const auto g = local::randomTree(400, 12, rng);
  const auto proper = properColoring(g);
  const auto k1 = kDefectiveColoring(g, proper, 1);
  const auto k4 = kDefectiveColoring(g, proper, 4);
  EXPECT_LE(k4.numColors, k1.numColors);
}

TEST(Arbdefective, FewerBinsThanDegreePlusOne) {
  std::mt19937 rng(30);
  const auto g = local::randomTree(200, 9, rng);
  const auto proper = properColoring(g);
  const auto arb = kArbdefectiveColoring(g, proper, 3);
  EXPECT_LT(arb.numColors, g.maxDegree() + 1);
}

TEST(Defective, DefectOfHelpers) {
  // Triangle-free sanity: on a star, all-leaves same color has defect 0 at
  // leaves but the center counts its same-colored neighbors.
  const auto g = local::starGraph(4);
  std::vector<int> sameAsCenter{0, 0, 1, 1, 1};
  EXPECT_EQ(defectOf(g, sameAsCenter), 1);  // center matches leaf 1
  local::EdgeOrientation o(4, 0);
  // Intra-class edge 0-1 unoriented -> -1 sentinel.
  EXPECT_EQ(arbdefectOf(g, sameAsCenter, o), -1);
  o[0] = 1;
  EXPECT_EQ(arbdefectOf(g, sameAsCenter, o), 1);
}

TEST(Defective, RejectsNegativeK) {
  const auto g = local::pathGraph(3);
  const auto proper = properColoring(g);
  EXPECT_THROW(kDefectiveColoring(g, proper, -1), re::Error);
  EXPECT_THROW(kArbdefectiveColoring(g, proper, -1), re::Error);
}

}  // namespace
}  // namespace relb::algos
