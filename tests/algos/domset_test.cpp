#include "algos/domset.hpp"

#include <gtest/gtest.h>

#include <random>

namespace relb::algos {
namespace {

struct DsCase {
  int n;
  int maxDegree;
  int k;
  unsigned seed;
};

class DomSetSweep : public ::testing::TestWithParam<DsCase> {};

TEST_P(DomSetSweep, OutdegreeVariantValid) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed);
  const auto g = local::randomTree(param.n, param.maxDegree, rng);
  const auto result = kOutdegreeDominatingSet(g, param.k);
  EXPECT_TRUE(local::isKOutdegreeDominatingSet(g, result.inSet,
                                               result.orientation, param.k));
}

TEST_P(DomSetSweep, DegreeVariantValid) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed + 10);
  const auto g = local::randomTree(param.n, param.maxDegree, rng);
  const auto result = kDegreeDominatingSet(g, param.k);
  EXPECT_TRUE(local::isKDegreeDominatingSet(g, result.inSet, param.k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DomSetSweep,
    ::testing::Values(DsCase{50, 4, 0, 1}, DsCase{100, 5, 1, 2},
                      DsCase{150, 6, 2, 3}, DsCase{200, 8, 3, 4},
                      DsCase{300, 10, 4, 5}, DsCase{400, 12, 6, 6},
                      DsCase{500, 14, 2, 7}, DsCase{250, 9, 8, 8}),
    [](const ::testing::TestParamInfo<DsCase>& info) {
      return "n" + std::to_string(info.param.n) + "d" +
             std::to_string(info.param.maxDegree) + "k" +
             std::to_string(info.param.k) + "s" +
             std::to_string(info.param.seed);
    });

TEST(DomSet, MisFromColoringIsMis) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = local::randomTree(120, 6, rng);
    const auto result = misFromColoring(g);
    EXPECT_TRUE(local::isMaximalIndependentSet(g, result.inSet));
  }
}

TEST(DomSet, KZeroMatchesMisSemantics) {
  std::mt19937 rng(4);
  const auto g = local::randomTree(80, 5, rng);
  const auto result = kOutdegreeDominatingSet(g, 0);
  EXPECT_TRUE(local::isMaximalIndependentSet(g, result.inSet));
  EXPECT_TRUE(
      local::isKOutdegreeDominatingSet(g, result.inSet, result.orientation, 0));
}

TEST(DomSet, SweepRoundsShrinkWithK) {
  // The k-dependence of the paper's upper bound: the sweep stage costs one
  // round per (arb)defective class, and larger k means fewer classes.
  std::mt19937 rng(8);
  const auto g = local::randomTree(600, 16, rng);
  const auto k1 = kOutdegreeDominatingSet(g, 1);
  const auto k7 = kOutdegreeDominatingSet(g, 7);
  EXPECT_LT(k7.roundsSweep, k1.roundsSweep);

  const auto d1 = kDegreeDominatingSet(g, 1);
  const auto d7 = kDegreeDominatingSet(g, 7);
  EXPECT_LT(d7.roundsSweep, d1.roundsSweep);
}

TEST(DomSet, WorksOnPathologicalTrees) {
  for (const auto& g : {local::starGraph(40), local::broomGraph(15, 25),
                        local::pathGraph(100)}) {
    for (int k : {0, 1, 3}) {
      const auto result = kOutdegreeDominatingSet(g, k);
      EXPECT_TRUE(local::isKOutdegreeDominatingSet(g, result.inSet,
                                                   result.orientation, k));
    }
  }
}

TEST(DomSet, GreedyBaselines) {
  std::mt19937 rng(77);
  const auto g = local::randomTree(200, 7, rng);
  const auto mis = greedyMis(g);
  EXPECT_TRUE(local::isMaximalIndependentSet(g, mis));
  const auto ds = greedyDominatingSet(g);
  EXPECT_TRUE(local::isDominatingSet(g, ds));
  // Greedy DS is no larger than the MIS (both dominate; greedy picks
  // high-coverage nodes first).
  const auto size = [](const std::vector<bool>& s) {
    return std::count(s.begin(), s.end(), true);
  };
  EXPECT_LE(size(ds), size(mis) * 2);
}

TEST(DomSet, LargerKNeverInvalidatesSmallerSolution) {
  // A k-outdegree DS is also a (k+1)-outdegree DS.
  std::mt19937 rng(21);
  const auto g = local::randomTree(150, 8, rng);
  const auto result = kOutdegreeDominatingSet(g, 2);
  for (int k = 2; k <= 5; ++k) {
    EXPECT_TRUE(
        local::isKOutdegreeDominatingSet(g, result.inSet, result.orientation, k));
  }
}

TEST(DomSet, RejectsNegativeK) {
  const auto g = local::pathGraph(4);
  EXPECT_THROW(kOutdegreeDominatingSet(g, -1), re::Error);
  EXPECT_THROW(kDegreeDominatingSet(g, -2), re::Error);
}

}  // namespace
}  // namespace relb::algos
