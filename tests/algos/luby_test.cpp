#include "algos/luby.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "local/verify.hpp"

namespace relb::algos {
namespace {

struct LubyCase {
  int n;
  int maxDegree;
  unsigned seed;
};

class LubySweep : public ::testing::TestWithParam<LubyCase> {};

TEST_P(LubySweep, ProducesMisOnRandomTrees) {
  const auto param = GetParam();
  std::mt19937 rng(param.seed);
  const auto g = local::randomTree(param.n, param.maxDegree, rng);
  const auto result = lubyMis(g, rng);
  EXPECT_TRUE(local::isMaximalIndependentSet(g, result.inSet));
  EXPECT_GT(result.phases, 0);
  EXPECT_EQ(result.rounds, 2 * result.phases);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LubySweep,
    ::testing::Values(LubyCase{2, 2, 1}, LubyCase{10, 3, 2},
                      LubyCase{50, 4, 3}, LubyCase{200, 4, 4},
                      LubyCase{200, 8, 5}, LubyCase{1000, 6, 6},
                      LubyCase{1000, 3, 7}, LubyCase{3000, 5, 8}),
    [](const ::testing::TestParamInfo<LubyCase>& info) {
      return "n" + std::to_string(info.param.n) + "d" +
             std::to_string(info.param.maxDegree) + "s" +
             std::to_string(info.param.seed);
    });

TEST(Luby, WorksOnPathologicalTrees) {
  std::mt19937 rng(99);
  for (const auto& g :
       {local::starGraph(50), local::broomGraph(20, 30), local::pathGraph(200)}) {
    const auto result = lubyMis(g, rng);
    EXPECT_TRUE(local::isMaximalIndependentSet(g, result.inSet));
  }
}

TEST(Luby, WorksOnCycles) {
  std::mt19937 rng(7);
  const auto g = local::cycleGraph(101);
  const auto result = lubyMis(g, rng);
  EXPECT_TRUE(local::isMaximalIndependentSet(g, result.inSet));
}

TEST(Luby, PhasesLogarithmicInN) {
  // Average phases over seeds must stay within a small multiple of log2 n.
  std::mt19937 structureRng(1);
  const auto g = local::randomTree(2000, 5, structureRng);
  double total = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    std::mt19937 rng(100 + static_cast<unsigned>(t));
    total += lubyMis(g, rng).phases;
  }
  EXPECT_LE(total / trials, 3.0 * std::log2(2000.0));
}

TEST(Luby, SingleNodeJoins) {
  const local::Graph g(1);
  std::mt19937 rng(3);
  const auto result = lubyMis(g, rng);
  EXPECT_TRUE(result.inSet[0]);
  EXPECT_EQ(result.phases, 1);
}

}  // namespace
}  // namespace relb::algos
