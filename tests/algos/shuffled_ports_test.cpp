// Port-numbering adversary: every algorithm and conversion must survive a
// random permutation of each node's port order (the PN model gives the
// adversary exactly this power).
#include <gtest/gtest.h>

#include <random>

#include "algos/domset.hpp"
#include "algos/luby.hpp"
#include "core/conversions.hpp"
#include "local/halfedge.hpp"
#include "local/verify.hpp"
#include "support/env_seed.hpp"

namespace relb {
namespace {

class ShuffledPorts : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShuffledPorts, AlgorithmsSurvive) {
  const unsigned seed = testsupport::effectiveSeed(GetParam());
  const testsupport::TraceSeed trace(seed);
  std::mt19937 rng(seed);
  auto g = local::randomTree(150, 6, rng);
  g.shufflePorts(rng);

  const auto luby = algos::lubyMis(g, rng);
  EXPECT_TRUE(local::isMaximalIndependentSet(g, luby.inSet));

  const auto det = algos::misFromColoring(g);
  EXPECT_TRUE(local::isMaximalIndependentSet(g, det.inSet));

  const auto ds = algos::kOutdegreeDominatingSet(g, 2);
  EXPECT_TRUE(
      local::isKOutdegreeDominatingSet(g, ds.inSet, ds.orientation, 2));
}

TEST_P(ShuffledPorts, ConversionsSurvive) {
  const unsigned seed = testsupport::effectiveSeed(GetParam() + 100);
  const testsupport::TraceSeed trace(seed);
  std::mt19937 rng(seed);
  auto g = local::completeRegularTree(5, 3);
  g.shufflePorts(rng);
  ASSERT_TRUE(g.edgeColoringIsProper(5));

  const re::Count delta = 5, a = 5, x = 1;
  const auto plus = core::syntheticPlusLabelingAlternating(g, delta, a, x);
  ASSERT_TRUE(
      local::checkLabeling(g, core::familyPlusProblem(delta, a, x), plus)
          .ok());
  const auto converted = core::lemma9Convert(g, plus, delta, a, x);
  const re::Count aNew = (a - 2 * x - 1) / 2;
  EXPECT_TRUE(local::checkLabeling(
                  g, core::familyProblem(delta, aNew, x + 1), converted)
                  .ok());
}

TEST_P(ShuffledPorts, CheckerIndependentOfPortOrder) {
  // A valid labeling stays valid if we *relabel consistently* after a
  // shuffle: build the labeling after shuffling.
  const unsigned seed = testsupport::effectiveSeed(GetParam() + 200);
  const testsupport::TraceSeed trace(seed);
  std::mt19937 rng(seed);
  auto g = local::completeRegularTree(4, 3);
  g.shufflePorts(rng);
  std::vector<bool> inSet(static_cast<std::size_t>(g.numNodes()), false);
  for (local::NodeId v = 0; v < g.numNodes(); ++v) {
    bool blocked = false;
    for (const auto& he : g.neighbors(v)) {
      if (inSet[static_cast<std::size_t>(he.neighbor)]) blocked = true;
    }
    if (!blocked) inSet[static_cast<std::size_t>(v)] = true;
  }
  local::EdgeOrientation orientation(static_cast<std::size_t>(g.numEdges()),
                                     0);
  const auto labeling = core::lemma5Labeling(g, inSet, orientation, 4, 0);
  EXPECT_TRUE(
      local::checkLabeling(g, core::familyProblem(4, 4, 0), labeling).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShuffledPorts, ::testing::Range(1u, 9u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace relb
