// The upper-bound algorithms on non-tree graphs: cycles and the
// symmetric-port gadget (K_{Delta,Delta}).  The paper's algorithms are
// stated for general graphs; trees are only where the *lower* bound lives.
#include <gtest/gtest.h>

#include <random>

#include "algos/domset.hpp"
#include "algos/luby.hpp"
#include "local/verify.hpp"

namespace relb::algos {
namespace {

TEST(NonTree, LubyOnGadget) {
  std::mt19937 rng(2);
  for (int delta : {2, 3, 5, 8}) {
    const auto g = local::symmetricPortGadget(delta);
    const auto result = lubyMis(g, rng);
    EXPECT_TRUE(local::isMaximalIndependentSet(g, result.inSet))
        << "delta=" << delta;
  }
}

TEST(NonTree, ColoringOnGadget) {
  for (int delta : {2, 3, 5}) {
    const auto g = local::symmetricPortGadget(delta);
    const auto result = properColoring(g);
    EXPECT_TRUE(isProperColoring(g, result.color, g.maxDegree() + 1));
  }
}

TEST(NonTree, MisFromColoringOnCycles) {
  for (int n : {5, 8, 13, 100}) {
    const auto g = local::cycleGraph(n);
    const auto result = misFromColoring(g);
    EXPECT_TRUE(local::isMaximalIndependentSet(g, result.inSet)) << n;
  }
}

TEST(NonTree, KOutdegreeDsOnGadget) {
  for (int delta : {4, 6}) {
    const auto g = local::symmetricPortGadget(delta);
    for (int k : {0, 1, 2}) {
      const auto result = kOutdegreeDominatingSet(g, k);
      EXPECT_TRUE(local::isKOutdegreeDominatingSet(g, result.inSet,
                                                   result.orientation, k))
          << "delta=" << delta << " k=" << k;
    }
  }
}

TEST(NonTree, KDegreeDsOnCycle) {
  const auto g = local::cycleGraph(30);
  for (int k : {0, 1, 2}) {
    const auto result = kDegreeDominatingSet(g, k);
    EXPECT_TRUE(local::isKDegreeDominatingSet(g, result.inSet, k)) << k;
  }
}

TEST(NonTree, DefectiveColoringOnGadget) {
  const auto g = local::symmetricPortGadget(6);
  const auto proper = properColoring(g);
  for (int k : {1, 2, 3}) {
    const auto def = kDefectiveColoring(g, proper, k);
    EXPECT_LE(defectOf(g, def.color), k);
    const auto arb = kArbdefectiveColoring(g, proper, k);
    const int out = arbdefectOf(g, arb.color, arb.orientation);
    ASSERT_GE(out, 0);
    EXPECT_LE(out, k);
  }
}

TEST(NonTree, GreedyEdgeColoringOnGadgetWithinVizing) {
  auto g = local::symmetricPortGadget(5);
  const int colors = g.properEdgeColorGreedy();
  EXPECT_LE(colors, 2 * g.maxDegree() - 1);
  EXPECT_TRUE(g.edgeColoringIsProper(colors));
}

}  // namespace
}  // namespace relb::algos
