// Chrome trace_event emission (parses back through io::Json, carries the
// span/counter/instant shapes Perfetto expects) and the versioned run
// report: roundtrip fidelity, checksum tamper rejection, version pinning.
#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/chrome_sink.hpp"
#include "re/types.hpp"

namespace relb::obs {
namespace {

namespace fs = std::filesystem;

TEST(ChromeTraceSink, EmitsParseableTraceEventJson) {
  Tracer tracer;
  auto sink = std::make_shared<ChromeTraceSink>("unused.json");
  tracer.addSink(sink);
  {
    const ScopedSpan outer("outer", tracer);
    const ScopedSpan inner("inner", tracer);
    (void)outer;
    (void)inner;
  }
  tracer.counter("labels", 5);
  tracer.instant("marker");

  // The document must survive its own writer/parser pair.
  const io::Json doc = io::Json::parse(sink->toJson().dump());
  const io::Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.asArray().size(), 4u);

  const io::Json& span = events.asArray()[0];  // inner completes first
  EXPECT_EQ(span.at("name").asString(), "inner");
  EXPECT_EQ(span.at("ph").asString(), "X");
  EXPECT_EQ(span.at("cat").asString(), "relb");
  EXPECT_GE(span.at("dur").asInt(), 0);
  EXPECT_GE(span.at("ts").asInt(), 0);
  EXPECT_EQ(span.at("pid").asInt(), 1);
  const std::int64_t tid = span.at("tid").asInt();
  EXPECT_EQ(events.asArray()[1].at("name").asString(), "outer");
  EXPECT_EQ(events.asArray()[1].at("tid").asInt(), tid);

  const io::Json& counter = events.asArray()[2];
  EXPECT_EQ(counter.at("ph").asString(), "C");
  EXPECT_EQ(counter.at("args").at("value").asInt(), 5);

  const io::Json& instant = events.asArray()[3];
  EXPECT_EQ(instant.at("ph").asString(), "i");
  EXPECT_EQ(instant.at("s").asString(), "t");
}

TEST(ChromeTraceSink, FlushWritesTheFile) {
  const fs::path path = fs::path(testing::TempDir()) / "chrome-trace.json";
  fs::remove(path);
  Tracer tracer;
  auto sink = std::make_shared<ChromeTraceSink>(path);
  tracer.addSink(sink);
  { const ScopedSpan span("only", tracer); }
  tracer.flush();
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), {});
  const io::Json doc = io::Json::parse(text);
  EXPECT_EQ(doc.at("traceEvents").asArray().size(), 1u);
  EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
}

RunReport sampleReport() {
  RunReport report;
  report.command = "round_eliminator_cli --chain 32";
  report.totalWallMicros = 12345;
  report.threads = 4;
  report.phases = {{"phase.chain.build", 1, 100},
                   {"phase.chain.certify", 1, 12000}};
  report.spans = {{"engine.zeroRound", 7, 9000},
                  {"phase.chain.build", 1, 100},
                  {"phase.chain.certify", 1, 12000}};
  report.counters = {{"engine.zero_round.miss", 7}, {"store.hit", 0}};
  report.gauges = {{"pool.concurrency", 4}};
  report.chainDelta = 32;
  report.chainX0 = 1;
  report.chainSteps = {{32, 1}, {10, 2}, {2, 3}};
  return report;
}

TEST(RunReport, RoundtripsThroughJson) {
  const RunReport in = sampleReport();
  const RunReport out = runReportFromJson(runReportToJson(in));
  EXPECT_EQ(out.version, kRunReportVersion);
  EXPECT_EQ(out.command, in.command);
  EXPECT_EQ(out.totalWallMicros, in.totalWallMicros);
  EXPECT_EQ(out.threads, in.threads);
  ASSERT_EQ(out.phases.size(), in.phases.size());
  EXPECT_EQ(out.phases[1].name, "phase.chain.certify");
  EXPECT_EQ(out.phases[1].wallMicros, 12000);
  ASSERT_EQ(out.spans.size(), 3u);
  ASSERT_EQ(out.counters.size(), 2u);
  EXPECT_EQ(out.counters[0].first, "engine.zero_round.miss");
  EXPECT_EQ(out.counters[0].second, 7u);
  ASSERT_EQ(out.gauges.size(), 1u);
  EXPECT_EQ(out.chainDelta, 32);
  ASSERT_EQ(out.chainSteps.size(), 3u);
  EXPECT_EQ(out.chainSteps[1].a, 10);
  EXPECT_EQ(out.chainSteps[1].x, 2);
}

TEST(RunReport, PhaseWallTimesTileTheTotal) {
  // The property the CLI acceptance check relies on: the root-phase sum is
  // within 5% of end-to-end wall time.
  const RunReport report = sampleReport();
  std::int64_t phaseSum = 0;
  for (const RunReport::Row& row : report.phases) phaseSum += row.wallMicros;
  const double coverage =
      static_cast<double>(phaseSum) /
      static_cast<double>(report.totalWallMicros);
  EXPECT_GT(coverage, 0.95);
  EXPECT_LE(coverage, 1.05);
}

TEST(RunReport, SaveLoadRoundtripsOnDisk) {
  const fs::path path = fs::path(testing::TempDir()) / "run-report.json";
  fs::remove(path);
  saveRunReport(path, sampleReport());
  const RunReport out = loadRunReport(path);
  EXPECT_EQ(out.command, "round_eliminator_cli --chain 32");
  EXPECT_EQ(out.chainSteps.size(), 3u);
}

TEST(RunReport, TamperedCounterSectionIsRejected) {
  io::Json doc = runReportToJson(sampleReport());
  // Re-parse the dump with one counter value edited; the counters checksum
  // no longer matches.
  std::string text = doc.dump();
  const auto pos = text.find("\"engine.zero_round.miss\":7");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 26, "\"engine.zero_round.miss\":8");
  EXPECT_THROW((void)runReportFromJson(io::Json::parse(text)), re::Error);
}

TEST(RunReport, WrongFormatAndVersionAreRejected) {
  io::Json notAReport = io::Json::object();
  notAReport.set("format", "something-else");
  EXPECT_THROW((void)runReportFromJson(notAReport), re::Error);

  std::string text = runReportToJson(sampleReport()).dump();
  const auto pos = text.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"version\":9");
  EXPECT_THROW((void)runReportFromJson(io::Json::parse(text)), re::Error);
}

TEST(RunReport, BuildFromAggregatorAndRegistry) {
  SpanAggregator agg;
  TraceEvent root;
  root.name = "phase.test.build";
  root.durationMicros = 40;
  root.depth = 0;
  agg.consume(root);
  TraceEvent nested = root;
  nested.name = "nested.test.build";
  nested.depth = 1;
  agg.consume(nested);

  auto& reg = Registry::global();
  reg.counter("test.report.counter").add(11);
  reg.gauge("test.report.gauge").set(-3);

  const RunReport report = buildRunReport(agg, reg);
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].name, "phase.test.build");
  EXPECT_EQ(report.spans.size(), 2u);
  bool sawCounter = false, sawGauge = false;
  for (const auto& [name, value] : report.counters) {
    if (name == "test.report.counter") {
      sawCounter = true;
      EXPECT_EQ(value, 11u);
    }
  }
  for (const auto& [name, value] : report.gauges) {
    if (name == "test.report.gauge") {
      sawGauge = true;
      EXPECT_EQ(value, -3);
    }
  }
  EXPECT_TRUE(sawCounter);
  EXPECT_TRUE(sawGauge);
}

}  // namespace
}  // namespace relb::obs
