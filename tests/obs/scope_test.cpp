// SessionScope (obs/scope.hpp): session-local counters roll up into the
// parent exactly once, the per-session snapshot stays isolated, and span
// forwarding into the parent tracer follows the enabled-at-construction
// rule with timestamps re-based onto the parent's epoch.
#include <gtest/gtest.h>

#include <memory>

#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"

namespace relb::obs {
namespace {

std::uint64_t counterValue(const Registry::Snapshot& snap,
                           const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

TEST(SessionScope, CountersRollUpIntoParentOnFlush) {
  Registry parent;
  {
    SessionScope scope("s1", &parent, nullptr);
    scope.registry().counter("engine.memo.hit").add(3);
    scope.registry().counter("engine.memo.miss").add();
    // Nothing reaches the parent before a flush.
    EXPECT_EQ(counterValue(parent.snapshot(), "engine.memo.hit"), 0u);
    scope.flush();
    EXPECT_EQ(counterValue(parent.snapshot(), "engine.memo.hit"), 3u);
    // A second flush with no new traffic adds nothing (idempotence) ...
    scope.flush();
    EXPECT_EQ(counterValue(parent.snapshot(), "engine.memo.hit"), 3u);
    // ... and later traffic rolls up only its delta.
    scope.registry().counter("engine.memo.hit").add(2);
  }  // destructor runs the final flush
  EXPECT_EQ(counterValue(parent.snapshot(), "engine.memo.hit"), 5u);
  EXPECT_EQ(counterValue(parent.snapshot(), "engine.memo.miss"), 1u);
}

TEST(SessionScope, SnapshotIsThePerSessionView) {
  Registry parent;
  parent.counter("engine.memo.hit").add(100);
  SessionScope scope("s1", &parent, nullptr);
  scope.registry().counter("engine.memo.hit").add(7);
  EXPECT_EQ(counterValue(scope.snapshot(), "engine.memo.hit"), 7u);
  scope.flush();
  // The parent aggregates; the session view is unchanged by flushing.
  EXPECT_EQ(counterValue(parent.snapshot(), "engine.memo.hit"), 107u);
  EXPECT_EQ(counterValue(scope.snapshot(), "engine.memo.hit"), 7u);
}

TEST(SessionScope, TwoScopesSumIntoOneParent) {
  Registry parent;
  SessionScope a("a", &parent, nullptr);
  SessionScope b("b", &parent, nullptr);
  a.registry().counter("work").add(2);
  b.registry().counter("work").add(5);
  a.flush();
  b.flush();
  EXPECT_EQ(counterValue(parent.snapshot(), "work"), 7u);
  EXPECT_EQ(counterValue(a.snapshot(), "work"), 2u);
  EXPECT_EQ(counterValue(b.snapshot(), "work"), 5u);
}

TEST(SessionScope, ForwardsSpansWhenParentEnabledAtConstruction) {
  Tracer parent;
  const auto ring = std::make_shared<RingBufferSink>(16);
  parent.addSink(ring);
  SessionScope scope("traced", nullptr, &parent);
  {
    const ScopedSpan span("session.work", scope.tracer());
  }
  ASSERT_EQ(ring->size(), 1u);
  const TraceEvent event = ring->events().front();
  EXPECT_EQ(event.name, "session.work");
  // Re-based onto the parent's epoch: the child tracer was constructed
  // after the parent, so the forwarded start cannot be negative.
  EXPECT_GE(event.startMicros, 0);
  parent.clearSinks();
}

TEST(SessionScope, QuietParentKeepsFastPath) {
  Tracer parent;  // no sink attached
  SessionScope scope("quiet", nullptr, &parent);
  // No forward sink was attached, so the scope tracer stays disabled and
  // ScopedSpan takes the no-op path.
  EXPECT_FALSE(scope.tracer().enabled());
  const auto ring = std::make_shared<RingBufferSink>(4);
  parent.addSink(ring);  // attached AFTER scope construction: not forwarded
  { const ScopedSpan span("session.work", scope.tracer()); }
  EXPECT_EQ(ring->size(), 0u);
  parent.clearSinks();
}

TEST(SessionScope, DirectSinksSeeOnlyThisSessionsSpans) {
  Tracer parent;
  SessionScope scope("mine", nullptr, &parent);
  const auto ring = std::make_shared<RingBufferSink>(4);
  scope.tracer().addSink(ring);
  { const ScopedSpan span("mine.only", scope.tracer()); }
  { const ScopedSpan span("parent.span", parent); }  // parent disabled: no-op
  ASSERT_EQ(ring->size(), 1u);
  EXPECT_EQ(ring->events().front().name, "mine.only");
}

}  // namespace
}  // namespace relb::obs
