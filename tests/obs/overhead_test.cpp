// The no-sink guarantee: with no sink attached, a ScopedSpan must cost so
// little that the spans emitted during a chain certification stay under 2%
// of the certification's own wall time.  Measured, not assumed: the span
// count comes from tracing a real certifyChain run, the per-span cost from
// a tight no-sink loop, and the chain cost from the fastest of several
// untraced runs (min, not mean, so background noise only helps the bound).
#include <gtest/gtest.h>

#include <chrono>

#include "core/sequence.hpp"
#include "obs/trace.hpp"

namespace relb::obs {
namespace {

using Clock = std::chrono::steady_clock;

double nanosSince(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

TEST(Overhead, NoSinkSpansStayUnderTwoPercentOfCertifyChain) {
  const core::Chain chain = core::exactChain(32, 1);

  // Per-span cost with no sink attached (the global tracer has no sinks in
  // this process).  1M iterations amortize the clock reads away.
  ASSERT_FALSE(Tracer::global().enabled())
      << "test requires the global tracer to be sinkless";
  constexpr int kSpanReps = 1'000'000;
  const auto spanStart = Clock::now();
  for (int i = 0; i < kSpanReps; ++i) {
    const ScopedSpan span("overhead.probe");
    (void)span;
  }
  const double perSpanNanos = nanosSince(spanStart) / kSpanReps;

  // How many spans does one certification emit?  Count via a ring sink.
  std::size_t spanCount = 0;
  {
    auto ring = std::make_shared<RingBufferSink>(1 << 20);
    Tracer::global().addSink(ring);
    (void)core::certifyChain(chain, /*numThreads=*/1);
    Tracer::global().removeSink(ring.get());
    spanCount = ring->size() + ring->droppedEvents();
  }
  ASSERT_GT(spanCount, 0u) << "certifyChain must be instrumented";

  // Untraced certification cost: fastest of several runs.
  double chainNanos = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = Clock::now();
    (void)core::certifyChain(chain, /*numThreads=*/1);
    chainNanos = std::min(chainNanos, nanosSince(start));
  }

  const double overheadNanos = perSpanNanos * static_cast<double>(spanCount);
  EXPECT_LT(overheadNanos, 0.02 * chainNanos)
      << "no-sink span overhead " << overheadNanos << "ns ("
      << spanCount << " spans x " << perSpanNanos
      << "ns) exceeds 2% of certifyChain's " << chainNanos << "ns";
}

}  // namespace
}  // namespace relb::obs
