// Tracer and sinks: span nesting and ordering (serial and under
// parallel_for fan-out at widths 1/2/8), ring-buffer overflow, text
// rendering, and the aggregator's root-vs-all split that the run report's
// phase table builds on.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "util/thread_pool.hpp"

namespace relb::obs {
namespace {

TEST(ThreadId, DenseStablePerThread) {
  const int mine = currentThreadId();
  EXPECT_EQ(currentThreadId(), mine) << "id must be stable within a thread";
  int other = -1;
  std::thread t([&] { other = currentThreadId(); });
  t.join();
  EXPECT_GE(other, 0);
  EXPECT_NE(other, mine) << "distinct threads get distinct ids";
}

TEST(Tracer, DisabledWithoutSinksAndSpansAreInert) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  { const ScopedSpan span("ignored", tracer); }
  tracer.counter("ignored", 1);
  tracer.instant("ignored");
  // Attaching a sink afterwards must not replay anything.
  auto ring = std::make_shared<RingBufferSink>(16);
  tracer.addSink(ring);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_EQ(ring->size(), 0u);
  tracer.removeSink(ring.get());
  EXPECT_FALSE(tracer.enabled());
}

TEST(Tracer, NestedSpansCompleteInnermostFirstWithDepths) {
  Tracer tracer;
  auto ring = std::make_shared<RingBufferSink>(16);
  tracer.addSink(ring);
  {
    const ScopedSpan outer("outer", tracer);
    {
      const ScopedSpan mid("mid", tracer);
      const ScopedSpan inner("inner", tracer);
      (void)inner;
      (void)mid;
    }
    (void)outer;
  }
  const auto events = ring->events();
  ASSERT_EQ(events.size(), 3u);
  // Complete-span events arrive in destruction order: innermost first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "mid");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 0);
  // All on this thread, and children contained in the parent interval.
  const int tid = currentThreadId();
  for (const TraceEvent& e : events) EXPECT_EQ(e.threadId, tid);
  EXPECT_LE(events[2].startMicros, events[0].startMicros);
  EXPECT_LE(events[0].startMicros + events[0].durationMicros,
            events[2].startMicros + events[2].durationMicros);
}

TEST(Tracer, SpanDepthIsPerThread) {
  Tracer tracer;
  auto ring = std::make_shared<RingBufferSink>(16);
  tracer.addSink(ring);
  const ScopedSpan outer("outer", tracer);
  std::thread t([&] {
    // The other thread's depth counter starts at zero even while this
    // thread has an open span.
    const ScopedSpan theirs("theirs", tracer);
    (void)theirs;
  });
  t.join();
  const auto events = ring->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "theirs");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_NE(events[0].threadId, currentThreadId());
}

// One span per work item, fanned out at the given width.  For width >= 2
// every item blocks until at least two distinct threads have joined the
// batch, so the trace provably shows >= 2 thread ids even on a single-core
// host (the blocked lane yields, the scheduler runs a pool worker).
void runFanOut(int width, std::size_t items, std::size_t wantThreads) {
  Tracer tracer;
  auto ring = std::make_shared<RingBufferSink>(items + 8);
  tracer.addSink(ring);

  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<std::size_t> distinct{0};
  util::parallel_for(width, items, [&](std::size_t) {
    const ScopedSpan span("fanout.item", tracer);
    {
      std::lock_guard lock(mu);
      seen.insert(std::this_thread::get_id());
      distinct.store(seen.size(), std::memory_order_relaxed);
    }
    while (distinct.load(std::memory_order_relaxed) < wantThreads) {
      std::this_thread::yield();
    }
  });

  const auto events = ring->events();
  ASSERT_EQ(events.size(), items) << "one completed span per item";
  std::set<int> tids;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.name, "fanout.item");
    EXPECT_GE(e.durationMicros, 0);
    tids.insert(e.threadId);
  }
  EXPECT_GE(tids.size(), wantThreads);
  EXPECT_LE(tids.size(), static_cast<std::size_t>(width));
}

TEST(Tracer, FanOutWidth1IsSingleThreaded) { runFanOut(1, 16, 1); }
TEST(Tracer, FanOutWidth2ShowsTwoThreads) { runFanOut(2, 16, 2); }
TEST(Tracer, FanOutWidth8ShowsTwoThreads) { runFanOut(8, 32, 2); }

TEST(RingBufferSink, OverflowDropsOldestAndCounts) {
  Tracer tracer;
  auto ring = std::make_shared<RingBufferSink>(4);
  tracer.addSink(ring);
  for (int i = 0; i < 10; ++i) {
    tracer.instant("i" + std::to_string(i));
  }
  EXPECT_EQ(ring->size(), 4u);
  EXPECT_EQ(ring->droppedEvents(), 6u);
  const auto events = ring->events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive.
  EXPECT_EQ(events[0].name, "i6");
  EXPECT_EQ(events[1].name, "i7");
  EXPECT_EQ(events[2].name, "i8");
  EXPECT_EQ(events[3].name, "i9");
}

TEST(TextSink, RendersSpansCountersInstants) {
  Tracer tracer;
  auto text = std::make_shared<TextSink>();
  tracer.addSink(text);
  {
    const ScopedSpan outer("outer", tracer);
    const ScopedSpan inner("inner", tracer);
    (void)outer;
    (void)inner;
  }
  tracer.counter("labels", 7);
  tracer.instant("marker");
  const std::string out = text->render();
  EXPECT_NE(out.find("outer"), std::string::npos);
  EXPECT_NE(out.find("  inner"), std::string::npos) << "depth 1 indents";
  EXPECT_NE(out.find("# labels = 7"), std::string::npos);
  EXPECT_NE(out.find("! marker"), std::string::npos);
}

TEST(SpanAggregator, SeparatesRootTotalsFromAllSpans) {
  SpanAggregator agg;
  const auto span = [&](const char* name, std::int64_t micros, int depth) {
    TraceEvent e;
    e.name = name;
    e.durationMicros = micros;
    e.depth = depth;
    agg.consume(e);
  };
  span("phase.a", 100, 0);
  span("phase.a", 50, 0);
  span("inner", 30, 1);
  TraceEvent counter;
  counter.kind = TraceEvent::Kind::kCounter;
  counter.name = "noise";
  agg.consume(counter);  // counters do not aggregate

  const auto all = agg.totals();
  ASSERT_EQ(all.size(), 2u);  // name-sorted: inner, phase.a
  EXPECT_EQ(all[0].first, "inner");
  EXPECT_EQ(all[0].second.count, 1u);
  EXPECT_EQ(all[0].second.wallMicros, 30);
  EXPECT_EQ(all[1].first, "phase.a");
  EXPECT_EQ(all[1].second.count, 2u);
  EXPECT_EQ(all[1].second.wallMicros, 150);

  const auto roots = agg.rootTotals();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].first, "phase.a");
  EXPECT_EQ(roots[0].second.wallMicros, 150);
}

}  // namespace
}  // namespace relb::obs
