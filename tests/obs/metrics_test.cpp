// Counter/gauge registry: interning stability, relaxed-atomic totals under
// fan-out, name-sorted snapshots, and reset semantics.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace relb::obs {
namespace {

TEST(Registry, InternsStableReferences) {
  auto& reg = Registry::global();
  Counter& a = reg.counter("test.metrics.stable");
  Counter& b = reg.counter("test.metrics.stable");
  EXPECT_EQ(&a, &b) << "same name must intern to the same counter";
  Gauge& g1 = reg.gauge("test.metrics.stable");  // separate namespace
  Gauge& g2 = reg.gauge("test.metrics.stable");
  EXPECT_EQ(&g1, &g2);
}

TEST(Registry, CounterTotalsAreExactUnderFanOut) {
  Counter& c = Registry::global().counter("test.metrics.fanout");
  const std::uint64_t before = c.value();
  util::parallel_for(4, 64, [&](std::size_t) { c.add(3); });
  EXPECT_EQ(c.value() - before, 64u * 3u);
}

TEST(Registry, GaugeSetAndSetMax) {
  Gauge& g = Registry::global().gauge("test.metrics.gauge");
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.setMax(5);
  EXPECT_EQ(g.value(), 10) << "setMax keeps the high-water mark";
  g.setMax(25);
  EXPECT_EQ(g.value(), 25);
  g.set(1);
  EXPECT_EQ(g.value(), 1) << "set overwrites unconditionally";
}

TEST(Registry, SnapshotIsNameSortedAndLooksUpAbsentAsZero) {
  auto& reg = Registry::global();
  reg.counter("test.metrics.zz").add(2);
  reg.counter("test.metrics.aa").add(1);
  const auto snap = reg.snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
  EXPECT_EQ(snap.counterValue("test.metrics.aa"), 1u);
  EXPECT_EQ(snap.counterValue("test.metrics.never-registered"), 0u);
  EXPECT_EQ(snap.gaugeValue("test.metrics.never-registered"), 0);
}

TEST(Registry, ResetZeroesButKeepsReferencesValid) {
  auto& reg = Registry::global();
  Counter& c = reg.counter("test.metrics.reset");
  Gauge& g = reg.gauge("test.metrics.reset");
  c.add(7);
  g.set(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  c.add(1);  // the interned reference still works after reset
  EXPECT_EQ(reg.snapshot().counterValue("test.metrics.reset"), 1u);
}

}  // namespace
}  // namespace relb::obs
