// Machine checks of Lemma 6 and Figure 4 over parameter sweeps, including
// a failure-injection test showing the verifier is not vacuous.
#include "core/lemma6.hpp"

#include <gtest/gtest.h>

#include "re/diagram.hpp"

namespace relb::core {
namespace {

using re::Count;

struct Params {
  Count delta;
  Count a;
  Count x;
};

class Lemma6Sweep : public ::testing::TestWithParam<Params> {};

TEST_P(Lemma6Sweep, Verifies) {
  const auto [delta, a, x] = GetParam();
  const auto result = verifyLemma6(delta, a, x);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST_P(Lemma6Sweep, Figure4Holds) {
  const auto [delta, a, x] = GetParam();
  EXPECT_TRUE(verifyFigure4(delta, a, x));
}

INSTANTIATE_TEST_SUITE_P(
    SmallDeltas, Lemma6Sweep,
    ::testing::Values(Params{2, 2, 0}, Params{3, 2, 0}, Params{3, 3, 0},
                      Params{3, 3, 1}, Params{4, 2, 0}, Params{4, 3, 1},
                      Params{4, 4, 2}, Params{5, 4, 1}, Params{5, 5, 3},
                      Params{6, 3, 1}, Params{6, 6, 4}, Params{7, 5, 2},
                      Params{8, 8, 0}, Params{16, 9, 3}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "d" + std::to_string(info.param.delta) + "a" +
             std::to_string(info.param.a) + "x" +
             std::to_string(info.param.x);
    });

INSTANTIATE_TEST_SUITE_P(
    LargeDeltas, Lemma6Sweep,
    ::testing::Values(Params{1 << 10, 1 << 8, 7},
                      Params{1 << 16, 1 << 13, 100},
                      Params{Count{1} << 30, Count{1} << 20, 1000},
                      Params{Count{1} << 40, Count{1} << 39, 0}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "d" + std::to_string(info.param.delta) + "a" +
             std::to_string(info.param.a) + "x" +
             std::to_string(info.param.x);
    });

TEST(Lemma6, ExhaustiveSmallParameterSpace) {
  // Every valid (a, x) with x + 2 <= a <= delta for delta in {2..6}.
  for (Count delta = 2; delta <= 6; ++delta) {
    for (Count a = 2; a <= delta; ++a) {
      for (Count x = 0; x + 2 <= a; ++x) {
        const auto result = verifyLemma6(delta, a, x);
        EXPECT_TRUE(result.ok) << "delta=" << delta << " a=" << a
                               << " x=" << x << ": " << result.detail;
      }
    }
  }
}

TEST(Lemma6, RejectsParametersOutsideLemma) {
  EXPECT_FALSE(verifyLemma6(4, 1, 0).ok);   // a < x + 2
  EXPECT_FALSE(verifyLemma6(4, 3, 2).ok);   // a < x + 2
  EXPECT_FALSE(verifyLemma6(4, 5, 0).ok);   // a > delta
}

TEST(Lemma6, ClaimedProblemHasEightLabels) {
  const auto claimed = claimedRFamily(8, 5, 1);
  EXPECT_EQ(claimed.alphabet.size(), 8);
  EXPECT_EQ(claimed.edge.size(), 4u);
  EXPECT_EQ(claimed.node.size(), 3u);
}

TEST(Lemma6, MeaningsAreTheEightRightClosedSets) {
  // Figure 4's diagram admits exactly 8 right-closed sets; the meanings of
  // the renamed labels enumerate all of them.
  const auto pi = familyProblem(5, 4, 1);
  const auto rel = re::computeStrength(pi.edge, pi.alphabet.size());
  const auto rc = rel.allRightClosedSets(pi.alphabet.all());
  const auto meanings = rFamilyMeanings();
  EXPECT_EQ(rc.size(), meanings.size());
  for (const auto& m : meanings) {
    EXPECT_NE(std::find(rc.begin(), rc.end(), m), rc.end());
  }
}

// Failure injection: a perturbed "claimed" problem must be rejected, i.e.
// the comparison in verifyLemma6 actually distinguishes constraint systems.
TEST(Lemma6, FailureInjectionDetectsPerturbedClaim) {
  const auto computed = re::applyR(familyProblem(5, 4, 1));
  auto claimed = claimedRFamily(5, 4, 1);
  // Drop one edge configuration.
  re::Constraint smallerEdge(2, {});
  for (std::size_t i = 0; i + 1 < claimed.edge.size(); ++i) {
    smallerEdge.add(claimed.edge.configurations()[i]);
  }
  auto ca = computed.problem.edge.configurations();
  auto cb = smallerEdge.configurations();
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  EXPECT_NE(ca, cb);
}

}  // namespace
}  // namespace relb::core
