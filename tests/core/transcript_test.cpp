#include "core/transcript.hpp"

#include <gtest/gtest.h>

namespace relb::core {
namespace {

TEST(VerifyChainDeep, PassesOnExactChains) {
  for (re::Count delta : {re::Count{16}, re::Count{1} << 10}) {
    const auto chain = exactChain(delta, 1);
    const auto deep = verifyChainDeep(chain);
    EXPECT_TRUE(deep.ok) << deep.failure;
    EXPECT_EQ(deep.lemma6Checks, static_cast<int>(chain.steps.size()) - 1);
    EXPECT_EQ(deep.lemma8Checks, deep.lemma6Checks);
    EXPECT_EQ(deep.hardnessChecks, static_cast<int>(chain.steps.size()));
  }
}

TEST(VerifyChainDeep, RejectsBogusChain) {
  Chain bogus;
  bogus.delta = 64;
  bogus.steps = {{64, 0}, {60, 1}};
  const auto deep = verifyChainDeep(bogus);
  EXPECT_FALSE(deep.ok);
  EXPECT_NE(deep.failure.find("chain certification"), std::string::npos);
}

TEST(VerifyChainDeep, RejectsStepOutsideLemmaRange) {
  // A formally reachable chain whose first step violates the Lemma 6
  // precondition never arises from exactChain; construct one by hand where
  // certifyChain passes (Corollary 10 needs 2x+1 <= a and x+2 <= a, which
  // also covers Lemma 6) -- so instead check a chain with a > delta is
  // caught at certification.
  Chain bogus;
  bogus.delta = 8;
  bogus.steps = {{9, 0}, {4, 1}};
  EXPECT_FALSE(verifyChainDeep(bogus).ok);
}

TEST(Transcript, ContainsTheDerivation) {
  const auto text = writeTranscript(1 << 10, 1);
  EXPECT_NE(text.find("LOWER BOUND TRANSCRIPT"), std::string::npos);
  EXPECT_NE(text.find("Lemma 6 verified"), std::string::npos);
  EXPECT_NE(text.find("Lemma 8 verified"), std::string::npos);
  EXPECT_NE(text.find("Lemma 12"), std::string::npos);
  EXPECT_NE(text.find("Theorem 14"), std::string::npos);
  EXPECT_NE(text.find("P -> A"), std::string::npos);  // Figure 4 diagram
  // The chain table lists step 0 with a = delta.
  EXPECT_NE(text.find("1024"), std::string::npos);
}

TEST(Transcript, DifferentKDifferentChains) {
  const auto t1 = writeTranscript(1 << 12, 0);
  const auto t2 = writeTranscript(1 << 12, 8);
  EXPECT_NE(t1, t2);
}

}  // namespace
}  // namespace relb::core
